//! # pcrlb — Parallel Continuous Randomized Load Balancing
//!
//! A Rust implementation of Berenbrink, Friedetzky and Mayr,
//! *"Parallel Continuous Randomized Load Balancing (Extended
//! Abstract)"*, SPAA 1998 — plus the simulation substrate, the collision
//! protocol it builds on, every baseline the paper compares against, and
//! the analysis toolkit used to reproduce the paper's claims.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof so applications only need a single dependency.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `pcrlb-sim` | discrete-time engine, FIFO queues, RNG streams, message ledger |
//! | [`collision`] | `pcrlb-collision` | the `(n,ε,a,b,c)`-collision protocol, balancing-request trees |
//! | [`core`] | `pcrlb-core` | the threshold balancer, generation models, adversaries, scatter variant |
//! | [`baselines`] | `pcrlb-baselines` | balls-into-bins games and continuous competitors |
//! | [`analysis`] | `pcrlb-analysis` | Markov steady states, histograms, w.h.p. checks, tables |
//! | [`shmem`] | `pcrlb-shmem` | the MSS'95 PRAM-on-DMM shared-memory simulation the collision protocol originates from |
//!
//! ## Quickstart
//!
//! ```
//! use pcrlb::prelude::*;
//!
//! let n = 1024;                       // processors
//! let model = Single::default_paper(); // generate w.p. 0.4, consume w.p. 0.5
//! let balancer = ThresholdBalancer::paper(n);
//!
//! let report = Runner::new(n, 42)
//!     .model(model)
//!     .strategy(balancer)
//!     .probe(MaxLoadProbe::new())
//!     .run(5_000);
//!
//! // Theorem 1: max load stays O((log log n)^2) w.h.p.
//! let t = pcrlb::core::BalancerConfig::paper(n).theorem1_bound();
//! assert!(report.worst_max_load().unwrap() <= 2 * t);
//! // ...at a small fraction of the n messages/step that parallel
//! // balls-into-bins games pay:
//! assert!(report.messages.control_total() * 10 < 5_000 * n as u64);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;

pub use pcrlb_analysis as analysis;
pub use pcrlb_baselines as baselines;
pub use pcrlb_collision as collision;
pub use pcrlb_core as core;
pub use pcrlb_shmem as shmem;
pub use pcrlb_sim as sim;

/// The most commonly used items in one import.
pub mod prelude {
    pub use pcrlb_analysis::{BirthDeath, Histogram, Summary, Table, WhpCheck};
    pub use pcrlb_baselines::{
        DChoiceAllocation, LauerAverage, LulingMonien, RandomSeeking, RsuEqualize,
    };
    pub use pcrlb_collision::{play_game, BalanceForest, CollisionParams};
    pub use pcrlb_core::{
        BalancerConfig, Geometric, Multi, ScatterBalancer, Single, ThresholdBalancer, TrafficModel,
        TrafficSpec,
    };
    pub use pcrlb_sim::{
        Admission, Backend, ChurnSpec, Engine, FaultConfig, FaultModel, FaultPlan, FaultProbe,
        LatencyHist, LoadModel, LoadSnapshotProbe, MaxLoadProbe, MembershipProbe, MembershipView,
        MessageRateProbe, PhaseProbe, Probe, ProbeOutput, ProcId, RecoveryProbe, Reliable,
        RunReport, Runner, SeriesProbe, SimRng, SojournProbe, SojournTailProbe, Step, Strategy,
        Task, TraceProbe, Unbalanced, WorkerPool, World,
    };
}
