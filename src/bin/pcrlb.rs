//! The `pcrlb` command-line simulator: run any strategy/model
//! combination and print the headline statistics.
//!
//! ```text
//! pcrlb --n 4096 --steps 20000 --strategy threshold --model single
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pcrlb::cli::parse(args) {
        Ok(None) => print!("{}", pcrlb::cli::usage()),
        Ok(Some(spec)) => {
            println!(
                "pcrlb: n={}, steps={}, seed={}, strategy={:?}, model={:?}\n",
                spec.n, spec.steps, spec.seed, spec.strategy, spec.model
            );
            let report = pcrlb::cli::execute(&spec);
            println!("{report}");
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", pcrlb::cli::usage());
            std::process::exit(2);
        }
    }
}
