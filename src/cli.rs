//! Argument parsing and execution for the `pcrlb` CLI binary.
//!
//! Kept in the library so the parsing and run logic are unit-testable;
//! `src/bin/pcrlb.rs` is a thin shell around [`parse`] and [`execute`].

use crate::baselines::{DChoiceAllocation, LauerAverage, LulingMonien, RandomSeeking, RsuEqualize};
use crate::core::{
    Arrivals, BalancerConfig, Geometric, Multi, ScatterBalancer, Single, ThresholdBalancer,
    TrafficModel, TrafficSpec,
};
use crate::sim::{
    Backend, ChurnSpec, FaultConfig, FaultProbe, LoadModel, MaxLoadProbe, MembershipProbe,
    PolicySpec, ProbeOutput, Runner, SojournProbe, Strategy, TopologySpec, Unbalanced,
};
use std::fmt;

/// Which balancing strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// The paper's threshold balancer.
    Threshold,
    /// No balancing.
    Unbalanced,
    /// §5 scatter variant.
    Scatter,
    /// Arrival-time d-choice placement (d = 2).
    TwoChoice,
    /// RSU'91 equalization.
    Rsu,
    /// Lüling–Monien'93.
    LulingMonien,
    /// Lauer'95 with oracle average.
    Lauer,
    /// MD'96 random seeking.
    Seeking,
}

impl StrategyKind {
    /// All variants with their CLI names.
    pub const ALL: [(&'static str, StrategyKind); 8] = [
        ("threshold", StrategyKind::Threshold),
        ("unbalanced", StrategyKind::Unbalanced),
        ("scatter", StrategyKind::Scatter),
        ("two-choice", StrategyKind::TwoChoice),
        ("rsu", StrategyKind::Rsu),
        ("luling-monien", StrategyKind::LulingMonien),
        ("lauer", StrategyKind::Lauer),
        ("seeking", StrategyKind::Seeking),
    ];

    fn parse(s: &str) -> Option<Self> {
        Self::ALL.iter().find(|(n, _)| *n == s).map(|(_, k)| *k)
    }
}

/// Which generation model to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelKind {
    /// `Single(p, q)`.
    Single {
        /// Generation probability.
        p: f64,
        /// Consumption probability.
        q: f64,
    },
    /// `Geometric(k)`.
    Geometric {
        /// Maximum burst.
        k: usize,
    },
    /// `Multi` with the default `[0.25, 0.15, 0.05]` distribution.
    Multi,
}

/// Which execution backend carries the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Pick from `--threads`: sequential for 0/1, pooled otherwise.
    Auto,
    /// Message-passing runtime over the deterministic loopback
    /// transport, sharded across `nodes` node threads.
    Net {
        /// Node threads hosting processor shards.
        nodes: usize,
    },
    /// Message-passing runtime over localhost TCP sockets.
    Tcp {
        /// Node threads hosting processor shards.
        nodes: usize,
    },
}

impl BackendKind {
    fn parse(s: &str) -> Result<Self, ParseError> {
        let (name, nodes) = match s.split_once(':') {
            Some((n, v)) => {
                let nodes: usize = v
                    .parse()
                    .map_err(|_| ParseError(format!("invalid node count '{v}'")))?;
                if nodes == 0 {
                    return Err(ParseError("--backend needs at least one node".into()));
                }
                (n, nodes)
            }
            None => (s, 4),
        };
        match name {
            "auto" => Ok(BackendKind::Auto),
            "net" => Ok(BackendKind::Net { nodes }),
            "tcp" => Ok(BackendKind::Tcp { nodes }),
            other => Err(ParseError(format!("unknown backend '{other}'"))),
        }
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Processors.
    pub n: usize,
    /// Steps to simulate.
    pub steps: u64,
    /// Master seed.
    pub seed: u64,
    /// Strategy.
    pub strategy: StrategyKind,
    /// Generation model.
    pub model: ModelKind,
    /// Worker threads for the engine's per-processor sub-steps: 0 or 1
    /// run sequentially, more use a persistent worker pool. The report
    /// is bit-identical for every value.
    pub threads: usize,
    /// Execution backend; [`BackendKind::Auto`] preserves the historic
    /// `--threads` behaviour, `net`/`tcp` route every protocol message
    /// through the pcrlb-net runtime. The report is bit-identical for
    /// every choice.
    pub backend: BackendKind,
    /// Apply net-backend transfers in network arrival order instead of
    /// global emission order (`--net-relaxed`). Trades the bit-for-bit
    /// determinism contract for throughput; only meaningful with the
    /// `net`/`tcp` backends.
    pub net_relaxed: bool,
    /// Probability that any protocol message is lost in flight
    /// (0 disables the fault layer's loss channel).
    pub loss_rate: f64,
    /// Probability that a processor is down during any 64-step crash
    /// window (0 disables crashes).
    pub crash_rate: f64,
    /// Seed for the fault schedule; varying it re-rolls the faults
    /// while keeping the workload identical.
    pub fault_seed: u64,
    /// Open-loop traffic front-end; when set it replaces `--model` and
    /// the report grows the service-simulation block (sojourn
    /// percentiles, shed/defer counters).
    pub arrivals: Option<TrafficSpec>,
    /// Sojourn p999 target in steps; when set the report carries an
    /// explicit met/MISSED verdict line.
    pub slo_p999: Option<u64>,
    /// Partner-selection policy for the threshold balancer; `None`
    /// keeps the paper's collision protocol (byte-identical reports).
    pub policy: Option<PolicySpec>,
    /// Communication topology for the threshold balancer; `None` is
    /// the complete graph (byte-identical reports).
    pub topology: Option<TopologySpec>,
    /// Elastic-membership churn schedule; when set the report grows
    /// the membership block (epochs, evacuations, active extremes).
    pub churn: Option<ChurnSpec>,
}

impl RunSpec {
    /// The fault configuration this invocation asks for, or `None`
    /// when both fault rates are zero (a reliable run is exactly the
    /// historic fault-free code path).
    pub fn fault_config(&self) -> Option<FaultConfig> {
        if self.loss_rate <= 0.0 && self.crash_rate <= 0.0 {
            return None;
        }
        let mut cfg = FaultConfig::reliable().with_seed(self.fault_seed);
        if self.loss_rate > 0.0 {
            cfg = cfg.with_loss(self.loss_rate);
        }
        if self.crash_rate > 0.0 {
            cfg = cfg.with_crashes(self.crash_rate, 64);
        }
        Some(cfg)
    }
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            n: 1024,
            steps: 10_000,
            seed: 1998,
            strategy: StrategyKind::Threshold,
            model: ModelKind::Single { p: 0.4, q: 0.5 },
            threads: 1,
            backend: BackendKind::Auto,
            net_relaxed: false,
            loss_rate: 0.0,
            crash_rate: 0.0,
            fault_seed: 0,
            arrivals: None,
            slo_p999: None,
            policy: None,
            topology: None,
            churn: None,
        }
    }
}

/// A parse failure, with a message suitable for the terminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

/// The CLI usage text.
pub fn usage() -> String {
    let strategies: Vec<&str> = StrategyKind::ALL.iter().map(|(n, _)| *n).collect();
    format!(
        "usage: pcrlb [OPTIONS]\n\n\
         Simulate continuous randomized load balancing (SPAA 1998).\n\n\
         OPTIONS\n\
           --n N            processors (default 1024)\n\
           --steps N        steps to simulate (default 10000)\n\
           --seed N         master seed (default 1998)\n\
           --strategy S     one of: {}\n\
           --model M        single[:p,q] | geometric[:k] | multi\n\
           --threads N      worker threads (default 1 = sequential;\n\
                            >1 uses a persistent pool, same results)\n\
           --backend B      auto | net[:nodes] | tcp[:nodes]\n\
                            net/tcp run the message-passing runtime\n\
                            (default 4 nodes), same results\n\
           --net-relaxed    apply transfers in network arrival order\n\
                            instead of emission order (net/tcp only;\n\
                            trades determinism for throughput)\n\
           --loss-rate P    drop each protocol message w.p. P (default 0)\n\
           --crash-rate P   crash each processor per 64-step window\n\
                            w.p. P (default 0)\n\
           --fault-seed N   re-roll the fault schedule without changing\n\
                            the workload (default 0)\n\
           --arrivals A     open-loop traffic front-end (replaces --model):\n\
                            poisson[:rho] | burst:rho,on,off,mult |\n\
                            ramp:rho,period,amp | flash:rho,at,len,mult |\n\
                            zipf:rho,theta | selfsim:rho,H; append\n\
                            +shed:CAP or +defer:CAP for bounded\n\
                            admission\n\
           --slo-p999 T     assert the sojourn p999 target T (steps) in\n\
                            the report (requires --arrivals)\n\
           --policy P       partner-selection policy (threshold only):\n\
                            collision | greedy[:D] | beta[:B] |\n\
                            probe[:K] | left[:D]\n\
           --topology G     communication graph (threshold only):\n\
                            complete | ring | torus[:RxC] | hypercube |\n\
                            regular:D[,SEED]\n\
           --churn C        elastic-membership schedule, ';'-separated\n\
                            clauses: step:AT,TARGET |\n\
                            ramp:FROM,TO,START,LEN | valley:AT,LEN,FRAC |\n\
                            batch:PERIOD,K (same results on every\n\
                            backend)\n\
           --help           show this text\n",
        strategies.join(", ")
    )
}

/// Parses CLI arguments (without the program name). `Ok(None)` means
/// help was requested.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Option<RunSpec>, ParseError> {
    let mut spec = RunSpec::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| ParseError(format!("{name} requires a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--n" => {
                spec.n = value("--n")?
                    .parse()
                    .map_err(|_| ParseError("--n must be an integer".into()))?;
                if spec.n < 8 {
                    return Err(ParseError("--n must be at least 8".into()));
                }
            }
            "--steps" => {
                spec.steps = value("--steps")?
                    .parse()
                    .map_err(|_| ParseError("--steps must be an integer".into()))?;
            }
            "--seed" => {
                spec.seed = value("--seed")?
                    .parse()
                    .map_err(|_| ParseError("--seed must be an integer".into()))?;
            }
            "--strategy" => {
                let v = value("--strategy")?;
                spec.strategy = StrategyKind::parse(&v)
                    .ok_or_else(|| ParseError(format!("unknown strategy '{v}'")))?;
            }
            "--model" => {
                let v = value("--model")?;
                spec.model = parse_model(&v)?;
            }
            "--threads" => {
                spec.threads = value("--threads")?
                    .parse()
                    .map_err(|_| ParseError("--threads must be an integer".into()))?;
            }
            "--backend" => {
                spec.backend = BackendKind::parse(&value("--backend")?)?;
            }
            "--net-relaxed" => {
                spec.net_relaxed = true;
            }
            "--loss-rate" => {
                spec.loss_rate = value("--loss-rate")?
                    .parse()
                    .map_err(|_| ParseError("--loss-rate must be a number".into()))?;
                if !(0.0..1.0).contains(&spec.loss_rate) {
                    return Err(ParseError("--loss-rate must lie in [0, 1)".into()));
                }
            }
            "--crash-rate" => {
                spec.crash_rate = value("--crash-rate")?
                    .parse()
                    .map_err(|_| ParseError("--crash-rate must be a number".into()))?;
                if !(0.0..1.0).contains(&spec.crash_rate) {
                    return Err(ParseError("--crash-rate must lie in [0, 1)".into()));
                }
            }
            "--fault-seed" => {
                spec.fault_seed = value("--fault-seed")?
                    .parse()
                    .map_err(|_| ParseError("--fault-seed must be an integer".into()))?;
            }
            "--arrivals" => {
                let v = value("--arrivals")?;
                spec.arrivals =
                    Some(TrafficSpec::parse(&v).map_err(|e| ParseError(e.to_string()))?);
            }
            "--slo-p999" => {
                spec.slo_p999 = Some(
                    value("--slo-p999")?
                        .parse()
                        .map_err(|_| ParseError("--slo-p999 must be an integer".into()))?,
                );
            }
            "--policy" => {
                let v = value("--policy")?;
                spec.policy = Some(PolicySpec::parse(&v).map_err(ParseError)?);
            }
            "--topology" => {
                let v = value("--topology")?;
                spec.topology = Some(TopologySpec::parse(&v).map_err(ParseError)?);
            }
            "--churn" => {
                let v = value("--churn")?;
                spec.churn =
                    Some(ChurnSpec::parse(&v).map_err(|e| ParseError(format!("--churn: {e}")))?);
            }
            other => return Err(ParseError(format!("unknown option '{other}'"))),
        }
    }
    if spec.slo_p999.is_some() && spec.arrivals.is_none() {
        return Err(ParseError("--slo-p999 requires --arrivals".into()));
    }
    if spec.net_relaxed && spec.backend == BackendKind::Auto {
        return Err(ParseError(
            "--net-relaxed requires --backend net or tcp".into(),
        ));
    }
    if (spec.policy.is_some() || spec.topology.is_some())
        && spec.strategy != StrategyKind::Threshold
    {
        return Err(ParseError(
            "--policy/--topology require --strategy threshold".into(),
        ));
    }
    if let Some(topo) = &spec.topology {
        // Validate the graph against the final processor count here,
        // where both are known regardless of argument order.
        topo.build(spec.n)
            .map_err(|e| ParseError(format!("--topology: {e}")))?;
    }
    Ok(Some(spec))
}

fn parse_model(s: &str) -> Result<ModelKind, ParseError> {
    let (name, params) = match s.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (s, None),
    };
    match name {
        "single" => {
            let (p, q) = match params {
                None => (0.4, 0.5),
                Some(pq) => {
                    let (p, q) = pq
                        .split_once(',')
                        .ok_or_else(|| ParseError("single:p,q needs two values".into()))?;
                    (
                        p.parse().map_err(|_| ParseError("invalid p".into()))?,
                        q.parse().map_err(|_| ParseError("invalid q".into()))?,
                    )
                }
            };
            Single::new(p, q)
                .map_err(|e| ParseError(e.to_string()))
                .map(|m| ModelKind::Single { p: m.p, q: m.q })
        }
        "geometric" => {
            let k = match params {
                None => 2,
                Some(k) => k.parse().map_err(|_| ParseError("invalid k".into()))?,
            };
            Geometric::new(k)
                .map_err(|e| ParseError(e.to_string()))
                .map(|g| ModelKind::Geometric { k: g.k })
        }
        "multi" => Ok(ModelKind::Multi),
        other => Err(ParseError(format!("unknown model '{other}'"))),
    }
}

/// The report printed after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Largest max load observed at any step.
    pub worst_max_load: usize,
    /// Final max load.
    pub final_max_load: usize,
    /// Mean load per processor at the end.
    pub mean_load: f64,
    /// Tasks completed.
    pub completed: u64,
    /// Mean waiting time.
    pub mean_wait: f64,
    /// Fraction executed at their origin.
    pub locality: f64,
    /// Control messages per step.
    pub msgs_per_step: f64,
    /// The Theorem 1 bound for this `n`.
    pub theorem1_bound: usize,
    /// Fault-layer counters; `None` for reliable runs, so the printed
    /// report stays byte-identical to historic output when no fault
    /// flag is given.
    pub faults: Option<FaultSummary>,
    /// Service-simulation block; `None` unless `--arrivals` was given,
    /// so closed-loop reports stay byte-identical to historic output.
    pub service: Option<ServiceSummary>,
    /// Elastic-membership block; `None` unless `--churn` was given, so
    /// fixed-membership reports stay byte-identical to historic output.
    pub membership: Option<MembershipSummary>,
}

/// Elastic-membership counters surfaced in the CLI report when
/// `--churn` is given, taken from the [`MembershipProbe`].
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipSummary {
    /// Membership transitions (epoch bumps) over the run.
    pub epochs: u64,
    /// Tasks evacuated off departing processors.
    pub evacuated_tasks: u64,
    /// Processor departures summed over all transitions.
    pub departures: u64,
    /// Processor joins summed over all transitions.
    pub joins: u64,
    /// Smallest live-prefix size seen.
    pub min_active: usize,
    /// Largest live-prefix size seen.
    pub max_active: usize,
    /// Live-prefix size at the end of the run.
    pub final_active: usize,
}

/// Open-loop service metrics surfaced in the CLI report when
/// `--arrivals` is given: streaming sojourn percentiles from the
/// log-bucketed histogram plus the admission-policy counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSummary {
    /// Arrival-shape name (`poisson`, `burst`, ...).
    pub arrivals: &'static str,
    /// Offered load per processor.
    pub rho: f64,
    /// Tasks completed (histogram population).
    pub count: u64,
    /// Mean sojourn in steps.
    pub mean: f64,
    /// Median sojourn.
    pub p50: u64,
    /// 99th-percentile sojourn.
    pub p99: u64,
    /// 99.9th-percentile sojourn.
    pub p999: u64,
    /// Largest sojourn observed.
    pub pmax: u64,
    /// Tasks dropped at the front door (shed admission).
    pub shed: u64,
    /// Arrival-steps spent parked behind the front door (defer
    /// admission).
    pub deferred: u64,
    /// The `--slo-p999` target, if one was set.
    pub slo_p999: Option<u64>,
}

impl ServiceSummary {
    /// Whether the p999 target (if any) was met.
    pub fn slo_met(&self) -> Option<bool> {
        self.slo_p999.map(|t| self.p999 <= t)
    }
}

/// Fault-layer counters surfaced in the CLI report.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSummary {
    /// Control messages lost in flight over the run.
    pub dropped_messages: u64,
    /// Collision-game rounds that delivered no accept.
    pub wasted_rounds: u64,
    /// Heavy-processor search retries after failed phases.
    pub retries: u64,
    /// Crash transitions (alive → down) observed.
    pub crash_events: u64,
    /// Processor-steps spent down.
    pub crashed_steps: u64,
    /// Mean outage length in steps (0 when nothing recovered).
    pub mean_downtime: f64,
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "worst max load        = {}", self.worst_max_load)?;
        writeln!(f, "final max load        = {}", self.final_max_load)?;
        writeln!(f, "mean load / processor = {:.2}", self.mean_load)?;
        writeln!(f, "tasks completed       = {}", self.completed)?;
        writeln!(f, "mean waiting time     = {:.2}", self.mean_wait)?;
        writeln!(f, "locality              = {:.1}%", self.locality * 100.0)?;
        writeln!(f, "control msgs / step   = {:.2}", self.msgs_per_step)?;
        write!(f, "Theorem 1 bound T     = {}", self.theorem1_bound)?;
        if let Some(faults) = &self.faults {
            writeln!(f)?;
            writeln!(f, "messages dropped      = {}", faults.dropped_messages)?;
            writeln!(f, "wasted game rounds    = {}", faults.wasted_rounds)?;
            writeln!(f, "search retries        = {}", faults.retries)?;
            writeln!(f, "crash events          = {}", faults.crash_events)?;
            writeln!(f, "crashed proc-steps    = {}", faults.crashed_steps)?;
            write!(f, "mean downtime (steps) = {:.1}", faults.mean_downtime)?;
        }
        if let Some(svc) = &self.service {
            writeln!(f)?;
            writeln!(
                f,
                "arrivals              = {} (rho={:.2})",
                svc.arrivals, svc.rho
            )?;
            writeln!(f, "sojourn mean          = {:.2}", svc.mean)?;
            writeln!(
                f,
                "sojourn p50/p99/p999  = {} / {} / {}",
                svc.p50, svc.p99, svc.p999
            )?;
            writeln!(f, "sojourn max           = {}", svc.pmax)?;
            writeln!(f, "tasks shed            = {}", svc.shed)?;
            write!(f, "arrival-steps deferred = {}", svc.deferred)?;
            if let (Some(target), Some(met)) = (svc.slo_p999, svc.slo_met()) {
                writeln!(f)?;
                write!(
                    f,
                    "SLO p999 <= {:<6} steps: {}",
                    target,
                    if met { "met" } else { "MISSED" }
                )?;
            }
        }
        if let Some(m) = &self.membership {
            writeln!(f)?;
            writeln!(f, "membership epochs     = {}", m.epochs)?;
            writeln!(f, "departures / joins    = {} / {}", m.departures, m.joins)?;
            writeln!(f, "tasks evacuated       = {}", m.evacuated_tasks)?;
            write!(
                f,
                "active min/max/final  = {} / {} / {}",
                m.min_active, m.max_active, m.final_active
            )?;
        }
        Ok(())
    }
}

fn run_with<M: LoadModel + Sync, S: Strategy>(spec: &RunSpec, model: M, strategy: S) -> RunReport {
    let backend = match spec.backend {
        BackendKind::Auto if spec.threads > 1 => Backend::Pooled(spec.threads),
        BackendKind::Auto => Backend::Sequential,
        BackendKind::Net { nodes } => Backend::Net {
            nodes,
            tcp: false,
            relaxed: spec.net_relaxed,
        },
        BackendKind::Tcp { nodes } => Backend::Net {
            nodes,
            tcp: true,
            relaxed: spec.net_relaxed,
        },
    };
    let mut runner = Runner::new(spec.n, spec.seed)
        .model(model)
        .strategy(strategy)
        .backend(backend)
        .probe(MaxLoadProbe::new());
    if spec.arrivals.is_some() {
        runner = runner.probe(SojournProbe::new());
    }
    if let Some(faults) = spec.fault_config() {
        runner = runner.faults(faults).probe(FaultProbe::new());
    }
    if let Some(churn) = &spec.churn {
        runner = runner.churn(churn.clone()).probe(MembershipProbe::new());
    }
    let report = runner.run(spec.steps);
    let faults = report.probe("faults").and_then(|output| match *output {
        ProbeOutput::Faults {
            dropped_messages,
            wasted_rounds,
            retries,
            crash_events,
            crashed_steps,
            mean_downtime,
            ..
        } => Some(FaultSummary {
            dropped_messages,
            wasted_rounds,
            retries,
            crash_events,
            crashed_steps,
            mean_downtime,
        }),
        _ => None,
    });
    let service = spec.arrivals.as_ref().and_then(|traffic| {
        let arrivals = match traffic.arrivals {
            Arrivals::Poisson => "poisson",
            Arrivals::Burst { .. } => "burst",
            Arrivals::Ramp { .. } => "ramp",
            Arrivals::Flash { .. } => "flash",
            Arrivals::Zipf { .. } => "zipf",
            Arrivals::SelfSim { .. } => "selfsim",
        };
        report.probe("sojourn").and_then(|output| match *output {
            ProbeOutput::Sojourn {
                count,
                mean,
                p50,
                p99,
                p999,
                pmax,
                shed,
                deferred,
            } => Some(ServiceSummary {
                arrivals,
                rho: traffic.rho,
                count,
                mean,
                p50,
                p99,
                p999,
                pmax,
                shed,
                deferred,
                slo_p999: spec.slo_p999,
            }),
            _ => None,
        })
    });
    let membership = if spec.churn.is_some() {
        report.probe("membership").and_then(|output| match *output {
            ProbeOutput::Membership {
                epochs,
                evacuated_tasks,
                departures,
                joins,
                min_active,
                max_active,
                final_active,
            } => Some(MembershipSummary {
                epochs,
                evacuated_tasks,
                departures,
                joins,
                min_active,
                max_active,
                final_active,
            }),
            _ => None,
        })
    } else {
        None
    };
    RunReport {
        worst_max_load: report.worst_max_load().unwrap_or(0),
        final_max_load: report.max_load,
        mean_load: report.total_load as f64 / spec.n as f64,
        completed: report.completions.count,
        mean_wait: report.completions.sojourn_mean(),
        locality: report.completions.locality(),
        msgs_per_step: report.messages.control_total() as f64 / spec.steps.max(1) as f64,
        theorem1_bound: BalancerConfig::paper(spec.n).theorem1_bound(),
        faults,
        service,
        membership,
    }
}

fn run_strategy<M: LoadModel + Sync>(spec: &RunSpec, model: M) -> RunReport {
    let n = spec.n;
    let t = BalancerConfig::paper(n).theorem1_bound();
    match spec.strategy {
        StrategyKind::Threshold => {
            // Under faults the balancer backs off failed searches so a
            // lossy phase is not retried at full message cost forever.
            let mut cfg = BalancerConfig::paper(n);
            if spec.fault_config().is_some() {
                cfg = cfg.with_retry_backoff(8);
            }
            let mut balancer = ThresholdBalancer::new(cfg);
            if let Some(topo) = &spec.topology {
                balancer = balancer.with_topology(topo.build(n).expect("validated at parse time"));
            }
            if let Some(policy) = &spec.policy {
                balancer = balancer.with_policy_spec(policy);
            }
            run_with(spec, model, balancer)
        }
        StrategyKind::Unbalanced => run_with(spec, model, Unbalanced),
        StrategyKind::Scatter => run_with(spec, model, ScatterBalancer::paper(n)),
        StrategyKind::TwoChoice => run_with(spec, model, DChoiceAllocation::new(2)),
        StrategyKind::Rsu => run_with(spec, model, RsuEqualize::classic()),
        StrategyKind::LulingMonien => run_with(spec, model, LulingMonien::new(n, 2)),
        StrategyKind::Lauer => run_with(spec, model, LauerAverage::new(0.5)),
        StrategyKind::Seeking => run_with(spec, model, RandomSeeking::new(t / 2, t / 16 + 1, 4)),
    }
}

/// Executes a parsed invocation and returns the report.
pub fn execute(spec: &RunSpec) -> RunReport {
    if let Some(traffic) = spec.arrivals {
        let model = TrafficModel::new(traffic, spec.n).expect("validated at parse time");
        return run_strategy(spec, model);
    }
    match spec.model {
        ModelKind::Single { p, q } => {
            run_strategy(spec, Single::new(p, q).expect("validated at parse time"))
        }
        ModelKind::Geometric { k } => {
            run_strategy(spec, Geometric::new(k).expect("validated at parse time"))
        }
        ModelKind::Multi => run_strategy(
            spec,
            Multi::new(vec![0.25, 0.15, 0.05]).expect("static distribution"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn default_invocation() {
        let spec = parse(args("")).unwrap().unwrap();
        assert_eq!(spec, RunSpec::default());
    }

    #[test]
    fn full_invocation() {
        let spec = parse(args(
            "--n 256 --steps 500 --seed 7 --strategy scatter --model geometric:3",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(spec.n, 256);
        assert_eq!(spec.steps, 500);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.strategy, StrategyKind::Scatter);
        assert_eq!(spec.model, ModelKind::Geometric { k: 3 });
    }

    #[test]
    fn help_returns_none() {
        assert_eq!(parse(args("--help")).unwrap(), None);
        assert!(usage().contains("--strategy"));
    }

    #[test]
    fn parse_errors_are_informative() {
        assert!(parse(args("--n"))
            .unwrap_err()
            .0
            .contains("requires a value"));
        assert!(parse(args("--n four")).unwrap_err().0.contains("integer"));
        assert!(parse(args("--n 2")).unwrap_err().0.contains("at least 8"));
        assert!(parse(args("--strategy warp"))
            .unwrap_err()
            .0
            .contains("unknown strategy"));
        assert!(parse(args("--model fancy"))
            .unwrap_err()
            .0
            .contains("unknown model"));
        assert!(parse(args("--frobnicate"))
            .unwrap_err()
            .0
            .contains("unknown option"));
        // Model validation happens at parse time.
        assert!(parse(args("--model single:0.5,0.4")).is_err());
    }

    #[test]
    fn model_parsing_variants() {
        assert_eq!(
            parse_model("single").unwrap(),
            ModelKind::Single { p: 0.4, q: 0.5 }
        );
        assert_eq!(
            parse_model("single:0.2,0.3").unwrap(),
            ModelKind::Single { p: 0.2, q: 0.3 }
        );
        assert_eq!(
            parse_model("geometric").unwrap(),
            ModelKind::Geometric { k: 2 }
        );
        assert_eq!(parse_model("multi").unwrap(), ModelKind::Multi);
    }

    #[test]
    fn threads_flag_parses_and_defaults_to_one() {
        assert_eq!(parse(args("")).unwrap().unwrap().threads, 1);
        assert_eq!(parse(args("--threads 4")).unwrap().unwrap().threads, 4);
        assert!(parse(args("--threads four"))
            .unwrap_err()
            .0
            .contains("integer"));
    }

    #[test]
    fn threads_do_not_change_the_report() {
        // The printed report must be independent of --threads: the pool
        // backend is bit-identical to the sequential engine.
        let base = RunSpec {
            n: 64,
            steps: 200,
            seed: 5,
            ..RunSpec::default()
        };
        let sequential = execute(&base);
        for threads in [2, 4] {
            let spec = RunSpec {
                threads,
                ..base.clone()
            };
            assert_eq!(execute(&spec), sequential, "threads={threads}");
        }
    }

    #[test]
    fn backend_flag_parses_and_validates() {
        assert_eq!(parse(args("")).unwrap().unwrap().backend, BackendKind::Auto);
        assert_eq!(
            parse(args("--backend net")).unwrap().unwrap().backend,
            BackendKind::Net { nodes: 4 }
        );
        assert_eq!(
            parse(args("--backend net:2")).unwrap().unwrap().backend,
            BackendKind::Net { nodes: 2 }
        );
        assert_eq!(
            parse(args("--backend tcp:3")).unwrap().unwrap().backend,
            BackendKind::Tcp { nodes: 3 }
        );
        assert!(parse(args("--backend warp"))
            .unwrap_err()
            .0
            .contains("unknown backend"));
        assert!(parse(args("--backend net:0"))
            .unwrap_err()
            .0
            .contains("at least one node"));
        assert!(parse(args("--backend net:x"))
            .unwrap_err()
            .0
            .contains("invalid node count"));
        assert!(usage().contains("--backend"));
    }

    #[test]
    fn net_relaxed_flag_parses_and_requires_a_net_backend() {
        assert!(!parse(args("")).unwrap().unwrap().net_relaxed);
        let spec = parse(args("--backend net:2 --net-relaxed"))
            .unwrap()
            .unwrap();
        assert!(spec.net_relaxed);
        let spec = parse(args("--net-relaxed --backend tcp")).unwrap().unwrap();
        assert!(spec.net_relaxed);
        assert!(parse(args("--net-relaxed"))
            .unwrap_err()
            .0
            .contains("requires --backend net or tcp"));
        assert!(usage().contains("--net-relaxed"));
    }

    #[test]
    fn relaxed_loopback_run_completes() {
        // Relaxed mode gives up the bit-for-bit contract, not
        // correctness: the run must still complete and conserve work.
        let strict = execute(&RunSpec {
            n: 64,
            steps: 200,
            seed: 5,
            backend: BackendKind::Net { nodes: 4 },
            ..RunSpec::default()
        });
        let relaxed = execute(&RunSpec {
            n: 64,
            steps: 200,
            seed: 5,
            backend: BackendKind::Net { nodes: 4 },
            net_relaxed: true,
            ..RunSpec::default()
        });
        assert!(relaxed.completed > 0);
        // Task conservation is ordering-independent: every generated
        // task completes or sits in some queue either way.
        assert_eq!(relaxed.completed, strict.completed);
    }

    #[test]
    fn net_backend_does_not_change_the_report() {
        let base = RunSpec {
            n: 64,
            steps: 200,
            seed: 5,
            ..RunSpec::default()
        };
        let sequential = execute(&base);
        for nodes in [1, 2, 4] {
            let spec = RunSpec {
                backend: BackendKind::Net { nodes },
                ..base.clone()
            };
            assert_eq!(execute(&spec), sequential, "nodes={nodes}");
        }
    }

    #[test]
    fn fault_flags_parse_and_validate() {
        let spec = parse(args("--loss-rate 0.05 --crash-rate 0.01 --fault-seed 9"))
            .unwrap()
            .unwrap();
        assert_eq!(spec.loss_rate, 0.05);
        assert_eq!(spec.crash_rate, 0.01);
        assert_eq!(spec.fault_seed, 9);
        let cfg = spec.fault_config().unwrap();
        assert_eq!(cfg.loss_rate, 0.05);
        assert_eq!(cfg.crash_rate, 0.01);
        assert_eq!(cfg.fault_seed, 9);
        assert!(parse(args("--loss-rate 1.0"))
            .unwrap_err()
            .0
            .contains("[0, 1)"));
        assert!(parse(args("--crash-rate -0.5"))
            .unwrap_err()
            .0
            .contains("[0, 1)"));
        assert!(usage().contains("--loss-rate"));
    }

    #[test]
    fn reliable_spec_has_no_fault_config_and_no_fault_lines() {
        let spec = parse(args("")).unwrap().unwrap();
        assert_eq!(spec.fault_config(), None);
        let report = execute(&RunSpec {
            n: 64,
            steps: 200,
            ..RunSpec::default()
        });
        assert_eq!(report.faults, None);
        assert!(!report.to_string().contains("messages dropped"));
    }

    #[test]
    fn faulty_run_reports_fault_lines_and_is_thread_independent() {
        let base = RunSpec {
            n: 64,
            steps: 400,
            seed: 11,
            loss_rate: 0.05,
            crash_rate: 0.02,
            fault_seed: 3,
            ..RunSpec::default()
        };
        let sequential = execute(&base);
        let faults = sequential.faults.clone().expect("fault summary present");
        assert!(faults.dropped_messages > 0, "5% loss should drop something");
        let text = sequential.to_string();
        assert!(text.contains("messages dropped"));
        assert!(text.contains("crash events"));
        for threads in [2, 4] {
            let spec = RunSpec {
                threads,
                ..base.clone()
            };
            assert_eq!(execute(&spec), sequential, "threads={threads}");
        }
    }

    #[test]
    fn every_strategy_executes() {
        for (name, kind) in StrategyKind::ALL {
            let spec = RunSpec {
                n: 64,
                steps: 100,
                seed: 3,
                strategy: kind,
                model: ModelKind::Single { p: 0.4, q: 0.5 },
                ..RunSpec::default()
            };
            let report = execute(&spec);
            assert!(report.completed > 0, "strategy {name} completed no tasks");
            // Report displays without panicking and mentions the bound.
            let text = report.to_string();
            assert!(text.contains("Theorem 1"), "{name}");
        }
    }

    #[test]
    fn arrivals_flag_parses_and_validates() {
        assert_eq!(parse(args("")).unwrap().unwrap().arrivals, None);
        let spec = parse(args("--arrivals poisson:0.9")).unwrap().unwrap();
        assert_eq!(spec.arrivals, Some(TrafficSpec::poisson(0.9)));
        let spec = parse(args("--arrivals burst:0.7,8,24,3+shed:16 --slo-p999 50"))
            .unwrap()
            .unwrap();
        assert_eq!(spec.slo_p999, Some(50));
        assert!(matches!(
            spec.arrivals.unwrap().arrivals,
            Arrivals::Burst { .. }
        ));
        assert!(parse(args("--arrivals warp:1"))
            .unwrap_err()
            .0
            .contains("cannot parse"));
        assert!(parse(args("--arrivals poisson:-1"))
            .unwrap_err()
            .0
            .contains("rho"));
        assert!(parse(args("--slo-p999 50"))
            .unwrap_err()
            .0
            .contains("requires --arrivals"));
        assert!(usage().contains("--arrivals"));
        assert!(usage().contains("--slo-p999"));
    }

    #[test]
    fn closed_loop_reports_have_no_service_lines() {
        let report = execute(&RunSpec {
            n: 64,
            steps: 200,
            ..RunSpec::default()
        });
        assert_eq!(report.service, None);
        assert!(!report.to_string().contains("sojourn p50"));
    }

    #[test]
    fn open_loop_report_prints_service_block_and_is_thread_independent() {
        let base = RunSpec {
            n: 64,
            steps: 400,
            seed: 21,
            arrivals: Some(TrafficSpec::poisson(0.8)),
            slo_p999: Some(200),
            ..RunSpec::default()
        };
        let sequential = execute(&base);
        let svc = sequential.service.clone().expect("service block present");
        assert!(svc.count > 0, "open-loop run completed no tasks");
        assert!(svc.p50 <= svc.p99 && svc.p99 <= svc.p999 && svc.p999 <= svc.pmax);
        assert_eq!(svc.slo_met(), Some(svc.p999 <= 200));
        let text = sequential.to_string();
        assert!(text.contains("arrivals              = poisson (rho=0.80)"));
        assert!(text.contains("sojourn p50/p99/p999"));
        assert!(text.contains("SLO p999 <="));
        // The service block is bit-identical across backends too.
        for threads in [2, 4] {
            let spec = RunSpec {
                threads,
                ..base.clone()
            };
            assert_eq!(execute(&spec), sequential, "threads={threads}");
        }
    }

    #[test]
    fn shed_admission_surfaces_in_the_report() {
        let spec = RunSpec {
            n: 64,
            steps: 300,
            seed: 9,
            strategy: StrategyKind::Unbalanced,
            arrivals: Some(TrafficSpec::poisson(1.5).with_shed(4)),
            ..RunSpec::default()
        };
        let report = execute(&spec);
        let svc = report.service.as_ref().expect("service block present");
        assert!(svc.shed > 0, "rho=1.5 behind cap 4 must shed");
        assert!(report.to_string().contains("tasks shed"));
    }

    #[test]
    fn churn_flag_parses_and_validates() {
        assert_eq!(parse(args("")).unwrap().unwrap().churn, None);
        let spec = parse(args("--churn step:100,32")).unwrap().unwrap();
        assert_eq!(spec.churn, Some(ChurnSpec::parse("step:100,32").unwrap()));
        assert!(parse(args("--churn step:100"))
            .unwrap_err()
            .0
            .contains("--churn"));
        assert!(parse(args("--churn warp:1,2"))
            .unwrap_err()
            .0
            .contains("--churn"));
        assert!(usage().contains("--churn"));
    }

    #[test]
    fn fixed_membership_reports_have_no_membership_lines() {
        let report = execute(&RunSpec {
            n: 64,
            steps: 200,
            ..RunSpec::default()
        });
        assert_eq!(report.membership, None);
        assert!(!report.to_string().contains("membership epochs"));
    }

    #[test]
    fn churn_report_prints_membership_block_and_is_backend_independent() {
        let base = RunSpec {
            n: 64,
            steps: 300,
            seed: 17,
            churn: Some(ChurnSpec::parse("step:50,32;ramp:32,64,150,100").unwrap()),
            ..RunSpec::default()
        };
        let sequential = execute(&base);
        let m = sequential.membership.clone().expect("membership block");
        assert!(m.epochs > 0, "churn schedule must transition");
        assert_eq!(m.min_active, 32);
        assert_eq!(m.max_active, 64);
        assert_eq!(m.final_active, 64);
        assert!(m.departures >= 32 && m.joins >= 32);
        let text = sequential.to_string();
        assert!(text.contains("membership epochs"));
        assert!(text.contains("active min/max/final  = 32 / 64 / 64"));
        for threads in [2, 4] {
            let spec = RunSpec {
                threads,
                ..base.clone()
            };
            assert_eq!(execute(&spec), sequential, "threads={threads}");
        }
        let net = RunSpec {
            backend: BackendKind::Net { nodes: 2 },
            ..base.clone()
        };
        assert_eq!(execute(&net), sequential, "net:2");
    }

    #[test]
    fn execute_all_models() {
        for model in [
            ModelKind::Single { p: 0.4, q: 0.5 },
            ModelKind::Geometric { k: 2 },
            ModelKind::Multi,
        ] {
            let spec = RunSpec {
                n: 64,
                steps: 100,
                model,
                ..RunSpec::default()
            };
            assert!(execute(&spec).completed > 0);
        }
    }
}
