//! Mahapatra–Dutt random seeking (IPPS 1996).
//!
//! "Random seeking: a general, efficient, and informed randomized scheme
//! for dynamic load balancing": *source* processors (load above a source
//! threshold) fling probe messages that walk processors chosen i.u.a.r.
//! until they hit a *sink* (load below a sink threshold) or exhaust
//! their hop budget. The probe carries load information back, and the
//! source ships half its surplus to the sink it allocated.

use pcrlb_sim::{MessageKind, Strategy, World};

/// Statistics of the random-seeking strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeekingStats {
    /// Probes launched.
    pub probes_launched: u64,
    /// Probes that found a sink.
    pub sinks_found: u64,
    /// Total hops walked by all probes (MD96 bound the expected number
    /// of visits per probe).
    pub hops: u64,
}

/// MD96 random seeking.
pub struct RandomSeeking {
    /// A processor with at least this load is a source.
    source_threshold: usize,
    /// A processor with at most this load is a sink.
    sink_threshold: usize,
    /// Maximum processors one probe may visit.
    max_hops: usize,
    stats: SeekingStats,
}

impl RandomSeeking {
    /// Creates the strategy. Requires `sink_threshold < source_threshold`
    /// and a positive hop budget.
    pub fn new(source_threshold: usize, sink_threshold: usize, max_hops: usize) -> Self {
        assert!(
            sink_threshold < source_threshold,
            "sink threshold must lie below source threshold"
        );
        assert!(max_hops >= 1, "probes need at least one hop");
        RandomSeeking {
            source_threshold,
            sink_threshold,
            max_hops,
            stats: SeekingStats::default(),
        }
    }

    /// Run statistics.
    pub fn stats(&self) -> &SeekingStats {
        &self.stats
    }
}

impl Strategy for RandomSeeking {
    fn on_step(&mut self, world: &mut World) {
        let n = world.n();
        for p in 0..n {
            if world.load(p) < self.source_threshold {
                continue;
            }
            self.stats.probes_launched += 1;
            // The probe walks i.u.a.r. processors; every hop is one
            // probe message plus one load reply.
            let mut sink = None;
            for _ in 0..self.max_hops {
                let mut cur = world.rng_of(p).below(n);
                if cur == p {
                    cur = (cur + 1) % n;
                }
                self.stats.hops += 1;
                let ledger = world.ledger_mut();
                ledger.record(MessageKind::Probe, 1);
                ledger.record(MessageKind::LoadReply, 1);
                if world.load(cur) <= self.sink_threshold {
                    sink = Some(cur);
                    break;
                }
            }
            if let Some(s) = sink {
                self.stats.sinks_found += 1;
                let surplus = world.load(p).saturating_sub(self.sink_threshold);
                let give = surplus / 2;
                if give > 0 {
                    world.transfer(p, s, give);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "random-seeking"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcrlb_sim::{Engine, LoadModel, ProcId, SimRng, Step};

    #[derive(Clone, Copy)]
    struct M;
    impl LoadModel for M {
        fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.4))
        }
        fn consume(&self, _: ProcId, _: Step, load: usize, rng: &mut SimRng) -> usize {
            usize::from(load > 0 && rng.chance(0.5))
        }
    }

    #[test]
    fn sources_drain_toward_sinks() {
        let n = 128;
        let mut e = Engine::new(n, 1, M, RandomSeeking::new(16, 2, 4));
        e.world_mut().inject(0, 400);
        e.run(200);
        assert!(
            e.world().max_load() < 200,
            "source never drained: {}",
            e.world().max_load()
        );
        let s = e.strategy().stats();
        assert!(s.sinks_found > 0);
        assert!(s.hops >= s.probes_launched);
    }

    #[test]
    fn no_probes_when_under_threshold() {
        let n = 64;
        let mut e = Engine::new(n, 2, M, RandomSeeking::new(1000, 2, 4));
        e.run(300);
        assert_eq!(e.strategy().stats().probes_launched, 0);
        assert_eq!(e.world().messages().probes, 0);
    }

    #[test]
    fn hop_budget_respected() {
        let n = 32;
        let max_hops = 3;
        let mut e = Engine::new(n, 3, M, RandomSeeking::new(8, 0, max_hops));
        // With sink threshold 0, sinks are rare: probes walk long.
        e.world_mut().inject(0, 100);
        e.run(50);
        let s = *e.strategy().stats();
        assert!(s.hops <= s.probes_launched * max_hops as u64);
    }

    #[test]
    fn most_probes_find_sinks_when_sinks_abound() {
        // MD96's headline: with plentiful sinks, probes allocate in
        // O(1) expected visits.
        let n = 256;
        let mut e = Engine::new(n, 4, M, RandomSeeking::new(16, 4, 8));
        e.world_mut().inject(0, 500);
        e.run(100);
        let s = *e.strategy().stats();
        assert!(s.probes_launched > 0);
        let hit_rate = s.sinks_found as f64 / s.probes_launched as f64;
        assert!(hit_rate > 0.9, "sink hit rate {hit_rate} too low");
        let visits = s.hops as f64 / s.probes_launched as f64;
        assert!(visits < 2.0, "expected ~1 visit per probe, got {visits}");
    }

    #[test]
    #[should_panic(expected = "sink threshold")]
    fn inverted_thresholds_panic() {
        RandomSeeking::new(4, 8, 2);
    }

    #[test]
    #[should_panic(expected = "hop")]
    fn zero_hops_panics() {
        RandomSeeking::new(8, 4, 0);
    }
}
