//! Rudolph–Slivkin-Allalouf–Upfal (SPAA 1991) pairwise equalization.
//!
//! "A simple load balancing scheme for task allocation in parallel
//! machines": at every step every processor contacts one partner chosen
//! i.u.a.r. and the pair equalizes its load. RSU show the expected load
//! of any processor stays within a constant factor of the average.
//!
//! We follow the common frequency refinement (also used in RSU's own
//! analysis): a processor initiates with probability `1/load`, so busy
//! processors balance rarely and the amortized message cost stays low —
//! or, with `always_probe = true`, every processor probes every step,
//! which is the simplest variant and the upper envelope for cost.

use pcrlb_sim::{MessageKind, Strategy, World};

/// RSU91 pairwise equalization.
pub struct RsuEqualize {
    /// Minimum load difference that triggers an actual transfer.
    threshold: usize,
    /// When false, processor `p` initiates with probability
    /// `1/(load(p)+1)` (the inverse-load frequency rule); when true it
    /// probes every step.
    always_probe: bool,
}

impl RsuEqualize {
    /// Creates the strategy; transfers fire when the pair's load
    /// difference exceeds `threshold` (≥ 1 avoids ping-ponging a single
    /// task).
    pub fn new(threshold: usize, always_probe: bool) -> Self {
        assert!(threshold >= 1, "threshold must be at least 1");
        RsuEqualize {
            threshold,
            always_probe,
        }
    }

    /// The textbook variant: probe every step, equalize any difference
    /// above 1.
    pub fn classic() -> Self {
        RsuEqualize::new(1, true)
    }
}

impl Strategy for RsuEqualize {
    fn on_step(&mut self, world: &mut World) {
        let n = world.n();
        for p in 0..n {
            if !self.always_probe {
                let load = world.load(p);
                let prob = 1.0 / (load as f64 + 1.0);
                if !world.rng_of(p).chance(prob) {
                    continue;
                }
            }
            let mut j = world.rng_of(p).below(n);
            if j == p {
                j = (j + 1) % n;
            }
            let ledger = world.ledger_mut();
            ledger.record(MessageKind::Probe, 1);
            ledger.record(MessageKind::LoadReply, 1);
            let (lp, lj) = (world.load(p), world.load(j));
            let diff = lp.abs_diff(lj);
            if diff > self.threshold {
                let (from, to) = if lp > lj { (p, j) } else { (j, p) };
                world.transfer(from, to, diff / 2);
            }
        }
    }

    fn name(&self) -> &'static str {
        "rsu-equalize"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcrlb_sim::{Engine, LoadModel, ProcId, SimRng, Step, Unbalanced};

    #[derive(Clone, Copy)]
    struct M;
    impl LoadModel for M {
        fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.4))
        }
        fn consume(&self, _: ProcId, _: Step, load: usize, rng: &mut SimRng) -> usize {
            usize::from(load > 0 && rng.chance(0.5))
        }
    }

    #[test]
    fn equalization_keeps_loads_near_average() {
        let n = 256;
        let mut e = Engine::new(n, 1, M, RsuEqualize::classic());
        e.run(2000);
        let avg = e.world().total_load() as f64 / n as f64;
        let max = e.world().max_load() as f64;
        assert!(
            max <= 4.0 * avg + 4.0,
            "max {max} should be within a constant factor of avg {avg}"
        );
    }

    #[test]
    fn classic_probes_every_processor_every_step() {
        let n = 64;
        let steps = 100;
        let mut e = Engine::new(n, 2, M, RsuEqualize::classic());
        e.run(steps);
        assert_eq!(e.world().messages().probes, (n as u64) * steps);
    }

    #[test]
    fn inverse_load_frequency_probes_less() {
        let n = 64;
        let steps = 200;
        let mut cheap = Engine::new(n, 3, M, RsuEqualize::new(1, false));
        let mut full = Engine::new(n, 3, M, RsuEqualize::classic());
        cheap.run(steps);
        full.run(steps);
        assert!(
            cheap.world().messages().probes < full.world().messages().probes,
            "frequency rule should reduce probing"
        );
    }

    #[test]
    fn flattens_spike_quickly() {
        let n = 128;
        let mut e = Engine::new(n, 4, M, RsuEqualize::classic());
        e.world_mut().inject(0, 1 << 10);
        e.run(60);
        // Pairwise halving spreads exponentially fast.
        let unbalanced_drain = {
            let mut u = Engine::new(n, 4, M, Unbalanced);
            u.world_mut().inject(0, 1 << 10);
            u.run(60);
            u.world().max_load()
        };
        assert!(e.world().max_load() * 4 < unbalanced_drain);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_panics() {
        RsuEqualize::new(0, true);
    }
}
