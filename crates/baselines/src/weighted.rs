//! Weighted balls-into-bins: the Berenbrink–Meyer auf der Heide–Schröder
//! extension (SPAA 1997, "\[BMS97\]" in the paper's related work).
//!
//! Balls carry weights; the trivially optimal max load is
//! `max(W_total/n, w_max)`. BMS97 achieve
//! `≈ (m/n)·W_A + W_M` (average per bin plus one maximum weight) with a
//! parallel protocol whose quality depends on the uniformity
//! `δ = W_A / W_M`, and the number of balls need not be known in
//! advance.
//!
//! Implemented here:
//!
//! * [`weighted_one_choice`] — each ball i.u.a.r.;
//! * [`weighted_greedy_d`] — sequential `d`-choice on *weighted* loads,
//!   in arrival order or heaviest-first (the classic scheduling trick;
//!   heaviest-first is what BMS97's class layering emulates in
//!   parallel);
//! * [`weighted_class_parallel`] — the BMS97-style protocol: balls are
//!   layered into weight classes by powers of two, classes allocated
//!   heaviest class first, each class placed with a collision-style
//!   parallel round (2 candidate bins, least weighted-load wins).

use pcrlb_sim::SimRng;

/// Result of a weighted allocation game.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedOutcome {
    /// Final per-bin total weight.
    pub loads: Vec<f64>,
    /// Messages spent.
    pub messages: u64,
    /// Parallel rounds used (1 for sequential games).
    pub rounds: u32,
}

impl WeightedOutcome {
    /// Maximum bin weight.
    pub fn max_load(&self) -> f64 {
        self.loads.iter().copied().fold(0.0, f64::max)
    }

    /// The trivial lower bound `max(W_total/n, w_max)` for the weight
    /// set this outcome allocated.
    pub fn lower_bound(weights: &[f64], n: usize) -> f64 {
        let total: f64 = weights.iter().sum();
        let w_max = weights.iter().copied().fold(0.0, f64::max);
        (total / n as f64).max(w_max)
    }
}

/// Ball processing order for the sequential games.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BallOrder {
    /// As given (an online arrival order).
    Arrival,
    /// Heaviest ball first (offline; the order BMS97's weight classes
    /// approximate in parallel).
    HeaviestFirst,
}

fn validate(n: usize, weights: &[f64]) {
    assert!(n > 0, "need at least one bin");
    assert!(
        weights.iter().all(|w| *w >= 0.0 && w.is_finite()),
        "weights must be finite and non-negative"
    );
}

/// One-choice with weights: each ball lands i.u.a.r.
pub fn weighted_one_choice(n: usize, weights: &[f64], rng: &mut SimRng) -> WeightedOutcome {
    validate(n, weights);
    let mut loads = vec![0.0f64; n];
    for &w in weights {
        loads[rng.below(n)] += w;
    }
    WeightedOutcome {
        loads,
        messages: weights.len() as u64,
        rounds: 1,
    }
}

/// Sequential `d`-choice on weighted loads.
pub fn weighted_greedy_d(
    n: usize,
    weights: &[f64],
    d: usize,
    order: BallOrder,
    rng: &mut SimRng,
) -> WeightedOutcome {
    validate(n, weights);
    assert!(d >= 1, "need at least one choice");
    let mut idx: Vec<usize> = (0..weights.len()).collect();
    if order == BallOrder::HeaviestFirst {
        idx.sort_by(|&a, &b| {
            weights[b]
                .partial_cmp(&weights[a])
                .expect("weights are finite")
        });
    }
    let mut loads = vec![0.0f64; n];
    for &ball in &idx {
        let mut best = rng.below(n);
        for _ in 1..d {
            let cand = rng.below(n);
            if loads[cand] < loads[best] {
                best = cand;
            }
        }
        loads[best] += weights[ball];
    }
    WeightedOutcome {
        loads,
        messages: weights.len() as u64 * (2 * d as u64 + 1),
        rounds: 1,
    }
}

/// BMS97-style parallel allocation by weight classes.
///
/// Balls are grouped into classes `[2^k·w_min, 2^{k+1}·w_min)`;
/// classes are allocated heaviest first; within a class every ball
/// probes two bins i.u.a.r. *simultaneously* (one parallel round per
/// class) and commits to the bin with the smaller weighted load at
/// probe time — ties and races resolved bin-side in arrival order,
/// which the shuffle randomizes. `m` need not be known in advance:
/// classes are discovered from the weights themselves.
pub fn weighted_class_parallel(n: usize, weights: &[f64], rng: &mut SimRng) -> WeightedOutcome {
    validate(n, weights);
    let mut loads = vec![0.0f64; n];
    if weights.is_empty() {
        return WeightedOutcome {
            loads,
            messages: 0,
            rounds: 0,
        };
    }
    let w_min = weights
        .iter()
        .copied()
        .filter(|w| *w > 0.0)
        .fold(f64::INFINITY, f64::min);
    if !w_min.is_finite() {
        // All weights are zero: nothing to place.
        return WeightedOutcome {
            loads,
            messages: 0,
            rounds: 0,
        };
    }

    // Layer into classes by log2(weight / w_min).
    let class_of = |w: f64| -> usize {
        if w <= 0.0 {
            0
        } else {
            (w / w_min).log2().floor().max(0.0) as usize
        }
    };
    let max_class = weights.iter().map(|&w| class_of(w)).max().unwrap_or(0);
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); max_class + 1];
    for (i, &w) in weights.iter().enumerate() {
        classes[class_of(w)].push(i);
    }

    let mut messages = 0u64;
    let mut rounds = 0u32;
    // Heaviest class first.
    for class in classes.iter().rev() {
        if class.is_empty() {
            continue;
        }
        rounds += 1;
        // Simultaneous probes: decisions are made against the loads at
        // the *start* of the round (the snapshot), commits apply as
        // they land — the standard way a one-round parallel protocol
        // behaves under bin-side serialization.
        let snapshot = loads.clone();
        let mut order: Vec<usize> = class.clone();
        rng.shuffle(&mut order);
        for &ball in &order {
            let b1 = rng.below(n);
            let mut b2 = rng.below(n);
            if n > 1 {
                while b2 == b1 {
                    b2 = rng.below(n);
                }
            }
            messages += 3; // two probes + one commit
            let best = if snapshot[b1] <= snapshot[b2] { b1 } else { b2 };
            loads[best] += weights[ball];
        }
    }
    WeightedOutcome {
        loads,
        messages,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_weights(m: usize, rng: &mut SimRng) -> Vec<f64> {
        // Pareto-ish: a few heavy balls dominate.
        (0..m)
            .map(|_| {
                let u = rng.f64().max(1e-9);
                1.0 / u.powf(0.7)
            })
            .collect()
    }

    fn total(loads: &[f64]) -> f64 {
        loads.iter().sum()
    }

    #[test]
    fn weight_is_conserved_by_all_games() {
        let mut rng = SimRng::new(1);
        let weights = skewed_weights(500, &mut rng);
        let w_total: f64 = weights.iter().sum();
        let n = 100;
        for out in [
            weighted_one_choice(n, &weights, &mut rng),
            weighted_greedy_d(n, &weights, 2, BallOrder::Arrival, &mut rng),
            weighted_greedy_d(n, &weights, 2, BallOrder::HeaviestFirst, &mut rng),
            weighted_class_parallel(n, &weights, &mut rng),
        ] {
            assert!((total(&out.loads) - w_total).abs() < 1e-6);
        }
    }

    #[test]
    fn max_load_respects_lower_bound() {
        let mut rng = SimRng::new(2);
        let weights = skewed_weights(300, &mut rng);
        let n = 64;
        let lb = WeightedOutcome::lower_bound(&weights, n);
        for out in [
            weighted_one_choice(n, &weights, &mut rng),
            weighted_greedy_d(n, &weights, 3, BallOrder::HeaviestFirst, &mut rng),
            weighted_class_parallel(n, &weights, &mut rng),
        ] {
            assert!(out.max_load() >= lb - 1e-9);
        }
    }

    #[test]
    fn greedy_beats_one_choice_on_weighted_balls() {
        let n = 1024;
        let mut sum1 = 0.0;
        let mut sum2 = 0.0;
        for seed in 0..10 {
            let mut rng = SimRng::new(seed);
            let weights = skewed_weights(n, &mut rng);
            sum1 += weighted_one_choice(n, &weights, &mut rng).max_load();
            sum2 += weighted_greedy_d(n, &weights, 2, BallOrder::Arrival, &mut rng).max_load();
        }
        assert!(sum2 < sum1, "greedy {sum2} should beat one-choice {sum1}");
    }

    #[test]
    fn heaviest_first_not_worse_than_arrival_order() {
        let n = 256;
        let mut hf = 0.0;
        let mut arr = 0.0;
        for seed in 0..20 {
            let mut rng = SimRng::new(seed);
            let weights = skewed_weights(4 * n, &mut rng);
            arr += weighted_greedy_d(n, &weights, 2, BallOrder::Arrival, &mut rng).max_load();
            hf += weighted_greedy_d(n, &weights, 2, BallOrder::HeaviestFirst, &mut rng).max_load();
        }
        assert!(hf <= arr * 1.02, "heaviest-first {hf} vs arrival {arr}");
    }

    #[test]
    fn class_parallel_close_to_bms_bound() {
        // BMS97 shape: max load ~ (m/n) W_A + W_M. Check the measured
        // max stays within a small constant of that.
        let n = 512;
        let mut rng = SimRng::new(7);
        let weights = skewed_weights(2 * n, &mut rng);
        let w_avg = weights.iter().sum::<f64>() / weights.len() as f64;
        let w_max = weights.iter().copied().fold(0.0, f64::max);
        let bound = (weights.len() as f64 / n as f64) * w_avg + w_max;
        let out = weighted_class_parallel(n, &weights, &mut rng);
        assert!(
            out.max_load() <= 3.0 * bound,
            "max {} vs BMS bound {}",
            out.max_load(),
            bound
        );
        assert!(out.rounds >= 1);
    }

    #[test]
    fn uniform_weights_reduce_to_unweighted_shape() {
        // delta = W_A/W_M = 1: the class protocol degenerates to a
        // single class, i.e. plain parallel 2-choice.
        let n = 256;
        let weights = vec![1.0; n];
        let mut rng = SimRng::new(9);
        let out = weighted_class_parallel(n, &weights, &mut rng);
        assert_eq!(out.rounds, 1);
        assert!(out.max_load() <= 8.0);
    }

    #[test]
    fn empty_and_zero_weight_edge_cases() {
        let mut rng = SimRng::new(3);
        let out = weighted_class_parallel(8, &[], &mut rng);
        assert_eq!(out.max_load(), 0.0);
        let out = weighted_class_parallel(8, &[0.0, 0.0], &mut rng);
        assert_eq!(out.max_load(), 0.0);
        let out = weighted_one_choice(8, &[], &mut rng);
        assert_eq!(out.messages, 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weights_rejected() {
        let mut rng = SimRng::new(4);
        weighted_one_choice(4, &[-1.0], &mut rng);
    }
}
