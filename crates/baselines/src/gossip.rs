//! Push-sum gossip average estimation, and Lauer's scheme running on
//! *estimated* averages.
//!
//! Lauer's thesis assumes the system average `av` is known, then
//! "presents techniques to estimate the average load of the system and
//! extends his results to this case". We reproduce that second half
//! with the classic push-sum protocol (Kempe–Dobra–Gehrke style): every
//! processor keeps a `(sum, weight)` pair, each round sends half of
//! both to one peer chosen i.u.a.r., and `sum/weight` converges to the
//! true average geometrically fast. Each round costs one message per
//! processor, which the strategy accounts for.

use pcrlb_sim::{MessageKind, SimRng, Strategy, World};

/// Distributed average estimation via push-sum.
///
/// ```
/// use pcrlb_baselines::PushSum;
/// use pcrlb_sim::SimRng;
///
/// let values = vec![0.0, 4.0, 8.0, 12.0]; // true average 6
/// let mut ps = PushSum::new(&values);
/// let mut rng = SimRng::new(1);
/// for _ in 0..40 {
///     ps.round(&mut rng);
/// }
/// assert!(ps.max_relative_error(6.0) < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct PushSum {
    sums: Vec<f64>,
    weights: Vec<f64>,
    rounds: u64,
}

impl PushSum {
    /// Initializes an estimation epoch from per-processor values.
    pub fn new(values: &[f64]) -> Self {
        PushSum {
            sums: values.to_vec(),
            weights: vec![1.0; values.len()],
            rounds: 0,
        }
    }

    /// Restarts the epoch with fresh values, keeping allocations.
    pub fn restart(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.sums.len(), "node count changed");
        self.sums.copy_from_slice(values);
        self.weights.fill(1.0);
        self.rounds = 0;
    }

    /// Number of processors.
    pub fn n(&self) -> usize {
        self.sums.len()
    }

    /// Gossip rounds executed this epoch.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Executes one synchronous push-sum round: every node halves its
    /// pair and pushes one half to a peer chosen i.u.a.r. Returns the
    /// number of messages sent (= n).
    pub fn round(&mut self, rng: &mut SimRng) -> u64 {
        let n = self.sums.len();
        if n <= 1 {
            self.rounds += 1;
            return 0;
        }
        // Halve in place, then deliver the other halves. Deliveries are
        // accumulated into a buffer so the round is synchronous (all
        // sends happen against the pre-round state).
        let mut inbox_sum = vec![0.0f64; n];
        let mut inbox_weight = vec![0.0f64; n];
        for i in 0..n {
            let mut peer = rng.below(n);
            if peer == i {
                peer = (peer + 1) % n;
            }
            let half_sum = self.sums[i] / 2.0;
            let half_weight = self.weights[i] / 2.0;
            self.sums[i] = half_sum;
            self.weights[i] = half_weight;
            inbox_sum[peer] += half_sum;
            inbox_weight[peer] += half_weight;
        }
        for i in 0..n {
            self.sums[i] += inbox_sum[i];
            self.weights[i] += inbox_weight[i];
        }
        self.rounds += 1;
        n as u64
    }

    /// Node `i`'s current estimate of the average.
    pub fn estimate(&self, i: usize) -> f64 {
        if self.weights[i] <= f64::EPSILON {
            0.0
        } else {
            self.sums[i] / self.weights[i]
        }
    }

    /// Worst-case relative deviation of any node's estimate from the
    /// true average of the initial values (diagnostic; a distributed
    /// node cannot compute this).
    pub fn max_relative_error(&self, true_avg: f64) -> f64 {
        if true_avg.abs() < f64::EPSILON {
            return 0.0;
        }
        (0..self.n())
            .map(|i| ((self.estimate(i) - true_avg) / true_avg).abs())
            .fold(0.0, f64::max)
    }
}

/// Lauer's average-threshold balancing with the average *estimated* by
/// push-sum instead of given by an oracle.
///
/// Every `epoch` steps the gossip state is re-seeded from current
/// loads; one gossip round runs per step; each processor uses its own
/// current estimate for the activity band. All gossip messages are
/// recorded as probes.
pub struct LauerGossip {
    c: f64,
    epoch: u64,
    gossip: Option<PushSum>,
    actions: u64,
}

impl LauerGossip {
    /// Creates the strategy; `c > 0` is the band width, `epoch >= 1`
    /// the re-seeding period.
    pub fn new(c: f64, epoch: u64) -> Self {
        assert!(c > 0.0, "band width c must be positive");
        assert!(epoch >= 1, "epoch must be positive");
        LauerGossip {
            c,
            epoch,
            gossip: None,
            actions: 0,
        }
    }

    /// Successful balancing actions so far.
    pub fn actions(&self) -> u64 {
        self.actions
    }

    /// The current gossip state (for inspection in tests/examples).
    pub fn gossip(&self) -> Option<&PushSum> {
        self.gossip.as_ref()
    }
}

impl Strategy for LauerGossip {
    fn on_step(&mut self, world: &mut World) {
        let n = world.n();
        // (Re-)seed the gossip epoch from current loads.
        if world.step().is_multiple_of(self.epoch) || self.gossip.is_none() {
            let loads: Vec<f64> = (0..n).map(|p| world.load(p) as f64).collect();
            match &mut self.gossip {
                Some(g) => g.restart(&loads),
                None => self.gossip = Some(PushSum::new(&loads)),
            }
        }
        // One gossip round per step; its messages are real traffic.
        let gossip = self.gossip.as_mut().expect("gossip seeded above");
        let msgs = gossip.round(world.rng_global());
        world.ledger_mut().record(MessageKind::Probe, msgs);

        // Lauer's balancing rule against each node's own estimate.
        for p in 0..n {
            let avg = gossip.estimate(p);
            let band = (self.c * avg).max(1.0);
            let lp = world.load(p) as f64;
            if lp - avg <= band {
                continue;
            }
            let mut j = world.rng_of(p).below(n);
            if j == p {
                j = (j + 1) % n;
            }
            let ledger = world.ledger_mut();
            ledger.record(MessageKind::Probe, 1);
            ledger.record(MessageKind::LoadReply, 1);
            let lj = world.load(j) as f64;
            let mean = (lp + lj) / 2.0;
            if (mean - avg).abs() <= band {
                let give = ((lp - lj) / 2.0).floor() as usize;
                if give > 0 {
                    world.transfer(p, j, give);
                    self.actions += 1;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "lauer-gossip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcrlb_sim::{Engine, LoadModel, ProcId, Step};

    #[test]
    fn push_sum_converges_geometrically() {
        let n = 256;
        let values: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
        let true_avg = values.iter().sum::<f64>() / n as f64;
        let mut ps = PushSum::new(&values);
        let mut rng = SimRng::new(1);
        let mut errs = Vec::new();
        for _ in 0..30 {
            ps.round(&mut rng);
            errs.push(ps.max_relative_error(true_avg));
        }
        // After O(log n) rounds the diffusion speed of push-sum brings
        // every node within a few percent.
        assert!(errs[29] < 0.05, "error after 30 rounds: {}", errs[29]);
        assert!(errs[29] < errs[4], "error should decrease");
    }

    #[test]
    fn push_sum_conserves_mass() {
        // Invariant: total sum and total weight never change, so the
        // weighted average is exact at all times.
        let values = [3.0, 5.0, 7.0, 100.0];
        let mut ps = PushSum::new(&values);
        let mut rng = SimRng::new(2);
        for _ in 0..50 {
            ps.round(&mut rng);
            let total_sum: f64 = (0..4).map(|i| ps.sums[i]).sum();
            let total_weight: f64 = (0..4).map(|i| ps.weights[i]).sum();
            assert!((total_sum - 115.0).abs() < 1e-9);
            assert!((total_weight - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn push_sum_single_node() {
        let mut ps = PushSum::new(&[42.0]);
        let mut rng = SimRng::new(3);
        assert_eq!(ps.round(&mut rng), 0);
        assert_eq!(ps.estimate(0), 42.0);
    }

    #[test]
    fn restart_resets_epoch() {
        let mut ps = PushSum::new(&[1.0, 2.0]);
        let mut rng = SimRng::new(4);
        ps.round(&mut rng);
        ps.restart(&[10.0, 20.0]);
        assert_eq!(ps.rounds(), 0);
        assert_eq!(ps.estimate(0), 10.0);
    }

    #[derive(Clone, Copy)]
    struct M;
    impl LoadModel for M {
        fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.49))
        }
        fn consume(&self, _: ProcId, _: Step, load: usize, rng: &mut SimRng) -> usize {
            usize::from(load > 0 && rng.chance(0.5))
        }
    }

    #[test]
    fn lauer_gossip_balances_without_an_oracle() {
        let n = 256;
        let mut e = Engine::new(n, 5, M, LauerGossip::new(0.5, 8));
        e.run(4000);
        let avg = (e.world().total_load() as f64 / n as f64).max(1.0);
        let max = e.world().max_load() as f64;
        assert!(
            max <= 8.0 * avg + 8.0,
            "estimated-average Lauer failed: max {max}, avg {avg}"
        );
        assert!(e.strategy().actions() > 0);
        // Gossip traffic shows up in the ledger: at least n per step.
        assert!(e.world().messages().probes >= 4000 * n as u64);
    }

    #[test]
    #[should_panic(expected = "band width")]
    fn zero_band_panics() {
        LauerGossip::new(0.0, 8);
    }

    #[test]
    #[should_panic(expected = "epoch")]
    fn zero_epoch_panics() {
        LauerGossip::new(0.5, 0);
    }

    #[test]
    #[should_panic(expected = "node count")]
    fn restart_size_mismatch_panics() {
        let mut ps = PushSum::new(&[1.0, 2.0]);
        ps.restart(&[1.0]);
    }
}
