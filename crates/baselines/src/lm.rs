//! Lüling–Monien (SPAA 1993) load-doubling strategy.
//!
//! "A dynamic distributed load balancing algorithm with provable good
//! performance": a processor initiates a balancing action when its load
//! has *doubled* since its last balancing action. It then contacts a
//! constant number `r` of processors chosen i.u.a.r. and equalizes its
//! load with them. LM show the expected load difference between any two
//! processors is bounded by a constant factor and tightly bound the
//! variance.

use pcrlb_sim::{MessageKind, Strategy, World};

/// The Lüling–Monien strategy.
pub struct LulingMonien {
    /// Partners contacted per balancing action.
    r: usize,
    /// Load recorded at each processor's last balancing action.
    last_balance: Vec<usize>,
    /// Actions triggered (for reporting).
    actions: u64,
}

impl LulingMonien {
    /// Creates the strategy for `n` processors contacting `r ≥ 1`
    /// partners per action.
    pub fn new(n: usize, r: usize) -> Self {
        assert!(r >= 1, "need at least one partner");
        LulingMonien {
            r,
            // Start at 1 so the first trigger happens at load 2.
            last_balance: vec![1; n],
            actions: 0,
        }
    }

    /// Balancing actions triggered so far.
    pub fn actions(&self) -> u64 {
        self.actions
    }
}

impl Strategy for LulingMonien {
    fn on_step(&mut self, world: &mut World) {
        let n = world.n();
        debug_assert_eq!(n, self.last_balance.len());
        for p in 0..n {
            let load = world.load(p);
            if load < 2 * self.last_balance[p].max(1) {
                continue;
            }
            self.actions += 1;
            // Contact r random partners, learn their loads, and
            // equalize with the average of the group (splitting the
            // surplus equally is LM's equalization step).
            let mut partners = Vec::with_capacity(self.r);
            world.rng_of(p).distinct(n, self.r + 1, &mut partners);
            partners.retain(|&x| x != p);
            partners.truncate(self.r);
            let ledger = world.ledger_mut();
            ledger.record(MessageKind::Probe, partners.len() as u64);
            ledger.record(MessageKind::LoadReply, partners.len() as u64);

            let group_total: usize = load + partners.iter().map(|&q| world.load(q)).sum::<usize>();
            let target = group_total / (partners.len() + 1);
            for &q in &partners {
                let lq = world.load(q);
                if lq < target {
                    let give = (target - lq).min(world.load(p).saturating_sub(target));
                    if give > 0 {
                        world.transfer(p, q, give);
                    }
                }
            }
            self.last_balance[p] = world.load(p).max(1);
        }
    }

    fn name(&self) -> &'static str {
        "luling-monien"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcrlb_sim::{Engine, LoadModel, ProcId, SimRng, Step};

    #[derive(Clone, Copy)]
    struct M;
    impl LoadModel for M {
        fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.4))
        }
        fn consume(&self, _: ProcId, _: Step, load: usize, rng: &mut SimRng) -> usize {
            usize::from(load > 0 && rng.chance(0.5))
        }
    }

    #[test]
    fn keeps_max_near_average() {
        let n = 256;
        let mut e = Engine::new(n, 1, M, LulingMonien::new(n, 2));
        e.run(2000);
        let avg = (e.world().total_load() as f64 / n as f64).max(1.0);
        let max = e.world().max_load() as f64;
        assert!(max <= 6.0 * avg + 6.0, "max {max} vs avg {avg}");
    }

    #[test]
    fn triggers_only_on_doubling() {
        // A silent system (no generation) never triggers.
        struct Silent;
        impl LoadModel for Silent {
            fn generate(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
                0
            }
            fn consume(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
                0
            }
        }
        let n = 64;
        let mut e = Engine::new(n, 2, Silent, LulingMonien::new(n, 2));
        e.run(100);
        assert_eq!(e.strategy().actions(), 0);
        assert_eq!(e.world().messages().control_total(), 0);
    }

    #[test]
    fn spike_triggers_and_spreads() {
        let n = 128;
        let mut e = Engine::new(n, 3, M, LulingMonien::new(n, 3));
        e.world_mut().inject(0, 1000);
        e.run(100);
        assert!(e.strategy().actions() > 0);
        assert!(
            e.world().max_load() < 500,
            "spike not spread: {}",
            e.world().max_load()
        );
    }

    #[test]
    fn communication_scales_with_actions_not_steps() {
        let n = 128;
        let mut e = Engine::new(n, 4, M, LulingMonien::new(n, 2));
        e.run(1000);
        let m = e.world().messages();
        let actions = e.strategy().actions();
        assert_eq!(m.probes, m.load_replies);
        assert!(m.probes <= 2 * actions, "probes bounded by r per action");
    }

    #[test]
    #[should_panic(expected = "partner")]
    fn zero_partners_panics() {
        LulingMonien::new(8, 0);
    }
}
