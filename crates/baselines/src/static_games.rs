//! Static balls-into-bins games (paper §1.1 related work).
//!
//! These are the classical allocation processes the paper positions
//! itself against:
//!
//! * [`one_choice`] — every ball placed i.u.a.r.; max load
//!   `Θ(log n / log log n)` w.h.p. for `m = n`.
//! * [`greedy_d`] — Azar–Broder–Karlin–Upfal sequential `d`-choice;
//!   max load `log log n / log d + Θ(1)` w.h.p.
//! * [`acmr_threshold`] — Adler–Chakrabarti–Mitzenmacher–Rasmussen
//!   parallel protocol: `r` communication rounds, each unallocated ball
//!   probes two bins i.u.a.r., each bin accepts up to a threshold per
//!   round; max load `r · threshold` w.h.p. with the paper's threshold.
//! * [`stemann_collision`] — Stemann's parallel balanced allocation:
//!   each ball commits to two candidate bins up front; in round `j`
//!   bins accept *all* their pending requests when these fit under a
//!   growing collision value, so `r` rounds reach max load
//!   `O(r·(log n / log log n)^{1/r})`.
//!
//! Every game reports its message count so experiment E11 can place the
//! paper's algorithm on the communication/load trade-off curve these
//! baselines span.

use pcrlb_sim::SimRng;

/// Result of a static allocation game.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocationOutcome {
    /// Final bin loads (length `n`).
    pub loads: Vec<usize>,
    /// Messages spent (probes, replies, placements).
    pub messages: u64,
    /// Communication rounds used (1 for sequential games).
    pub rounds: u32,
    /// Balls that the parallel protocol could not place within its
    /// round budget and fell back to one-choice placement.
    pub fallback_balls: u64,
}

impl AllocationOutcome {
    /// Maximum bin load.
    pub fn max_load(&self) -> usize {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Number of empty bins.
    pub fn empty_bins(&self) -> usize {
        self.loads.iter().filter(|&&l| l == 0).count()
    }
}

/// Classic one-choice game: each of `m` balls lands in a bin chosen
/// i.u.a.r. One placement message per ball.
pub fn one_choice(n: usize, m: usize, rng: &mut SimRng) -> AllocationOutcome {
    assert!(n > 0, "need at least one bin");
    let mut loads = vec![0usize; n];
    for _ in 0..m {
        loads[rng.below(n)] += 1;
    }
    AllocationOutcome {
        loads,
        messages: m as u64,
        rounds: 1,
        fallback_balls: 0,
    }
}

/// ABKU `Greedy[d]`: balls placed sequentially; each probes `d` bins
/// i.u.a.r. and joins the least loaded (ties: first probed). Costs
/// `d` probes + `d` replies + 1 placement per ball.
pub fn greedy_d(n: usize, m: usize, d: usize, rng: &mut SimRng) -> AllocationOutcome {
    assert!(n > 0, "need at least one bin");
    assert!(d >= 1, "need at least one choice");
    let mut loads = vec![0usize; n];
    for _ in 0..m {
        let mut best = rng.below(n);
        for _ in 1..d {
            let cand = rng.below(n);
            if loads[cand] < loads[best] {
                best = cand;
            }
        }
        loads[best] += 1;
    }
    AllocationOutcome {
        loads,
        messages: m as u64 * (2 * d as u64 + 1),
        rounds: 1,
        fallback_balls: 0,
    }
}

/// The ACMR threshold the paper quotes:
/// `T = (2r + o(1))·log n / log log n` raised to `1/r` — we use the
/// leading term `((2r·ln n)/ln ln n)^(1/r)`, clamped to at least 1.
pub fn acmr_threshold_value(n: usize, r: u32) -> usize {
    let ln_n = (n.max(3) as f64).ln();
    let ln_ln_n = ln_n.ln().max(1.0);
    let base = (2.0 * r as f64 * ln_n) / ln_ln_n;
    base.powf(1.0 / r as f64).ceil().max(1.0) as usize
}

/// ACMR parallel threshold protocol: `r` rounds; each round, every
/// unallocated ball probes two bins i.u.a.r. (fresh choices each round)
/// and a bin accepts up to `threshold` balls *per round* (ties broken by
/// arrival order within the round, which is random here). Balls left
/// after `r` rounds fall back to one-choice placement, as the protocol's
/// users do in practice; their count is reported.
pub fn acmr(n: usize, m: usize, r: u32, threshold: usize, rng: &mut SimRng) -> AllocationOutcome {
    assert!(n > 1, "need at least two bins");
    assert!(r >= 1 && threshold >= 1);
    let mut loads = vec![0usize; n];
    let mut unallocated: Vec<u32> = (0..m as u32).collect();
    let mut messages = 0u64;

    let mut requests: Vec<(usize, u32)> = Vec::new();
    for _ in 0..r {
        if unallocated.is_empty() {
            break;
        }
        // Each unallocated ball probes two bins.
        requests.clear();
        for &ball in &unallocated {
            let b1 = rng.below(n);
            let mut b2 = rng.below(n);
            while b2 == b1 {
                b2 = rng.below(n);
            }
            requests.push((b1, ball));
            requests.push((b2, ball));
            messages += 2;
        }
        // Bins accept in random arrival order, up to `threshold` each;
        // shuffling the request list models simultaneous arrival.
        rng.shuffle(&mut requests);
        let mut accepted_this_round = vec![0usize; n];
        let mut placed: Vec<u32> = Vec::new();
        let mut taken = vec![false; m];
        for &(bin, ball) in requests.iter() {
            if taken[ball as usize] {
                continue;
            }
            if accepted_this_round[bin] < threshold {
                accepted_this_round[bin] += 1;
                loads[bin] += 1;
                taken[ball as usize] = true;
                placed.push(ball);
                messages += 1; // accept/commit message
            }
        }
        unallocated.retain(|b| !taken[*b as usize]);
    }

    let fallback_balls = unallocated.len() as u64;
    for _ in 0..fallback_balls {
        loads[rng.below(n)] += 1;
        messages += 1;
    }
    AllocationOutcome {
        loads,
        messages,
        rounds: r,
        fallback_balls,
    }
}

/// Convenience: ACMR with the paper-quoted threshold for `(n, r)`.
pub fn acmr_threshold(n: usize, m: usize, r: u32, rng: &mut SimRng) -> AllocationOutcome {
    acmr(n, m, r, acmr_threshold_value(n, r), rng)
}

/// Czumaj–Stemann adaptive allocation (FOCS 1997, "\[CS97\]" in the
/// paper's related work): "an adaptive process where the number of
/// choices made in order to place a ball depends on the load of the
/// previously chosen bins". Each ball keeps probing fresh bins until it
/// finds one whose load is below `threshold` (or gives up after
/// `max_probes` and takes the best bin seen). The headline: max load
/// `threshold` is achieved with an *expected* number of probes per ball
/// close to 1, because most bins are below the threshold most of the
/// time.
pub fn adaptive_czumaj_stemann(
    n: usize,
    m: usize,
    threshold: usize,
    max_probes: usize,
    rng: &mut SimRng,
) -> AllocationOutcome {
    assert!(n > 0, "need at least one bin");
    assert!(threshold >= 1 && max_probes >= 1);
    let mut loads = vec![0usize; n];
    let mut messages = 0u64;
    for _ in 0..m {
        let mut best = rng.below(n);
        messages += 1;
        let mut probes = 1;
        while loads[best] >= threshold && probes < max_probes {
            let cand = rng.below(n);
            messages += 1;
            probes += 1;
            if loads[cand] < loads[best] {
                best = cand;
            }
        }
        loads[best] += 1;
    }
    AllocationOutcome {
        loads,
        messages,
        rounds: 1,
        fallback_balls: 0,
    }
}

/// The natural adaptive threshold for `m = n` balls: average load 1, so
/// `threshold = 2` keeps the expected probe count at `1/(1 - P(load ≥ 2))`
/// ≈ a small constant while capping the max load at `2` (plus the rare
/// give-ups).
pub fn adaptive_default_threshold(n: usize, m: usize) -> usize {
    (m.div_ceil(n.max(1)) + 1).max(2)
}

/// Stemann's parallel balanced allocation (simple class): every ball
/// commits to two bins chosen i.u.a.r. up front. In round `j` each bin
/// whose *pending* request count fits under the round's collision value
/// `c_j` accepts all of them; the collision value doubles each round
/// starting from 1 (any schedule growing to `(log n)^{1/r}`-type values
/// fits the analysis; doubling is the simplest). Unplaced balls after
/// `r` rounds fall back to one-choice.
pub fn stemann_collision(n: usize, m: usize, r: u32, rng: &mut SimRng) -> AllocationOutcome {
    assert!(n > 1, "need at least two bins");
    assert!(r >= 1);
    let mut loads = vec![0usize; n];
    let mut messages = 0u64;

    // Fixed choices, as in the collision protocol: no re-randomizing.
    let choices: Vec<(usize, usize)> = (0..m)
        .map(|_| {
            let b1 = rng.below(n);
            let mut b2 = rng.below(n);
            while b2 == b1 {
                b2 = rng.below(n);
            }
            (b1, b2)
        })
        .collect();
    let mut placed = vec![false; m];
    let mut collision_value = 1usize;

    for _ in 0..r {
        // Pending requests per bin.
        let mut pending: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut open = 0u64;
        for (ball, &(b1, b2)) in choices.iter().enumerate() {
            if placed[ball] {
                continue;
            }
            open += 1;
            pending[b1].push(ball as u32);
            pending[b2].push(ball as u32);
            messages += 2;
        }
        if open == 0 {
            break;
        }
        for bin in 0..n {
            if pending[bin].is_empty() || pending[bin].len() > collision_value {
                continue; // collision: bin answers nobody this round
            }
            for &ball in &pending[bin] {
                if !placed[ball as usize] {
                    placed[ball as usize] = true;
                    loads[bin] += 1;
                    messages += 1;
                }
            }
        }
        collision_value *= 2;
    }

    let fallback_balls = placed.iter().filter(|&&p| !p).count() as u64;
    for _ in 0..fallback_balls {
        loads[rng.below(n)] += 1;
        messages += 1;
    }
    AllocationOutcome {
        loads,
        messages,
        rounds: r,
        fallback_balls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(loads: &[usize]) -> usize {
        loads.iter().sum()
    }

    #[test]
    fn one_choice_conserves_balls() {
        let mut rng = SimRng::new(1);
        let out = one_choice(100, 1000, &mut rng);
        assert_eq!(total(&out.loads), 1000);
        assert_eq!(out.messages, 1000);
    }

    #[test]
    fn greedy_d_conserves_balls_and_costs_more_messages() {
        let mut rng = SimRng::new(2);
        let out = greedy_d(100, 1000, 2, &mut rng);
        assert_eq!(total(&out.loads), 1000);
        assert_eq!(out.messages, 1000 * 5);
    }

    #[test]
    fn greedy_beats_one_choice_on_max_load() {
        // The ABKU exponential improvement is visible even at n = 4096:
        // average over seeds to avoid flakiness.
        let n = 4096;
        let (mut sum1, mut sum2) = (0usize, 0usize);
        for seed in 0..10 {
            let mut r1 = SimRng::new(seed);
            let mut r2 = SimRng::new(seed + 1000);
            sum1 += one_choice(n, n, &mut r1).max_load();
            sum2 += greedy_d(n, n, 2, &mut r2).max_load();
        }
        assert!(
            sum2 * 2 < sum1 + 10,
            "greedy[2] ({sum2}) should clearly beat one-choice ({sum1})"
        );
    }

    #[test]
    fn greedy_one_choice_equals_one_choice_distributionally() {
        // d = 1 greedy is one-choice with extra messages.
        let mut r = SimRng::new(3);
        let out = greedy_d(64, 256, 1, &mut r);
        assert_eq!(total(&out.loads), 256);
        assert_eq!(out.messages, 256 * 3);
    }

    #[test]
    fn acmr_conserves_balls() {
        let mut rng = SimRng::new(4);
        let n = 1024;
        let out = acmr_threshold(n, n, 2, &mut rng);
        assert_eq!(total(&out.loads), n);
        assert!(out.messages >= 2 * n as u64);
    }

    #[test]
    fn acmr_respects_round_threshold_bound() {
        // Max load is at most rounds * threshold + fallback collisions;
        // with few fallbacks it should be close to r*T.
        let mut rng = SimRng::new(5);
        let n = 4096;
        let r = 2;
        let t = acmr_threshold_value(n, r);
        let out = acmr(n, n, r, t, &mut rng);
        assert!(
            out.max_load() <= (r as usize) * t + 4,
            "max {} vs r*T = {}",
            out.max_load(),
            r as usize * t
        );
        assert!(out.fallback_balls < (n / 20) as u64, "too many fallbacks");
    }

    #[test]
    fn acmr_threshold_value_shrinks_with_rounds() {
        let n = 1 << 16;
        assert!(acmr_threshold_value(n, 2) < acmr_threshold_value(n, 1));
        assert!(acmr_threshold_value(n, 4) <= acmr_threshold_value(n, 2));
        assert!(acmr_threshold_value(n, 8) >= 1);
    }

    #[test]
    fn stemann_conserves_balls() {
        let mut rng = SimRng::new(6);
        let n = 2048;
        let out = stemann_collision(n, n, 3, &mut rng);
        assert_eq!(total(&out.loads), n);
    }

    #[test]
    fn stemann_more_rounds_lower_load() {
        let n = 1 << 14;
        let avg = |r: u32, base: u64| -> f64 {
            (0..8)
                .map(|s| {
                    let mut rng = SimRng::new(base + s);
                    stemann_collision(n, n, r, &mut rng).max_load()
                })
                .sum::<usize>() as f64
                / 8.0
        };
        let r1 = avg(1, 100);
        let r4 = avg(4, 200);
        assert!(
            r4 <= r1,
            "4-round Stemann ({r4}) should not lose to 1-round ({r1})"
        );
    }

    #[test]
    fn adaptive_conserves_and_caps_load() {
        let n = 4096;
        let mut rng = SimRng::new(8);
        let threshold = adaptive_default_threshold(n, n);
        let out = adaptive_czumaj_stemann(n, n, threshold, 32, &mut rng);
        assert_eq!(total(&out.loads), n);
        // With a generous probe budget, the cap holds exactly.
        assert!(
            out.max_load() <= threshold,
            "max {} > threshold {threshold}",
            out.max_load()
        );
    }

    #[test]
    fn adaptive_expected_probes_is_near_one() {
        // CS97's point: adaptivity beats fixed d because most balls
        // need only one probe.
        let n = 1 << 14;
        let mut rng = SimRng::new(9);
        let out = adaptive_czumaj_stemann(n, n, 2, 32, &mut rng);
        let probes_per_ball = out.messages as f64 / n as f64;
        assert!(
            probes_per_ball < 1.5,
            "expected ~1 probe per ball, got {probes_per_ball}"
        );
        // And it still beats one-choice on max load.
        let mut rng2 = SimRng::new(9);
        let oc = one_choice(n, n, &mut rng2);
        assert!(out.max_load() < oc.max_load());
    }

    #[test]
    fn adaptive_give_up_path_is_exercised() {
        // Tiny machine, impossible threshold: balls exhaust the probe
        // budget and settle for the best seen; conservation still holds.
        let mut rng = SimRng::new(10);
        let out = adaptive_czumaj_stemann(4, 64, 1, 3, &mut rng);
        assert_eq!(total(&out.loads), 64);
        assert!(out.max_load() >= 16); // pigeonhole
        assert!(out.messages >= 64);
    }

    #[test]
    fn deterministic_under_seed() {
        for game in 0..4 {
            let run = |seed: u64| {
                let mut rng = SimRng::new(seed);
                match game {
                    0 => one_choice(128, 512, &mut rng),
                    1 => greedy_d(128, 512, 2, &mut rng),
                    2 => acmr_threshold(128, 512, 2, &mut rng),
                    _ => stemann_collision(128, 512, 2, &mut rng),
                }
            };
            assert_eq!(run(9).loads, run(9).loads, "game {game} not deterministic");
        }
    }

    #[test]
    fn zero_balls_edge_case() {
        let mut rng = SimRng::new(7);
        assert_eq!(one_choice(10, 0, &mut rng).max_load(), 0);
        assert_eq!(greedy_d(10, 0, 2, &mut rng).max_load(), 0);
        assert_eq!(acmr_threshold(10, 0, 2, &mut rng).max_load(), 0);
        assert_eq!(stemann_collision(10, 0, 2, &mut rng).max_load(), 0);
    }

    #[test]
    fn outcome_helpers() {
        let out = AllocationOutcome {
            loads: vec![0, 3, 0, 1],
            messages: 4,
            rounds: 1,
            fallback_balls: 0,
        };
        assert_eq!(out.max_load(), 3);
        assert_eq!(out.empty_bins(), 2);
    }
}
