//! Mitzenmacher's supermarket model in continuous time (FOCS 1996,
//! "\[Mit96\]" in the paper's related work).
//!
//! Customers arrive as a Poisson process of rate `λ·n` (`λ < 1`), each
//! samples `d` queues i.u.a.r. and joins the shortest; service times
//! are exponential with mean 1. Mitzenmacher shows the maximum queue
//! length stays `O(log log n)` for `d ≥ 2` over any constant time
//! horizon, versus `O(log n / log log n)` for `d = 1`.
//!
//! The rest of this workspace discretizes this model (Bernoulli
//! arrivals per step — see [`crate::alloc::DChoiceAllocation`]); this
//! module is the *exact* event-driven version, used to validate that
//! the discretization preserves the distribution shape.

use pcrlb_sim::SimRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A point in simulated continuous time. Wrapped to give the event
/// queue a total order (times are never NaN by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("event times are never NaN")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Arrival,
    Departure(usize),
}

/// Result of one continuous-time run.
#[derive(Debug, Clone, PartialEq)]
pub struct SupermarketReport {
    /// Customers that arrived.
    pub arrivals: u64,
    /// Customers that completed service.
    pub completions: u64,
    /// Largest queue length ever observed.
    pub max_queue: usize,
    /// Time-averaged total customers in system, divided by `n`.
    pub mean_load_per_queue: f64,
    /// Mean sojourn (arrival → departure) over completed customers.
    pub mean_sojourn: f64,
    /// Probe messages (d per arrival, 0 for d = 1).
    pub messages: u64,
}

/// The continuous-time supermarket simulator.
///
/// ```
/// use pcrlb_baselines::SupermarketSim;
///
/// // d = 1 is n independent M/M/1 queues: W = 1/(mu - lambda) = 2.
/// let report = SupermarketSim::new(128, 0.5, 1).run(42, 500.0);
/// assert!((report.mean_sojourn - 2.0).abs() < 0.4);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SupermarketSim {
    /// Number of queues.
    pub n: usize,
    /// Per-queue arrival rate (`λ < 1` for stability).
    pub lambda: f64,
    /// Choices per customer (`d = 1` is plain M/M/1 queues).
    pub d: usize,
}

impl SupermarketSim {
    /// Creates the simulator; requires `0 < λ < 1`, `d ≥ 1`, `n ≥ 1`.
    pub fn new(n: usize, lambda: f64, d: usize) -> Self {
        assert!(n >= 1, "need at least one queue");
        assert!(
            lambda > 0.0 && lambda < 1.0,
            "stability needs 0 < lambda < 1"
        );
        assert!(d >= 1, "need at least one choice");
        SupermarketSim { n, lambda, d }
    }

    /// Samples an exponential with the given rate.
    fn exp(rng: &mut SimRng, rate: f64) -> f64 {
        // Inverse CDF; 1 - f64() is in (0, 1].
        -(1.0 - rng.f64()).ln() / rate
    }

    /// Runs until simulated time `t_end`, fully determined by `seed`.
    pub fn run(&self, seed: u64, t_end: f64) -> SupermarketReport {
        assert!(t_end > 0.0, "horizon must be positive");
        let mut rng = SimRng::new(seed);
        // Queue state: arrival timestamps in FIFO order per queue (the
        // head is in service).
        let mut queues: Vec<VecDeque<f64>> = vec![VecDeque::new(); self.n];
        let mut events: BinaryHeap<Reverse<(Time, u64, EventKind)>> = BinaryHeap::new();
        let mut event_seq = 0u64; // tie-breaker for simultaneous events

        let arrival_rate = self.lambda * self.n as f64;
        let push = |events: &mut BinaryHeap<_>, t: f64, kind: EventKind, seq: &mut u64| {
            events.push(Reverse((Time(t), *seq, kind)));
            *seq += 1;
        };
        push(
            &mut events,
            Self::exp(&mut rng, arrival_rate),
            EventKind::Arrival,
            &mut event_seq,
        );

        let mut report = SupermarketReport {
            arrivals: 0,
            completions: 0,
            max_queue: 0,
            mean_load_per_queue: 0.0,
            mean_sojourn: 0.0,
            messages: 0,
        };
        let mut sojourn_sum = 0.0;
        let mut load_integral = 0.0;
        let mut total_in_system = 0usize;
        let mut last_t = 0.0f64;

        while let Some(Reverse((Time(t), _, kind))) = events.pop() {
            if t > t_end {
                break;
            }
            load_integral += total_in_system as f64 * (t - last_t);
            last_t = t;
            match kind {
                EventKind::Arrival => {
                    report.arrivals += 1;
                    // Choose the shortest of d sampled queues.
                    let mut best = rng.below(self.n);
                    for _ in 1..self.d {
                        let cand = rng.below(self.n);
                        if queues[cand].len() < queues[best].len() {
                            best = cand;
                        }
                    }
                    if self.d > 1 {
                        report.messages += self.d as u64;
                    }
                    queues[best].push_back(t);
                    total_in_system += 1;
                    report.max_queue = report.max_queue.max(queues[best].len());
                    if queues[best].len() == 1 {
                        // Queue was idle: service starts immediately.
                        let svc = Self::exp(&mut rng, 1.0);
                        push(
                            &mut events,
                            t + svc,
                            EventKind::Departure(best),
                            &mut event_seq,
                        );
                    }
                    // Schedule the next arrival.
                    let next = t + Self::exp(&mut rng, arrival_rate);
                    push(&mut events, next, EventKind::Arrival, &mut event_seq);
                }
                EventKind::Departure(q) => {
                    let arrived = queues[q]
                        .pop_front()
                        .expect("departure from an empty queue");
                    total_in_system -= 1;
                    report.completions += 1;
                    sojourn_sum += t - arrived;
                    if !queues[q].is_empty() {
                        let svc = Self::exp(&mut rng, 1.0);
                        push(
                            &mut events,
                            t + svc,
                            EventKind::Departure(q),
                            &mut event_seq,
                        );
                    }
                }
            }
        }

        report.mean_load_per_queue = load_integral / (last_t.max(1e-12) * self.n as f64);
        report.mean_sojourn = if report.completions == 0 {
            0.0
        } else {
            sojourn_sum / report.completions as f64
        };
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_sojourn_matches_queueing_theory() {
        // d = 1 is n independent M/M/1 queues: W = 1/(mu - lambda).
        let sim = SupermarketSim::new(256, 0.5, 1);
        let report = sim.run(1, 2000.0);
        let expected = 1.0 / (1.0 - 0.5); // = 2
        assert!(
            (report.mean_sojourn - expected).abs() < 0.15,
            "mean sojourn {} vs M/M/1 prediction {}",
            report.mean_sojourn,
            expected
        );
        // L = lambda * W per queue (Little's law).
        assert!((report.mean_load_per_queue - 1.0).abs() < 0.1);
    }

    #[test]
    fn two_choices_shrink_max_queue() {
        let n = 1024;
        let horizon = 200.0;
        let one = SupermarketSim::new(n, 0.7, 1).run(7, horizon);
        let two = SupermarketSim::new(n, 0.7, 2).run(7, horizon);
        assert!(
            two.max_queue < one.max_queue,
            "d=2 max {} should beat d=1 max {}",
            two.max_queue,
            one.max_queue
        );
        assert!(
            two.max_queue <= 8,
            "supermarket max queue {}",
            two.max_queue
        );
    }

    #[test]
    fn arrivals_minus_completions_bounded() {
        // In a stable system, work in progress stays O(n).
        let sim = SupermarketSim::new(128, 0.6, 2);
        let r = sim.run(3, 500.0);
        assert!(r.arrivals > 0);
        let in_flight = r.arrivals - r.completions;
        assert!(
            in_flight < 3 * 128,
            "{in_flight} customers stuck in a stable system"
        );
    }

    #[test]
    fn arrival_count_matches_rate() {
        let sim = SupermarketSim::new(100, 0.5, 2);
        let horizon = 1000.0;
        let r = sim.run(5, horizon);
        let expected = 0.5 * 100.0 * horizon;
        let rel = (r.arrivals as f64 - expected).abs() / expected;
        assert!(
            rel < 0.05,
            "arrivals {} vs expected {}",
            r.arrivals,
            expected
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let sim = SupermarketSim::new(64, 0.5, 2);
        let a = sim.run(11, 100.0);
        let b = sim.run(11, 100.0);
        assert_eq!(a, b);
    }

    #[test]
    fn messages_are_d_per_arrival() {
        let sim = SupermarketSim::new(64, 0.5, 3);
        let r = sim.run(13, 100.0);
        assert_eq!(r.messages, 3 * r.arrivals);
        let plain = SupermarketSim::new(64, 0.5, 1).run(13, 100.0);
        assert_eq!(plain.messages, 0);
    }

    #[test]
    fn discretization_shape_agrees() {
        // The discrete-time 2-choice allocation and the continuous-time
        // supermarket should land in the same max-queue ballpark at the
        // same utilization.
        use crate::alloc::DChoiceAllocation;
        use pcrlb_sim::{LoadModel, MaxLoadProbe, ProcId, Runner, Step};

        #[derive(Clone, Copy)]
        struct M;
        impl LoadModel for M {
            fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
                usize::from(rng.chance(0.35))
            }
            fn consume(&self, _: ProcId, _: Step, load: usize, rng: &mut SimRng) -> usize {
                usize::from(load > 0 && rng.chance(0.5))
            }
        }
        let n = 512;
        let ct = SupermarketSim::new(n, 0.7, 2).run(17, 400.0);
        let dt_max = Runner::new(n, 17)
            .model(M)
            .strategy(DChoiceAllocation::new(2))
            .probe(MaxLoadProbe::new())
            .run(4000)
            .worst_max_load()
            .unwrap_or(0);
        let diff = (ct.max_queue as i64 - dt_max as i64).abs();
        assert!(
            diff <= 3,
            "continuous max {} vs discrete max {} differ too much",
            ct.max_queue,
            dt_max
        );
    }

    #[test]
    #[should_panic(expected = "stability")]
    fn rejects_unstable_lambda() {
        SupermarketSim::new(8, 1.0, 2);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn rejects_zero_horizon() {
        SupermarketSim::new(8, 0.5, 2).run(1, 0.0);
    }
}
