//! Lauer's average-threshold balancing (PhD thesis, Saarbrücken 1995).
//!
//! A processor becomes *active* as soon as its load differs from the
//! (known) system average `av` by more than `c·av`. Each round an active
//! processor contacts one partner chosen i.u.a.r. and balances iff the
//! partner is *applicative*: after equalizing, **both** processors would
//! be inactive. Lauer proves a high-probability bound of `c'·av` on all
//! loads when `av = Ω(log n)`.
//!
//! The thesis also develops estimators for `av`; here the simulator
//! supplies the exact average (the paper's "assuming the average load
//! av of the system to be known" setting) — the strategy still pays one
//! probe per attempt, so the communication accounting is honest.

use pcrlb_sim::{MessageKind, Strategy, World};

/// Lauer's strategy with activity band `c`.
pub struct LauerAverage {
    /// Band half-width as a fraction of the average (`c` in the paper).
    c: f64,
    /// Successful balancing actions.
    actions: u64,
    /// Attempts rejected because the partner was not applicative.
    rejections: u64,
}

impl LauerAverage {
    /// Creates the strategy; `c > 0`.
    pub fn new(c: f64) -> Self {
        assert!(c > 0.0, "band width c must be positive");
        LauerAverage {
            c,
            actions: 0,
            rejections: 0,
        }
    }

    /// Successful balancing actions so far.
    pub fn actions(&self) -> u64 {
        self.actions
    }

    /// Rejected attempts so far.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    fn band(&self, avg: f64) -> f64 {
        // At very low averages a multiplicative band collapses to zero
        // and every processor with one task becomes "active"; clamp the
        // band below by 1 task (Lauer's analysis assumes av = Ω(log n),
        // where this never binds).
        (self.c * avg).max(1.0)
    }
}

impl Strategy for LauerAverage {
    fn on_step(&mut self, world: &mut World) {
        let n = world.n();
        let avg = world.total_load() as f64 / n as f64;
        let band = self.band(avg);
        for p in 0..n {
            let lp = world.load(p) as f64;
            if lp - avg <= band {
                continue; // not active-overloaded
            }
            let mut j = world.rng_of(p).below(n);
            if j == p {
                j = (j + 1) % n;
            }
            let ledger = world.ledger_mut();
            ledger.record(MessageKind::Probe, 1);
            ledger.record(MessageKind::LoadReply, 1);
            let lj = world.load(j) as f64;
            // Applicative test: after equalization both sit at the
            // pair's mean; both must land inside the band.
            let mean = (lp + lj) / 2.0;
            if (mean - avg).abs() <= band {
                let give = ((lp - lj) / 2.0).floor() as usize;
                if give > 0 {
                    world.transfer(p, j, give);
                    self.actions += 1;
                }
            } else {
                self.rejections += 1;
            }
        }
    }

    fn name(&self) -> &'static str {
        "lauer-average"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcrlb_sim::{Engine, LoadModel, ProcId, SimRng, Step};

    #[derive(Clone, Copy)]
    struct M;
    impl LoadModel for M {
        fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.4))
        }
        fn consume(&self, _: ProcId, _: Step, load: usize, rng: &mut SimRng) -> usize {
            usize::from(load > 0 && rng.chance(0.5))
        }
    }

    /// Heavier traffic so the average is large — Lauer's guarantee
    /// assumes `av = Ω(log n)`; at tiny averages the strict applicative
    /// rule stalls (see `strict_rule_cannot_recover_far_outliers`).
    #[derive(Clone, Copy)]
    struct Heavy;
    impl LoadModel for Heavy {
        fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.49))
        }
        fn consume(&self, _: ProcId, _: Step, load: usize, rng: &mut SimRng) -> usize {
            usize::from(load > 0 && rng.chance(0.5))
        }
    }

    #[test]
    fn bounds_load_relative_to_average() {
        let n = 256;
        let mut e = Engine::new(n, 1, Heavy, LauerAverage::new(0.5));
        e.run(4000);
        let avg = (e.world().total_load() as f64 / n as f64).max(1.0);
        let max = e.world().max_load() as f64;
        // Lauer: no load exceeds c'·av for some constant c' >= c.
        assert!(max <= 6.0 * avg + 8.0, "max {max} vs avg {avg}");
        assert!(e.strategy().actions() > 0);
    }

    #[test]
    fn idle_when_balanced() {
        struct Silent;
        impl LoadModel for Silent {
            fn generate(&self, p: ProcId, step: Step, _: usize, _: &mut SimRng) -> usize {
                // Everyone gets exactly one task at step 0: perfectly
                // balanced forever.
                usize::from(step == 0 && p < usize::MAX)
            }
            fn consume(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
                0
            }
        }
        let n = 64;
        let mut e = Engine::new(n, 2, Silent, LauerAverage::new(0.5));
        e.run(100);
        assert_eq!(e.strategy().actions(), 0);
        assert_eq!(e.world().messages().probes, 0);
    }

    /// No generation/consumption at all; load moves only by balancing.
    struct Silent;
    impl LoadModel for Silent {
        fn generate(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
            0
        }
        fn consume(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
            0
        }
    }

    #[test]
    fn moderate_outlier_is_equalized() {
        // Base load 10 everywhere, 18 on processor 0: within reach of a
        // single equalization (mean 14 lands inside the band), so Lauer
        // balances it away.
        let n = 128;
        let mut e = Engine::new(n, 3, Silent, LauerAverage::new(0.5));
        for p in 0..n {
            e.world_mut().inject(p, 10);
        }
        e.world_mut().inject(0, 8);
        e.run(50);
        assert!(e.strategy().actions() > 0);
        assert!(e.world().max_load() <= 16, "max {}", e.world().max_load());
    }

    #[test]
    fn strict_rule_cannot_recover_far_outliers() {
        // The documented limitation: a spike several multiples of the
        // average away never finds an applicative partner (equalizing
        // leaves both actors outside the band), so the strict rule
        // rejects forever. This is why Lauer's analysis requires
        // av = Ω(log n) and why the SPAA'98 threshold algorithm uses
        // absolute thresholds instead.
        let n = 64;
        let mut e = Engine::new(n, 4, Silent, LauerAverage::new(0.5));
        for p in 0..n {
            e.world_mut().inject(p, 10);
        }
        e.world_mut().inject(0, 200);
        e.run(100);
        assert_eq!(e.strategy().actions(), 0);
        assert!(e.strategy().rejections() > 0);
        assert!(e.world().max_load() >= 200);
    }

    #[test]
    fn rejections_counted_when_partner_not_applicative() {
        // Two spikes: when spike-A probes spike-B, equalizing leaves
        // both far above the band → rejection.
        let n = 16; // small n makes spike-to-spike probes likely
        let mut e = Engine::new(n, 4, M, LauerAverage::new(0.2));
        e.world_mut().inject(0, 2000);
        e.world_mut().inject(1, 2000);
        e.run(50);
        assert!(
            e.strategy().rejections() > 0,
            "expected some non-applicative encounters"
        );
    }

    #[test]
    #[should_panic(expected = "band width")]
    fn zero_band_panics() {
        LauerAverage::new(0.0);
    }
}
