//! # pcrlb-baselines — comparison strategies
//!
//! Every allocation/balancing scheme the paper cites, implemented on the
//! same substrate as the paper's algorithm so all comparisons (max load,
//! message counts, locality, waiting time) run on identical arrival
//! streams.
//!
//! **Static balls-into-bins games** ([`static_games`]):
//! one-choice, ABKU `Greedy[d]`, the ACMR parallel threshold protocol,
//! and Stemann's collision-based parallel allocation. The weighted-ball
//! extension of Berenbrink–Meyer auf der Heide–Schröder (SPAA'97) lives
//! in [`weighted`].
//!
//! **Continuous strategies** (plug into [`pcrlb_sim::Engine`]):
//!
//! | strategy | paper | trigger | communication |
//! |---|---|---|---|
//! | [`DChoiceAllocation`] | ABKU'94 / Mitzenmacher'96 | every arrival | `Θ(d)` per task |
//! | [`RsuEqualize`] | Rudolph–Slivkin-Allalouf–Upfal'91 | every step (or 1/load) | `Θ(n)` per step |
//! | [`LulingMonien`] | Lüling–Monien'93 | load doubled | `r` probes per action |
//! | [`LauerAverage`] | Lauer'95 | deviation from known average | 1 probe per active step |
//! | [`LauerGossip`] | Lauer'95 (estimated averages) | deviation from push-sum estimate | `n` gossip msgs/step + probes |
//! | [`RandomSeeking`] | Mahapatra–Dutt'96 | source threshold | probe walk |
//!
//! The *unbalanced system* baseline is [`pcrlb_sim::Unbalanced`]
//! (re-exported here for discoverability).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod gossip;
pub mod lauer;
pub mod lm;
pub mod rsu;
pub mod seeking;
pub mod static_games;
pub mod supermarket;
pub mod weighted;

pub use alloc::{AllocationStats, DChoiceAllocation};
pub use gossip::{LauerGossip, PushSum};
pub use lauer::LauerAverage;
pub use lm::LulingMonien;
pub use pcrlb_sim::Unbalanced;
pub use rsu::RsuEqualize;
pub use seeking::{RandomSeeking, SeekingStats};
pub use static_games::{
    acmr, acmr_threshold, acmr_threshold_value, adaptive_czumaj_stemann,
    adaptive_default_threshold, greedy_d, one_choice, stemann_collision, AllocationOutcome,
};
pub use supermarket::{SupermarketReport, SupermarketSim};
pub use weighted::{
    weighted_class_parallel, weighted_greedy_d, weighted_one_choice, BallOrder, WeightedOutcome,
};
