//! Continuous task-allocation baselines: the "global generation" school
//! (paper §1, where tasks come "from the outside" and are placed at
//! arrival time).
//!
//! [`DChoiceAllocation`] relocates every task *at the step it is
//! generated* to the least loaded of `d` processors chosen i.u.a.r.:
//!
//! * `d = 1` — the classic one-choice game run continuously;
//! * `d ≥ 2` — the ABKU infinite process / Mitzenmacher's supermarket
//!   model (combine with `pcrlb_core::Single` whose `p` is the arrival
//!   rate and `q` the service rate; Bernoulli-per-step arrivals are the
//!   discretization of the Poisson stream).
//!
//! This is the communication regime the paper contrasts itself with:
//! **every** task costs messages at arrival (`Θ(n)` messages per step
//! in aggregate), whereas the threshold algorithm only communicates
//! when a processor overflows.

use pcrlb_sim::{MessageKind, Strategy, Task, World};

/// Aggregate statistics of the allocation strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocationStats {
    /// Tasks relocated at arrival.
    pub placed: u64,
    /// Tasks that stayed on their generating processor because it was
    /// itself the best choice.
    pub stayed_local: u64,
}

/// Arrival-time `d`-choice placement (see module docs).
pub struct DChoiceAllocation {
    d: usize,
    stats: AllocationStats,
    arrivals: Vec<Task>,
}

impl DChoiceAllocation {
    /// Creates the strategy; `d >= 1`.
    pub fn new(d: usize) -> Self {
        assert!(d >= 1, "need at least one choice");
        DChoiceAllocation {
            d,
            stats: AllocationStats::default(),
            arrivals: Vec::new(),
        }
    }

    /// The supermarket-model placement rule (`d = 2`).
    pub fn supermarket() -> Self {
        DChoiceAllocation::new(2)
    }

    /// Run statistics.
    pub fn stats(&self) -> &AllocationStats {
        &self.stats
    }
}

impl Strategy for DChoiceAllocation {
    fn on_step(&mut self, world: &mut World) {
        let n = world.n();
        let now = world.step();
        // Pass 1: collect this step's arrivals from every processor.
        // Tasks generated this step sit at the back of the queue
        // (consumption pops the front). Collecting *before* placing is
        // essential: a task deposited on a higher-indexed processor
        // must not be mistaken for an arrival there and re-placed.
        self.arrivals.clear();
        for p in 0..n {
            while world.proc(p).queue().back().is_some_and(|t| t.born == now) {
                self.arrivals.extend(world.extract_back(p, 1));
            }
        }
        // Pass 2: place each arrival on the least loaded of d probes.
        for i in 0..self.arrivals.len() {
            let task = self.arrivals[i];
            let origin = task.origin_proc();
            let mut best = world.rng_global().below(n);
            for _ in 1..self.d {
                let cand = world.rng_global().below(n);
                if world.load(cand) < world.load(best) {
                    best = cand;
                }
            }
            if self.d > 1 {
                let ledger = world.ledger_mut();
                ledger.record(MessageKind::Probe, self.d as u64);
                ledger.record(MessageKind::LoadReply, self.d as u64);
            }
            if best == origin {
                self.stats.stayed_local += 1;
            } else {
                self.stats.placed += 1;
                world.ledger_mut().record_transfer(1);
            }
            world.deposit(best, vec![task]);
        }
        self.arrivals.clear();
    }

    fn name(&self) -> &'static str {
        "d-choice-allocation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcrlb_sim::{Engine, LoadModel, MaxLoadProbe, ProcId, Runner, SimRng, Step};

    /// Bernoulli arrivals p, Bernoulli service q — the discretized
    /// supermarket model.
    #[derive(Clone, Copy)]
    struct Arrivals {
        p: f64,
        q: f64,
    }

    impl LoadModel for Arrivals {
        fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(self.p))
        }
        fn consume(&self, _: ProcId, _: Step, load: usize, rng: &mut SimRng) -> usize {
            usize::from(load > 0 && rng.chance(self.q))
        }
    }

    const M: Arrivals = Arrivals { p: 0.4, q: 0.5 };

    #[test]
    fn two_choice_keeps_low_max_load() {
        let n = 1024;
        let worst = Runner::new(n, 1)
            .model(M)
            .strategy(DChoiceAllocation::supermarket())
            .probe(MaxLoadProbe::new())
            .run(2000)
            .worst_max_load()
            .unwrap_or(0);
        // Supermarket: O(log log n) — single digits at this scale.
        assert!(worst <= 10, "2-choice max load {worst} too high");
    }

    #[test]
    fn one_choice_is_worse_than_two_choice() {
        let n = 1024;
        let steps = 2000;
        let observe = |d: usize| {
            Runner::new(n, 2)
                .model(M)
                .strategy(DChoiceAllocation::new(d))
                .probe(MaxLoadProbe::new())
                .run(steps)
                .worst_max_load()
                .unwrap_or(0)
        };
        let (w1, w2) = (observe(1), observe(2));
        assert!(
            w2 <= w1,
            "2-choice ({w2}) should not lose to 1-choice ({w1})"
        );
    }

    #[test]
    fn communication_is_linear_in_arrivals() {
        let n = 256;
        let mut e = Engine::new(n, 3, M, DChoiceAllocation::supermarket());
        e.run(500);
        let m = e.world().messages();
        let generated: u64 = e.world().procs().map(|p| p.stats.generated).sum();
        let s = *e.strategy().stats();
        let handled = s.placed + s.stayed_local;
        // Tasks generated and consumed within the same step never reach
        // the placement strategy; everything else does.
        assert!(handled <= generated);
        assert!(handled * 10 >= generated * 7, "most arrivals placed");
        // Every handled arrival probed exactly 2 processors.
        assert_eq!(m.probes, 2 * handled);
        assert_eq!(m.load_replies, 2 * handled);
    }

    #[test]
    fn placement_happens_at_arrival_time() {
        // A task that is placed remotely must still record its true
        // origin — locality for global allocation collapses to ~1/n...
        let n = 64;
        let mut e = Engine::new(n, 4, M, DChoiceAllocation::new(2));
        e.run(3000);
        let loc = e.world().completions().locality();
        assert!(
            loc < 0.2,
            "arrival-time placement should rarely keep tasks local: {loc}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one choice")]
    fn zero_choices_panics() {
        DChoiceAllocation::new(0);
    }
}
