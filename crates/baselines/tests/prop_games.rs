//! Property-based tests of the static balls-into-bins games, the
//! weighted extension, and the gossip substrate.

use pcrlb_baselines::static_games::{
    acmr, acmr_threshold_value, greedy_d, one_choice, stemann_collision,
};
use pcrlb_baselines::weighted::{
    weighted_class_parallel, weighted_greedy_d, weighted_one_choice, BallOrder, WeightedOutcome,
};
use pcrlb_baselines::PushSum;
use pcrlb_sim::SimRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every game conserves balls exactly.
    #[test]
    fn games_conserve_balls(
        seed in any::<u64>(),
        n in 2usize..2048,
        m_frac in 0.0f64..3.0,
    ) {
        let m = ((n as f64) * m_frac) as usize;
        let mut rng = SimRng::new(seed);
        let total = |loads: &[usize]| loads.iter().sum::<usize>();
        prop_assert_eq!(total(&one_choice(n, m, &mut rng).loads), m);
        prop_assert_eq!(total(&greedy_d(n, m, 2, &mut rng).loads), m);
        prop_assert_eq!(total(&acmr(n, m, 2, 3, &mut rng).loads), m);
        prop_assert_eq!(total(&stemann_collision(n, m, 2, &mut rng).loads), m);
    }

    /// Greedy with more choices never does (meaningfully) worse on the
    /// same seed count; max load is monotone-ish in d on average.
    #[test]
    fn greedy_more_choices_not_worse_on_average(seed in 0u64..1000) {
        let n = 1024;
        let trials = 5;
        let avg = |d: usize| -> f64 {
            (0..trials)
                .map(|t| {
                    let mut rng = SimRng::new(seed * 31 + t);
                    greedy_d(n, n, d, &mut rng).max_load()
                })
                .sum::<usize>() as f64 / trials as f64
        };
        // Allow a tiny tolerance: individual draws fluctuate.
        prop_assert!(avg(4) <= avg(1) + 1.0);
    }

    /// Max load lower bound: no game can beat ceil(m/n).
    #[test]
    fn max_load_at_least_average(seed in any::<u64>(), n in 2usize..512, mult in 1usize..4) {
        let m = n * mult;
        let mut rng = SimRng::new(seed);
        let lower = m.div_ceil(n);
        prop_assert!(one_choice(n, m, &mut rng).max_load() >= lower);
        prop_assert!(greedy_d(n, m, 3, &mut rng).max_load() >= lower);
        prop_assert!(stemann_collision(n, m, 3, &mut rng).max_load() >= lower);
    }

    /// The ACMR per-round acceptance threshold is respected: max load
    /// <= rounds * threshold + fallback placements.
    #[test]
    fn acmr_threshold_respected(
        seed in any::<u64>(),
        n in 16usize..1024,
        r in 1u32..4,
    ) {
        let t = acmr_threshold_value(n, r);
        let mut rng = SimRng::new(seed);
        let out = acmr(n, n, r, t, &mut rng);
        prop_assert!(
            out.max_load() <= r as usize * t + out.fallback_balls as usize,
            "max {} > r*t + fallback = {}",
            out.max_load(),
            r as usize * t + out.fallback_balls as usize
        );
    }

    /// Weighted games conserve total weight and respect the trivial
    /// lower bound, for arbitrary non-negative weights.
    #[test]
    fn weighted_games_conserve_and_bound(
        seed in any::<u64>(),
        n in 2usize..256,
        weights in proptest::collection::vec(0.0f64..100.0, 0..200),
    ) {
        let mut rng = SimRng::new(seed);
        let w_total: f64 = weights.iter().sum();
        let lb = WeightedOutcome::lower_bound(&weights, n);
        for out in [
            weighted_one_choice(n, &weights, &mut rng),
            weighted_greedy_d(n, &weights, 2, BallOrder::Arrival, &mut rng),
            weighted_greedy_d(n, &weights, 2, BallOrder::HeaviestFirst, &mut rng),
            weighted_class_parallel(n, &weights, &mut rng),
        ] {
            let total: f64 = out.loads.iter().sum();
            prop_assert!((total - w_total).abs() < 1e-6 * (1.0 + w_total));
            prop_assert!(out.max_load() >= lb - 1e-9);
        }
    }

    /// Push-sum estimates always stay within the convex hull of the
    /// initial values (each estimate is a weighted average of them),
    /// and converge toward the true average as rounds accumulate.
    #[test]
    fn push_sum_invariants(
        seed in any::<u64>(),
        values in proptest::collection::vec(0.0f64..1000.0, 2..128),
        rounds in 1usize..40,
    ) {
        let n = values.len();
        let avg = values.iter().sum::<f64>() / n as f64;
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(0.0f64, f64::max);
        let mut ps = PushSum::new(&values);
        let mut rng = SimRng::new(seed);
        let initial_err = ps.max_relative_error(avg.max(1e-9));
        for _ in 0..rounds {
            ps.round(&mut rng);
        }
        for i in 0..n {
            let e = ps.estimate(i);
            prop_assert!(
                e >= lo - 1e-6 && e <= hi + 1e-6,
                "estimate {} outside [{}, {}]", e, lo, hi
            );
        }
        if rounds >= 30 && avg > 1e-6 {
            // Plenty of rounds: error must have shrunk substantially.
            let err = ps.max_relative_error(avg);
            prop_assert!(err <= initial_err + 1e-9);
            prop_assert!(err < 0.2, "error {} after {} rounds", err, rounds);
        }
    }
}
