//! Criterion bench: simulation throughput (processor-steps per second)
//! for the unbalanced system, the paper's balancer, and arrival-time
//! 2-choice allocation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcrlb_baselines::DChoiceAllocation;
use pcrlb_core::{Single, ThresholdBalancer};
use pcrlb_sim::{Backend, Engine, Runner, Unbalanced};

const STEPS: u64 = 64;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_step");
    for n in [1usize << 10, 1 << 14] {
        group.throughput(Throughput::Elements(n as u64 * STEPS));
        group.bench_with_input(BenchmarkId::new("unbalanced", n), &n, |b, &n| {
            b.iter(|| {
                let mut e = Engine::new(n, 1, Single::default_paper(), Unbalanced);
                e.run(STEPS);
                e.world().total_load()
            });
        });
        group.bench_with_input(BenchmarkId::new("threshold", n), &n, |b, &n| {
            b.iter(|| {
                let mut e = Engine::new(n, 1, Single::default_paper(), ThresholdBalancer::paper(n));
                e.run(STEPS);
                e.world().total_load()
            });
        });
        group.bench_with_input(BenchmarkId::new("two-choice", n), &n, |b, &n| {
            b.iter(|| {
                let mut e = Engine::new(n, 1, Single::default_paper(), DChoiceAllocation::new(2));
                e.run(STEPS);
                e.world().total_load()
            });
        });
    }
    group.finish();
}

/// Guard: a probe-free `Runner` must cost the same as hand-driving
/// `Engine::step` — the observer sink stays disabled, so the runner's
/// per-step work is one empty-probe-list sweep and nothing else.
fn bench_runner_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner_overhead");
    let n = 1usize << 10;
    group.throughput(Throughput::Elements(n as u64 * STEPS));
    group.bench_function("direct_engine_loop", |b| {
        b.iter(|| {
            let mut e = Engine::new(n, 1, Single::default_paper(), Unbalanced);
            for _ in 0..STEPS {
                e.step();
            }
            e.world().total_load()
        });
    });
    group.bench_function("runner_zero_probes", |b| {
        b.iter(|| {
            Runner::new(n, 1)
                .model(Single::default_paper())
                .strategy(Unbalanced)
                .run(STEPS)
                .total_load
        });
    });
    // Dispatch overhead of the parallel backends at a size where the
    // work itself is cheap: per-step scoped spawns vs one persistent
    // pool per run.
    for (name, backend) in [
        ("runner_threaded_2", Backend::Threaded(2)),
        ("runner_pooled_2", Backend::Pooled(2)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                Runner::new(n, 1)
                    .model(Single::default_paper())
                    .strategy(Unbalanced)
                    .backend(backend)
                    .run(STEPS)
                    .total_load
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_runner_overhead);
criterion_main!(benches);
