//! Criterion bench: cost of one collision game (sequential vs threaded)
//! across machine sizes and request counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcrlb_collision::{play_game, play_game_threaded, CollisionParams};
use pcrlb_sim::SimRng;

fn bench_sequential(c: &mut Criterion) {
    let params = CollisionParams::lemma1();
    let mut group = c.benchmark_group("collision_game/sequential");
    for n in [1usize << 10, 1 << 14, 1 << 18] {
        let requests = params.max_requests(n) / 4;
        let requesters: Vec<usize> = (0..requests).collect();
        group.throughput(Throughput::Elements(requests as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = SimRng::new(42);
            b.iter(|| play_game(n, &requesters, &params, &mut rng));
        });
    }
    group.finish();
}

fn bench_threaded(c: &mut Criterion) {
    let params = CollisionParams::lemma1();
    let n = 1usize << 14;
    let requests = params.max_requests(n) / 4;
    let requesters: Vec<usize> = (0..requests).collect();
    let mut group = c.benchmark_group("collision_game/threaded");
    group.throughput(Throughput::Elements(requests as u64));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                let mut rng = SimRng::new(42);
                b.iter(|| play_game_threaded(n, &requesters, &params, &mut rng, shards));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sequential, bench_threaded);
criterion_main!(benches);
