//! The recorded perf trajectory: processor-steps/sec of the
//! generate/consume hot path (`drive_shard`) at large `n`, for the
//! Sequential and Pooled backends.
//!
//! Unlike the other benches this one doubles as the `bench-smoke`
//! stage of `scripts/check.sh`: run with `--quick --json PATH` it
//! writes a small machine-readable results file (`BENCH_pr6.json` at
//! the repo root is the committed baseline), and with `--gate PATH`
//! it additionally compares the fresh Sequential number at `n = 2^18`
//! against that baseline and exits nonzero on a >10% regression — so
//! every future PR lands on a recorded trajectory.
//!
//! Invocations:
//!
//! ```text
//! cargo bench -p pcrlb-bench --bench soa_hotpath                 # full
//! cargo bench -p pcrlb-bench --bench soa_hotpath -- --quick \
//!     --json target/bench_pr6.json --gate BENCH_pr6.json         # smoke
//! ```
//!
//! The JSON is flat and hand-parsed (the workspace is offline; no
//! serde): `{"bench":"soa_hotpath","sequential":{"65536":S,...},
//! "pooled":{...}}` with S in processor-steps/sec.

use pcrlb_core::Single;
use pcrlb_sim::{Backend, Engine, Unbalanced};
use std::time::Instant;

/// Sizes on the trajectory: 2^16, 2^18, 2^20.
const SIZES: [usize; 3] = [1 << 16, 1 << 18, 1 << 20];
/// Worker count for the pooled measurement.
const POOL_WORKERS: usize = 4;
/// The gate compares Sequential steps/sec at this size.
const GATE_N: usize = 1 << 18;
/// Relative slowdown tolerated before the gate fails.
const GATE_TOLERANCE: f64 = 0.10;

/// Measures steady-state throughput in processor-steps/sec: warm the
/// engine a few steps (first-touch queue growth is not the steady
/// state), then time `steps` more, best of `reps`.
fn measure(n: usize, backend: Backend, steps: u64, reps: usize) -> f64 {
    let mut engine = Engine::with_backend(
        n,
        0xB0A5_1998,
        Single::default_paper(),
        Unbalanced,
        backend.resolve(),
    );
    engine.run(4); // warm-up: reach steady-state occupancy
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        engine.run(steps);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (n as u64 * steps) as f64 / best
}

/// Steps per timing rep, scaled so every size runs a comparable
/// wall-clock slice.
fn steps_for(n: usize, quick: bool) -> u64 {
    let base: u64 = if quick { 1 << 24 } else { 1 << 27 };
    (base / n as u64).max(8)
}

fn run_suite(quick: bool) -> Vec<(&'static str, usize, f64)> {
    let reps = if quick { 2 } else { 3 };
    let mut out = Vec::new();
    for &n in &SIZES {
        let sps = measure(n, Backend::Sequential, steps_for(n, quick), reps);
        println!("soa_hotpath/sequential/{n}: {:.3e} proc-steps/s", sps);
        out.push(("sequential", n, sps));
    }
    for &n in &SIZES {
        let sps = measure(n, Backend::Pooled(POOL_WORKERS), steps_for(n, quick), reps);
        println!(
            "soa_hotpath/pooled{POOL_WORKERS}/{n}: {:.3e} proc-steps/s",
            sps
        );
        out.push(("pooled", n, sps));
    }
    out
}

fn to_json(results: &[(&str, usize, f64)]) -> String {
    let section = |backend: &str| {
        results
            .iter()
            .filter(|(b, _, _)| *b == backend)
            .map(|(_, n, sps)| format!("\"{n}\":{sps:.1}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "{{\"bench\":\"soa_hotpath\",\"unit\":\"proc-steps/sec\",\"sequential\":{{{}}},\"pooled\":{{{}}}}}\n",
        section("sequential"),
        section("pooled"),
    )
}

/// Extracts `"sequential"` → `"<n>"` from the flat baseline JSON.
/// Hand-rolled: the file is written by `to_json` above, so the format
/// is under our control.
fn parse_baseline(json: &str, n: usize) -> Option<f64> {
    let seq = json.split("\"sequential\":{").nth(1)?;
    let body = seq.split('}').next()?;
    for pair in body.split(',') {
        let mut it = pair.splitn(2, ':');
        let key = it.next()?.trim().trim_matches('"');
        let val = it.next()?.trim();
        if key == n.to_string() {
            return val.parse().ok();
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `cargo bench` passes `--bench`; ignore it like criterion does.
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let quick = flag("--quick");

    let results = run_suite(quick);

    if let Some(path) = value_of("--json") {
        std::fs::write(&path, to_json(&results)).expect("failed to write bench JSON");
        println!("soa_hotpath: wrote {path}");
    }

    if let Some(path) = value_of("--gate") {
        let fresh = results
            .iter()
            .find(|(b, n, _)| *b == "sequential" && *n == GATE_N)
            .map(|(_, _, sps)| *sps)
            .expect("gate size missing from suite");
        match std::fs::read_to_string(&path) {
            Ok(json) => {
                let base = parse_baseline(&json, GATE_N)
                    .unwrap_or_else(|| panic!("no sequential/{GATE_N} entry in {path}"));
                let ratio = fresh / base;
                println!(
                    "soa_hotpath gate @ n={GATE_N}: fresh {fresh:.3e} vs baseline {base:.3e} \
                     ({:+.1}%)",
                    (ratio - 1.0) * 100.0
                );
                if ratio < 1.0 - GATE_TOLERANCE {
                    eprintln!(
                        "REGRESSION: soa_hotpath sequential @ n={GATE_N} is {:.1}% below the \
                         committed baseline {path} (tolerance {:.0}%).\n\
                         If the slowdown is intended, re-baseline with UPDATE_BENCH=1 \
                         scripts/check.sh.",
                        (1.0 - ratio) * 100.0,
                        GATE_TOLERANCE * 100.0
                    );
                    std::process::exit(1);
                }
            }
            Err(_) => {
                println!("soa_hotpath gate: no baseline at {path} (first run); skipping compare");
            }
        }
    }
}
