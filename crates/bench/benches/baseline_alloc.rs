//! Criterion bench: static balls-into-bins allocation throughput
//! (balls per second) for every static game.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcrlb_baselines::static_games::{acmr_threshold, greedy_d, one_choice, stemann_collision};
use pcrlb_sim::SimRng;

fn bench_static_games(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_alloc");
    for n in [1usize << 12, 1 << 16] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("one_choice", n), &n, |b, &n| {
            let mut rng = SimRng::new(1);
            b.iter(|| one_choice(n, n, &mut rng).max_load());
        });
        group.bench_with_input(BenchmarkId::new("greedy_2", n), &n, |b, &n| {
            let mut rng = SimRng::new(1);
            b.iter(|| greedy_d(n, n, 2, &mut rng).max_load());
        });
        group.bench_with_input(BenchmarkId::new("acmr_r2", n), &n, |b, &n| {
            let mut rng = SimRng::new(1);
            b.iter(|| acmr_threshold(n, n, 2, &mut rng).max_load());
        });
        group.bench_with_input(BenchmarkId::new("stemann_r3", n), &n, |b, &n| {
            let mut rng = SimRng::new(1);
            b.iter(|| stemann_collision(n, n, 3, &mut rng).max_load());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_static_games);
criterion_main!(benches);
