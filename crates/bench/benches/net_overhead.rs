//! Criterion bench: what the wire costs. The loopback net backend runs
//! the same simulation as the pooled backend but pays to encode every
//! protocol message into a per-peer batch frame, route it through
//! per-node mailboxes, and decode it behind a watermark round — this
//! bench isolates that overhead at n = 2^12 (TCP adds syscall latency
//! on top and is measured by `examples/net_run.rs`, not here: socket
//! timings are too noisy for criterion's statistics to be meaningful).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcrlb_core::{Single, ThresholdBalancer};
use pcrlb_sim::{Backend, Runner};

const STEPS: u64 = 32;
const N: usize = 1 << 12;

fn run(backend: Backend) -> u64 {
    Runner::new(N, 1)
        .model(Single::default_paper())
        .strategy(ThresholdBalancer::paper(N))
        .backend(backend)
        .run(STEPS)
        .total_load
}

fn bench_net_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64 * STEPS));
    group.bench_function("sequential", |b| b.iter(|| run(Backend::Sequential)));
    for workers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("pooled", workers),
            &workers,
            |b, &workers| b.iter(|| run(Backend::Pooled(workers))),
        );
    }
    for nodes in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("net", nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                run(Backend::Net {
                    nodes,
                    tcp: false,
                    relaxed: false,
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_net_overhead);
criterion_main!(benches);
