//! Criterion bench: threaded / pooled engine speedup over the
//! sequential engine for the per-processor sub-steps (generation +
//! consumption). `pool` vs `threads` at the same width isolates what a
//! persistent worker pool saves over per-step thread spawns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcrlb_core::{Single, ThresholdBalancer};
use pcrlb_sim::Engine;

const STEPS: u64 = 16;
const N: usize = 1 << 16;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64 * STEPS));
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut e = Engine::new(N, 1, Single::default_paper(), ThresholdBalancer::paper(N));
            e.run(STEPS);
            e.world().total_load()
        });
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut e = Engine::threaded(
                        N,
                        1,
                        Single::default_paper(),
                        ThresholdBalancer::paper(N),
                        threads,
                    );
                    e.run(STEPS);
                    e.world().total_load()
                });
            },
        );
    }
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("pool", threads),
            &threads,
            |b, &threads| {
                // One pool per run (spawned once, reused for all STEPS
                // steps) vs `threads` above spawning scoped threads per
                // step — the difference is the spawn overhead the pool
                // amortizes.
                b.iter(|| {
                    let mut e = Engine::pooled(
                        N,
                        1,
                        Single::default_paper(),
                        ThresholdBalancer::paper(N),
                        threads,
                    );
                    e.run(STEPS);
                    e.world().total_load()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
