//! The elastic-membership hot path: processor-steps/sec of the full
//! `ThresholdBalancer` step under three membership regimes —
//!
//! - `fixed`: no churn installed (the historic fast path; the
//!   membership check must cost nothing here),
//! - `resident`: a schedule is installed but never transitions (the
//!   per-step sync + empty sweep),
//! - `batch`: a periodic square wave departs and rejoins n/8
//!   processors every 8 steps, with live task evacuation each way.
//!
//! Like `policy_hotpath` it doubles as a CI gate: run with `--gate
//! PATH` it compares the fresh *batch* number at `n = 2^14` against the
//! `"churn_hotpath"` section of the committed baseline
//! (`BENCH_pr10.json` at the repo root) and exits nonzero on a >10%
//! regression. `--update PATH` splices the fresh numbers into that
//! file in place (re-baselining).
//!
//! Invocations:
//!
//! ```text
//! cargo bench -p pcrlb-bench --bench churn_hotpath                 # full
//! cargo bench -p pcrlb-bench --bench churn_hotpath -- --quick \
//!     --json target/churn_bench.json --gate BENCH_pr10.json        # smoke
//! ```
//!
//! The JSON is flat and hand-parsed (the workspace is offline; no
//! serde): `{"bench":"churn_hotpath","unit":"proc-steps/sec",
//! "fixed":{"16384":S,...},"resident":{...},"batch":{...}}`.

use pcrlb_core::{BalancerConfig, Single, ThresholdBalancer};
use pcrlb_sim::{Backend, ChurnSpec, Engine};
use std::time::Instant;

/// Sizes on the trajectory.
const SIZES: [usize; 2] = [1 << 12, 1 << 14];
/// The gate compares the batch scenario's steps/sec at this size.
const GATE_N: usize = 1 << 14;
/// Relative slowdown tolerated before the gate fails.
const GATE_TOLERANCE: f64 = 0.10;
/// Membership regimes, batch last (the gated one).
const SCENARIOS: [&str; 3] = ["fixed", "resident", "batch"];

/// The churn schedule a scenario installs (`None` = no churn).
fn schedule(scenario: &str, n: usize) -> Option<ChurnSpec> {
    let spec = match scenario {
        "fixed" => return None,
        "resident" => format!("step:0,{n}"),
        "batch" => format!("batch:8,{}", n / 8),
        other => panic!("unknown scenario {other}"),
    };
    Some(spec.parse().expect("static schedule parses"))
}

/// Steady-state throughput in processor-steps/sec: warm up, then best
/// of `reps` timed slices.
fn measure(n: usize, scenario: &str, steps: u64, reps: usize) -> f64 {
    let balancer = ThresholdBalancer::new(BalancerConfig::paper(n));
    let mut engine = Engine::with_backend(
        n,
        0xC40A_1998,
        Single::default_paper(),
        balancer,
        Backend::Sequential.resolve(),
    );
    if let Some(spec) = schedule(scenario, n) {
        engine.world_mut().install_churn(spec);
    }
    engine.run(16); // warm-up: reach steady-state occupancy
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        engine.run(steps);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (n as u64 * steps) as f64 / best
}

/// Steps per timing rep, scaled so every size runs a comparable
/// wall-clock slice.
fn steps_for(n: usize, quick: bool) -> u64 {
    let base: u64 = if quick { 1 << 22 } else { 1 << 25 };
    (base / n as u64).max(8)
}

fn run_suite(quick: bool) -> Vec<(&'static str, usize, f64)> {
    let reps = if quick { 2 } else { 3 };
    let mut out = Vec::new();
    for &scenario in &SCENARIOS {
        for &n in &SIZES {
            let sps = measure(n, scenario, steps_for(n, quick), reps);
            println!("churn_hotpath/{scenario}/{n}: {sps:.3e} proc-steps/s");
            out.push((scenario, n, sps));
        }
    }
    out
}

/// The `"churn_hotpath"` value as a single JSON line (single-line on
/// purpose: `--update` splices it into `BENCH_pr10.json` line-wise).
fn section_json(results: &[(&str, usize, f64)]) -> String {
    let per_scenario = SCENARIOS
        .iter()
        .map(|scenario| {
            let sizes = results
                .iter()
                .filter(|(s, _, _)| s == scenario)
                .map(|(_, n, sps)| format!("\"{n}\":{sps:.1}"))
                .collect::<Vec<_>>()
                .join(",");
            format!("\"{scenario}\":{{{sizes}}}")
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"unit\":\"proc-steps/sec\",{per_scenario}}}")
}

fn to_json(results: &[(&str, usize, f64)]) -> String {
    format!(
        "{{\"bench\":\"churn_hotpath\",\"churn_hotpath\":{}}}\n",
        section_json(results)
    )
}

/// Extracts `"churn_hotpath"` → `"batch"` → `"<n>"` from either the
/// standalone `--json` output or the spliced `BENCH_pr10.json`.
/// Hand-rolled: both formats are written by this file.
fn parse_baseline(json: &str, n: usize) -> Option<f64> {
    let sect = json.split("\"churn_hotpath\":").nth(1)?;
    let batch = sect.split("\"batch\":{").nth(1)?;
    let body = batch.split('}').next()?;
    for pair in body.split(',') {
        let mut it = pair.splitn(2, ':');
        let key = it.next()?.trim().trim_matches('"');
        let val = it.next()?.trim();
        if key == n.to_string() {
            return val.parse().ok();
        }
    }
    None
}

/// Splices the fresh `"churn_hotpath"` section into an existing
/// top-level JSON object, replacing any previous one (same line-wise
/// surgery as `policy_hotpath`).
fn splice_update(path: &str, results: &[(&str, usize, f64)]) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--update: cannot read {path}: {e}"));
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| !l.trim_start().starts_with("\"churn_hotpath\":"))
        .map(String::from)
        .collect();
    let close = lines
        .iter()
        .rposition(|l| l.trim() == "}")
        .expect("--update: no closing brace in target file");
    if let Some(prev) = lines[..close].iter_mut().next_back() {
        let t = prev.trim_end().to_string();
        if !t.ends_with(',') && !t.ends_with('{') {
            *prev = format!("{t},");
        }
    }
    lines.insert(
        close,
        format!("  \"churn_hotpath\": {}", section_json(results)),
    );
    std::fs::write(path, lines.join("\n") + "\n").expect("--update: write failed");
    println!("churn_hotpath: spliced baseline into {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let quick = flag("--quick");

    let results = run_suite(quick);

    // Relative cost of each membership regime against the fixed fast
    // path at the gate size — `resident` is the tax every run with a
    // schedule pays, `batch` adds live evacuation on top.
    if let Some(base) = results
        .iter()
        .find(|(s, n, _)| *s == "fixed" && *n == GATE_N)
        .map(|(_, _, s)| *s)
    {
        for &scenario in &SCENARIOS[1..] {
            if let Some(sps) = results
                .iter()
                .find(|(s, n, _)| *s == scenario && *n == GATE_N)
                .map(|(_, _, s)| *s)
            {
                println!(
                    "churn_hotpath relative @ n={GATE_N}: {scenario} = {:.2}x fixed",
                    sps / base
                );
            }
        }
    }

    if let Some(path) = value_of("--json") {
        std::fs::write(&path, to_json(&results)).expect("failed to write bench JSON");
        println!("churn_hotpath: wrote {path}");
    }

    if let Some(path) = value_of("--gate") {
        let fresh = results
            .iter()
            .find(|(s, n, _)| *s == "batch" && *n == GATE_N)
            .map(|(_, _, sps)| *sps)
            .expect("gate size missing from suite");
        match std::fs::read_to_string(&path) {
            Ok(json) => match parse_baseline(&json, GATE_N) {
                Some(base) => {
                    let ratio = fresh / base;
                    println!(
                        "churn_hotpath gate @ n={GATE_N}: fresh {fresh:.3e} vs baseline \
                         {base:.3e} ({:+.1}%)",
                        (ratio - 1.0) * 100.0
                    );
                    if ratio < 1.0 - GATE_TOLERANCE {
                        eprintln!(
                            "REGRESSION: churn_hotpath batch @ n={GATE_N} is {:.1}% below the \
                             committed baseline {path} (tolerance {:.0}%).\n\
                             If the slowdown is intended, re-baseline with UPDATE_BENCH=1 \
                             scripts/check.sh --stage churn.",
                            (1.0 - ratio) * 100.0,
                            GATE_TOLERANCE * 100.0
                        );
                        std::process::exit(1);
                    }
                }
                None => {
                    println!(
                        "churn_hotpath gate: no churn_hotpath section in {path} yet; \
                         skipping compare"
                    );
                }
            },
            Err(_) => {
                println!("churn_hotpath gate: no baseline at {path} (first run); skipping");
            }
        }
    }

    if let Some(path) = value_of("--update") {
        splice_update(&path, &results);
    }
}
