//! Criterion bench: PRAM-step throughput of the MSS'95 shared-memory
//! machine (operations per second) across machine sizes and batch
//! shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcrlb_shmem::{DmmConfig, DmmMachine, MemOp};
use pcrlb_sim::SimRng;

fn bench_pram_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("shmem_step");
    for n in [1usize << 8, 1 << 12] {
        let ops_per_step = n / 8;
        group.throughput(Throughput::Elements(ops_per_step as u64));
        group.bench_with_input(BenchmarkId::new("mixed_batch", n), &n, |b, &n| {
            let mut machine = DmmMachine::new(DmmConfig::mss95(n), 1);
            let mut rng = SimRng::new(2);
            b.iter(|| {
                let ops: Vec<MemOp> = (0..ops_per_step)
                    .map(|i| {
                        let cell = rng.below(1 << 22) as u64;
                        if i % 3 == 0 {
                            MemOp::Write { cell, value: cell }
                        } else {
                            MemOp::Read { cell }
                        }
                    })
                    .collect();
                machine.step(&ops).completed.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("hot_cell_combined", n), &n, |b, &n| {
            let mut machine = DmmMachine::new(DmmConfig::mss95(n), 1);
            machine.step(&[MemOp::Write { cell: 0, value: 7 }]);
            let ops: Vec<MemOp> = (0..ops_per_step).map(|_| MemOp::Read { cell: 0 }).collect();
            b.iter(|| machine.step(&ops).completed.len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pram_steps);
criterion_main!(benches);
