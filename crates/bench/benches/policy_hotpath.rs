//! The partner-policy hot path: processor-steps/sec of the full
//! `ThresholdBalancer` step (classification + partner selection +
//! transfers) for each `PartnerPolicy` on the complete graph.
//!
//! The collision protocol ran inline in the balancer before the
//! `PartnerPolicy` trait existed; this bench is the committed evidence
//! that the indirection is free. Like `soa_hotpath` it doubles as a CI
//! gate: run with `--gate PATH` it compares the fresh *collision*
//! number at `n = 2^14` against the `"policy_hotpath"` section of the
//! committed baseline (`BENCH_pr8.json` at the repo root) and exits
//! nonzero on a >10% regression. `--update PATH` splices the fresh
//! numbers into that file in place (re-baselining).
//!
//! Invocations:
//!
//! ```text
//! cargo bench -p pcrlb-bench --bench policy_hotpath               # full
//! cargo bench -p pcrlb-bench --bench policy_hotpath -- --quick \
//!     --json target/policy_bench.json --gate BENCH_pr8.json       # smoke
//! ```
//!
//! The JSON is flat and hand-parsed (the workspace is offline; no
//! serde): `{"bench":"policy_hotpath","unit":"proc-steps/sec",
//! "collision":{"16384":S,...},"greedy:2":{...},...}`.

use pcrlb_core::{BalancerConfig, Single, ThresholdBalancer};
use pcrlb_sim::{Backend, Engine, PolicySpec};
use std::time::Instant;

/// Sizes on the trajectory.
const SIZES: [usize; 2] = [1 << 12, 1 << 14];
/// The gate compares the collision policy's steps/sec at this size.
const GATE_N: usize = 1 << 14;
/// Relative slowdown tolerated before the gate fails.
const GATE_TOLERANCE: f64 = 0.10;
/// Every policy in the subsystem, collision first (the gated one).
const POLICIES: [&str; 5] = ["collision", "greedy:2", "beta:0.5", "probe:4", "left:2"];

/// Steady-state throughput in processor-steps/sec under the paper's
/// closed-loop generator: warm up, then best of `reps` timed slices.
fn measure(n: usize, policy: &str, steps: u64, reps: usize) -> f64 {
    let spec = PolicySpec::parse(policy).expect("known policy");
    let balancer = ThresholdBalancer::new(BalancerConfig::paper(n)).with_policy_spec(&spec);
    let mut engine = Engine::with_backend(
        n,
        0xB0A5_1998,
        Single::default_paper(),
        balancer,
        Backend::Sequential.resolve(),
    );
    engine.run(16); // warm-up: reach steady-state occupancy
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        engine.run(steps);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (n as u64 * steps) as f64 / best
}

/// Steps per timing rep, scaled so every size runs a comparable
/// wall-clock slice.
fn steps_for(n: usize, quick: bool) -> u64 {
    let base: u64 = if quick { 1 << 22 } else { 1 << 25 };
    (base / n as u64).max(8)
}

fn run_suite(quick: bool) -> Vec<(&'static str, usize, f64)> {
    let reps = if quick { 2 } else { 3 };
    let mut out = Vec::new();
    for &policy in &POLICIES {
        for &n in &SIZES {
            let sps = measure(n, policy, steps_for(n, quick), reps);
            println!("policy_hotpath/{policy}/{n}: {sps:.3e} proc-steps/s");
            out.push((policy, n, sps));
        }
    }
    out
}

/// The `"policy_hotpath"` value as a single JSON line (single-line on
/// purpose: `--update` splices it into `BENCH_pr8.json` line-wise).
fn section_json(results: &[(&str, usize, f64)]) -> String {
    let per_policy = POLICIES
        .iter()
        .map(|policy| {
            let sizes = results
                .iter()
                .filter(|(p, _, _)| p == policy)
                .map(|(_, n, sps)| format!("\"{n}\":{sps:.1}"))
                .collect::<Vec<_>>()
                .join(",");
            format!("\"{policy}\":{{{sizes}}}")
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"unit\":\"proc-steps/sec\",{per_policy}}}")
}

fn to_json(results: &[(&str, usize, f64)]) -> String {
    format!(
        "{{\"bench\":\"policy_hotpath\",\"policy_hotpath\":{}}}\n",
        section_json(results)
    )
}

/// Extracts `"policy_hotpath"` → `"collision"` → `"<n>"` from either
/// the standalone `--json` output or the spliced `BENCH_pr8.json`.
/// Hand-rolled: both formats are written by this file.
fn parse_baseline(json: &str, n: usize) -> Option<f64> {
    let sect = json.split("\"policy_hotpath\":").nth(1)?;
    let coll = sect.split("\"collision\":{").nth(1)?;
    let body = coll.split('}').next()?;
    for pair in body.split(',') {
        let mut it = pair.splitn(2, ':');
        let key = it.next()?.trim().trim_matches('"');
        let val = it.next()?.trim();
        if key == n.to_string() {
            return val.parse().ok();
        }
    }
    None
}

/// Splices the fresh `"policy_hotpath"` section into an existing
/// top-level JSON object, replacing any previous one. The section is
/// one line, so the surgery is line-wise: drop the old line, insert the
/// new one before the closing brace, fix the comma on the predecessor.
fn splice_update(path: &str, results: &[(&str, usize, f64)]) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--update: cannot read {path}: {e}"));
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| !l.trim_start().starts_with("\"policy_hotpath\":"))
        .map(String::from)
        .collect();
    let close = lines
        .iter()
        .rposition(|l| l.trim() == "}")
        .expect("--update: no closing brace in target file");
    if let Some(prev) = lines[..close].iter_mut().next_back() {
        let t = prev.trim_end().to_string();
        if !t.ends_with(',') && !t.ends_with('{') {
            *prev = format!("{t},");
        }
    }
    lines.insert(
        close,
        format!("  \"policy_hotpath\": {}", section_json(results)),
    );
    std::fs::write(path, lines.join("\n") + "\n").expect("--update: write failed");
    println!("policy_hotpath: spliced baseline into {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let quick = flag("--quick");

    let results = run_suite(quick);

    // Relative cost of each alternate policy against collision at the
    // gate size — the number the E24 table's message column pairs with.
    if let Some(base) = results
        .iter()
        .find(|(p, n, _)| *p == "collision" && *n == GATE_N)
        .map(|(_, _, s)| *s)
    {
        for &policy in &POLICIES[1..] {
            if let Some(sps) = results
                .iter()
                .find(|(p, n, _)| *p == policy && *n == GATE_N)
                .map(|(_, _, s)| *s)
            {
                println!(
                    "policy_hotpath relative @ n={GATE_N}: {policy} = {:.2}x collision",
                    sps / base
                );
            }
        }
    }

    if let Some(path) = value_of("--json") {
        std::fs::write(&path, to_json(&results)).expect("failed to write bench JSON");
        println!("policy_hotpath: wrote {path}");
    }

    if let Some(path) = value_of("--gate") {
        let fresh = results
            .iter()
            .find(|(p, n, _)| *p == "collision" && *n == GATE_N)
            .map(|(_, _, sps)| *sps)
            .expect("gate size missing from suite");
        match std::fs::read_to_string(&path) {
            Ok(json) => match parse_baseline(&json, GATE_N) {
                Some(base) => {
                    let ratio = fresh / base;
                    println!(
                        "policy_hotpath gate @ n={GATE_N}: fresh {fresh:.3e} vs baseline \
                         {base:.3e} ({:+.1}%)",
                        (ratio - 1.0) * 100.0
                    );
                    if ratio < 1.0 - GATE_TOLERANCE {
                        eprintln!(
                            "REGRESSION: policy_hotpath collision @ n={GATE_N} is {:.1}% below \
                             the committed baseline {path} (tolerance {:.0}%).\n\
                             If the slowdown is intended, re-baseline with UPDATE_BENCH=1 \
                             scripts/check.sh --stage policy.",
                            (1.0 - ratio) * 100.0,
                            GATE_TOLERANCE * 100.0
                        );
                        std::process::exit(1);
                    }
                }
                None => {
                    println!(
                        "policy_hotpath gate: no policy_hotpath section in {path} yet; \
                         skipping compare"
                    );
                }
            },
            Err(_) => {
                println!("policy_hotpath gate: no baseline at {path} (first run); skipping");
            }
        }
    }

    if let Some(path) = value_of("--update") {
        splice_update(&path, &results);
    }
}
