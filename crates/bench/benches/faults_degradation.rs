//! Criterion bench: simulation throughput under increasing message
//! loss. The fault layer is a pure hash per message, so the headline
//! number to watch is the 0%-loss row — a reliable run must cost the
//! same as before the fault subsystem existed (the model is never even
//! consulted) — while the lossy rows price the retry/backoff overhead
//! the self-healing protocol pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcrlb_core::{BalancerConfig, Single, ThresholdBalancer};
use pcrlb_sim::{FaultConfig, Runner};

const STEPS: u64 = 64;

fn bench_loss_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("faults_degradation");
    let n = 1usize << 12;
    group.throughput(Throughput::Elements(n as u64 * STEPS));
    for loss in [0.0, 0.01, 0.05, 0.10] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("loss_{loss}")),
            &loss,
            |b, &loss| {
                b.iter(|| {
                    let mut runner = Runner::new(n, 1).model(Single::default_paper()).strategy(
                        ThresholdBalancer::new(BalancerConfig::paper(n).with_retry_backoff(8)),
                    );
                    if loss > 0.0 {
                        runner = runner.faults(FaultConfig::reliable().with_loss(loss));
                    }
                    runner.run(STEPS).total_load
                });
            },
        );
    }
    group.finish();
}

fn bench_crash_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("faults_crash_churn");
    let n = 1usize << 12;
    group.throughput(Throughput::Elements(n as u64 * STEPS));
    for rate in [0.01, 0.05] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("crash_{rate}")),
            &rate,
            |b, &rate| {
                b.iter(|| {
                    Runner::new(n, 1)
                        .model(Single::default_paper())
                        .strategy(ThresholdBalancer::paper(n))
                        .faults(FaultConfig::reliable().with_crashes(rate, 32))
                        .run(STEPS)
                        .total_load
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_loss_sweep, bench_crash_churn);
criterion_main!(benches);
