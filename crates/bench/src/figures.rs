//! Figure generation: renders the headline experiments as SVG line
//! charts (`pcrlb-experiments figures --out figures/`).
//!
//! The paper has no figures of its own (it is an extended abstract), so
//! these are the growth-shape plots its theorems describe in prose:
//! max load vs `n`, communication vs `n`, the scatter trade-off, the
//! balls-into-bins ladder, and the Lemma 2 distribution.

use crate::experiments;
use crate::ExpOptions;
use pcrlb_analysis::plot::{LinePlot, Scale, Series};
use pcrlb_analysis::Table;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Pairs (x, y) from two numeric columns, keeping rows where both
/// parse and the row passes `keep`.
fn column_pairs(
    table: &Table,
    x_col: usize,
    y_col: usize,
    keep: impl Fn(&[String]) -> bool,
) -> Vec<(f64, f64)> {
    table
        .rows()
        .iter()
        .filter(|row| keep(row))
        .filter_map(|row| {
            let x = row.get(x_col)?.trim().parse::<f64>().ok()?;
            let y = row.get(y_col)?.trim().parse::<f64>().ok()?;
            Some((x, y))
        })
        .collect()
}

/// All values of a (string) column, deduplicated in first-seen order.
fn distinct_values(table: &Table, col: usize) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for row in table.rows() {
        if let Some(v) = row.get(col) {
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
    }
    out
}

fn fig_max_load(opts: &ExpOptions) -> (String, String) {
    let t = experiments::theorem1::run(opts);
    let plot = LinePlot::new(
        "Theorem 1 — worst max load vs n (T = (log log n)^2)",
        "processors n",
        "worst max load",
    )
    .x_scale(Scale::Log2)
    .series(Series::new(
        "balanced (paper)",
        column_pairs(&t, 0, 3, |_| true),
    ))
    .series(Series::new("unbalanced", column_pairs(&t, 0, 6, |_| true)))
    .series(Series::new("bound T", column_pairs(&t, 0, 2, |_| true)));
    ("fig1_max_load.svg".into(), plot.render())
}

fn fig_communication(opts: &ExpOptions) -> (String, String) {
    let t = experiments::communication::run(opts);
    let mut plot = LinePlot::new(
        "Communication — control messages per step vs n",
        "processors n",
        "messages per step",
    )
    .x_scale(Scale::Log2)
    .y_scale(Scale::Log2);
    for strategy in distinct_values(&t, 1) {
        let pts = column_pairs(&t, 0, 2, |row| row[1] == strategy)
            .into_iter()
            .map(|(x, y)| (x, y.max(0.01)))
            .collect();
        plot = plot.series(Series::new(strategy, pts));
    }
    ("fig2_communication.svg".into(), plot.render())
}

fn fig_scatter(opts: &ExpOptions) -> (String, String) {
    let t = experiments::scatter::run(opts);
    let mut plot = LinePlot::new(
        "Section 5 trade-off — scatter vs threshold",
        "processors n",
        "worst max load",
    )
    .x_scale(Scale::Log2);
    for variant in distinct_values(&t, 3) {
        let pts = column_pairs(&t, 0, 4, |row| row[3] == variant);
        plot = plot.series(Series::new(variant, pts));
    }
    ("fig3_scatter.svg".into(), plot.render())
}

fn fig_static_ladder(opts: &ExpOptions) -> (String, String) {
    let t = experiments::comparison::run_static(opts);
    let mut plot = LinePlot::new(
        "Static balls-into-bins ladder (m = n)",
        "bins n",
        "mean max load",
    )
    .x_scale(Scale::Log2);
    for game in distinct_values(&t, 1) {
        let pts = column_pairs(&t, 0, 2, |row| row[1] == game);
        plot = plot.series(Series::new(game, pts));
    }
    ("fig4_static_games.svg".into(), plot.render())
}

fn fig_lemma2(opts: &ExpOptions) -> (String, String) {
    let t = experiments::unbalanced::run(opts);
    // Only the numeric k rows (the summary rows have non-numeric k).
    let pred = column_pairs(&t, 0, 1, |_| true);
    let meas = column_pairs(&t, 0, 2, |_| true);
    let plot = LinePlot::new(
        "Lemma 2 — unbalanced load distribution",
        "load k",
        "P(load = k)",
    )
    .y_scale(Scale::Log2)
    .series(Series::new("predicted (Markov chain)", pred))
    .series(Series::new("measured", meas));
    ("fig5_lemma2.svg".into(), plot.render())
}

/// Generates every figure into `dir`, returning the written paths.
pub fn generate(opts: &ExpOptions, dir: &Path) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let figures = [
        fig_max_load(opts),
        fig_communication(opts),
        fig_scatter(opts),
        fig_static_ladder(opts),
        fig_lemma2(opts),
    ];
    let mut written = Vec::new();
    for (name, svg) in figures {
        let path = dir.join(name);
        fs::write(&path, svg)?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_render_and_write() {
        let dir = std::env::temp_dir().join("pcrlb_figs_test");
        let written = generate(&ExpOptions::quick(), &dir).expect("figures written");
        assert_eq!(written.len(), 5);
        for path in &written {
            let svg = fs::read_to_string(path).unwrap();
            assert!(svg.starts_with("<svg"), "{path:?}");
            assert!(svg.ends_with("</svg>"), "{path:?}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn column_pair_helpers() {
        let mut t = Table::new(&["n", "who", "v"]);
        t.row(&["256".into(), "a".into(), "1.5".into()]);
        t.row(&["512".into(), "b".into(), "2.5".into()]);
        t.row(&["x".into(), "a".into(), "9".into()]);
        assert_eq!(column_pairs(&t, 0, 2, |r| r[1] == "a"), vec![(256.0, 1.5)]);
        assert_eq!(
            distinct_values(&t, 1),
            vec!["a".to_string(), "b".to_string()]
        );
    }
}
