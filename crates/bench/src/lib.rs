//! # pcrlb-bench — experiment harness
//!
//! One function per experiment in `DESIGN.md` §4 (E1–E20), each
//! returning an [`pcrlb_analysis::Table`] whose rows are recorded in
//! `EXPERIMENTS.md`. The `pcrlb-experiments` binary exposes them as
//! subcommands; integration tests run them in `quick` mode.
//!
//! The paper is a theory extended abstract without measurement tables,
//! so the experiments verify the *shape* of each theorem/lemma: growth
//! rates across `n`, constants staying constant, and who-beats-whom
//! orderings against the baselines.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod figures;

/// Options shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Reduced sweeps/trials for CI and tests.
    pub quick: bool,
    /// Master seed; every trial derives its own stream from it.
    pub seed: u64,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            quick: false,
            seed: 0xBFAE_1998,
        }
    }
}

impl ExpOptions {
    /// Quick-mode options (used by tests).
    pub fn quick() -> Self {
        ExpOptions {
            quick: true,
            ..Default::default()
        }
    }

    /// The processor-count sweep used by growth-shape experiments.
    pub fn n_sweep(&self) -> Vec<usize> {
        if self.quick {
            vec![1 << 8, 1 << 10, 1 << 12]
        } else {
            vec![1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16]
        }
    }

    /// Independent trials per configuration.
    pub fn trials(&self) -> u64 {
        if self.quick {
            3
        } else {
            10
        }
    }

    /// Steps to simulate after warm-up at size `n` (longer runs for
    /// smaller `n`, keeping total work roughly constant).
    pub fn steps_for(&self, n: usize) -> u64 {
        let base: u64 = if self.quick { 1 << 20 } else { 1 << 23 };
        (base / n as u64).clamp(200, 16_384)
    }
}
