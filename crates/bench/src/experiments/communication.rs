//! E8 — communication: the threshold algorithm spends
//! `O(n/(log n)^{log log n − 1})` messages per *phase*, while
//! balls-into-bins style allocation spends `Θ(n)` messages per *step*.
//!
//! On identical arrival streams we report control messages per step and
//! per processor-step for the paper's algorithm, arrival-time 2-choice
//! placement, and RSU equalization. The headline is the ratio column:
//! the threshold algorithm's per-step traffic is orders of magnitude
//! below `n`.

use crate::ExpOptions;
use pcrlb_analysis::{fmt_f, fmt_rate, Table};
use pcrlb_baselines::{DChoiceAllocation, RsuEqualize};
use pcrlb_core::{Single, ThresholdBalancer};
use pcrlb_sim::{MaxLoadProbe, MessageRateProbe, ProbeOutput, Runner, Strategy};

fn measure<S: Strategy>(n: usize, seed: u64, steps: u64, strategy: S) -> (f64, usize) {
    let report = Runner::new(n, seed)
        .model(Single::default_paper())
        .strategy(strategy)
        .probe(MaxLoadProbe::new())
        .probe(MessageRateProbe::new())
        .run(steps);
    let msgs = match report.probe("message_rate") {
        Some(ProbeOutput::MessageRate { window, .. }) => window.control_total(),
        _ => 0,
    };
    (
        msgs as f64 / steps as f64,
        report.worst_max_load().unwrap_or(0),
    )
}

/// Runs E8 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&[
        "n",
        "strategy",
        "msgs/step",
        "msgs/(n*step)",
        "worst max load",
    ]);
    for n in opts.n_sweep() {
        let steps = opts.steps_for(n);
        let seed = opts.seed ^ (0xE8 << 40) ^ n as u64;
        let rows: Vec<(&str, f64, usize)> = vec![
            {
                let (m, w) = measure(n, seed, steps, ThresholdBalancer::paper(n));
                ("threshold (paper)", m, w)
            },
            {
                let (m, w) = measure(n, seed, steps, DChoiceAllocation::new(2));
                ("2-choice alloc", m, w)
            },
            {
                let (m, w) = measure(n, seed, steps, RsuEqualize::classic());
                ("rsu equalize", m, w)
            },
        ];
        for (name, msgs_per_step, worst) in rows {
            table.row(&[
                n.to_string(),
                name.to_string(),
                fmt_f(msgs_per_step, 2),
                fmt_rate(msgs_per_step / n as f64),
                worst.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_spends_orders_of_magnitude_fewer_messages() {
        let n = 1 << 10;
        let steps = 1000;
        let (paper_msgs, _) = measure(n, 7, steps, ThresholdBalancer::paper(n));
        let (alloc_msgs, _) = measure(n, 7, steps, DChoiceAllocation::new(2));
        assert!(
            paper_msgs * 20.0 < alloc_msgs,
            "threshold {paper_msgs}/step vs 2-choice {alloc_msgs}/step"
        );
    }
}
