//! E24 — the policy × topology matrix: every partner-selection policy
//! on every communication graph, under both the paper's closed-loop
//! generation and an overloaded open-loop stream.
//!
//! The collision protocol is one point in a design space with two
//! axes: *how* a heavy processor picks candidate partners (collision
//! trees, d independent choices, (1+β) mixing, adaptive probing,
//! always-go-left slot groups) and *where* it is allowed to look
//! (complete graph, ring, torus, hypercube, seeded random-regular).
//! This experiment sweeps the full matrix and reports, per cell, the
//! final max load, the total control traffic, and the mean ring
//! distance a matched partner sits away — the locality cost of the
//! topology restriction. Each cell runs on both the sequential and
//! pooled backends and the reports are asserted bit-identical before
//! the row is emitted, extending the E23 determinism check to every
//! policy × topology pair.
//!
//! Load models: `single` is the paper's closed-loop generator (§1.2);
//! `poisson:1.2` is an open-loop stream at ρ = 1.2 — sustained
//! overload, so total tasks m grows far beyond n (the m ≫ n regime)
//! and the policies are compared where balancing actually has to move
//! work every phase.

use crate::ExpOptions;
use pcrlb_analysis::{fmt_f, Table};
use pcrlb_core::{BalancerConfig, Single, ThresholdBalancer, TrafficModel, TrafficSpec};
use pcrlb_sim::{Backend, LoadModel, PolicySpec, RunReport, Runner, TopologySpec};

/// Per-cell measurements for one (model, policy, topology) triple.
struct Cell {
    max_load: usize,
    messages: u64,
    mean_dist: Option<f64>,
    match_rate: Option<f64>,
}

/// The load models swept: the paper's closed loop and an overloaded
/// open loop (m ≫ n).
#[derive(Clone, Copy)]
enum Model {
    Single,
    Poisson(f64),
}

impl Model {
    fn label(self) -> String {
        match self {
            Model::Single => "single".into(),
            Model::Poisson(rho) => format!("poisson:{rho:.1}"),
        }
    }
}

fn run_cell(
    n: usize,
    seed: u64,
    steps: u64,
    model: Model,
    policy: &PolicySpec,
    topo: &TopologySpec,
    backend: Backend,
) -> (RunReport, Option<f64>, Option<f64>) {
    let balancer = ThresholdBalancer::new(BalancerConfig::paper(n))
        .with_topology(topo.build(n).expect("every swept topology builds at n"))
        .with_policy_spec(policy);
    fn go<M: LoadModel + Sync>(
        n: usize,
        seed: u64,
        steps: u64,
        m: M,
        balancer: ThresholdBalancer,
        backend: Backend,
    ) -> (RunReport, Option<f64>, Option<f64>) {
        let (report, _world, strategy) = Runner::new(n, seed)
            .model(m)
            .strategy(balancer)
            .backend(backend)
            .run_detailed(steps);
        let stats = strategy.stats();
        (report, stats.mean_partner_distance(), stats.match_rate())
    }
    match model {
        Model::Single => go(n, seed, steps, Single::default_paper(), balancer, backend),
        Model::Poisson(rho) => go(
            n,
            seed,
            steps,
            TrafficModel::new(TrafficSpec::poisson(rho), n).expect("valid spec"),
            balancer,
            backend,
        ),
    }
}

fn measure(
    opts: &ExpOptions,
    n: usize,
    steps: u64,
    model: Model,
    policy: &PolicySpec,
    topo: &TopologySpec,
) -> Cell {
    let seed = opts.seed ^ 0xE24 ^ ((n as u64) << 24);
    let (mut seq, dist, rate) = run_cell(n, seed, steps, model, policy, topo, Backend::Sequential);
    let (mut pooled, _, _) = run_cell(n, seed, steps, model, policy, topo, Backend::Pooled(4));
    seq.backend = "";
    pooled.backend = "";
    assert_eq!(
        seq,
        pooled,
        "sequential and pooled diverged: model={}, policy={}, topology={}",
        model.label(),
        policy.label(),
        topo.label(),
    );
    Cell {
        max_load: seq.max_load,
        messages: seq.messages.total(),
        mean_dist: dist,
        match_rate: rate,
    }
}

/// Runs E24 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let (n, min_steps) = if opts.quick {
        (1 << 9, 300)
    } else {
        (1 << 12, 1_000)
    };
    let steps = opts.steps_for(n).max(min_steps).min(2_000);
    let policies: Vec<PolicySpec> = ["collision", "greedy:2", "beta:0.5", "probe:4", "left:2"]
        .iter()
        .map(|s| PolicySpec::parse(s).expect("known policy"))
        .collect();
    let topologies: Vec<TopologySpec> = ["complete", "ring", "torus", "hypercube", "regular:4"]
        .iter()
        .map(|s| TopologySpec::parse(s).expect("known topology"))
        .collect();
    let models = [Model::Single, Model::Poisson(1.2)];

    let mut table = Table::new(&[
        "model",
        "policy",
        "topology",
        "n",
        "steps",
        "max_load",
        "messages",
        "mean_dist",
        "match_rate",
        "seq==pooled",
    ]);
    for &model in &models {
        for policy in &policies {
            for topo in &topologies {
                let cell = measure(opts, n, steps, model, policy, topo);
                table.row(&[
                    model.label(),
                    policy.label(),
                    topo.label(),
                    n.to_string(),
                    steps.to_string(),
                    cell.max_load.to_string(),
                    cell.messages.to_string(),
                    cell.mean_dist.map_or("-".into(), |d| fmt_f(d, 1)),
                    cell.match_rate.map_or("-".into(), |r| fmt_f(r, 2)),
                    "yes".into(), // measure() asserted bit-equality
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The complete graph gives partners a mean ring distance near n/4
    /// (uniform over the ring); the ring topology pins it to 1. Any
    /// policy that ignores the topology restriction would break this.
    #[test]
    fn locality_tracks_topology() {
        let opts = ExpOptions::quick();
        let n = 1 << 9;
        let policy = PolicySpec::parse("greedy:2").unwrap();
        let complete = measure(
            &opts,
            n,
            400,
            Model::Poisson(1.2),
            &policy,
            &TopologySpec::parse("complete").unwrap(),
        );
        let ring = measure(
            &opts,
            n,
            400,
            Model::Poisson(1.2),
            &policy,
            &TopologySpec::parse("ring").unwrap(),
        );
        let far = complete.mean_dist.expect("overload forces matches");
        let near = ring.mean_dist.expect("overload forces matches");
        assert!(
            (near - 1.0).abs() < f64::EPSILON,
            "ring partners must be adjacent, got {near}"
        );
        assert!(
            far > n as f64 / 8.0,
            "complete-graph partners should be spread, got {far}"
        );
    }
}
