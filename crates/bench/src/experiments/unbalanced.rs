//! E2 — Lemma 2: in the unbalanced system a node holds load `k` with
//! probability `(1/c)^k` and the system load is `O(n)` w.h.p.
//!
//! We run the `Single` model without balancing, histogram the loads at
//! sampled (post-warm-up) times, and compare against the exact
//! birth–death steady state `v_k = (1−r)·r^k` with
//! `r = p(1−q)/(q(1−p))`. A least-squares fit on the log-histogram
//! recovers the ratio; the table shows predicted vs measured per `k`
//! plus the fitted ratio, its R², and per-processor system load vs the
//! exact expectation.

use crate::ExpOptions;
use pcrlb_analysis::{
    fit_geometric_ratio, fmt_f, fmt_rate, geometric_fit_r2, BirthDeath, Histogram, Table,
};
use pcrlb_core::Single;
use pcrlb_sim::{LoadSnapshotProbe, ProbeOutput, Runner, Unbalanced};

/// Runs E2 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let n = if opts.quick { 1 << 10 } else { 1 << 14 };
    let model = Single::default_paper();
    let chain = BirthDeath::from_single(model.p, model.q);
    let steps = opts.steps_for(n) * 2;
    let warmup = steps / 2;

    let mut hist = Histogram::new(64);
    let mut load_sum = 0f64;
    let mut samples = 0u64;
    for trial in 0..opts.trials() {
        let seed = opts.seed ^ (0xE2 << 40) ^ trial;
        // Sample every 32 steps (post-warm-up) to decorrelate.
        let report = Runner::new(n, seed)
            .model(model)
            .strategy(Unbalanced)
            .probe(LoadSnapshotProbe::new(32, warmup, 64))
            .run(steps);
        if let Some(ProbeOutput::LoadHistogram {
            counts,
            samples: s,
            load_sum: ls,
        }) = report.probe("load_snapshot")
        {
            for (k, &c) in counts.iter().enumerate() {
                hist.record_n(k as u64, c);
            }
            samples += s;
            load_sum += *ls as f64 / n as f64;
        }
    }

    let mut table = Table::new(&["k", "predicted P(load=k)", "measured", "abs err"]);
    let pmf = hist.pmf();
    for k in 0..10usize {
        let pred = chain.pmf(k);
        let meas = pmf.get(k).copied().unwrap_or(0.0);
        table.row(&[
            k.to_string(),
            fmt_rate(pred),
            fmt_rate(meas),
            fmt_rate((pred - meas).abs()),
        ]);
    }

    // Summary rows (the table renderer doesn't do footers; encode them
    // as labelled rows so EXPERIMENTS.md captures everything).
    let counts: Vec<u64> = (0..20).map(|k| hist.bucket(k).unwrap_or(0)).collect();
    let fitted = fit_geometric_ratio(&counts).unwrap_or(f64::NAN);
    let r2 = geometric_fit_r2(&counts).unwrap_or(f64::NAN);
    table.row(&[
        "fit r".into(),
        fmt_f(chain.ratio(), 4),
        fmt_f(fitted, 4),
        fmt_f(r2, 4), // abs-err column reused for R²
    ]);
    let mean_load = load_sum / samples.max(1) as f64;
    table.row(&[
        "E[load]/proc".into(),
        fmt_f(chain.expected_load(), 3),
        fmt_f(mean_load, 3),
        fmt_f((chain.expected_load() - mean_load).abs(), 3),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_distribution_matches_markov_chain() {
        let table = run(&ExpOptions::quick());
        assert_eq!(table.len(), 12);
    }
}
