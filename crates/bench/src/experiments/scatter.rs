//! E14 — the §5 scatter variant: "throw all load into the air" every
//! `log log n` steps and re-place it with the collision-style 2-choice
//! rule, obtaining max load `O(log log n)` instead of
//! `O((log log n)^2)` — at the cost of `Θ(m)` messages per interval and
//! the loss of task locality.
//!
//! The table shows both variants across `n`: the scatter max load
//! tracking `log log n`, the threshold max load tracking
//! `(log log n)^2`, and the message columns exposing the price.

use crate::ExpOptions;
use pcrlb_analysis::{fmt_f, fmt_rate, Table};
use pcrlb_core::{BalancerConfig, ScatterBalancer, Single, ThresholdBalancer};
use pcrlb_sim::{loglog, MaxLoadProbe, Runner, Strategy};

fn observe<S: Strategy>(n: usize, seed: u64, steps: u64, strategy: S) -> (usize, f64, f64) {
    let report = Runner::new(n, seed)
        .model(Single::default_paper())
        .strategy(strategy)
        .probe(MaxLoadProbe::after_warmup(steps / 2))
        .run(steps);
    (
        report.worst_max_load().unwrap_or(0),
        report.messages.control_total() as f64 / steps as f64,
        report.completions.locality(),
    )
}

/// Runs E14 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&[
        "n",
        "llog n",
        "T",
        "variant",
        "worst max",
        "msgs/step",
        "locality",
    ]);
    for n in opts.n_sweep() {
        let t = BalancerConfig::paper(n).theorem1_bound();
        let steps = opts.steps_for(n);
        let seed = opts.seed ^ (0xE14 << 40) ^ n as u64;
        let (s_max, s_msgs, s_loc) = observe(n, seed, steps, ScatterBalancer::paper(n));
        let (t_max, t_msgs, t_loc) = observe(n, seed, steps, ThresholdBalancer::paper(n));
        table.row(&[
            n.to_string(),
            loglog(n).to_string(),
            t.to_string(),
            "scatter".into(),
            s_max.to_string(),
            fmt_f(s_msgs, 1),
            fmt_rate(s_loc),
        ]);
        table.row(&[
            n.to_string(),
            loglog(n).to_string(),
            t.to_string(),
            "threshold".into(),
            t_max.to_string(),
            fmt_f(t_msgs, 1),
            fmt_rate(t_loc),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_trades_messages_for_load() {
        let n = 1 << 10;
        let (s_max, s_msgs, s_loc) = observe(n, 3, 2000, ScatterBalancer::paper(n));
        let (t_max, t_msgs, t_loc) = observe(n, 3, 2000, ThresholdBalancer::paper(n));
        assert!(s_max <= t_max, "scatter max {s_max} vs threshold {t_max}");
        assert!(
            s_msgs > 10.0 * t_msgs.max(0.1),
            "scatter should pay far more messages ({s_msgs} vs {t_msgs})"
        );
        assert!(s_loc < t_loc);
    }
}
