//! E9 — the `Geometric` and `Multi` generation models: the paper's
//! analysis carries over with maximum load bounded by `k·(log log n)^2`
//! and `c·(log log n)^2` respectively.
//!
//! The table reports the worst observed max load against `k·T` / `c·T`
//! for growing `n`.

use crate::ExpOptions;
use pcrlb_analysis::{fmt_f, Table, WhpCheck};
use pcrlb_core::{BalancerConfig, Geometric, Multi, ThresholdBalancer};
use pcrlb_sim::{LoadModel, MaxLoadProbe, Runner};

fn sweep_model<M: LoadModel + Clone + Sync>(
    opts: &ExpOptions,
    table: &mut Table,
    label: &str,
    factor: usize,
    model: M,
    tag: u64,
) {
    for n in opts.n_sweep() {
        let cfg = BalancerConfig::paper(n);
        let t = cfg.theorem1_bound();
        let bound = factor * t;
        let steps = opts.steps_for(n);
        let warmup = steps / 2;
        let mut check = WhpCheck::new();
        for trial in 0..opts.trials() {
            let seed = opts.seed ^ (tag << 40) ^ (trial << 16) ^ n as u64;
            let worst = Runner::new(n, seed)
                .model(model.clone())
                .strategy(ThresholdBalancer::new(cfg.clone()))
                .probe(MaxLoadProbe::after_warmup(warmup))
                .run(steps)
                .worst_max_load()
                .unwrap_or(0);
            check.record(worst as f64);
        }
        table.row(&[
            label.to_string(),
            n.to_string(),
            t.to_string(),
            bound.to_string(),
            check.worst().unwrap_or(0.0).to_string(),
            fmt_f(check.worst().unwrap_or(0.0) / bound as f64, 3),
        ]);
    }
}

/// Runs E9 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&[
        "model",
        "n",
        "T",
        "bound (factor*T)",
        "worst max",
        "worst/bound",
    ]);
    sweep_model(
        opts,
        &mut table,
        "geometric(k=2)",
        2,
        Geometric::new(2).expect("valid"),
        0xE9A,
    );
    sweep_model(
        opts,
        &mut table,
        "geometric(k=4)",
        4,
        Geometric::new(4).expect("valid"),
        0xE9B,
    );
    // Multi with c = 3: P(1)=0.25, P(2)=0.15, P(3)=0.05; E = 0.7 < 1.
    sweep_model(
        opts,
        &mut table,
        "multi(c=3)",
        3,
        Multi::new(vec![0.25, 0.15, 0.05]).expect("valid"),
        0xE9C,
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_model_stays_within_k_t_bound() {
        let opts = ExpOptions::quick();
        let mut table = Table::new(&["m", "n", "T", "b", "w", "r"]);
        sweep_model(
            &opts,
            &mut table,
            "geometric(k=2)",
            2,
            Geometric::new(2).unwrap(),
            0x77,
        );
        assert_eq!(table.len(), 3);
    }
}
