//! E23 — open-loop service simulation: sojourn percentiles vs offered
//! load, invariant across execution backends.
//!
//! The traffic front-end replaces the paper's closed-loop generation
//! with Poisson arrivals at offered load ρ per processor and unit-rate
//! service, the regime a production service lives in. The experiment
//! sweeps ρ toward saturation and reports the streaming log-bucketed
//! sojourn percentiles (p50/p99/p999/max); each configuration runs on
//! both the sequential and the pooled backend and the two reports are
//! asserted bit-identical before a row is emitted, so the table doubles
//! as an end-to-end determinism check for the open-loop path.

use crate::ExpOptions;
use pcrlb_analysis::{fmt_f, Table};
use pcrlb_core::{ThresholdBalancer, TrafficModel, TrafficSpec};
use pcrlb_sim::{Backend, ProbeOutput, RunReport, Runner, SojournProbe};

/// Sojourn summary for one `(n, rho)` configuration.
struct Row {
    completed: u64,
    mean: f64,
    p50: u64,
    p99: u64,
    p999: u64,
    pmax: u64,
}

fn run_backend(n: usize, seed: u64, steps: u64, rho: f64, backend: Backend) -> RunReport {
    Runner::new(n, seed)
        .model(TrafficModel::new(TrafficSpec::poisson(rho), n).expect("valid spec"))
        .strategy(ThresholdBalancer::paper(n))
        .backend(backend)
        .probe(SojournProbe::new())
        .run(steps)
}

fn measure(opts: &ExpOptions, n: usize, steps: u64, rho: f64) -> Row {
    let seed = opts.seed ^ 0xE23 ^ ((n as u64) << 20) ^ (rho.to_bits() >> 40);
    let mut seq = run_backend(n, seed, steps, rho, Backend::Sequential);
    let mut pooled = run_backend(n, seed, steps, rho, Backend::Pooled(4));
    seq.backend = "";
    pooled.backend = "";
    assert_eq!(
        seq, pooled,
        "sequential and pooled open-loop reports diverged at n={n}, rho={rho}"
    );
    match seq.probe("sojourn") {
        Some(&ProbeOutput::Sojourn {
            count,
            mean,
            p50,
            p99,
            p999,
            pmax,
            ..
        }) => Row {
            completed: count,
            mean,
            p50,
            p99,
            p999,
            pmax,
        },
        other => panic!("unexpected probe output: {other:?}"),
    }
}

/// Runs E23 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let (sizes, rhos, min_steps): (&[usize], &[f64], u64) = if opts.quick {
        (&[1 << 9, 1 << 10], &[0.7, 0.9], 300)
    } else {
        (&[1 << 14, 1 << 16, 1 << 18], &[0.5, 0.7, 0.9, 0.95], 2_000)
    };
    let mut table = Table::new(&[
        "n",
        "rho",
        "steps",
        "completed",
        "mean",
        "p50",
        "p99",
        "p999",
        "max",
        "seq==pooled",
    ]);
    for &n in sizes {
        // Queue relaxation near saturation takes ~1/(1-rho)^2 steps, so
        // the sweep never drops below `min_steps` even at large n.
        let steps = opts.steps_for(n).max(min_steps);
        for &rho in rhos {
            let row = measure(opts, n, steps, rho);
            table.row(&[
                n.to_string(),
                fmt_f(rho, 2),
                steps.to_string(),
                row.completed.to_string(),
                fmt_f(row.mean, 2),
                row.p50.to_string(),
                row.p99.to_string(),
                row.p999.to_string(),
                row.pmax.to_string(),
                "yes".into(), // measure() asserted bit-equality
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sojourn_tail_grows_with_rho() {
        let opts = ExpOptions::quick();
        let light = measure(&opts, 1 << 9, 600, 0.5);
        let heavy = measure(&opts, 1 << 9, 600, 0.95);
        assert!(light.completed > 0 && heavy.completed > 0);
        assert!(
            heavy.p999 > light.p999,
            "p999 should grow toward saturation: {} vs {}",
            light.p999,
            heavy.p999
        );
        assert!(heavy.mean > light.mean);
    }
}
