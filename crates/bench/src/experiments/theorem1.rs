//! E1 — Theorem 1: under the `Single` model the balanced system's
//! maximum load is `O((log log n)^2)` w.h.p. at any fixed time.
//!
//! For each `n` we run several independent trials, track the worst
//! maximum load observed after warm-up, and compare against the
//! configuration's `T` (the Theorem 1 bound, `= (log log n)^2` modulo
//! small-`n` clamping). The table shows `worst/T` staying bounded by a
//! small constant while `n` grows 256×, and the unbalanced max load
//! growing like `log n` for contrast.

use crate::ExpOptions;
use pcrlb_analysis::{fmt_f, Table, WhpCheck};
use pcrlb_core::{BalancerConfig, Single, ThresholdBalancer};
use pcrlb_sim::{loglog, MaxLoadProbe, Runner, Unbalanced};

/// Runs E1 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&[
        "n",
        "loglog n",
        "T",
        "bal worst",
        "bal mean",
        "worst/T",
        "unbal worst",
        "viol@2T",
    ]);
    for n in opts.n_sweep() {
        let cfg = BalancerConfig::paper(n);
        let t = cfg.theorem1_bound();
        let steps = opts.steps_for(n);
        let warmup = steps / 2;

        let mut balanced = WhpCheck::new();
        let mut unbalanced = WhpCheck::new();
        for trial in 0..opts.trials() {
            let seed = opts.seed ^ (trial << 32) ^ n as u64;
            let worst = Runner::new(n, seed)
                .model(Single::default_paper())
                .strategy(ThresholdBalancer::new(cfg.clone()))
                .probe(MaxLoadProbe::after_warmup(warmup))
                .run(steps)
                .worst_max_load()
                .unwrap_or(0);
            balanced.record(worst as f64);

            let worst_u = Runner::new(n, seed)
                .model(Single::default_paper())
                .strategy(Unbalanced)
                .probe(MaxLoadProbe::after_warmup(warmup))
                .run(steps)
                .worst_max_load()
                .unwrap_or(0);
            unbalanced.record(worst_u as f64);
        }

        table.row(&[
            n.to_string(),
            loglog(n).to_string(),
            t.to_string(),
            balanced.worst().unwrap_or(0.0).to_string(),
            fmt_f(balanced.mean(), 1),
            fmt_f(balanced.worst().unwrap_or(0.0) / t as f64, 2),
            unbalanced.worst().unwrap_or(0.0).to_string(),
            fmt_f(balanced.violation_rate(2.0 * t as f64), 3),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_bounds_hold() {
        let table = run(&ExpOptions::quick());
        assert_eq!(table.len(), 3);
    }
}
