//! E4/E5/E6 — the per-phase lemmas.
//!
//! * **E4 (Lemma 4)** — the number of heavy processors at a phase
//!   boundary is `O(n/(log n)^{log log n})`: astronomically small, so
//!   the measured heavy counts should be tiny fractions of `n` and
//!   *shrink* relative to `n` as `n` grows.
//! * **E5 (Lemma 6)** — w.h.p. every heavy processor finds a light
//!   partner within its phase: the measured match rate should be ≈ 1.
//! * **E6 (Lemma 7)** — the expected number of collision-game requests
//!   per heavy processor is constant: the measured mean should hover
//!   near 1 and not grow with `n`.

use crate::ExpOptions;
use pcrlb_analysis::{fmt_f, fmt_rate, Summary, Table};
use pcrlb_core::{BalancerConfig, Single, ThresholdBalancer};
use pcrlb_sim::{PhaseProbe, ProbeOutput, Runner};

struct PhaseAggregates {
    n: usize,
    phases: u64,
    mean_heavy: f64,
    max_heavy: usize,
    heavy_fraction: f64,
    match_rate: f64,
    failed_total: u64,
    requests_per_heavy: f64,
    games: u64,
}

fn collect(opts: &ExpOptions, n: usize) -> PhaseAggregates {
    let cfg = BalancerConfig::paper(n);
    let steps = opts.steps_for(n) * 2;
    let mut heavy = Summary::new();
    let mut max_heavy = 0usize;
    let mut phases = 0u64;
    let mut matched = 0u64;
    let mut heavy_total = 0u64;
    let mut failed = 0u64;
    let mut requests = 0u64;
    let mut games = 0u64;
    for trial in 0..opts.trials() {
        let seed = opts.seed ^ (0xE456 << 32) ^ (trial << 8) ^ n as u64;
        let (report, _world, balancer) = Runner::new(n, seed)
            .model(Single::default_paper())
            .strategy(ThresholdBalancer::new(cfg.clone()))
            .probe(PhaseProbe::new())
            .run_detailed(steps);
        let warm_phase = (steps / cfg.phase_length) / 2;
        let reports = match report.probe("phases") {
            Some(ProbeOutput::Phases(reports)) => reports.clone(),
            _ => Vec::new(),
        };
        for report in &reports {
            if report.phase < warm_phase {
                continue; // skip the fill-up transient
            }
            phases += 1;
            heavy.push(report.heavy as f64);
            max_heavy = max_heavy.max(report.heavy);
            heavy_total += report.heavy as u64;
            matched += report.matched as u64;
            failed += report.failed as u64;
            requests += report.requests;
        }
        games += balancer.stats().games_played;
    }
    PhaseAggregates {
        n,
        phases,
        mean_heavy: heavy.mean(),
        max_heavy,
        heavy_fraction: heavy.mean() / n as f64,
        match_rate: if heavy_total == 0 {
            1.0
        } else {
            matched as f64 / heavy_total as f64
        },
        failed_total: failed,
        requests_per_heavy: if heavy_total == 0 {
            0.0
        } else {
            requests as f64 / heavy_total as f64
        },
        games,
    }
}

/// E4 — heavy-processor counts per phase.
pub fn run_heavy_count(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&["n", "phases", "mean heavy", "max heavy", "heavy/n"]);
    for n in opts.n_sweep() {
        let a = collect(opts, n);
        table.row(&[
            a.n.to_string(),
            a.phases.to_string(),
            fmt_f(a.mean_heavy, 2),
            a.max_heavy.to_string(),
            fmt_rate(a.heavy_fraction),
        ]);
    }
    table
}

/// E5 — phase success (partner found within the phase).
pub fn run_phase_success(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&["n", "phases", "match rate", "failures"]);
    for n in opts.n_sweep() {
        let a = collect(opts, n);
        table.row(&[
            a.n.to_string(),
            a.phases.to_string(),
            fmt_rate(a.match_rate),
            a.failed_total.to_string(),
        ]);
    }
    table
}

/// E6 — requests per heavy processor (Lemma 7's constant).
pub fn run_request_count(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&["n", "requests/heavy", "games played"]);
    for n in opts.n_sweep() {
        let a = collect(opts, n);
        table.row(&[
            a.n.to_string(),
            fmt_f(a.requests_per_heavy, 3),
            a.games.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_are_consistent() {
        let opts = ExpOptions::quick();
        let a = collect(&opts, 1 << 10);
        assert!(a.phases > 0);
        assert!(
            a.heavy_fraction < 0.2,
            "heavy fraction {}",
            a.heavy_fraction
        );
        assert!(a.match_rate >= 0.9, "match rate {}", a.match_rate);
        // Lemma 7: constant-ish requests per heavy (0 when no heavies).
        assert!(a.requests_per_heavy < 6.0);
    }
}
