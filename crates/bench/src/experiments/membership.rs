//! E25 — elastic membership: reconvergence after a 2× membership step.
//!
//! The churn template (self-stabilizing balls-into-bins in batches)
//! says a balanced system should absorb a batch of joins or departures
//! and return to its steady profile within a number of *phases* that
//! tracks the `(log log n)^2` envelope, not the batch size. We warm a
//! system to steady state, fire a 2× membership step through the
//! deterministic churn schedule — shrink (`n → n/2`, every survivor
//! inherits a departed queue) and grow (`n/2 → n`, half the machine
//! joins empty) — and count the phases until the system reconverges:
//!
//! - **shrink**: live max load back under `2·T(n/2)`, the recovery
//!   threshold E15 uses;
//! - **grow**: the joiners carry at least half their fair share of the
//!   total load (they started with none).
//!
//! Every measured point also runs the identical churn schedule on the
//! pooled and loopback-net backends and fingerprints the reports: the
//! membership subsystem must not cost the determinism contract.

use crate::ExpOptions;
use pcrlb_analysis::Table;
use pcrlb_core::{BalancerConfig, Single, ThresholdBalancer};
use pcrlb_sim::{
    Backend, ChurnSpec, MaxLoadProbe, MembershipProbe, ProbeOutput, RunReport, Runner,
};

/// Steps the system runs before the membership step fires.
const WARM: u64 = 200;

/// Which way the 2× step goes.
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Shrink,
    Grow,
}

impl Direction {
    fn schedule(self, n: usize) -> ChurnSpec {
        let half = n / 2;
        match self {
            // Full machine, then half of it departs at WARM.
            Direction::Shrink => ChurnSpec::parse(&format!("step:{WARM},{half}")),
            // Half machine from step 0, the other half joins at WARM.
            Direction::Grow => ChurnSpec::parse(&format!("step:0,{half};step:{WARM},{n}")),
        }
        .expect("static schedule parses")
    }

    fn label(self) -> &'static str {
        match self {
            Direction::Shrink => "shrink 2x",
            Direction::Grow => "grow 2x",
        }
    }
}

/// Runs the warm-up, fires the step, then continues in phase-length
/// segments until the reconvergence criterion holds. Returns the phase
/// count (`None` if the limit was hit).
fn phases_to_reconverge(n: usize, seed: u64, dir: Direction, limit: u64) -> Option<u64> {
    let cfg = BalancerConfig::paper(n);
    let phase_len = cfg.phase_length.max(1);
    let (_, mut world, mut strategy) = Runner::new(n, seed)
        .model(Single::default_paper())
        .strategy(ThresholdBalancer::new(cfg))
        .churn(dir.schedule(n))
        .run_detailed(WARM);
    let converged = |w: &pcrlb_sim::World| -> bool {
        let active = w.active_n();
        let loads = w.load_slice();
        match dir {
            Direction::Shrink => {
                let max = loads[..active].iter().copied().max().unwrap_or(0) as usize;
                max <= 2 * BalancerConfig::paper(active.max(8)).theorem1_bound()
            }
            Direction::Grow => {
                // The joiners are the upper half of the live prefix;
                // reconverged once they hold half their fair share.
                let joined: u64 = loads[n / 2..active].iter().map(|&l| u64::from(l)).sum();
                let total: u64 = loads[..active].iter().map(|&l| u64::from(l)).sum();
                total == 0 || 4 * joined >= total
            }
        }
    };
    for phase in 0..limit {
        // One segment past the transition; the membership state lives
        // in the world, so continuation keeps the schedule running.
        let (_, w, s) = Runner::new(n, seed)
            .model(Single::default_paper())
            .strategy(strategy)
            .world(world)
            .run_detailed(phase_len);
        world = w;
        strategy = s;
        if converged(&world) {
            return Some(phase + 1);
        }
    }
    None
}

/// FNV-1a over the backend-normalized debug form of a report — a cheap
/// stable fingerprint for the bit-identity columns.
fn fingerprint(report: &RunReport) -> u64 {
    let mut normalized = report.clone();
    normalized.backend = "x";
    for (_, out) in normalized.probes.iter_mut() {
        if let ProbeOutput::MessageRate { frames, .. } = out {
            *frames = None;
        }
    }
    let text = format!("{normalized:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs the same churn schedule single-shot on one backend and
/// returns the report plus its evacuation count.
fn fingerprint_run(
    n: usize,
    seed: u64,
    dir: Direction,
    steps: u64,
    backend: Backend,
) -> (u64, u64) {
    let report = Runner::new(n, seed)
        .model(Single::default_paper())
        .strategy(ThresholdBalancer::paper(n))
        .backend(backend)
        .churn(dir.schedule(n))
        .probe(MaxLoadProbe::new())
        .probe(MembershipProbe::new())
        .run(steps);
    let evacuated = match report.probe("membership") {
        Some(&ProbeOutput::Membership {
            evacuated_tasks, ..
        }) => evacuated_tasks,
        _ => 0,
    };
    (fingerprint(&report), evacuated)
}

/// Runs E25 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&[
        "n",
        "direction",
        "evacuated",
        "reconverge phases",
        "envelope T",
        "seq=pooled=net:2",
    ]);
    for n in opts.n_sweep() {
        let t = BalancerConfig::paper(n).theorem1_bound() as u64;
        let seed = opts.seed ^ (0xE25 << 40) ^ n as u64;
        for dir in [Direction::Shrink, Direction::Grow] {
            let phases = phases_to_reconverge(n, seed, dir, 4 * t);
            let steps = WARM + 4 * BalancerConfig::paper(n).phase_length;
            let (fp_seq, evacuated) = fingerprint_run(n, seed, dir, steps, Backend::Sequential);
            let (fp_pool, _) = fingerprint_run(n, seed, dir, steps, Backend::Pooled(4));
            let (fp_net, _) = fingerprint_run(
                n,
                seed,
                dir,
                steps,
                Backend::Net {
                    nodes: 2,
                    tcp: false,
                    relaxed: false,
                },
            );
            let identical = fp_seq == fp_pool && fp_seq == fp_net;
            table.row(&[
                n.to_string(),
                dir.label().to_string(),
                evacuated.to_string(),
                phases.map_or_else(|| format!(">{}", 4 * t), |p| p.to_string()),
                t.to_string(),
                if identical {
                    format!("yes ({fp_seq:016x})")
                } else {
                    "DIVERGED".to_string()
                },
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_directions_reconverge_within_the_envelope() {
        let n = 1 << 8;
        let t = BalancerConfig::paper(n).theorem1_bound() as u64;
        for dir in [Direction::Shrink, Direction::Grow] {
            let phases = phases_to_reconverge(n, 7, dir, 4 * t)
                .unwrap_or_else(|| panic!("{} did not reconverge", dir.label()));
            assert!(
                phases <= t,
                "{}: {phases} phases exceeds the T = {t} envelope",
                dir.label()
            );
        }
    }

    #[test]
    fn fingerprints_agree_across_backends() {
        let n = 1 << 8;
        let steps = WARM + 4 * BalancerConfig::paper(n).phase_length;
        for dir in [Direction::Shrink, Direction::Grow] {
            let (seq, evac_seq) = fingerprint_run(n, 7, dir, steps, Backend::Sequential);
            let (pool, _) = fingerprint_run(n, 7, dir, steps, Backend::Pooled(4));
            let (net, evac_net) = fingerprint_run(
                n,
                7,
                dir,
                steps,
                Backend::Net {
                    nodes: 2,
                    tcp: false,
                    relaxed: false,
                },
            );
            assert_eq!(seq, pool, "{}: pooled diverged", dir.label());
            assert_eq!(seq, net, "{}: net diverged", dir.label());
            assert_eq!(evac_seq, evac_net);
            if dir == Direction::Shrink {
                assert!(evac_seq > 0, "a 2x shrink must evacuate tasks");
            }
        }
    }
}
