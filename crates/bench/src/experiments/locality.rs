//! E12 — locality: "another advantage of our algorithm is that it
//! attempts to have the tasks generated on the same processor together"
//! (paper §1.2).
//!
//! Measured as the fraction of completed tasks that executed on their
//! generating processor, across `n`, for the threshold algorithm vs the
//! spreading strategies. Also reported: the fraction of all completed
//! tasks ever moved by a balancing action (tasks_moved / completions).

use crate::ExpOptions;
use pcrlb_analysis::{fmt_rate, Table};
use pcrlb_baselines::DChoiceAllocation;
use pcrlb_core::{ScatterBalancer, Single, ThresholdBalancer};
use pcrlb_sim::{Runner, Strategy};

fn locality_of<S: Strategy>(n: usize, seed: u64, steps: u64, strategy: S) -> (f64, f64) {
    let report = Runner::new(n, seed)
        .model(Single::default_paper())
        .strategy(strategy)
        .run(steps);
    let completions = report.completions.count.max(1);
    (
        report.completions.locality(),
        report.messages.tasks_moved as f64 / completions as f64,
    )
}

/// Runs E12 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&["n", "strategy", "locality", "moved/completed"]);
    for n in opts.n_sweep() {
        let steps = opts.steps_for(n);
        let seed = opts.seed ^ (0xE12 << 40) ^ n as u64;
        let rows: Vec<(&str, (f64, f64))> = vec![
            (
                "threshold (paper)",
                locality_of(n, seed, steps, ThresholdBalancer::paper(n)),
            ),
            (
                "2-choice alloc",
                locality_of(n, seed, steps, DChoiceAllocation::new(2)),
            ),
            (
                "scatter (sec. 5)",
                locality_of(n, seed, steps, ScatterBalancer::paper(n)),
            ),
        ];
        for (name, (loc, moved)) in rows {
            table.row(&[
                n.to_string(),
                name.to_string(),
                fmt_rate(loc),
                fmt_rate(moved),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_preserves_locality_spreaders_do_not() {
        let n = 1 << 10;
        let (paper_loc, paper_moved) = locality_of(n, 3, 2000, ThresholdBalancer::paper(n));
        let (alloc_loc, _) = locality_of(n, 3, 2000, DChoiceAllocation::new(2));
        assert!(paper_loc > 0.9, "paper locality {paper_loc}");
        assert!(alloc_loc < 0.3, "alloc locality {alloc_loc}");
        assert!(paper_moved < 0.2, "paper moves {paper_moved} of tasks");
    }
}
