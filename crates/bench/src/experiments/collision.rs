//! E3 — Lemma 1: with `a=5, b=2, c=1` and suitably few requests, the
//! collision protocol finds a valid assignment (≥2 accepts per request,
//! ≤1 per processor) within `5·log log n` steps, w.h.p.
//!
//! Two regimes per `n`:
//! * **lemma** — `n/(log n)^2` requests, the order of magnitude Lemma 4
//!   says actually occur (comfortably below `εn/a`);
//! * **stress** — the full `εn/a` budget, the worst case the protocol is
//!   analyzed for.
//!
//! Reported: success rate across trials, mean rounds used vs the round
//! bound, and queries per request (communication).

use crate::ExpOptions;
use pcrlb_analysis::{fmt_f, fmt_rate, Summary, Table};
use pcrlb_collision::{play_game, CollisionParams};
use pcrlb_sim::SimRng;

/// Runs E3 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let params = CollisionParams::lemma1();
    let mut table = Table::new(&[
        "n",
        "regime",
        "requests",
        "round bound",
        "mean rounds",
        "success rate",
        "queries/request",
        "steps bound (5 llog n)",
    ]);
    for n in opts.n_sweep() {
        let log_n = (n as f64).log2();
        let lemma_requests = ((n as f64) / (log_n * log_n)).ceil() as usize;
        let stress_requests = params.max_requests(n);
        for (regime, requests) in [("lemma", lemma_requests), ("stress", stress_requests)] {
            let requests = requests.max(1);
            let mut rounds = Summary::new();
            let mut queries = Summary::new();
            let mut successes = 0u64;
            let trials = opts.trials();
            for trial in 0..trials {
                let mut rng = SimRng::new(opts.seed ^ (0xE3 << 40) ^ (trial << 20) ^ n as u64);
                // Requesters are any distinct processors; identity does
                // not matter to the protocol, so take a prefix.
                let requesters: Vec<usize> = (0..requests).collect();
                let out = play_game(n, &requesters, &params, &mut rng);
                rounds.push(out.rounds_used as f64);
                queries.push(out.queries_sent as f64 / requests as f64);
                if out.success {
                    successes += 1;
                }
            }
            table.row(&[
                n.to_string(),
                regime.to_string(),
                requests.to_string(),
                params.rounds(n).to_string(),
                fmt_f(rounds.mean(), 2),
                fmt_rate(successes as f64 / trials as f64),
                fmt_f(queries.mean(), 2),
                params.steps_per_game(n).to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma_regime_always_succeeds() {
        let table = run(&ExpOptions::quick());
        assert_eq!(table.len(), 6); // 3 sizes x 2 regimes
    }
}
