//! E10 — the adversarial generation model: maximum load
//! `O(B + (log log n)^2)` w.h.p., where `B` bounds the total system
//! load the adversary maintains.
//!
//! Three adversaries (burst, targeted, tree-spawn) run against the
//! balancer — with and without the §4.3 single-probe pre-round — and
//! against the unbalanced system. The shape check: the balanced maximum
//! stays within a small multiple of the per-window injection budget
//! (`O(B' + T)` where `B'` is the per-processor window budget), while
//! the unbalanced maximum tracks the victims' full backlog.

use crate::ExpOptions;
use pcrlb_analysis::Table;
use pcrlb_core::{
    adversary::{Burst, Targeted, TreeSpawn},
    BalancerConfig, ThresholdBalancer,
};
use pcrlb_sim::{LoadModel, MaxLoadProbe, Runner, Strategy, Unbalanced};

fn worst_max<M: LoadModel + Sync, S: Strategy>(
    n: usize,
    seed: u64,
    steps: u64,
    model: M,
    strategy: S,
) -> usize {
    Runner::new(n, seed)
        .model(model)
        .strategy(strategy)
        .probe(MaxLoadProbe::after_warmup(steps / 4))
        .run(steps)
        .worst_max_load()
        .unwrap_or(0)
}

/// Runs E10 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&[
        "adversary",
        "n",
        "T",
        "window budget",
        "balanced worst",
        "preround worst",
        "unbalanced worst",
    ]);
    for n in opts.n_sweep() {
        let cfg = BalancerConfig::paper(n);
        let t = cfg.theorem1_bound();
        let window = (t as u64).max(4);
        let steps = opts.steps_for(n);
        let seed = opts.seed ^ (0xE10 << 40) ^ n as u64;
        let pre_cfg = cfg.clone().with_adversarial_preround();

        // Burst: every processor may dump T/2 tasks per window w.p. 0.1.
        let burst = Burst::new(window, t / 2, 0.1);
        // Targeted: 4 victims get T tasks every window.
        let targeted = Targeted::new(window, 4, t);
        // Tree-spawn: busy tasks fork 2 children w.p. 0.3.
        let spawn = TreeSpawn::new(2, 0.3, 0.2);

        for (name, budget) in [("burst", t / 2), ("targeted", t), ("treespawn", 2 * t)] {
            let (bal, pre, unbal) = match name {
                "burst" => (
                    worst_max(n, seed, steps, burst, ThresholdBalancer::new(cfg.clone())),
                    worst_max(
                        n,
                        seed,
                        steps,
                        burst,
                        ThresholdBalancer::new(pre_cfg.clone()),
                    ),
                    worst_max(n, seed, steps, burst, Unbalanced),
                ),
                "targeted" => (
                    worst_max(
                        n,
                        seed,
                        steps,
                        targeted,
                        ThresholdBalancer::new(cfg.clone()),
                    ),
                    worst_max(
                        n,
                        seed,
                        steps,
                        targeted,
                        ThresholdBalancer::new(pre_cfg.clone()),
                    ),
                    worst_max(n, seed, steps, targeted, Unbalanced),
                ),
                _ => (
                    worst_max(n, seed, steps, spawn, ThresholdBalancer::new(cfg.clone())),
                    worst_max(
                        n,
                        seed,
                        steps,
                        spawn,
                        ThresholdBalancer::new(pre_cfg.clone()),
                    ),
                    worst_max(n, seed, steps, spawn, Unbalanced),
                ),
            };
            table.row(&[
                name.to_string(),
                n.to_string(),
                t.to_string(),
                budget.to_string(),
                bal.to_string(),
                pre.to_string(),
                unbal.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balancer_beats_unbalanced_under_targeted_adversary() {
        let n = 1 << 10;
        let cfg = BalancerConfig::paper(n);
        let t = cfg.theorem1_bound();
        let adv = Targeted::new(cfg.phase_length * 2, 4, t);
        let bal = worst_max(n, 3, 2000, adv, ThresholdBalancer::new(cfg));
        let unbal = worst_max(n, 3, 2000, adv, Unbalanced);
        assert!(bal < unbal, "balanced {bal} vs unbalanced {unbal}");
    }
}
