//! The experiment implementations, one module per experiment group.
//! See `DESIGN.md` §4 for the index mapping experiments to claims.

pub mod ablation;
pub mod adversarial;
pub mod collision;
pub mod communication;
pub mod comparison;
pub mod extensions;
pub mod locality;
pub mod matrix;
pub mod membership;
pub mod models;
pub mod phases;
pub mod recovery;
pub mod scatter;
pub mod service;
pub mod shmem;
pub mod theorem1;
pub mod unbalanced;
pub mod waiting;

use crate::ExpOptions;
use pcrlb_analysis::Table;

/// An experiment's identity and its runner.
pub struct Experiment {
    /// Harness id, e.g. `"e1-max-load"`.
    pub id: &'static str,
    /// The claim being reproduced.
    pub claim: &'static str,
    /// Runner producing the result table.
    pub run: fn(&ExpOptions) -> Table,
}

/// The registry of all experiments, in DESIGN.md order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1-max-load",
            claim: "Theorem 1: max load O((log log n)^2) w.h.p. under Single",
            run: theorem1::run,
        },
        Experiment {
            id: "e2-unbalanced",
            claim: "Lemma 2: unbalanced load is geometric; system load O(n)",
            run: unbalanced::run,
        },
        Experiment {
            id: "e3-collision",
            claim: "Lemma 1: collision protocol valid in <= 5 log log n steps",
            run: collision::run,
        },
        Experiment {
            id: "e4-heavy-count",
            claim: "Lemma 4: #heavy <= n/(log n)^{log log n} per phase",
            run: phases::run_heavy_count,
        },
        Experiment {
            id: "e5-phase-success",
            claim: "Lemma 6: every heavy processor finds a light partner",
            run: phases::run_phase_success,
        },
        Experiment {
            id: "e6-request-count",
            claim: "Lemma 7: expected requests per heavy processor is O(1)",
            run: phases::run_request_count,
        },
        Experiment {
            id: "e7-waiting-time",
            claim: "Corollary 1: waiting time O((log log n)^2) w.h.p.",
            run: waiting::run,
        },
        Experiment {
            id: "e8-communication",
            claim: "Messages O(n/(log n)^{llog n-1})/phase vs Theta(n)/step",
            run: communication::run,
        },
        Experiment {
            id: "e9-gen-models",
            claim: "Geometric/Multi models: max load k*T and c*T",
            run: models::run,
        },
        Experiment {
            id: "e10-adversarial",
            claim: "Adversarial model: max load O(B + (log log n)^2)",
            run: adversarial::run,
        },
        Experiment {
            id: "e11-baselines",
            claim: "Load/communication trade-off vs all cited baselines",
            run: comparison::run_continuous,
        },
        Experiment {
            id: "e11-static",
            claim: "Static balls-into-bins: one-choice vs Greedy[d] vs ACMR vs Stemann",
            run: comparison::run_static,
        },
        Experiment {
            id: "e12-locality",
            claim: "Tasks stay on their origin unless it overflows",
            run: locality::run,
        },
        Experiment {
            id: "e13-ablation",
            claim: "Design-choice ablations: T scale, tree depth, collision params, transfer size",
            run: ablation::run,
        },
        Experiment {
            id: "e14-scatter",
            claim: "Section 5 scatter variant: O(log log n) load at Theta(m) messages",
            run: scatter::run,
        },
        Experiment {
            id: "e15-recovery",
            claim: "Stability: recovery from worst-case load spikes",
            run: recovery::run,
        },
        Experiment {
            id: "e16-supermarket",
            claim: "Extension: continuous-time supermarket model validates discretization",
            run: extensions::run_supermarket,
        },
        Experiment {
            id: "e17-weighted",
            claim: "Extension: BMS97 weighted-ball allocation across uniformity",
            run: extensions::run_weighted,
        },
        Experiment {
            id: "e18-gossip",
            claim: "Extension: Lauer's scheme on push-sum estimated averages",
            run: extensions::run_gossip,
        },
        Experiment {
            id: "e19-shmem",
            claim: "Extension: MSS95 PRAM-on-DMM memory, the protocol's origin",
            run: shmem::run,
        },
        Experiment {
            id: "e20-weighted-continuous",
            claim: "Extension: weighted continuous balancing (BMS97 direction)",
            run: extensions::run_weighted_continuous,
        },
        Experiment {
            id: "e23-service",
            claim: "Open-loop service: sojourn percentiles vs offered load, backend-invariant",
            run: service::run,
        },
        Experiment {
            id: "e24-matrix",
            claim: "Partner policies x topologies: load/messages/locality trade-off matrix",
            run: matrix::run,
        },
        Experiment {
            id: "e25-membership",
            claim: "Elastic membership: 2x step reconverges within the (log log n)^2 envelope, bit-identical across backends",
            run: membership::run,
        },
    ]
}

/// Looks up an experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}
