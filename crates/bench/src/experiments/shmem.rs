//! E19 — the collision protocol's origin: MSS'95 shared-memory
//! simulation.
//!
//! One PRAM step (a batch of `εn/a` accesses to hashed cells on `n`
//! modules) completes in a `log log n`-flavoured number of collision
//! rounds with a constant number of messages per access — the very
//! complexity profile the SPAA'98 balancer inherits for its partner
//! search. The table sweeps `n` and reports mean rounds, messages per
//! operation, and the completion rate within the round budget.

use crate::ExpOptions;
use pcrlb_analysis::{fmt_f, fmt_rate, Table};
use pcrlb_shmem::{DmmConfig, DmmMachine, MemOp};
use pcrlb_sim::{loglog, SimRng};

/// Runs E19 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&[
        "modules",
        "llog n",
        "ops/step",
        "mean rounds",
        "msgs/op",
        "completion rate",
    ]);
    for n in opts.n_sweep() {
        let seed = opts.seed ^ (0xE19 << 40) ^ n as u64;
        let mut machine = DmmMachine::new(DmmConfig::mss95(n), seed);
        let mut rng = SimRng::new(seed ^ 1);
        let ops_per_step = (n / 8).max(4);
        let steps = if opts.quick { 20 } else { 100 };

        let mut completed = 0u64;
        let mut submitted = 0u64;
        for step in 0..steps {
            let ops: Vec<MemOp> = (0..ops_per_step)
                .map(|i| {
                    let cell = rng.below(1 << 24) as u64;
                    if (step + i) % 3 == 0 {
                        MemOp::Write {
                            cell,
                            value: cell ^ 0xF00D,
                        }
                    } else {
                        MemOp::Read { cell }
                    }
                })
                .collect();
            let out = machine.step(&ops);
            submitted += ops.len() as u64;
            completed += out.completed.iter().filter(|&&c| c).count() as u64;
        }
        table.row(&[
            n.to_string(),
            loglog(n).to_string(),
            ops_per_step.to_string(),
            fmt_f(machine.mean_rounds(), 2),
            fmt_f(machine.mean_messages_per_op(), 2),
            fmt_rate(completed as f64 / submitted as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pram_steps_complete_with_constant_messages() {
        let table = run(&ExpOptions::quick());
        assert_eq!(table.len(), 3);
    }
}
