//! E7 — Corollary 1: with constant-length tasks, the waiting time of
//! every task in the system is `O((log log n)^2)` w.h.p. (expected
//! waiting time is constant).
//!
//! The corollary assumes constant service time, which is the
//! `Geometric`/`Multi` consumption rule (exactly one task per step), so
//! the experiment uses `Geometric(k=2)`. For contrast the `Single`
//! model (geometric service times) is reported too — its tail picks up
//! the extra service randomness but stays the same shape.

use crate::ExpOptions;
use pcrlb_analysis::{fmt_f, Table};
use pcrlb_core::{BalancerConfig, Geometric, Single, ThresholdBalancer};
use pcrlb_sim::{LoadModel, ProbeOutput, Runner, SojournTailProbe};

fn measure<M: LoadModel + Copy + Sync>(
    opts: &ExpOptions,
    n: usize,
    model: M,
    tag: u64,
) -> (f64, u64, f64) {
    let cfg = BalancerConfig::paper(n);
    let steps = opts.steps_for(n) * 2;
    let mut mean_acc = 0.0;
    let mut worst = 0u64;
    let mut p999_acc = 0.0;
    let trials = opts.trials();
    for trial in 0..trials {
        let seed = opts.seed ^ (tag << 40) ^ (trial << 16) ^ n as u64;
        let report = Runner::new(n, seed)
            .model(model)
            .strategy(ThresholdBalancer::new(cfg.clone()))
            .probe(SojournTailProbe::new())
            .run(steps);
        if let Some(&ProbeOutput::SojournTail {
            mean, max, p999, ..
        }) = report.probe("sojourn_tail")
        {
            mean_acc += mean;
            worst = worst.max(max);
            p999_acc += p999 as f64;
        }
    }
    (mean_acc / trials as f64, worst, p999_acc / trials as f64)
}

/// Runs E7 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&[
        "n",
        "model",
        "T",
        "mean wait",
        "p99.9 wait",
        "max wait",
        "max/T",
    ]);
    for n in opts.n_sweep() {
        let t = BalancerConfig::paper(n).theorem1_bound();
        let (mean_g, worst_g, p999_g) =
            measure(opts, n, Geometric::new(2).expect("k=2 valid"), 0xE7A);
        table.row(&[
            n.to_string(),
            "geometric(2)".into(),
            t.to_string(),
            fmt_f(mean_g, 2),
            fmt_f(p999_g, 1),
            worst_g.to_string(),
            fmt_f(worst_g as f64 / t as f64, 2),
        ]);
        let (mean_s, worst_s, p999_s) = measure(opts, n, Single::default_paper(), 0xE7B);
        table.row(&[
            n.to_string(),
            "single".into(),
            t.to_string(),
            fmt_f(mean_s, 2),
            fmt_f(p999_s, 1),
            worst_s.to_string(),
            fmt_f(worst_s as f64 / t as f64, 2),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_service_waiting_is_bounded() {
        let opts = ExpOptions::quick();
        let n = 1 << 10;
        let t = BalancerConfig::paper(n).theorem1_bound() as f64;
        let (mean, worst, _) = measure(&opts, n, Geometric::new(2).unwrap(), 0xAA);
        assert!(mean < t, "mean wait {mean} should be well below T={t}");
        assert!(
            (worst as f64) < 8.0 * t,
            "worst wait {worst} should be O(T), T={t}"
        );
    }
}
