//! Extension experiments beyond the paper's own claims — reproducing
//! the related-work results our baselines implement, and validating
//! modelling decisions.
//!
//! * **E16 (supermarket)** — Mitzenmacher'96: in continuous time, `d=2`
//!   choices collapse the max queue from `O(log n/log log n)` to
//!   `O(log log n)`; our discrete-time Bernoulli-arrival version must
//!   agree with the exact event-driven simulation (the substitution
//!   argument of `DESIGN.md` §5).
//! * **E17 (weighted)** — BMS97: weighted-ball allocation quality
//!   across the uniformity spectrum `δ = W_A/W_M`, with the
//!   class-parallel protocol landing near the `(m/n)·W_A + W_M` bound.
//! * **E18 (gossip)** — Lauer'95 part two: his balancing scheme works
//!   with push-sum *estimated* averages in place of the oracle, at the
//!   cost of `n` gossip messages per step.

use crate::ExpOptions;
use pcrlb_analysis::{fmt_f, fmt_rate, Table};
use pcrlb_baselines::{
    weighted_class_parallel, weighted_greedy_d, weighted_one_choice, BallOrder, LauerAverage,
    LauerGossip, PushSum, SupermarketSim, WeightedOutcome,
};
use pcrlb_core::{BalancerConfig, Multi, Single, ThresholdBalancer, WeightDist, Weighted};
use pcrlb_sim::{MaxLoadProbe, Runner, SimRng};

/// E16 — continuous-time supermarket vs our discrete-time allocation.
pub fn run_supermarket(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&[
        "n",
        "d",
        "CT max queue",
        "CT mean sojourn",
        "M/M/1 predicted",
        "DT max queue",
        "agreement",
    ]);
    // d = 1 has an exact closed form (W = 1/(mu - lambda)); the
    // simulator must reproduce it before being trusted for d >= 2.
    let mm1 = pcrlb_analysis::MM1::new(0.7, 1.0);
    let horizon = if opts.quick { 200.0 } else { 800.0 };
    for n in opts.n_sweep() {
        for d in [1usize, 2] {
            let seed = opts.seed ^ (0xE16 << 40) ^ (d as u64) << 8 ^ n as u64;
            let ct = SupermarketSim::new(n, 0.7, d).run(seed, horizon);

            // Discrete twin at matching utilization: arrivals 0.35/step,
            // service 0.5/step => rho = 0.7.
            use pcrlb_baselines::DChoiceAllocation;
            use pcrlb_sim::{LoadModel, ProcId, Step};
            #[derive(Clone, Copy)]
            struct M;
            impl LoadModel for M {
                fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
                    usize::from(rng.chance(0.35))
                }
                fn consume(&self, _: ProcId, _: Step, load: usize, rng: &mut SimRng) -> usize {
                    usize::from(load > 0 && rng.chance(0.5))
                }
            }
            let dt_max = Runner::new(n, seed)
                .model(M)
                .strategy(DChoiceAllocation::new(d))
                .probe(MaxLoadProbe::new())
                .run((horizon * 2.0) as u64)
                .worst_max_load()
                .unwrap_or(0);

            // Agreement criterion by regime: for d >= 2 both models sit
            // at tiny absolute queue lengths, so compare absolutely;
            // for d = 1 the exponential service of the CT model has
            // heavier tails than Bernoulli steps by design, so only the
            // order of magnitude is expected to match.
            let agreement = if d >= 2 {
                let diff = (ct.max_queue as i64 - dt_max as i64).unsigned_abs();
                if diff <= 3 {
                    "ok".to_string()
                } else {
                    format!("diff {diff}")
                }
            } else {
                let ratio = ct.max_queue.max(1) as f64 / dt_max.max(1) as f64;
                if (0.25..=4.0).contains(&ratio) {
                    "ok (×)".to_string()
                } else {
                    format!("ratio {ratio:.1}")
                }
            };
            table.row(&[
                n.to_string(),
                d.to_string(),
                ct.max_queue.to_string(),
                fmt_f(ct.mean_sojourn, 2),
                if d == 1 {
                    fmt_f(mm1.mean_sojourn(), 2)
                } else {
                    "-".into()
                },
                dt_max.to_string(),
                agreement,
            ]);
        }
    }
    table
}

/// E17 — weighted balls across the uniformity spectrum.
pub fn run_weighted(opts: &ExpOptions) -> Table {
    let n = if opts.quick { 1 << 10 } else { 1 << 13 };
    let m = 2 * n;
    let mut table = Table::new(&[
        "weights",
        "delta=W_A/W_M",
        "lower bound",
        "one-choice",
        "greedy[2]",
        "class-parallel",
        "BMS bound",
    ]);
    // Weight families from uniform (delta = 1) to heavy-tailed.
    type WeightDraw = Box<dyn Fn(&mut SimRng) -> f64>;
    let families: Vec<(&str, WeightDraw)> = vec![
        ("uniform(1)", Box::new(|_| 1.0)),
        ("uniform(0.5..1.5)", Box::new(|r| 0.5 + r.f64())),
        (
            "pareto(0.7)",
            Box::new(|r| 1.0 / r.f64().max(1e-9).powf(0.7)),
        ),
        (
            "bimodal 1/100",
            Box::new(|r| if r.chance(0.02) { 100.0 } else { 1.0 }),
        ),
    ];
    for (name, sample) in families {
        let mut rng = SimRng::new(opts.seed ^ (0xE17 << 40));
        let weights: Vec<f64> = (0..m).map(|_| sample(&mut rng)).collect();
        let w_avg = weights.iter().sum::<f64>() / m as f64;
        let w_max = weights.iter().copied().fold(0.0, f64::max);
        let delta = w_avg / w_max;
        let lb = WeightedOutcome::lower_bound(&weights, n);
        let bms = (m as f64 / n as f64) * w_avg + w_max;

        let one = weighted_one_choice(n, &weights, &mut rng).max_load();
        let greedy = weighted_greedy_d(n, &weights, 2, BallOrder::Arrival, &mut rng).max_load();
        let class = weighted_class_parallel(n, &weights, &mut rng).max_load();
        table.row(&[
            name.to_string(),
            fmt_rate(delta),
            fmt_f(lb, 2),
            fmt_f(one, 2),
            fmt_f(greedy, 2),
            fmt_f(class, 2),
            fmt_f(bms, 2),
        ]);
    }
    table
}

/// E18 — Lauer with oracle vs push-sum estimated averages.
pub fn run_gossip(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&["n", "variant", "worst max", "avg est err", "msgs/step"]);
    for n in opts.n_sweep() {
        let steps = opts.steps_for(n);
        let seed = opts.seed ^ (0xE18 << 40) ^ n as u64;
        // Heavier traffic so the average is in Lauer's regime.
        let model = Single::new(0.49, 0.5).expect("valid");

        let mut run = |name: &str, strategy: Box<dyn FnOnce() -> (usize, f64, f64)>| {
            let (worst, err, msgs) = strategy();
            table.row(&[
                n.to_string(),
                name.to_string(),
                worst.to_string(),
                fmt_rate(err),
                fmt_f(msgs, 1),
            ]);
        };

        run(
            "oracle average",
            Box::new(move || {
                let report = Runner::new(n, seed)
                    .model(model)
                    .strategy(LauerAverage::new(0.5))
                    .probe(MaxLoadProbe::new())
                    .run(steps);
                let msgs = report.messages.control_total() as f64 / steps as f64;
                (report.worst_max_load().unwrap_or(0), 0.0, msgs)
            }),
        );
        run(
            "push-sum estimate",
            Box::new(move || {
                let (report, _world, strategy) = Runner::new(n, seed)
                    .model(model)
                    .strategy(LauerGossip::new(0.5, 8))
                    .probe(MaxLoadProbe::new())
                    .run_detailed(steps);
                let true_avg = report.total_load as f64 / n as f64;
                let err = strategy
                    .gossip()
                    .map(|g: &PushSum| g.max_relative_error(true_avg.max(1e-9)))
                    .unwrap_or(f64::NAN);
                let msgs = report.messages.control_total() as f64 / steps as f64;
                (report.worst_max_load().unwrap_or(0), err, msgs)
            }),
        );
    }
    table
}

/// E20 — weighted continuous balancing: classification by *weight*
/// beats classification by task count when weights are skewed.
pub fn run_weighted_continuous(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&[
        "n",
        "weights",
        "mode",
        "worst weighted max",
        "worst count max",
        "transfers/1k steps",
    ]);
    for n in opts.n_sweep() {
        let steps = opts.steps_for(n);
        let seed = opts.seed ^ (0xE20 << 40) ^ n as u64;
        for (wname, dist) in [
            ("uniform 1..3", WeightDist::Uniform { lo: 1, hi: 3 }),
            (
                "bimodal 8@5%",
                WeightDist::Bimodal {
                    heavy: 8,
                    prob: 0.05,
                },
            ),
        ] {
            let mean = dist.mean();
            let inner = Multi::new(vec![0.3]).expect("valid");
            let model = Weighted::new(inner, dist);
            let unit_t = BalancerConfig::paper(n).t;
            let weighted_t = ((unit_t as f64) * mean).ceil() as usize;

            for (mode, cfg) in [
                (
                    "weighted",
                    BalancerConfig::from_t(n, weighted_t).with_weighted(),
                ),
                ("count-blind", BalancerConfig::paper(n)),
            ] {
                let report = Runner::new(n, seed)
                    .model(model.clone())
                    .strategy(ThresholdBalancer::new(cfg))
                    .probe(MaxLoadProbe::after_warmup(steps / 2))
                    .run(steps);
                let transfers = report.messages.transfers as f64 / steps as f64 * 1000.0;
                table.row(&[
                    n.to_string(),
                    wname.to_string(),
                    mode.to_string(),
                    report.worst_max_weighted_load().unwrap_or(0).to_string(),
                    report.worst_max_load().unwrap_or(0).to_string(),
                    fmt_f(transfers, 1),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supermarket_discretization_agrees() {
        let table = run_supermarket(&ExpOptions::quick());
        assert_eq!(table.len(), 6);
    }

    #[test]
    fn weighted_ladder_is_ordered() {
        let table = run_weighted(&ExpOptions::quick());
        assert_eq!(table.len(), 4);
    }

    #[test]
    fn gossip_variant_works() {
        let table = run_gossip(&ExpOptions::quick());
        assert_eq!(table.len(), 6);
    }

    #[test]
    fn weighted_continuous_runs() {
        let table = run_weighted_continuous(&ExpOptions::quick());
        assert_eq!(table.len(), 12); // 3 sizes x 2 weight families x 2 modes
    }
}
