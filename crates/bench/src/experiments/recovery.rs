//! E15 — stability: "since we know that the latter [the unbalanced
//! system] recovers from worst case scenarios, this also holds for our
//! system" (paper §5).
//!
//! We inject worst-case spikes (everything on one processor / spread
//! over √n processors) into a warmed-up system and measure the number
//! of steps until the maximum load first drops below `2T`. The balanced
//! system recovers in `O(spike/(T/4))` phases (each heavy processor
//! sheds `T/4` tasks per phase and the spike fans out); the unbalanced
//! system drains one task per step per loaded processor.

use crate::ExpOptions;
use pcrlb_analysis::Table;
use pcrlb_core::{BalancerConfig, Single, ThresholdBalancer};
use pcrlb_sim::{ProbeOutput, RecoveryProbe, Runner, Strategy, Unbalanced, World};

fn recovery_steps<S: Strategy>(
    n: usize,
    seed: u64,
    spike: &dyn Fn(&mut World),
    threshold: usize,
    limit: u64,
    strategy: S,
) -> Option<u64> {
    // Warm up to steady state, then drop the spike into the world and
    // keep running (same strategy state) until the probe sees max load
    // fall below the threshold.
    let (_, mut world, strategy) = Runner::new(n, seed)
        .model(Single::default_paper())
        .strategy(strategy)
        .run_detailed(200);
    spike(&mut world);
    let spike_step = world.step();
    let report = Runner::new(n, seed)
        .model(Single::default_paper())
        .strategy(strategy)
        .world(world)
        .probe(RecoveryProbe::new(threshold - 1).stop_on_recovery())
        .run(limit);
    match report.probe("recovery") {
        Some(ProbeOutput::Recovery {
            recovered_at: Some(at),
        }) => Some(at - spike_step),
        _ => None,
    }
}

/// Runs E15 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&[
        "n",
        "spike",
        "size",
        "balanced recovery",
        "unbalanced recovery",
    ]);
    for n in opts.n_sweep() {
        let cfg = BalancerConfig::paper(n);
        let t = cfg.theorem1_bound();
        let threshold = 2 * t;
        // The unbalanced system drains ~0.1 tasks/step net, so a 20T
        // spike needs ~ 20T/0.1 steps; 16k is comfortably above that.
        let limit = 16_000u64;
        let seed = opts.seed ^ (0xE15 << 40) ^ n as u64;
        let point_size = 20 * t;
        let sqrt_n = (n as f64).sqrt() as usize;

        type Spike = Box<dyn Fn(&mut World)>;
        let scenarios: Vec<(&str, usize, Spike)> = vec![
            (
                "one processor",
                point_size,
                Box::new(move |w: &mut World| w.inject(0, point_size)),
            ),
            (
                "sqrt(n) processors",
                point_size * sqrt_n,
                Box::new(move |w: &mut World| {
                    for p in 0..sqrt_n {
                        w.inject(p, point_size);
                    }
                }),
            ),
        ];
        for (name, size, spike) in &scenarios {
            let bal = recovery_steps(
                n,
                seed,
                spike.as_ref(),
                threshold,
                limit,
                ThresholdBalancer::new(cfg.clone()),
            );
            let unbal = recovery_steps(n, seed, spike.as_ref(), threshold, limit, Unbalanced);
            let fmt = |r: Option<u64>| r.map_or(format!(">{limit}"), |v| v.to_string());
            table.row(&[
                n.to_string(),
                name.to_string(),
                size.to_string(),
                fmt(bal),
                fmt(unbal),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_recovers_no_slower_than_unbalanced() {
        let n = 1 << 10;
        let cfg = BalancerConfig::paper(n);
        let t = cfg.theorem1_bound();
        let size = 20 * t;
        let spike = move |w: &mut World| w.inject(0, size);
        let bal = recovery_steps(n, 7, &spike, 2 * t, 40_000, ThresholdBalancer::new(cfg))
            .expect("balanced system must recover");
        let unbal = recovery_steps(n, 7, &spike, 2 * t, 40_000, Unbalanced)
            .expect("unbalanced drains eventually");
        assert!(
            bal <= unbal,
            "balanced recovery {bal} should not exceed unbalanced {unbal}"
        );
    }
}
