//! E13 — ablations over the paper's design constants.
//!
//! The paper fixes `T = (log log n)^2` with thresholds `T/2`, `T/16`
//! and transfer `T/4`, tree depth `(1/80)·log log n`, and collision
//! parameters `a=5, b=2, c=1`. This experiment perturbs one knob at a
//! time at a fixed machine size and reports worst max load, messages
//! per step, and match rate — quantifying how much slack each constant
//! has (the analysis needs the ratios; the system tolerates a range).

use crate::ExpOptions;
use pcrlb_analysis::{fmt_f, fmt_rate, Table};
use pcrlb_collision::CollisionParams;
use pcrlb_core::{BalancerConfig, Single, ThresholdBalancer};
use pcrlb_sim::{MaxLoadProbe, Runner};

struct AblationRow {
    worst_max: usize,
    msgs_per_step: f64,
    match_rate: f64,
}

fn run_cfg(opts: &ExpOptions, n: usize, cfg: BalancerConfig, tag: u64) -> AblationRow {
    let steps = opts.steps_for(n);
    let warmup = steps / 2;
    let mut worst = 0usize;
    let mut msgs = 0f64;
    let mut matched = 0u64;
    let mut heavy = 0u64;
    for trial in 0..opts.trials() {
        let seed = opts.seed ^ (tag << 32) ^ (trial << 12) ^ n as u64;
        let (report, _world, balancer) = Runner::new(n, seed)
            .model(Single::default_paper())
            .strategy(ThresholdBalancer::new(cfg.clone()))
            .probe(MaxLoadProbe::after_warmup(warmup))
            .run_detailed(steps);
        worst = worst.max(report.worst_max_load().unwrap_or(0));
        msgs += report.messages.control_total() as f64 / steps as f64;
        matched += balancer.stats().matched_total;
        heavy += balancer.stats().heavy_total;
    }
    AblationRow {
        worst_max: worst,
        msgs_per_step: msgs / opts.trials() as f64,
        match_rate: if heavy == 0 {
            1.0
        } else {
            matched as f64 / heavy as f64
        },
    }
}

/// Runs E13 and returns the result table.
pub fn run(opts: &ExpOptions) -> Table {
    let n = if opts.quick { 1 << 10 } else { 1 << 12 };
    let base = BalancerConfig::paper(n);
    let t = base.t;

    let mut table = Table::new(&["knob", "value", "worst max", "msgs/step", "match rate"]);
    let mut add = |knob: &str, value: String, row: AblationRow| {
        table.row(&[
            knob.to_string(),
            value,
            row.worst_max.to_string(),
            fmt_f(row.msgs_per_step, 3),
            fmt_rate(row.match_rate),
        ]);
    };

    // Baseline.
    add(
        "baseline",
        format!("T={t}"),
        run_cfg(opts, n, base.clone(), 0xB0),
    );

    // T scale: half / double the threshold scale.
    for (label, scale) in [("T/2", 0.5), ("2T", 2.0), ("4T", 4.0)] {
        let cfg = BalancerConfig::from_t(n, ((t as f64) * scale) as usize);
        add("t-scale", label.to_string(), run_cfg(opts, n, cfg, 0xB1));
    }

    // Tree depth.
    for depth in [1u32, 2, 4] {
        let cfg = base.clone().with_tree_depth(depth);
        add("tree-depth", depth.to_string(), run_cfg(opts, n, cfg, 0xB2));
    }

    // Collision parameters (all satisfy the validity conditions).
    for (a, b, c) in [(4usize, 2usize, 1usize), (5, 2, 1), (6, 3, 1), (5, 2, 2)] {
        let params = CollisionParams::new(a, b, c, 0.5).expect("valid ablation params");
        let cfg = base.clone().with_collision(params);
        add(
            "collision",
            format!("a={a},b={b},c={c}"),
            run_cfg(opts, n, cfg, 0xB3),
        );
    }

    // Transfer size: T/8 and 3T/8 instead of T/4 (both keep the
    // receiver-overflow invariant light + transfer < heavy).
    for (label, amount) in [("T/8", t / 8), ("3T/8", 3 * t / 8)] {
        let mut cfg = base.clone();
        cfg.transfer_amount = amount.max(1);
        if cfg.validate().is_ok() {
            add("transfer", label.to_string(), run_cfg(opts, n, cfg, 0xB4));
        }
    }

    // §5 / §4.3 execution variants.
    add(
        "variant",
        "streaming".into(),
        run_cfg(opts, n, base.clone().with_streaming_transfers(), 0xB5),
    );
    add(
        "variant",
        "scheduled".into(),
        run_cfg(opts, n, base.clone().with_scheduled_transfers(), 0xB6),
    );
    add(
        "variant",
        "preround".into(),
        run_cfg(opts, n, base.clone().with_adversarial_preround(), 0xB7),
    );
    add(
        "variant",
        "work-conserving".into(),
        run_work_conserving(opts, n, base.clone(), 0xB8),
    );

    table
}

/// Like [`run_cfg`] but wraps the balancer in
/// [`pcrlb_core::WorkConserving`] (the §5 idle-sub-step remark).
fn run_work_conserving(opts: &ExpOptions, n: usize, cfg: BalancerConfig, tag: u64) -> AblationRow {
    use pcrlb_core::WorkConserving;
    let steps = opts.steps_for(n);
    let warmup = steps / 2;
    let mut worst = 0usize;
    let mut msgs = 0f64;
    let mut matched = 0u64;
    let mut heavy = 0u64;
    for trial in 0..opts.trials() {
        let seed = opts.seed ^ (tag << 32) ^ (trial << 12) ^ n as u64;
        let (report, _world, wrapper) = Runner::new(n, seed)
            .model(Single::default_paper())
            .strategy(WorkConserving::new(ThresholdBalancer::new(cfg.clone())))
            .probe(MaxLoadProbe::after_warmup(warmup))
            .run_detailed(steps);
        worst = worst.max(report.worst_max_load().unwrap_or(0));
        msgs += report.messages.control_total() as f64 / steps as f64;
        matched += wrapper.inner().stats().matched_total;
        heavy += wrapper.inner().stats().heavy_total;
    }
    AblationRow {
        worst_max: worst,
        msgs_per_step: msgs / opts.trials() as f64,
        match_rate: if heavy == 0 {
            1.0
        } else {
            matched as f64 / heavy as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_all_knobs() {
        let table = run(&ExpOptions::quick());
        // baseline + 3 t-scales + 3 depths + 4 collision + up to 2 transfer
        assert!(table.len() >= 11, "got {} rows", table.len());
    }
}
