//! E11 — the flagship comparison tables.
//!
//! **Continuous** ([`run_continuous`]): all cited continuous strategies
//! on identical `Single` arrival streams at one machine size — worst max
//! load, control messages per step, task locality, and mean sojourn.
//! The paper's claim: the threshold algorithm sits at near-zero
//! communication and full locality for an `O((log log n)^2)` load bound,
//! between the unbalanced system (`O(log n)` load, zero messages) and
//! the allocation/equalization schemes (`O(log log n)` or `O(1)`-factor
//! loads, `Θ(n)` messages per step).
//!
//! **Static** ([`run_static`]): the classic balls-into-bins ladder for
//! `m = n` balls — one-choice `Θ(log n/log log n)`, `Greedy[2]`
//! `log log n/log 2 + Θ(1)`, ACMR and Stemann parallel protocols — with
//! message counts.

use crate::ExpOptions;
use pcrlb_analysis::{fmt_f, fmt_rate, Summary, Table};
use pcrlb_baselines::static_games::acmr_threshold;
use pcrlb_baselines::{
    adaptive_czumaj_stemann, adaptive_default_threshold, greedy_d, one_choice, stemann_collision,
    DChoiceAllocation, LauerAverage, LulingMonien, RandomSeeking, RsuEqualize,
};
use pcrlb_core::{BalancerConfig, ScatterBalancer, Single, ThresholdBalancer};
use pcrlb_sim::{MaxLoadProbe, Runner, SimRng, Strategy, Unbalanced};

struct RunRow {
    worst_max: usize,
    msgs_per_step: f64,
    locality: f64,
    mean_sojourn: f64,
}

fn run_strategy<S: Strategy>(n: usize, seed: u64, steps: u64, strategy: S) -> RunRow {
    let report = Runner::new(n, seed)
        .model(Single::default_paper())
        .strategy(strategy)
        .probe(MaxLoadProbe::after_warmup(steps / 2))
        .run(steps);
    RunRow {
        worst_max: report.worst_max_load().unwrap_or(0),
        msgs_per_step: report.messages.control_total() as f64 / steps as f64,
        locality: report.completions.locality(),
        mean_sojourn: report.completions.sojourn_mean(),
    }
}

/// E11 (continuous) — all strategies on one arrival stream.
pub fn run_continuous(opts: &ExpOptions) -> Table {
    let n = if opts.quick { 1 << 10 } else { 1 << 13 };
    let steps = opts.steps_for(n) * 2;
    let seed = opts.seed ^ (0xE11 << 40);
    let t = BalancerConfig::paper(n).theorem1_bound();

    let mut table = Table::new(&[
        "strategy",
        "worst max",
        "max/T",
        "msgs/step",
        "locality",
        "mean sojourn",
    ]);
    let mut add = |name: &str, row: RunRow| {
        table.row(&[
            name.to_string(),
            row.worst_max.to_string(),
            fmt_f(row.worst_max as f64 / t as f64, 2),
            fmt_f(row.msgs_per_step, 2),
            fmt_rate(row.locality),
            fmt_f(row.mean_sojourn, 2),
        ]);
    };

    add("unbalanced", run_strategy(n, seed, steps, Unbalanced));
    add(
        "threshold (paper)",
        run_strategy(n, seed, steps, ThresholdBalancer::paper(n)),
    );
    add(
        "scatter (sec. 5)",
        run_strategy(n, seed, steps, ScatterBalancer::paper(n)),
    );
    add(
        "1-choice alloc",
        run_strategy(n, seed, steps, DChoiceAllocation::new(1)),
    );
    add(
        "2-choice alloc",
        run_strategy(n, seed, steps, DChoiceAllocation::new(2)),
    );
    add(
        "rsu equalize",
        run_strategy(n, seed, steps, RsuEqualize::classic()),
    );
    add(
        "luling-monien",
        run_strategy(n, seed, steps, LulingMonien::new(n, 2)),
    );
    add(
        "lauer (c=0.5)",
        run_strategy(n, seed, steps, LauerAverage::new(0.5)),
    );
    add(
        "random seeking",
        run_strategy(n, seed, steps, RandomSeeking::new(t / 2, t / 16 + 1, 4)),
    );
    table
}

/// E11 (static) — balls-into-bins ladder for `m = n`.
pub fn run_static(opts: &ExpOptions) -> Table {
    let mut table = Table::new(&["n", "game", "mean max load", "worst max load", "msgs/ball"]);
    for n in opts.n_sweep() {
        let trials = opts.trials();
        let mut stats: Vec<(&str, Summary, Summary)> = vec![
            ("one-choice", Summary::new(), Summary::new()),
            ("greedy[2]", Summary::new(), Summary::new()),
            ("greedy[3]", Summary::new(), Summary::new()),
            ("adaptive cs97", Summary::new(), Summary::new()),
            ("acmr r=2", Summary::new(), Summary::new()),
            ("stemann r=3", Summary::new(), Summary::new()),
        ];
        for trial in 0..trials {
            let mut rng = SimRng::new(opts.seed ^ (0x511 << 40) ^ (trial << 20) ^ n as u64);
            let outs = [
                one_choice(n, n, &mut rng),
                greedy_d(n, n, 2, &mut rng),
                greedy_d(n, n, 3, &mut rng),
                adaptive_czumaj_stemann(n, n, adaptive_default_threshold(n, n), 32, &mut rng),
                acmr_threshold(n, n, 2, &mut rng),
                stemann_collision(n, n, 3, &mut rng),
            ];
            for (slot, out) in stats.iter_mut().zip(outs.iter()) {
                slot.1.push(out.max_load() as f64);
                slot.2.push(out.messages as f64 / n as f64);
            }
        }
        for (name, maxes, msgs) in &stats {
            table.row(&[
                n.to_string(),
                name.to_string(),
                fmt_f(maxes.mean(), 2),
                maxes.max().unwrap_or(0.0).to_string(),
                fmt_f(msgs.mean(), 2),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_cheaper_than_alloc_and_tighter_than_unbalanced() {
        let n = 1 << 10;
        let steps = 2000;
        let unbal = run_strategy(n, 5, steps, Unbalanced);
        let paper = run_strategy(n, 5, steps, ThresholdBalancer::paper(n));
        let alloc = run_strategy(n, 5, steps, DChoiceAllocation::new(2));
        // Load ordering: alloc <= paper <= unbalanced.
        assert!(paper.worst_max <= unbal.worst_max);
        assert!(alloc.worst_max <= paper.worst_max + 2);
        // Message ordering: paper << alloc.
        assert!(paper.msgs_per_step * 10.0 < alloc.msgs_per_step);
        // Locality ordering: paper ~ 1, alloc ~ 0.
        assert!(paper.locality > 0.9);
        assert!(alloc.locality < 0.3);
    }
}
