//! The experiment harness CLI.
//!
//! ```text
//! pcrlb-experiments [OPTIONS] [EXPERIMENT... | all | figures]
//!
//! EXPERIMENT   experiment ids (e1-max-load, e2-unbalanced, ...), "all",
//!              or "figures" (render the headline SVG figures)
//!
//! OPTIONS
//!   --quick      reduced sweeps and trials (CI-sized)
//!   --seed N     master seed (default 0xBFAE1998)
//!   --md         emit Markdown tables instead of aligned text
//!   --csv        emit CSV instead of aligned text
//!   --out DIR    output directory for figures (default ./figures)
//!   --list       list experiments and exit
//! ```
//!
//! Run with `cargo run --release -p pcrlb-bench --bin pcrlb-experiments
//! -- all` to regenerate every table in `EXPERIMENTS.md`.

use pcrlb_bench::experiments::{find, registry};
use pcrlb_bench::{figures, ExpOptions};
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: pcrlb-experiments [--quick] [--seed N] [--md] [--csv] \
         [--out DIR] [--list] [EXPERIMENT... | all | figures]"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = ExpOptions::default();
    let mut markdown = false;
    let mut csv = false;
    let mut out_dir = PathBuf::from("figures");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--md" => markdown = true,
            "--csv" => csv = true,
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage()));
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--list" => {
                for e in registry() {
                    println!("{:<16} {}", e.id, e.claim);
                }
                return;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
    }
    if ids.iter().any(|i| i == "figures") {
        let written = figures::generate(&opts, &out_dir).unwrap_or_else(|e| {
            eprintln!("failed to write figures: {e}");
            std::process::exit(1);
        });
        for path in written {
            println!("wrote {}", path.display());
        }
        ids.retain(|i| i != "figures");
        if ids.is_empty() {
            return;
        }
    }
    if ids.iter().any(|i| i == "all") {
        ids = registry().iter().map(|e| e.id.to_string()).collect();
    }

    println!(
        "# pcrlb experiments — seed 0x{:X}, {} mode\n",
        opts.seed,
        if opts.quick { "quick" } else { "full" }
    );
    for id in &ids {
        let Some(exp) = find(id) else {
            eprintln!("unknown experiment: {id} (try --list)");
            std::process::exit(2);
        };
        println!("## {} — {}\n", exp.id, exp.claim);
        let start = Instant::now();
        let table = (exp.run)(&opts);
        let elapsed = start.elapsed();
        if markdown {
            println!("{}", table.to_markdown());
        } else if csv {
            println!("{}", table.to_csv());
        } else {
            println!("{}", table.to_text());
        }
        println!("({:.1}s)\n", elapsed.as_secs_f64());
    }
}
