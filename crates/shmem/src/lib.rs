//! # pcrlb-shmem — shared-memory simulation via the collision protocol
//!
//! The `(n, ε, a, b, c)`-collision protocol that drives the SPAA'98
//! load balancer "originates in shared memory simulations
//! \[MSS95\]" (paper §2). This crate implements that origin: Meyer auf
//! der Heide, Scheideler and Stemann's simulation of a PRAM's shared
//! memory on a distributed memory machine (DMM).
//!
//! * every cell is stored redundantly at `a` hash-selected modules
//!   ([`HashFamily`]);
//! * an access completes once `b < a` copies answer; with `2b > a` the
//!   quorums intersect and reads always see the latest completed write;
//! * modules resolve contention with the collision rule (serve a
//!   round's requests only if at most `c` arrived), and concurrent
//!   accesses to one cell are *combined*;
//! * a parallel batch of accesses completes in `O(log log n)`-flavoured
//!   round counts with a constant expected number of messages per
//!   operation — the very behaviour the load balancer reuses for
//!   partner search.
//!
//! ## Example
//!
//! ```
//! use pcrlb_shmem::{DmmConfig, DmmMachine, MemOp};
//!
//! let mut memory = DmmMachine::new(DmmConfig::mss95(64), 42);
//! memory.step(&[MemOp::Write { cell: 7, value: 99 }]);
//! let out = memory.step(&[MemOp::Read { cell: 7 }]);
//! assert_eq!(out.results[0], Some(99));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hashing;
pub mod machine;

pub use hashing::HashFamily;
pub use machine::{DmmConfig, DmmMachine, MemOp, StepOutcome};
