//! The distributed memory machine (DMM) executing PRAM steps.
//!
//! MSS95's setting: `n` processors simulate a shared memory on `n`
//! memory modules. Every cell is stored at `a` modules (hash-selected);
//! an access is *satisfied* once `b < a` copies answered; a module
//! serves at most `c` requests per round. With `2b > a`, every read
//! quorum intersects every write quorum, so a read always sees the
//! latest completed write — the machine is sequentially consistent
//! across steps.
//!
//! **Deviation from the pure collision rule.** The balancing protocol
//! (crate `pcrlb-collision`) uses the all-or-none rule — a module with
//! more than `c` requests answers *nobody* — which is what the paper's
//! analysis needs and is harmless there because every round draws fresh
//! random targets. Memory accesses cannot re-randomize: a cell's copies
//! live at fixed hashed locations, so all-or-none can livelock on a
//! worst-case batch (every copy of every open request parked on an
//! over-subscribed module). We therefore serve *up to* `c` requests per
//! round in deterministic order, which keeps the `O(c)` per-round
//! module work the analysis charges while guaranteeing progress.
//!
//! The load balancer of SPAA'98 adapts exactly this machinery, swapping
//! "access a memory cell's copies" for "find a light processor". This
//! module implements the original, so the repository contains the
//! protocol's source application as a working system.

use crate::hashing::HashFamily;
use std::collections::HashMap;

/// One PRAM memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Read a cell.
    Read {
        /// Cell address.
        cell: u64,
    },
    /// Write a value to a cell.
    Write {
        /// Cell address.
        cell: u64,
        /// Value to store.
        value: u64,
    },
}

impl MemOp {
    fn cell(&self) -> u64 {
        match *self {
            MemOp::Read { cell } | MemOp::Write { cell, .. } => cell,
        }
    }
}

/// A versioned cell copy. Versions order writes: `(step, op_index)`
/// lexicographically, so later steps dominate and concurrent writes in
/// one step resolve deterministically (CRCW-arbitrary with a fixed
/// arbiter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Version {
    step: u64,
    op: u32,
}

#[derive(Debug, Clone, Copy)]
struct Stored {
    version: Version,
    value: u64,
}

/// Result of executing one batch of operations (one PRAM step).
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Per op: the value read (`None` for writes and for ops that did
    /// not complete).
    pub results: Vec<Option<u64>>,
    /// Per op: whether it gathered its `b` answers within the round
    /// budget. Incomplete ops must be resubmitted by the caller.
    pub completed: Vec<bool>,
    /// Rounds executed.
    pub rounds: u32,
    /// Request + answer messages exchanged.
    pub messages: u64,
}

impl StepOutcome {
    /// True when every op completed.
    pub fn all_completed(&self) -> bool {
        self.completed.iter().all(|&c| c)
    }
}

/// Configuration of the DMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmmConfig {
    /// Memory modules.
    pub modules: usize,
    /// Copies per cell.
    pub a: usize,
    /// Copies that must answer per access.
    pub b: usize,
    /// Per-round service capacity of a module (the analysis's collision
    /// value `c`; see module docs for the serving rule).
    pub c: usize,
    /// Round budget per step (0 = derive from the MSS95 bound
    /// `log log n / log(c·(a−b)) + 3`, doubled for slack because cell
    /// locations are hashed rather than freshly randomized each round).
    /// Under capacity serving every batch of `k` combined requests
    /// needs at most `⌈k·b/(modules·c)⌉ + O(1)` extra rounds, so the
    /// effective budget also scales with the submitted batch.
    pub max_rounds: u32,
}

impl DmmConfig {
    /// The MSS95 running example: `a = 3` copies, `b = 2` answers,
    /// collision value `c = 2` — majority quorums (`2b > a`).
    pub fn mss95(modules: usize) -> Self {
        DmmConfig {
            modules,
            a: 3,
            b: 2,
            c: 2,
            max_rounds: 0,
        }
    }

    fn validate(&self) {
        assert!(self.modules >= self.a, "need modules >= a");
        assert!(self.b >= 1 && self.b < self.a, "need 1 <= b < a");
        assert!(self.c >= 1, "need c >= 1");
        assert!(
            2 * self.b > self.a,
            "need 2b > a so read and write quorums intersect"
        );
        assert!(
            self.c * (self.a - self.b) >= 2,
            "need c*(a-b) >= 2 for round-count progress"
        );
    }

    fn round_budget(&self) -> u32 {
        if self.max_rounds > 0 {
            return self.max_rounds;
        }
        let llog = pcrlb_sim::loglog(self.modules) as f64;
        let divisor = ((self.c * (self.a - self.b)) as f64).log2().max(0.1);
        2 * ((llog / divisor).ceil() as u32 + 3)
    }
}

/// The distributed memory machine.
pub struct DmmMachine {
    cfg: DmmConfig,
    hashes: HashFamily,
    /// Per-module versioned store.
    stores: Vec<HashMap<u64, Stored>>,
    step: u64,
    /// Lifetime counters.
    total_rounds: u64,
    total_messages: u64,
    total_ops: u64,
}

impl DmmMachine {
    /// Builds a machine; the configuration is validated.
    pub fn new(cfg: DmmConfig, seed: u64) -> Self {
        cfg.validate();
        DmmMachine {
            hashes: HashFamily::new(seed, cfg.a, cfg.modules),
            stores: vec![HashMap::new(); cfg.modules],
            step: 0,
            total_rounds: 0,
            total_messages: 0,
            total_ops: 0,
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DmmConfig {
        &self.cfg
    }

    /// PRAM steps executed.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Mean collision rounds per step so far.
    pub fn mean_rounds(&self) -> f64 {
        if self.step == 0 {
            0.0
        } else {
            self.total_rounds as f64 / self.step as f64
        }
    }

    /// Mean messages per operation so far.
    pub fn mean_messages_per_op(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.total_messages as f64 / self.total_ops as f64
        }
    }

    /// Executes one PRAM step: all `ops` issued simultaneously, served
    /// through collision rounds. See module docs for the semantics.
    ///
    /// Concurrent operations on the same cell are **combined** (the
    /// classic PRAM-simulation technique): all readers of a cell share
    /// one read request and receive the same value; concurrent writers
    /// are arbitrated up front (highest op index wins, CRCW-arbitrary)
    /// and only the winner's request is sent. Without combining, a hot
    /// cell's modules would collide forever.
    pub fn step(&mut self, ops: &[MemOp]) -> StepOutcome {
        self.step += 1;
        self.total_ops += ops.len() as u64;
        // Round budget: the MSS95 bound plus the bandwidth term for
        // batches larger than the per-round service capacity.
        let bandwidth = (ops.len() * self.cfg.b).div_ceil(self.cfg.modules * self.cfg.c) as u32;
        let budget = self.cfg.round_budget() + bandwidth;

        // ---- Combine ops into unique cell requests. ----
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        enum ReqKind {
            Read,
            Write,
        }
        struct Request {
            cell: u64,
            kind: ReqKind,
            /// Winning write payload (writes only).
            value: u64,
            /// Version the write carries (writes only).
            version: Version,
            /// Ops combined into this request.
            members: Vec<usize>,
            locations: Vec<usize>,
            answered: Vec<bool>,
            answers: usize,
            best: Option<(Version, u64)>,
            done: bool,
        }
        let mut index: HashMap<(u64, ReqKind), usize> = HashMap::new();
        let mut requests: Vec<Request> = Vec::new();
        for (oi, op) in ops.iter().enumerate() {
            let (kind, value) = match *op {
                MemOp::Read { .. } => (ReqKind::Read, 0),
                MemOp::Write { value, .. } => (ReqKind::Write, value),
            };
            let key = (op.cell(), kind);
            let ri = *index.entry(key).or_insert_with(|| {
                requests.push(Request {
                    cell: op.cell(),
                    kind,
                    value: 0,
                    version: Version {
                        step: self.step,
                        op: 0,
                    },
                    members: Vec::new(),
                    locations: self.hashes.locations_vec(op.cell()),
                    answered: vec![false; self.cfg.a],
                    answers: 0,
                    best: None,
                    done: false,
                });
                requests.len() - 1
            });
            let req = &mut requests[ri];
            req.members.push(oi);
            if kind == ReqKind::Write {
                // CRCW-arbitrary arbitration: highest op index wins.
                let version = Version {
                    step: self.step,
                    op: oi as u32,
                };
                if version >= req.version {
                    req.version = version;
                    req.value = value;
                }
            }
        }

        // ---- Collision rounds over the combined requests. ----
        let mut messages = 0u64;
        let mut rounds = 0u32;
        // module -> [(request index, copy index)]
        let mut inbox: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();

        for _ in 0..budget {
            inbox.clear();
            let mut any_open = false;
            for (ri, req) in requests.iter().enumerate() {
                if req.done {
                    continue;
                }
                any_open = true;
                for (ci, &m) in req.locations.iter().enumerate() {
                    if !req.answered[ci] {
                        messages += 1;
                        inbox.entry(m).or_default().push((ri, ci));
                    }
                }
            }
            if !any_open {
                break;
            }
            rounds += 1;

            for (&module, arrived) in inbox.iter_mut() {
                // Capacity-c serving (see module docs): answer the c
                // lowest-indexed requests this round, defer the rest.
                if arrived.len() > self.cfg.c {
                    arrived.sort_unstable();
                    arrived.truncate(self.cfg.c);
                }
                for &(ri, ci) in arrived.iter() {
                    messages += 1; // the answer
                    let req = &mut requests[ri];
                    req.answered[ci] = true;
                    req.answers += 1;
                    match req.kind {
                        ReqKind::Read => {
                            if let Some(stored) = self.stores[module].get(&req.cell) {
                                let cand = (stored.version, stored.value);
                                if req.best.is_none_or(|b| cand.0 > b.0) {
                                    req.best = Some(cand);
                                }
                            }
                        }
                        ReqKind::Write => {
                            let slot = self.stores[module].entry(req.cell).or_insert(Stored {
                                version: req.version,
                                value: req.value,
                            });
                            if req.version >= slot.version {
                                *slot = Stored {
                                    version: req.version,
                                    value: req.value,
                                };
                            }
                        }
                    }
                }
            }

            for req in requests.iter_mut() {
                if !req.done && req.answers >= self.cfg.b {
                    req.done = true;
                }
            }
        }

        self.total_rounds += rounds as u64;
        self.total_messages += messages;

        // ---- Project request outcomes back onto the ops. ----
        let mut results: Vec<Option<u64>> = vec![None; ops.len()];
        let mut completed: Vec<bool> = vec![false; ops.len()];
        for req in &requests {
            for &oi in &req.members {
                completed[oi] = req.done;
                if req.done && req.kind == ReqKind::Read {
                    results[oi] = req.best.map(|(_, v)| v);
                }
            }
        }
        StepOutcome {
            results,
            completed,
            rounds,
            messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcrlb_sim::SimRng;

    fn machine(modules: usize) -> DmmMachine {
        DmmMachine::new(DmmConfig::mss95(modules), 42)
    }

    #[test]
    fn read_your_write() {
        let mut m = machine(64);
        let w = m.step(&[MemOp::Write { cell: 7, value: 99 }]);
        assert!(w.all_completed());
        let r = m.step(&[MemOp::Read { cell: 7 }]);
        assert!(r.all_completed());
        assert_eq!(r.results[0], Some(99));
    }

    #[test]
    fn unwritten_cell_reads_none() {
        let mut m = machine(64);
        let r = m.step(&[MemOp::Read { cell: 123 }]);
        assert!(r.all_completed());
        assert_eq!(r.results[0], None);
    }

    #[test]
    fn later_write_wins() {
        let mut m = machine(64);
        m.step(&[MemOp::Write { cell: 1, value: 10 }]);
        m.step(&[MemOp::Write { cell: 1, value: 20 }]);
        let r = m.step(&[MemOp::Read { cell: 1 }]);
        assert_eq!(r.results[0], Some(20));
    }

    #[test]
    fn quorum_intersection_survives_partial_copies() {
        // A write completes at b = 2 of 3 copies; even if a later read
        // reaches a *different* 2-of-3 subset, the subsets intersect,
        // so the read must still see the write.
        let mut m = machine(16);
        for cell in 0..200u64 {
            m.step(&[MemOp::Write {
                cell,
                value: cell * 3,
            }]);
        }
        for cell in 0..200u64 {
            let r = m.step(&[MemOp::Read { cell }]);
            assert_eq!(r.results[0], Some(cell * 3), "cell {cell}");
        }
    }

    #[test]
    fn concurrent_writes_resolve_deterministically() {
        // Two writes to the same cell in one step: the higher op index
        // wins everywhere (CRCW-arbitrary with a fixed arbiter).
        let mut m = machine(64);
        m.step(&[
            MemOp::Write {
                cell: 5,
                value: 111,
            },
            MemOp::Write {
                cell: 5,
                value: 222,
            },
        ]);
        let r = m.step(&[MemOp::Read { cell: 5 }]);
        assert_eq!(r.results[0], Some(222));
    }

    #[test]
    fn parallel_batch_completes_within_round_budget() {
        // n/4 simultaneous accesses to random distinct cells on n
        // modules: the MSS95 regime. Everything should complete.
        let n = 256;
        let mut m = machine(n);
        let mut rng = SimRng::new(9);
        for trial in 0..10 {
            let ops: Vec<MemOp> = (0..n / 4)
                .map(|i| {
                    let cell = (trial * 1000 + i) as u64 * 7919 + rng.below(1 << 20) as u64;
                    if i % 2 == 0 {
                        MemOp::Write { cell, value: cell }
                    } else {
                        MemOp::Read { cell }
                    }
                })
                .collect();
            let out = m.step(&ops);
            assert!(
                out.all_completed(),
                "trial {trial}: {} ops incomplete after {} rounds",
                out.completed.iter().filter(|&&c| !c).count(),
                out.rounds
            );
        }
        // The headline: constant-ish rounds, a few messages per op.
        assert!(m.mean_rounds() <= 8.0, "mean rounds {}", m.mean_rounds());
        assert!(
            m.mean_messages_per_op() <= 12.0,
            "messages/op {}",
            m.mean_messages_per_op()
        );
    }

    #[test]
    fn hot_cell_readers_are_combined() {
        // Every processor reads the same cell: combining collapses them
        // into ONE request, so the step completes fast and the message
        // count does not scale with the reader count.
        let n = 64;
        let mut m = machine(n);
        m.step(&[MemOp::Write { cell: 0, value: 7 }]);
        let ops: Vec<MemOp> = (0..32).map(|_| MemOp::Read { cell: 0 }).collect();
        let out = m.step(&ops);
        assert!(out.all_completed());
        assert!(out.results.iter().all(|r| *r == Some(7)));
        // One combined request: at most a few messages per round, far
        // below 32 * a.
        assert!(
            out.messages <= 4 * 3 * out.rounds as u64,
            "{} messages for a combined read",
            out.messages
        );
    }

    #[test]
    fn mixed_hot_cell_read_write_is_consistent() {
        // Concurrent read + write on one cell in the same step: reads
        // may see the old or the new value (CRCW), but the *next* step
        // must see the write.
        let n = 64;
        let mut m = machine(n);
        m.step(&[MemOp::Write { cell: 9, value: 1 }]);
        let mut ops = vec![MemOp::Write { cell: 9, value: 2 }];
        ops.extend((0..8).map(|_| MemOp::Read { cell: 9 }));
        let out = m.step(&ops);
        assert!(out.all_completed());
        for r in &out.results[1..] {
            assert!(*r == Some(1) || *r == Some(2), "read saw {r:?}");
        }
        let r = m.step(&[MemOp::Read { cell: 9 }]);
        assert_eq!(r.results[0], Some(2));
    }

    #[test]
    fn empty_step_is_trivial() {
        let mut m = machine(16);
        let out = m.step(&[]);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.messages, 0);
        assert!(out.all_completed());
    }

    #[test]
    #[should_panic(expected = "2b > a")]
    fn non_intersecting_quorums_rejected() {
        DmmMachine::new(
            DmmConfig {
                modules: 16,
                a: 4,
                b: 2,
                c: 2,
                max_rounds: 0,
            },
            1,
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut m = machine(32);
        m.step(&[MemOp::Write { cell: 1, value: 1 }]);
        m.step(&[MemOp::Read { cell: 1 }]);
        assert_eq!(m.steps(), 2);
        assert!(m.mean_rounds() >= 1.0);
        assert!(m.mean_messages_per_op() > 0.0);
    }
}
