//! Redundant cell-to-module hashing.
//!
//! MSS95 store every shared-memory cell at `a` memory modules selected
//! by `a` (pseudo-)random hash functions. The functions must be
//! *distinct per copy* (so the copies land on different modules with
//! high probability) and *reproducible* (every processor computes the
//! same locations without communication).
//!
//! We derive each copy's location with a SplitMix64-based keyed hash —
//! statistically uniform, no shared state, and the same double-hashing
//! trick the load balancer's RNG uses for stream splitting.

use pcrlb_sim::rng::splitmix64;

/// The family of `a` hash functions mapping cells to modules.
#[derive(Debug, Clone)]
pub struct HashFamily {
    seeds: Vec<u64>,
    modules: usize,
}

impl HashFamily {
    /// Creates a family of `a` functions onto `modules` modules.
    ///
    /// # Panics
    /// Panics when `a == 0`, `modules == 0`, or `a > modules` (copies
    /// could not be distinct).
    pub fn new(seed: u64, a: usize, modules: usize) -> Self {
        assert!(a >= 1, "need at least one copy");
        assert!(modules >= 1, "need at least one module");
        assert!(
            a <= modules,
            "cannot place {a} distinct copies on {modules} modules"
        );
        let seeds = (0..a as u64)
            .map(|i| {
                let mut s = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1);
                splitmix64(&mut s)
            })
            .collect();
        HashFamily { seeds, modules }
    }

    /// Number of copies per cell.
    pub fn copies(&self) -> usize {
        self.seeds.len()
    }

    /// Number of modules.
    pub fn modules(&self) -> usize {
        self.modules
    }

    /// The module holding copy `i` of `cell`. Copies of the same cell
    /// are guaranteed distinct: collisions are resolved by linear
    /// probing over the already-assigned locations (MSS95 assume fully
    /// random distinct locations; probing preserves uniformity up to
    /// `O(a/modules)` bias, negligible for `a ≪ n`).
    pub fn locations(&self, cell: u64, out: &mut Vec<usize>) {
        out.clear();
        for &seed in &self.seeds {
            let mut s = seed ^ cell.wrapping_mul(0xA076_1D64_78BD_642F);
            let mut loc = (splitmix64(&mut s) % self.modules as u64) as usize;
            while out.contains(&loc) {
                loc = (loc + 1) % self.modules;
            }
            out.push(loc);
        }
    }

    /// Convenience: locations as a fresh vector.
    pub fn locations_vec(&self, cell: u64) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.copies());
        self.locations(cell, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locations_are_distinct_and_in_range() {
        let fam = HashFamily::new(1, 3, 64);
        for cell in 0..1000u64 {
            let locs = fam.locations_vec(cell);
            assert_eq!(locs.len(), 3);
            let mut sorted = locs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "cell {cell} has duplicate locations");
            assert!(locs.iter().all(|&m| m < 64));
        }
    }

    #[test]
    fn locations_are_deterministic() {
        let a = HashFamily::new(7, 3, 128);
        let b = HashFamily::new(7, 3, 128);
        for cell in [0u64, 1, 99, u64::MAX] {
            assert_eq!(a.locations_vec(cell), b.locations_vec(cell));
        }
    }

    #[test]
    fn different_seeds_different_layouts() {
        let a = HashFamily::new(1, 3, 128);
        let b = HashFamily::new(2, 3, 128);
        let differing = (0..100u64)
            .filter(|&c| a.locations_vec(c) != b.locations_vec(c))
            .count();
        assert!(differing > 90);
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let fam = HashFamily::new(3, 2, 32);
        let mut counts = vec![0usize; 32];
        for cell in 0..32_000u64 {
            for m in fam.locations_vec(cell) {
                counts[m] += 1;
            }
        }
        let expected = 2 * 32_000 / 32;
        for (m, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.1,
                "module {m}: {c} vs {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "distinct copies")]
    fn too_many_copies_panics() {
        HashFamily::new(1, 5, 4);
    }
}
