//! Property-based tests of the DMM shared-memory simulation: the
//! machine must behave like a sequentially consistent memory for any
//! program, machine size, and hash seed.

use pcrlb_shmem::{DmmConfig, DmmMachine, MemOp};
use proptest::prelude::*;
use std::collections::HashMap;

/// A random single-op-per-step program against a reference HashMap.
#[derive(Debug, Clone)]
enum ProgOp {
    Read(u64),
    Write(u64, u64),
}

fn prog_strategy() -> impl Strategy<Value = Vec<ProgOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..32).prop_map(ProgOp::Read),
            (0u64..32, any::<u64>()).prop_map(|(c, v)| ProgOp::Write(c, v)),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential programs: the DMM agrees with a plain HashMap.
    #[test]
    fn linearizes_sequential_programs(
        seed in any::<u64>(),
        modules_exp in 3u32..9,
        prog in prog_strategy(),
    ) {
        let modules = 1usize << modules_exp;
        let mut dmm = DmmMachine::new(DmmConfig::mss95(modules), seed);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for op in &prog {
            match *op {
                ProgOp::Read(cell) => {
                    let out = dmm.step(&[MemOp::Read { cell }]);
                    prop_assert!(out.all_completed());
                    prop_assert_eq!(out.results[0], reference.get(&cell).copied());
                }
                ProgOp::Write(cell, value) => {
                    let out = dmm.step(&[MemOp::Write { cell, value }]);
                    prop_assert!(out.all_completed());
                    reference.insert(cell, value);
                }
            }
        }
    }

    /// Parallel batches of *distinct-cell* writes followed by parallel
    /// reads: every value survives the quorum round-trip.
    #[test]
    fn parallel_distinct_cells_roundtrip(
        seed in any::<u64>(),
        cells in proptest::collection::hash_set(0u64..100_000, 1..64),
    ) {
        let cells: Vec<u64> = cells.into_iter().collect();
        let mut dmm = DmmMachine::new(DmmConfig::mss95(128), seed);
        let writes: Vec<MemOp> = cells
            .iter()
            .map(|&c| MemOp::Write { cell: c, value: c ^ 0xABCD })
            .collect();
        let out = dmm.step(&writes);
        prop_assert!(out.all_completed());
        let reads: Vec<MemOp> = cells.iter().map(|&c| MemOp::Read { cell: c }).collect();
        let out = dmm.step(&reads);
        prop_assert!(out.all_completed());
        for (i, &c) in cells.iter().enumerate() {
            prop_assert_eq!(out.results[i], Some(c ^ 0xABCD));
        }
    }

    /// Combining: any number of concurrent readers of one cell all see
    /// the same value, and message cost does not scale with the crowd.
    #[test]
    fn combined_readers_agree(
        seed in any::<u64>(),
        readers in 1usize..128,
    ) {
        let mut dmm = DmmMachine::new(DmmConfig::mss95(64), seed);
        dmm.step(&[MemOp::Write { cell: 42, value: 4242 }]);
        let before = dmm.mean_messages_per_op(); // not used; keep simple
        let _ = before;
        let ops: Vec<MemOp> = (0..readers).map(|_| MemOp::Read { cell: 42 }).collect();
        let out = dmm.step(&ops);
        prop_assert!(out.all_completed());
        prop_assert!(out.results.iter().all(|r| *r == Some(4242)));
        // One combined request => messages bounded by a small constant
        // per round, regardless of `readers`.
        prop_assert!(out.messages <= 6 * out.rounds.max(1) as u64);
    }
}
