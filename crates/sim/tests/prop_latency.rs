//! Property tests for the log-bucketed sojourn histogram.
//!
//! [`LatencyHist`] is the mergeable observability primitive behind the
//! service-simulation front-end: every shard and node records into its
//! own histogram and the engine folds them together in shard order.
//! Three properties make that sound:
//!
//! 1. record-then-merge over *arbitrary* shard splits is bit-identical
//!    to recording the whole stream into one histogram (merge is the
//!    histogram's whole reason to exist);
//! 2. quantiles respect the log-bucket relative-error contract — the
//!    estimate never undershoots the true order statistic and
//!    overshoots by at most one sub-bucket width (`true/32 + 1`);
//! 3. `count` and `sum` are conserved exactly (they are not bucketed).

use pcrlb_sim::LatencyHist;
use proptest::prelude::*;

/// A full-magnitude-range sojourn value that cannot overflow `sum` for
/// the vector lengths used here: a 16-bit mantissa shifted by up to 36
/// bits stays ≤ 2^52, so even 100 of them sum well below `u64::MAX`.
fn value(mantissa: u64, shift: u8) -> u64 {
    mantissa << (shift % 37)
}

/// The true order statistic under the same target-rank convention as
/// `LatencyHist::quantile` (rank `ceil(q·count)`, 1-based, clamped).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Merging per-shard histograms over arbitrary split points is
    /// bit-identical (full struct equality: every bucket, count, sum,
    /// max) to one histogram over the concatenated stream.
    #[test]
    fn merge_over_arbitrary_splits_is_bit_identical(
        raw in collection::vec((1u64..65536, 0u8..37), 1..100),
        cuts in collection::vec(0usize..100, 0..6),
    ) {
        let values: Vec<u64> = raw.iter().map(|&(m, s)| value(m, s)).collect();

        let mut single = LatencyHist::new();
        for &v in &values {
            single.record(v);
        }

        // Cut the stream into consecutive shards at the given points.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % values.len()).collect();
        bounds.push(0);
        bounds.push(values.len());
        bounds.sort_unstable();

        let mut merged = LatencyHist::new();
        for pair in bounds.windows(2) {
            let mut shard = LatencyHist::new();
            for &v in &values[pair[0]..pair[1]] {
                shard.record(v);
            }
            merged.merge(&shard);
        }

        prop_assert_eq!(&merged, &single);
        prop_assert_eq!(merged.buckets(), single.buckets());
    }

    /// Quantile estimates never undershoot the true order statistic and
    /// overshoot by at most the sub-bucket width: `est ≤ t + t/32 + 1`.
    #[test]
    fn quantiles_respect_relative_error_bound(
        raw in collection::vec((1u64..65536, 0u8..37), 1..100),
        q in 0.0f64..1.0,
    ) {
        let mut values: Vec<u64> = raw.iter().map(|&(m, s)| value(m, s)).collect();
        let mut hist = LatencyHist::new();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();

        for q in [q, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let t = exact_quantile(&values, q);
            let est = hist.quantile(q);
            prop_assert!(est >= t, "q={}: est {} < true {}", q, est, t);
            prop_assert!(
                est <= t + t / 32 + 1,
                "q={}: est {} exceeds bound for true {}",
                q, est, t
            );
        }
    }

    /// `count` and `sum` are exact (unbucketed) and conserved under
    /// merge; `max` is the max over the parts.
    #[test]
    fn count_sum_max_conserved_under_merge(
        a in collection::vec((1u64..65536, 0u8..37), 0..50),
        b in collection::vec((1u64..65536, 0u8..37), 0..50),
    ) {
        let va: Vec<u64> = a.iter().map(|&(m, s)| value(m, s)).collect();
        let vb: Vec<u64> = b.iter().map(|&(m, s)| value(m, s)).collect();

        let mut ha = LatencyHist::new();
        let mut hb = LatencyHist::new();
        for &v in &va {
            ha.record(v);
        }
        for &v in &vb {
            hb.record(v);
        }

        let mut merged = ha.clone();
        merged.merge(&hb);

        prop_assert_eq!(merged.count(), va.len() as u64 + vb.len() as u64);
        prop_assert_eq!(
            merged.sum(),
            va.iter().sum::<u64>() + vb.iter().sum::<u64>()
        );
        prop_assert_eq!(
            merged.max(),
            va.iter().chain(&vb).copied().max().unwrap_or(0)
        );
        prop_assert_eq!(
            merged.buckets().iter().sum::<u64>(),
            merged.count()
        );
    }
}
