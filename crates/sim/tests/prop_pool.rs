//! Property-based determinism and hygiene tests for the persistent
//! worker-pool backend: for *arbitrary* (n, seed, steps, threads) the
//! pool must reproduce the sequential engine's `RunReport` bit for bit,
//! and pools must never leak worker threads — not even when a job or a
//! probe panics mid-run.

use pcrlb_sim::{
    live_workers, Backend, LoadModel, MaxLoadProbe, Probe, ProcId, Runner, SimRng,
    SojournTailProbe, Step, WorkerPool, World,
};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Serializes tests that assert on the process-global live-worker
/// counter, so concurrently running pool tests cannot interfere.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// A cheap randomized model exercising both RNG-dependent sub-steps.
#[derive(Clone, Copy)]
struct Coin;

impl LoadModel for Coin {
    fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
        usize::from(rng.chance(0.45))
    }
    fn consume(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
        usize::from(rng.chance(0.5))
    }
    fn task_weight(&self, _: ProcId, _: Step, rng: &mut SimRng) -> u32 {
        1 + rng.below(3) as u32
    }
}

fn run(n: usize, seed: u64, steps: u64, backend: Backend) -> pcrlb_sim::RunReport {
    Runner::new(n, seed)
        .model(Coin)
        .strategy(pcrlb_sim::Unbalanced)
        .backend(backend)
        .probe(MaxLoadProbe::new())
        .probe(SojournTailProbe::new())
        .run(steps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pool reproduces the sequential engine's full report for any
    /// machine size, seed, run length, and worker count — including
    /// pools wider than the machine.
    #[test]
    fn pooled_report_equals_sequential(
        n in 1usize..257,
        seed in any::<u64>(),
        steps in 1u64..120,
        threads in 1usize..9,
    ) {
        let seq = run(n, seed, steps, Backend::Sequential);
        let mut pooled = run(n, seed, steps, Backend::Pooled(threads));
        prop_assert_eq!(pooled.backend, "pooled");
        pooled.backend = seq.backend; // the only field allowed to differ
        prop_assert_eq!(seq, pooled);
    }

    /// The pool and the per-step-spawn threaded backend agree with each
    /// other too (both reduce to the same sharded kernel).
    #[test]
    fn pooled_report_equals_threaded(
        n in 1usize..257,
        seed in any::<u64>(),
        steps in 1u64..120,
        threads in 1usize..9,
    ) {
        let thr = run(n, seed, steps, Backend::Threaded(threads));
        let mut pooled = run(n, seed, steps, Backend::Pooled(threads));
        pooled.backend = thr.backend;
        prop_assert_eq!(thr, pooled);
    }

    /// Building and dropping a pool of any width leaves zero workers
    /// behind, run or no run.
    #[test]
    fn dropped_pools_leak_no_workers(
        threads in 1usize..9,
        steps in 0u64..40,
    ) {
        let _serial = COUNTER_LOCK.lock().unwrap();
        let baseline = live_workers();
        {
            let report = run(64, 7, steps.max(1), Backend::Pooled(threads));
            prop_assert_eq!(report.backend, "pooled");
            let pool = WorkerPool::new(threads);
            prop_assert_eq!(live_workers(), baseline + threads);
            drop(pool);
        }
        prop_assert_eq!(live_workers(), baseline);
    }
}

/// A probe that panics on a chosen step — models user code blowing up
/// mid-run while the pool is live.
struct Bomb(u64);

impl Probe for Bomb {
    fn name(&self) -> &'static str {
        "bomb"
    }
    fn on_step(&mut self, world: &World) {
        if world.step() >= self.0 {
            panic!("bomb probe detonated at step {}", world.step());
        }
    }
    fn finish(self: Box<Self>) -> pcrlb_sim::ProbeOutput {
        unreachable!("the bomb always detonates before finish")
    }
}

#[test]
fn pool_drop_after_probe_panic_leaves_no_workers() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    let baseline = live_workers();
    let result = catch_unwind(AssertUnwindSafe(|| {
        Runner::new(64, 3)
            .model(Coin)
            .strategy(pcrlb_sim::Unbalanced)
            .backend(Backend::Pooled(4))
            .probe(Bomb(3))
            .run(50)
    }));
    assert!(result.is_err(), "bomb probe must abort the run");
    // Unwinding dropped the engine and its resolved pool backend: every
    // worker must have been joined on the way out.
    assert_eq!(live_workers(), baseline);
}
