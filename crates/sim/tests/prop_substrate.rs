//! Property-based tests of the simulation substrate's invariants.

use pcrlb_sim::{Engine, LoadModel, ProcId, SimRng, Step, Task, TaskArena, Unbalanced, World};
use proptest::prelude::*;

/// A deterministic model parameterized by per-step generation count.
#[derive(Clone, Copy)]
struct FixedGen(usize, usize);

impl LoadModel for FixedGen {
    fn generate(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
        self.0
    }
    fn consume(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
        self.1
    }
}

proptest! {
    /// Transfers conserve tasks and never invent or destroy load.
    #[test]
    fn transfer_conserves_tasks(
        load_a in 0usize..200,
        load_b in 0usize..200,
        k in 0usize..250,
    ) {
        let mut w = World::new(2, 1);
        w.inject(0, load_a);
        w.inject(1, load_b);
        let before = w.total_load();
        let moved = w.transfer(0, 1, k);
        prop_assert_eq!(w.total_load(), before);
        prop_assert_eq!(moved, k.min(load_a));
        prop_assert_eq!(w.load(0), load_a - moved);
        prop_assert_eq!(w.load(1), load_b + moved);
    }

    /// take_back + append_back preserves global FIFO-compatible order:
    /// the receiver's queue ends with the moved block in its original
    /// relative order, and the sender keeps its prefix.
    #[test]
    fn queue_transfer_preserves_order(
        sender_ids in proptest::collection::vec(0u64..1000, 0..50),
        k in 0usize..60,
    ) {
        let mut arena = TaskArena::new(1);
        for (i, &id) in sender_ids.iter().enumerate() {
            // Unique ids: combine position and value.
            arena.push(0, Task::new((i as u64) << 32 | id, 0, 0));
        }
        let all: Vec<u64> = arena.iter(0).map(|t| t.id).collect();
        let moved = arena.take_back(0, k);
        let kept: Vec<u64> = arena.iter(0).map(|t| t.id).collect();
        let moved_ids: Vec<u64> = moved.iter().map(|t| t.id).collect();
        let cut = all.len() - k.min(all.len());
        prop_assert_eq!(&kept[..], &all[..cut]);
        prop_assert_eq!(&moved_ids[..], &all[cut..]);
    }

    /// The engine's load accounting matches generation minus
    /// consumption exactly for deterministic models.
    #[test]
    fn engine_load_accounting(
        n in 1usize..20,
        gen in 0usize..4,
        cons in 0usize..4,
        steps in 1u64..50,
    ) {
        let mut e = Engine::new(n, 7, FixedGen(gen, cons), Unbalanced);
        e.run(steps);
        let expected_per_proc = if gen >= cons {
            (gen - cons) as u64 * steps
        } else {
            0
        };
        prop_assert_eq!(e.world().total_load(), expected_per_proc * n as u64);
        // Completions = min(gen, cons) per step per proc when gen>=cons,
        // otherwise everything generated completes.
        let consumed_per_step = gen.min(cons) as u64;
        prop_assert_eq!(
            e.world().completions().count,
            consumed_per_step * steps * n as u64
        );
    }

    /// `SimRng::below` is always within bounds and `distinct` yields
    /// distinct in-range values for every (n, k <= n).
    #[test]
    fn rng_contracts(seed in any::<u64>(), n in 1usize..500, k_frac in 0.0f64..1.0) {
        let mut rng = SimRng::new(seed);
        let k = ((n as f64) * k_frac) as usize;
        prop_assert!(rng.below(n) < n);
        let mut out = Vec::new();
        rng.distinct(n, k, &mut out);
        prop_assert_eq!(out.len(), k);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
        prop_assert!(out.iter().all(|&v| v < n));
    }

    /// The queue's incremental weight counter always equals the sum of
    /// its tasks' weights, across any interleaving of operations.
    #[test]
    fn queue_weight_counter_is_exact(
        ops in proptest::collection::vec(
            prop_oneof![
                (1u32..10).prop_map(Some),          // push with weight
                Just(None),                          // pop
            ],
            0..100,
        ),
        take in 0usize..20,
        wtake in 0u64..40,
    ) {
        let mut q = TaskArena::new(1);
        let mut id = 0u64;
        for op in ops {
            match op {
                Some(w) => {
                    q.push(0, Task::new(id, 0, 0).with_weight(w));
                    id += 1;
                }
                None => {
                    q.pop(0);
                }
            }
            let expected: u64 = q.iter(0).map(|t| t.weight as u64).sum();
            prop_assert_eq!(q.weighted_load(0), expected);
        }
        let before = q.weighted_load(0);
        let taken = q.take_back(0, take);
        let taken_w: u64 = taken.iter().map(|t| t.weight as u64).sum();
        prop_assert_eq!(q.weighted_load(0) + taken_w, before);
        q.append_back(0, taken);
        prop_assert_eq!(q.weighted_load(0), before);
        // take_back_weight removes at least the requested weight when
        // available, with overshoot below one task's weight.
        let removed = q.take_back_weight(0, wtake);
        let removed_w: u64 = removed.iter().map(|t| t.weight as u64).sum();
        if before >= wtake {
            prop_assert!(removed_w >= wtake);
            if let Some(first) = removed.first() {
                prop_assert!(removed_w - wtake < first.weight as u64);
            }
        } else {
            prop_assert_eq!(removed_w, before);
        }
    }

    /// Weighted transfers conserve total weight exactly.
    #[test]
    fn weighted_transfer_conserves_work(
        weights_a in proptest::collection::vec(1u32..8, 0..30),
        weights_b in proptest::collection::vec(1u32..8, 0..30),
        w in 0u64..120,
    ) {
        let mut world = World::new(2, 1);
        for &wt in &weights_a {
            world.generate_one_weighted(0, wt);
        }
        for &wt in &weights_b {
            world.generate_one_weighted(1, wt);
        }
        let before = world.total_weighted_load();
        let moved = world.transfer_weight(0, 1, w);
        prop_assert_eq!(world.total_weighted_load(), before);
        prop_assert_eq!(
            moved,
            before - world.weighted_load(0) - weights_b.iter().map(|&x| x as u64).sum::<u64>()
        );
    }

    /// Completions record exact sojourn times under FIFO service.
    #[test]
    fn sojourn_times_are_exact(queue_len in 1usize..40) {
        // One processor, preloaded with queue_len tasks at step 0,
        // consuming exactly one per step: task i completes at step i
        // with sojourn i (born at 0, finished at step i = its position).
        let mut w = World::new(1, 3);
        w.inject(0, queue_len);
        let mut e = Engine::with_world(w, FixedGen(0, 1), Unbalanced);
        e.run(queue_len as u64 + 5);
        let c = e.world().completions();
        prop_assert_eq!(c.count, queue_len as u64);
        prop_assert_eq!(c.sojourn_max, queue_len as u64 - 1);
        // Sum of 0..queue_len-1.
        prop_assert_eq!(c.sojourn_sum, (queue_len as u64 * (queue_len as u64 - 1)) / 2);
    }
}
