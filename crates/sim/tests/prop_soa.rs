//! Cross-layout equivalence properties for the structure-of-arrays
//! world.
//!
//! The SoA refactor moved queues into a shared task arena, batched the
//! per-step RNG draws, and routed parallel backends through shard views
//! with an overflow/spill path (shard rings never grow mid-step;
//! overflowing tasks are absorbed by the world after the parallel
//! section). None of that may be observable: for *arbitrary*
//! `(n, seed, steps, backend)` every backend must produce the same
//! `RunReport` bit for bit — with and without an active fault plan.

use pcrlb_sim::{
    Backend, FaultConfig, LoadModel, MaxLoadProbe, Probe, ProcId, RunReport, Runner, SimRng,
    SojournTailProbe, Step, Unbalanced, World,
};
use proptest::prelude::*;

/// Randomized generation, consumption, and weights: exercises the
/// batched `task_weights` draw and the spill path (bursts overflow the
/// lazily-grown shard rings).
#[derive(Clone, Copy)]
struct Gusts;

impl LoadModel for Gusts {
    fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
        // Mostly calm with occasional multi-task gusts, so queue
        // lengths cross ring-capacity boundaries in both directions.
        if rng.chance(0.12) {
            2 + rng.below(6)
        } else {
            usize::from(rng.chance(0.4))
        }
    }
    fn consume(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
        usize::from(rng.chance(0.55))
    }
    fn task_weight(&self, _: ProcId, _: Step, rng: &mut SimRng) -> u32 {
        1 + rng.below(4) as u32
    }
}

/// A probe reading per-processor state through the view API each step,
/// so layout bugs that corrupt views (not just totals) fail the
/// equivalence assertion via its probe output.
struct ViewChecksum(u64);

impl Probe for ViewChecksum {
    fn name(&self) -> &'static str {
        "view-checksum"
    }
    fn on_step(&mut self, world: &World) {
        let mut acc = self.0;
        for view in world.procs() {
            acc = acc
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(view.load() as u64)
                .wrapping_add(view.remaining_work())
                .wrapping_add(view.stats.generated ^ view.stats.consumed);
            if let Some(back) = view.queue().back() {
                acc = acc.wrapping_add(back.id);
            }
        }
        self.0 = acc;
    }
    fn finish(self: Box<Self>) -> pcrlb_sim::ProbeOutput {
        pcrlb_sim::ProbeOutput::Series(vec![self.0 as f64])
    }
}

fn backend_for(kind: u8, width: usize) -> Backend {
    match kind % 4 {
        0 => Backend::Sequential,
        1 => Backend::Threaded(width),
        2 => Backend::Pooled(width),
        _ => Backend::Net {
            nodes: width,
            tcp: false,
        },
    }
}

fn run(
    n: usize,
    seed: u64,
    steps: u64,
    backend: Backend,
    faults: Option<FaultConfig>,
) -> RunReport {
    let mut runner = Runner::new(n, seed)
        .model(Gusts)
        .strategy(Unbalanced)
        .backend(backend)
        .probe(MaxLoadProbe::new())
        .probe(SojournTailProbe::new())
        .probe(ViewChecksum(0));
    if let Some(cfg) = faults {
        runner = runner.faults(cfg);
    }
    runner.run(steps)
}

/// Erases the only fields allowed to differ across backends (the
/// backend label) so reports can be compared with `==`.
fn normalize(mut r: RunReport) -> RunReport {
    r.backend = "";
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every backend agrees with the sequential engine on the full
    /// report — loads, stats, completions, messages, probe outputs —
    /// for arbitrary machine sizes, seeds, lengths, and widths.
    #[test]
    fn all_backends_agree_fault_free(
        n in 1usize..193,
        seed in any::<u64>(),
        steps in 1u64..100,
        kind in 0u8..4,
        width in 1usize..7,
    ) {
        let seq = normalize(run(n, seed, steps, Backend::Sequential, None));
        let other = normalize(run(n, seed, steps, backend_for(kind, width), None));
        prop_assert_eq!(seq, other);
    }

    /// The same holds under an active fault plan with message loss,
    /// crashes, and stalls: the plan is keyed on (proc, step), so the
    /// faulty trajectory is itself layout- and backend-independent.
    #[test]
    fn all_backends_agree_under_faults(
        n in 1usize..129,
        seed in any::<u64>(),
        steps in 1u64..90,
        kind in 0u8..4,
        width in 1usize..6,
        fault_seed in any::<u64>(),
    ) {
        let cfg = FaultConfig {
            fault_seed,
            loss_rate: 0.15,
            crash_rate: 0.1,
            crash_window: 16,
            stall_rate: 0.1,
            stall_window: 8,
            ..FaultConfig::default()
        };
        let seq = normalize(run(n, seed, steps, Backend::Sequential, Some(cfg)));
        let other = normalize(run(n, seed, steps, backend_for(kind, width), Some(cfg)));
        prop_assert_eq!(seq, other);
    }
}
