//! Cross-layout equivalence properties for the structure-of-arrays
//! world.
//!
//! The SoA refactor moved queues into a shared task arena, batched the
//! per-step RNG draws, and routed parallel backends through shard views
//! with an overflow/spill path (shard rings never grow mid-step;
//! overflowing tasks are absorbed by the world after the parallel
//! section). None of that may be observable: for *arbitrary*
//! `(n, seed, steps, backend)` every backend must produce the same
//! `RunReport` bit for bit — with and without an active fault plan.

use pcrlb_core::{BalancerConfig, ThresholdBalancer, TrafficModel, TrafficSpec};
use pcrlb_sim::{
    Admission, Backend, FaultConfig, LoadModel, MaxLoadProbe, PolicySpec, Probe, ProcId, RunReport,
    Runner, SimRng, SojournProbe, SojournTailProbe, Step, Topology, TopologySpec, Unbalanced,
    World,
};
use proptest::prelude::*;

/// Randomized generation, consumption, and weights: exercises the
/// batched `task_weights` draw and the spill path (bursts overflow the
/// lazily-grown shard rings).
#[derive(Clone, Copy)]
struct Gusts;

impl LoadModel for Gusts {
    fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
        // Mostly calm with occasional multi-task gusts, so queue
        // lengths cross ring-capacity boundaries in both directions.
        if rng.chance(0.12) {
            2 + rng.below(6)
        } else {
            usize::from(rng.chance(0.4))
        }
    }
    fn consume(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
        usize::from(rng.chance(0.55))
    }
    fn task_weight(&self, _: ProcId, _: Step, rng: &mut SimRng) -> u32 {
        1 + rng.below(4) as u32
    }
}

/// A probe reading per-processor state through the view API each step,
/// so layout bugs that corrupt views (not just totals) fail the
/// equivalence assertion via its probe output.
struct ViewChecksum(u64);

impl Probe for ViewChecksum {
    fn name(&self) -> &'static str {
        "view-checksum"
    }
    fn on_step(&mut self, world: &World) {
        let mut acc = self.0;
        for view in world.procs() {
            acc = acc
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(view.load() as u64)
                .wrapping_add(view.remaining_work())
                .wrapping_add(view.stats.generated ^ view.stats.consumed);
            if let Some(back) = view.queue().back() {
                acc = acc.wrapping_add(back.id);
            }
        }
        self.0 = acc;
    }
    fn finish(self: Box<Self>) -> pcrlb_sim::ProbeOutput {
        pcrlb_sim::ProbeOutput::Series(vec![self.0 as f64])
    }
}

fn backend_for(kind: u8, width: usize) -> Backend {
    match kind % 4 {
        0 => Backend::Sequential,
        1 => Backend::Threaded(width),
        2 => Backend::Pooled(width),
        _ => Backend::Net {
            nodes: width,
            tcp: false,
            relaxed: false,
        },
    }
}

fn run(
    n: usize,
    seed: u64,
    steps: u64,
    backend: Backend,
    faults: Option<FaultConfig>,
) -> RunReport {
    let mut runner = Runner::new(n, seed)
        .model(Gusts)
        .strategy(Unbalanced)
        .backend(backend)
        .probe(MaxLoadProbe::new())
        .probe(SojournTailProbe::new())
        .probe(ViewChecksum(0));
    if let Some(cfg) = faults {
        runner = runner.faults(cfg);
    }
    runner.run(steps)
}

/// Open-loop run: Poisson traffic at `rho` with the given admission
/// policy, observed through the sojourn-histogram probe. The report's
/// `==` covers the full histogram buckets plus shed/defer counters, so
/// any backend-dependent divergence in the admission path fails loudly.
fn run_open_loop(
    n: usize,
    seed: u64,
    steps: u64,
    rho: f64,
    admission: Admission,
    backend: Backend,
    faults: Option<FaultConfig>,
) -> RunReport {
    let mut spec = TrafficSpec::poisson(rho);
    spec.admission = admission;
    let mut runner = Runner::new(n, seed)
        .model(TrafficModel::new(spec, n).expect("valid spec"))
        .strategy(Unbalanced)
        .backend(backend)
        .probe(SojournProbe::new())
        .probe(ViewChecksum(0));
    if let Some(cfg) = faults {
        runner = runner.faults(cfg);
    }
    runner.run(steps)
}

/// Erases the only fields allowed to differ across backends (the
/// backend label) so reports can be compared with `==`.
fn normalize(mut r: RunReport) -> RunReport {
    r.backend = "";
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every backend agrees with the sequential engine on the full
    /// report — loads, stats, completions, messages, probe outputs —
    /// for arbitrary machine sizes, seeds, lengths, and widths.
    #[test]
    fn all_backends_agree_fault_free(
        n in 1usize..193,
        seed in any::<u64>(),
        steps in 1u64..100,
        kind in 0u8..4,
        width in 1usize..7,
    ) {
        let seq = normalize(run(n, seed, steps, Backend::Sequential, None));
        let other = normalize(run(n, seed, steps, backend_for(kind, width), None));
        prop_assert_eq!(seq, other);
    }

    /// The same holds under an active fault plan with message loss,
    /// crashes, and stalls: the plan is keyed on (proc, step), so the
    /// faulty trajectory is itself layout- and backend-independent.
    #[test]
    fn all_backends_agree_under_faults(
        n in 1usize..129,
        seed in any::<u64>(),
        steps in 1u64..90,
        kind in 0u8..4,
        width in 1usize..6,
        fault_seed in any::<u64>(),
    ) {
        let cfg = FaultConfig {
            fault_seed,
            loss_rate: 0.15,
            crash_rate: 0.1,
            crash_window: 16,
            stall_rate: 0.1,
            stall_window: 8,
            ..FaultConfig::default()
        };
        let seq = normalize(run(n, seed, steps, Backend::Sequential, Some(cfg)));
        let other = normalize(run(n, seed, steps, backend_for(kind, width), Some(cfg)));
        prop_assert_eq!(seq, other);
    }

    /// Open-loop traffic (Poisson arrivals drawn per processor, unit
    /// service, arbitrary admission policy) is bit-identical across all
    /// backends — including the sojourn-histogram buckets and the
    /// shed/defer counters in the report — with and without 5% message
    /// loss.
    #[test]
    fn open_loop_backends_agree(
        n in 1usize..129,
        seed in any::<u64>(),
        steps in 1u64..80,
        kind in 0u8..4,
        width in 1usize..6,
        rho_pct in 30u32..160,
        policy in 0u8..3,
        lossy in any::<bool>(),
    ) {
        let rho = f64::from(rho_pct) / 100.0;
        let admission = match policy {
            0 => Admission::Unbounded,
            1 => Admission::Shed { cap: 6 },
            _ => Admission::Defer { cap: 6 },
        };
        let faults = lossy.then(|| FaultConfig {
            fault_seed: seed ^ 0xD1CE,
            loss_rate: 0.05,
            ..FaultConfig::default()
        });
        let seq = normalize(run_open_loop(
            n, seed, steps, rho, admission, Backend::Sequential, faults,
        ));
        let other = normalize(run_open_loop(
            n, seed, steps, rho, admission, backend_for(kind, width), faults,
        ));
        prop_assert_eq!(seq, other);
    }
}

/// Balanced run under an arbitrary partner policy on an arbitrary
/// topology. All policies draw exclusively from the global RNG stream
/// on the coordinating thread (the determinism contract documented in
/// `policy.rs`), so the report must stay bit-identical across every
/// backend for every (policy, topology) pair.
fn run_policy(
    n: usize,
    seed: u64,
    steps: u64,
    policy: &PolicySpec,
    topo: &TopologySpec,
    backend: Backend,
    faults: Option<FaultConfig>,
) -> RunReport {
    let balancer = ThresholdBalancer::new(BalancerConfig::paper(n))
        .with_topology(topo.build(n).expect("valid topology for n"))
        .with_policy_spec(policy);
    let mut runner = Runner::new(n, seed)
        .model(Gusts)
        .strategy(balancer)
        .backend(backend)
        .probe(MaxLoadProbe::new())
        .probe(ViewChecksum(0));
    if let Some(cfg) = faults {
        runner = runner.faults(cfg);
    }
    runner.run(steps)
}

fn policy_for(idx: u8) -> PolicySpec {
    let spec = match idx % 5 {
        0 => "collision",
        1 => "greedy:2",
        2 => "beta:0.5",
        3 => "probe:4",
        _ => "left:2",
    };
    PolicySpec::parse(spec).expect("known policy spec")
}

fn topology_for(idx: u8) -> TopologySpec {
    // All of these build for any power-of-two n >= 64.
    let spec = match idx % 5 {
        0 => "complete",
        1 => "ring",
        2 => "torus",
        3 => "hypercube",
        _ => "regular:4",
    };
    TopologySpec::parse(spec).expect("known topology spec")
}

/// Breadth-first reachability count from processor 0.
fn reachable(topo: &dyn Topology) -> usize {
    let n = topo.n();
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([0usize]);
    seen[0] = true;
    let mut count = 1;
    while let Some(v) = queue.pop_front() {
        for k in 0..topo.degree(v) {
            let w = topo.neighbor(v, k);
            if !seen[w] {
                seen[w] = true;
                count += 1;
                queue.push_back(w);
            }
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every partner policy on every topology produces bit-identical
    /// reports on all four backends; the collision policy additionally
    /// agrees under 5% message loss (the other policies never send
    /// droppable collision-game traffic, so loss is exercised where it
    /// can actually bite).
    #[test]
    fn policies_agree_on_every_backend(
        n_exp in 6u32..8,
        seed in any::<u64>(),
        steps in 1u64..48,
        kind in 1u8..4,
        width in 1usize..6,
        policy_idx in 0u8..5,
        topo_idx in 0u8..5,
        lossy in any::<bool>(),
    ) {
        let n = 1usize << n_exp;
        let policy = policy_for(policy_idx);
        let topo = topology_for(topo_idx);
        let faults = (lossy && matches!(policy, PolicySpec::Collision)).then(|| FaultConfig {
            fault_seed: seed ^ 0x10_55,
            loss_rate: 0.05,
            ..FaultConfig::default()
        });
        let seq = normalize(run_policy(
            n, seed, steps, &policy, &topo, Backend::Sequential, faults,
        ));
        let other = normalize(run_policy(
            n, seed, steps, &policy, &topo, backend_for(kind, width), faults,
        ));
        prop_assert_eq!(seq, other);
    }

    /// Topology invariants for arbitrary sizes: advertised degrees are
    /// honest (every neighbor slot resolves to a valid non-self vertex),
    /// the graph is connected, and seeded construction is deterministic
    /// (same spec + n → identical adjacency; different seed → different
    /// random-regular adjacency is *allowed* but same-seed equality is
    /// required).
    #[test]
    fn topology_invariants(
        n_exp in 6u32..10,
        topo_idx in 0u8..5,
        reg_seed in any::<u64>(),
    ) {
        let n = 1usize << n_exp;
        let spec = if topo_idx % 5 == 4 {
            TopologySpec::parse(&format!("regular:4,{reg_seed}")).expect("regular spec")
        } else {
            topology_for(topo_idx)
        };
        let topo = spec.build(n).expect("valid for power-of-two n");
        prop_assert_eq!(topo.n(), n);
        for v in 0..n {
            let deg = topo.degree(v);
            prop_assert!(deg >= 1, "vertex {} has no neighbors", v);
            for k in 0..deg {
                let w = topo.neighbor(v, k);
                prop_assert!(w < n, "neighbor out of range");
                prop_assert!(w != v, "self-loop at vertex {}", v);
            }
        }
        prop_assert_eq!(reachable(topo.as_ref()), n, "graph must be connected");

        // Same spec, same n: bit-identical adjacency.
        let again = spec.build(n).expect("valid for power-of-two n");
        for v in 0..n {
            prop_assert_eq!(topo.degree(v), again.degree(v));
            for k in 0..topo.degree(v) {
                prop_assert_eq!(topo.neighbor(v, k), again.neighbor(v, k));
            }
        }
    }
}

/// Deterministic overload check: at ρ = 1.5 behind a small shed cap the
/// front door must actually drop work (shed > 0), every offered task is
/// accounted for, and all four backends agree on the exact counts.
#[test]
fn overload_sheds_identically_on_every_backend() {
    let (n, seed, steps) = (96, 1998, 200);
    let seq = run_open_loop(
        n,
        seed,
        steps,
        1.5,
        Admission::Shed { cap: 4 },
        Backend::Sequential,
        None,
    );
    assert!(seq.total_shed > 0, "rho=1.5 behind cap 4 must shed");
    assert_eq!(seq.total_deferred, 0, "shed policy never defers");
    for kind in 1u8..4 {
        let other = run_open_loop(
            n,
            seed,
            steps,
            1.5,
            Admission::Shed { cap: 4 },
            backend_for(kind, 4),
            None,
        );
        assert_eq!(normalize(seq.clone()), normalize(other));
    }
}
