//! The shared simulation state: processors, time, RNG streams, message
//! ledger, and completion statistics.
//!
//! A [`World`] is what balancing strategies manipulate. It deliberately
//! exposes only operations that a distributed algorithm could perform —
//! reading a load takes a message in reality, so strategies that inspect
//! loads must account for it themselves via [`World::ledger_mut`];
//! the world does not hide communication.
//!
//! # Layout
//!
//! Processor state is stored structure-of-arrays: all queues live in
//! one [`TaskArena`], per-processor counters in [`StatsSoa`], and the
//! remaining per-processor scalars (`rngs`, `progress`) in
//! parallel flat vectors. The hot generate/consume kernel walks these
//! arrays in processor order, which streams instead of pointer-chasing
//! one heap-allocated queue per processor. The per-processor *object*
//! API survives as [`ProcView`] — assembled on demand, never stored.

use crate::latency::LatencyHist;
use crate::membership::{ChurnSpec, MembershipState, MembershipView};
use crate::message::{MessageLedger, MessageStats};
use crate::probe::PhaseReport;
use crate::processor::{task_id, ProcStats, ProcView, StatsSoa};
use crate::queue::{ArenaShard, TaskArena};
use crate::rng::SimRng;
use crate::task::{Completion, Task};
use crate::trace::Event;
use crate::types::{ProcId, Step};
use pcrlb_faults::{FaultModel, Reliable};
use pcrlb_net::{ControlRecord, FrameStats, WireLog};
use std::sync::Arc;

/// Aggregated completion (executed-task) statistics.
///
/// Stores a histogram of sojourn times rather than every completion:
/// long runs at `n = 2^16` complete hundreds of millions of tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionStats {
    /// Tasks completed.
    pub count: u64,
    /// Sum of sojourn times (for the mean).
    pub sojourn_sum: u64,
    /// Largest sojourn observed.
    pub sojourn_max: u64,
    /// Tasks that executed on their origin processor.
    pub local_count: u64,
    /// `hist[w]` = completions with sojourn `w`; the final bucket
    /// aggregates everything `>= hist.len() - 1`.
    pub hist: Vec<u64>,
    /// Log-bucketed sojourn histogram (unbounded range, bounded
    /// relative error) — the streaming quantile source for the service
    /// front-end's p50/p99/p999/pmax.
    pub latency: LatencyHist,
}

impl CompletionStats {
    /// `hist_cap` bounds the sojourn histogram resolution.
    pub fn new(hist_cap: usize) -> Self {
        CompletionStats {
            count: 0,
            sojourn_sum: 0,
            sojourn_max: 0,
            local_count: 0,
            hist: vec![0; hist_cap.max(2)],
            latency: LatencyHist::new(),
        }
    }

    pub(crate) fn record(&mut self, c: &Completion) {
        let w = c.sojourn();
        self.count += 1;
        self.sojourn_sum += w;
        self.sojourn_max = self.sojourn_max.max(w);
        if c.ran_at_origin() {
            self.local_count += 1;
        }
        let idx = (w as usize).min(self.hist.len() - 1);
        self.hist[idx] += 1;
        self.latency.record(w);
    }

    /// Mean sojourn time, 0 when nothing completed.
    pub fn sojourn_mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sojourn_sum as f64 / self.count as f64
        }
    }

    /// Fraction of tasks that executed where they were generated.
    pub fn locality(&self) -> f64 {
        if self.count == 0 {
            1.0
        } else {
            self.local_count as f64 / self.count as f64
        }
    }

    /// Empirical `P(sojourn > w)`.
    pub fn tail_probability(&self, w: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let above: u64 = self
            .hist
            .iter()
            .enumerate()
            .filter(|(i, _)| *i as u64 > w)
            .map(|(_, c)| *c)
            .sum();
        above as f64 / self.count as f64
    }

    /// Zeroes all counters while keeping the histogram allocation —
    /// lets the worker pool reuse per-worker scratch every step.
    pub(crate) fn reset(&mut self) {
        self.count = 0;
        self.sojourn_sum = 0;
        self.sojourn_max = 0;
        self.local_count = 0;
        self.hist.fill(0);
        self.latency.reset();
    }

    pub(crate) fn merge(&mut self, other: &CompletionStats) {
        self.count += other.count;
        self.sojourn_sum += other.sojourn_sum;
        self.sojourn_max = self.sojourn_max.max(other.sojourn_max);
        self.local_count += other.local_count;
        for (a, b) in self.hist.iter_mut().zip(&other.hist) {
            *a += b;
        }
        self.latency.merge(&other.latency);
    }
}

/// Per-step buffer of strategy observations (phase reports and trace
/// events) awaiting pickup by the probe pipeline.
///
/// Disabled by default: strategies call [`World::emit_phase`] /
/// [`World::emit_event`] unconditionally, and the calls are no-ops
/// unless a runner enabled the sink — so strategies pay nothing when
/// nobody is listening.
#[derive(Debug, Clone, Default)]
struct ObserverSink {
    phases: Vec<PhaseReport>,
    events: Vec<Event>,
}

/// A block transfer awaiting physical delivery: when the wire sink is
/// active, [`World::transfer`] records all statistics at decision time
/// (exactly as the shared-memory backends do) but holds the moved
/// tasks here instead of appending them to the destination queue. The
/// net runtime encodes each record into a real `Transfer` frame, ships
/// it over the transport, and applies the decoded frames in `seq`
/// order at the end of the step — so queue contents are independent of
/// network arrival order and bit-identical to the sequential backend.
#[derive(Debug, Clone)]
pub struct TransferRecord {
    /// Global emission sequence number within the step.
    pub seq: u32,
    /// Sending processor.
    pub from: ProcId,
    /// Receiving processor.
    pub to: ProcId,
    /// The tasks, in queue order.
    pub tasks: Vec<Task>,
}

/// Per-step buffer of wire traffic awaiting the net runtime: control
/// records narrated by the protocol layer plus deferred task
/// transfers. Disabled (and cost-free) unless a net runtime enabled
/// it.
#[derive(Debug, Clone, Default)]
struct WireSink {
    control: Vec<ControlRecord>,
    transfers: Vec<TransferRecord>,
    next_seq: u32,
    frames: FrameStats,
}

/// Complete state of the simulated machine, structure-of-arrays.
#[derive(Debug, Clone)]
pub struct World {
    step: Step,
    /// All task queues, in one slab (index = processor id; same for
    /// every per-processor vector below).
    arena: TaskArena,
    /// Work units already spent on each front task (weighted tasks
    /// take `weight` consume-units to finish; always 0 for unit tasks
    /// between steps).
    progress: Vec<u32>,
    /// Front-door backlog per processor: arrivals parked by an
    /// [`Admission::Defer`](crate::Admission::Defer) policy, re-offered
    /// on later steps. Always all-zero under other policies.
    backlog: Vec<u32>,
    /// Offer steps of the parked arrivals, FIFO per processor and
    /// parallel to `backlog` (`backlog_since[p].len() == backlog[p]`).
    /// Deferred tasks are born at their *offer* step, not their
    /// admission step, so sojourn histograms include the
    /// pre-admission backlog wait. Always all-empty under other
    /// admission policies.
    backlog_since: Vec<std::collections::VecDeque<Step>>,
    /// Per-processor lifetime counters.
    stats: StatsSoa,
    /// Per-processor RNG streams (index `i`) — local decisions only.
    rngs: Vec<SimRng>,
    /// Stream used by globally-coordinated protocol machinery.
    global_rng: SimRng,
    ledger: MessageLedger,
    completions: CompletionStats,
    observer: Option<ObserverSink>,
    /// Wire sink; `Some` only while a net runtime drives this world.
    wire: Option<WireSink>,
    seed: u64,
    /// Active fault model; [`Reliable`] (and skipped entirely) unless a
    /// runner installed a real one via [`World::set_fault_model`].
    faults: Arc<dyn FaultModel>,
    /// Cached `!faults.is_noop()` so the hot paths pay one bool test.
    faulty: bool,
    /// Elastic-membership state; `None` (every processor always live)
    /// unless a churn schedule was installed via
    /// [`World::install_churn`].
    membership: Option<MembershipState>,
}

/// Default sojourn-histogram resolution (buckets).
pub const DEFAULT_SOJOURN_HIST: usize = 4096;

impl World {
    /// Creates a world of `n` processors driven by `seed`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "a world needs at least one processor");
        World {
            step: 0,
            arena: TaskArena::new(n),
            progress: vec![0; n],
            backlog: vec![0; n],
            backlog_since: vec![std::collections::VecDeque::new(); n],
            stats: StatsSoa::new(n),
            rngs: (0..n as u64).map(|i| SimRng::stream(seed, i)).collect(),
            global_rng: SimRng::stream(seed, n as u64),
            ledger: MessageLedger::new(),
            completions: CompletionStats::new(DEFAULT_SOJOURN_HIST),
            observer: None,
            wire: None,
            seed,
            faults: Arc::new(Reliable),
            faulty: false,
            membership: None,
        }
    }

    /// Installs a fault model. A no-op model (see
    /// [`FaultModel::is_noop`]) leaves the world in the fault-free fast
    /// path, bit-identical to never having called this.
    pub fn set_fault_model(&mut self, model: Arc<dyn FaultModel>) {
        self.faulty = !model.is_noop();
        self.faults = model;
    }

    /// The active fault model (the default is [`Reliable`]).
    #[inline]
    pub fn fault_model(&self) -> &dyn FaultModel {
        &*self.faults
    }

    /// Shared handle to the active fault model, for backends that move
    /// it across threads.
    #[inline]
    pub fn fault_handle(&self) -> Arc<dyn FaultModel> {
        Arc::clone(&self.faults)
    }

    /// Handle to the fault model only when it actually injects faults —
    /// `None` means "take the fault-free fast path".
    #[inline]
    pub fn active_faults(&self) -> Option<Arc<dyn FaultModel>> {
        self.faulty.then(|| Arc::clone(&self.faults))
    }

    /// Whether a non-trivial fault model is installed.
    #[inline]
    pub fn faults_enabled(&self) -> bool {
        self.faulty
    }

    /// Number of processors the world was allocated with (the
    /// membership ceiling `n_max`; under churn, not all of them are
    /// live — see [`World::active_n`]).
    #[inline]
    pub fn n(&self) -> usize {
        self.arena.queues()
    }

    /// Number of *live* processors this epoch: ids `[0, active_n)`
    /// generate, consume, and balance. Equals [`World::n`] unless a
    /// churn schedule shrank the membership.
    #[inline]
    pub fn active_n(&self) -> usize {
        self.membership
            .as_ref()
            .map_or_else(|| self.n(), |m| m.active)
    }

    /// Installs an elastic-membership schedule. From the next
    /// [`World::sync_membership`] on (the engine calls it at the top of
    /// every step), the live prefix follows `spec.active_at(step)`;
    /// departing processors have their queues evacuated
    /// deterministically, rejoining ones resume their untouched RNG
    /// streams and task-id sequences.
    pub fn install_churn(&mut self, spec: ChurnSpec) {
        let n = self.n();
        self.membership = Some(MembershipState::new(spec, n, self.step));
    }

    /// Whether a churn schedule is installed.
    #[inline]
    pub fn churn_enabled(&self) -> bool {
        self.membership.is_some()
    }

    /// Snapshot of the membership state (`None` without churn).
    #[inline]
    pub fn membership_view(&self) -> Option<MembershipView> {
        self.membership.as_ref().map(|m| m.view())
    }

    /// The resident membership state (`None` without churn). In-crate
    /// consumers (probes) read the deterministic counters from here.
    #[inline]
    pub(crate) fn membership(&self) -> Option<&MembershipState> {
        self.membership.as_ref()
    }

    /// Tasks moved off departing processors so far (0 without churn).
    #[inline]
    pub fn evacuated_tasks(&self) -> u64 {
        self.membership.as_ref().map_or(0, |m| m.evacuated_tasks)
    }

    /// Brings the live prefix in line with the churn schedule for the
    /// current step, then sweeps the inactive suffix: any task parked
    /// on a departed processor (its own queue on departure, or a
    /// transfer that landed after it left) is evacuated to live
    /// processor `p % active` as an ordinary recorded transfer.
    ///
    /// Called at the top of every engine step **on the coordinator
    /// only** — all four backends therefore observe identical
    /// membership transitions and identical pre-kernel queue contents,
    /// which is what keeps `RunReport`s bit-identical under churn. The
    /// evacuation deliberately bypasses the wire sink: it models the
    /// coordinator reassigning a departed peer's shard, not a
    /// peer-to-peer balancing message.
    ///
    /// No-op without churn.
    pub(crate) fn sync_membership(&mut self) {
        let Some(mut ms) = self.membership.take() else {
            return;
        };
        let target = ms.target(self.step);
        if target != ms.active {
            ms.transition(target);
        }
        let active = ms.active;
        for p in active..self.n() {
            let load = self.arena.load(p);
            if load > 0 {
                let d = p % active;
                self.arena.move_back(p, d, load);
                self.record_transfer_stats(p, d, load);
                ms.evacuated_tasks += load as u64;
            }
            // A partially-executed front task restarts at its new home.
            self.progress[p] = 0;
            if self.backlog[p] > 0 {
                let d = p % active;
                self.backlog[d] += self.backlog[p];
                self.backlog[p] = 0;
                let mut moved = std::mem::take(&mut self.backlog_since[p]);
                self.backlog_since[d].append(&mut moved);
            }
        }
        self.membership = Some(ms);
    }

    /// Current simulation step.
    #[inline]
    pub fn step(&self) -> Step {
        self.step
    }

    /// Master seed the world was built from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Advances the clock by one step, reclaiming orphaned arena space
    /// when worthwhile (a single-threaded moment — no shard views are
    /// alive between steps). Called by the engine only.
    pub(crate) fn tick(&mut self) {
        self.step += 1;
        self.arena.maybe_compact();
    }

    /// Load of processor `p`.
    ///
    /// # Panics
    /// Panics when `p >= n` — processor ids are dense indices, so an
    /// out-of-range id is a caller bug (this applies to every
    /// per-processor accessor on `World`).
    #[inline]
    pub fn load(&self, p: ProcId) -> usize {
        self.arena.load(p)
    }

    /// All loads as one contiguous slice, index = processor id — the
    /// zero-cost bulk read the classification scans use.
    #[inline]
    pub fn load_slice(&self) -> &[u32] {
        self.arena.loads()
    }

    /// The weighted-load components as contiguous slices: per-processor
    /// pending weight sums and front-task progress. Remaining work of
    /// `p` is `weights[p] - progress[p]`.
    #[inline]
    pub fn weighted_load_slices(&self) -> (&[u64], &[u32]) {
        (self.arena.weights(), &self.progress)
    }

    /// Copies all loads into `out` (reused buffer pattern).
    pub fn loads_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.arena.loads().iter().map(|&l| l as usize));
    }

    /// All loads as a fresh vector.
    pub fn loads(&self) -> Vec<usize> {
        self.arena.loads().iter().map(|&l| l as usize).collect()
    }

    /// Maximum load over all processors (flat scan, no allocation).
    pub fn max_load(&self) -> usize {
        self.arena.loads().iter().copied().max().unwrap_or(0) as usize
    }

    /// Total system load.
    pub fn total_load(&self) -> u64 {
        self.arena.loads().iter().map(|&l| l as u64).sum()
    }

    /// Remaining work units on `p` (weighted load; equals
    /// [`World::load`] for unit-weight tasks).
    #[inline]
    pub fn weighted_load(&self, p: ProcId) -> u64 {
        self.arena.weighted_load(p) - self.progress[p] as u64
    }

    /// Maximum weighted load over all processors.
    pub fn max_weighted_load(&self) -> u64 {
        let (weights, progress) = self.weighted_load_slices();
        weights
            .iter()
            .zip(progress)
            .map(|(&w, &pr)| w - pr as u64)
            .max()
            .unwrap_or(0)
    }

    /// Total remaining work in the system.
    pub fn total_weighted_load(&self) -> u64 {
        let (weights, progress) = self.weighted_load_slices();
        weights.iter().sum::<u64>() - progress.iter().map(|&pr| pr as u64).sum::<u64>()
    }

    /// Per-processor view (counters + queue), assembled on demand.
    #[inline]
    pub fn proc(&self, p: ProcId) -> ProcView<'_> {
        ProcView {
            id: p,
            arena: &self.arena,
            progress: self.progress[p],
            stats: self.stats.get(p),
        }
    }

    /// Iterate over processor views in id order.
    pub fn procs(&self) -> impl Iterator<Item = ProcView<'_>> {
        (0..self.n()).map(move |p| self.proc(p))
    }

    /// Generates one unit-weight task on `p` (a local action; no
    /// message cost).
    pub fn generate_one(&mut self, p: ProcId) -> Task {
        self.generate_one_weighted(p, 1)
    }

    /// Generates one task of the given weight on `p`.
    pub fn generate_one_weighted(&mut self, p: ProcId, weight: u32) -> Task {
        // The lifetime `generated` counter doubles as the local task-id
        // sequence: every id ever assigned on `p` came from exactly one
        // generation, so the two never diverge.
        let seq = self.stats.generated[p];
        let id = task_id(p, seq);
        self.stats.generated[p] = seq + 1;
        let task = Task::new(id, p, self.step).with_weight(weight.max(1));
        self.arena.push(p, task);
        task
    }

    /// Consumes one work unit from the oldest task on `p`, recording a
    /// completion when that unit finishes the task. For unit-weight
    /// tasks this is exactly "consume the oldest task".
    pub fn consume_one(&mut self, p: ProcId) -> Option<Task> {
        let front_weight = self.arena.front(p)?.weight;
        self.progress[p] += 1;
        if self.progress[p] < front_weight {
            return None;
        }
        self.progress[p] = 0;
        self.stats.consumed[p] += 1;
        let task = self.arena.pop(p)?;
        self.completions.record(&Completion {
            task,
            executed_on: p,
            finished: self.step,
        });
        Some(task)
    }

    fn record_transfer_stats(&mut self, from: ProcId, to: ProcId, moved: usize) {
        self.stats.transfers_out[from] += 1;
        self.stats.tasks_sent[from] += moved as u64;
        self.stats.transfers_in[to] += 1;
        self.stats.tasks_received[to] += moved as u64;
        self.ledger.record_transfer(moved as u64);
    }

    /// Moves up to `k` tasks from the back of `from`'s queue to the back
    /// of `to`'s queue (paper §3 transfer rule) and records the transfer
    /// in the ledger. Returns the number actually moved.
    ///
    /// In-memory backends move tasks arena-to-arena without allocating;
    /// with the wire sink active the tasks are parked as a
    /// [`TransferRecord`] instead (see [`World::deliver_or_defer`]).
    ///
    /// # Panics
    /// Panics when `from == to`: the protocol never balances with
    /// itself, so this indicates a strategy bug.
    pub fn transfer(&mut self, from: ProcId, to: ProcId, k: usize) -> usize {
        assert_ne!(from, to, "self-transfer is a strategy bug");
        if self.wire.is_some() {
            let tasks = self.arena.take_back(from, k);
            let moved = tasks.len();
            if moved > 0 {
                self.record_transfer_stats(from, to, moved);
                self.deliver_or_defer(from, to, tasks);
            }
            return moved;
        }
        let moved = self.arena.move_back(from, to, k);
        if moved > 0 {
            self.record_transfer_stats(from, to, moved);
        }
        moved
    }

    /// Moves tasks totalling at least `w` weight units (as available)
    /// from the back of `from`'s queue to the back of `to`'s queue —
    /// the weighted-transfer counterpart of [`World::transfer`].
    /// Returns the weight actually moved.
    pub fn transfer_weight(&mut self, from: ProcId, to: ProcId, w: u64) -> u64 {
        assert_ne!(from, to, "self-transfer is a strategy bug");
        if self.wire.is_some() {
            let tasks = self.arena.take_back_weight(from, w);
            if tasks.is_empty() {
                return 0;
            }
            let moved_weight: u64 = tasks.iter().map(|t| t.weight as u64).sum();
            let moved = tasks.len();
            self.record_transfer_stats(from, to, moved);
            self.deliver_or_defer(from, to, tasks);
            return moved_weight;
        }
        let (count, moved_weight) = self.arena.count_back_weight(from, w);
        if count == 0 {
            return 0;
        }
        self.arena.move_back(from, to, count);
        self.record_transfer_stats(from, to, count);
        moved_weight
    }

    /// Completes a transfer whose tasks were materialized into a
    /// vector: appends directly to the destination queue, or — when the
    /// wire sink is active — parks the tasks as a [`TransferRecord`]
    /// for the net runtime to ship as a real frame. All accounting has
    /// already happened at the call site; only the physical append is
    /// deferred.
    fn deliver_or_defer(&mut self, from: ProcId, to: ProcId, tasks: Vec<Task>) {
        if let Some(sink) = &mut self.wire {
            let seq = sink.next_seq;
            sink.next_seq += 1;
            sink.transfers.push(TransferRecord {
                seq,
                from,
                to,
                tasks,
            });
        } else {
            self.arena.append_back(to, tasks);
        }
    }

    /// Injects `k` adversarial/spike tasks on `p` (they count as
    /// generated by `p` at the current step).
    pub fn inject(&mut self, p: ProcId, k: usize) {
        for _ in 0..k {
            self.generate_one(p);
        }
    }

    /// Removes up to `k` tasks from the back of `p`'s queue without
    /// executing them (adversarial consumption). Returns the number
    /// removed. These do **not** count as completions.
    pub fn annihilate(&mut self, p: ProcId, k: usize) -> usize {
        self.arena.discard_back(p, k)
    }

    /// Marks `p` as heavy for the current phase (statistics only).
    pub fn note_heavy(&mut self, p: ProcId) {
        self.stats.heavy_phases[p] += 1;
    }

    /// Per-processor lifetime counters (by value; cheap).
    #[inline]
    pub fn proc_stats(&self, p: ProcId) -> ProcStats {
        self.stats.get(p)
    }

    /// Total arrivals dropped by an [`Admission::Shed`] policy across
    /// all processors (0 under other policies).
    ///
    /// [`Admission::Shed`]: crate::Admission::Shed
    pub fn total_shed(&self) -> u64 {
        self.stats.shed.iter().sum()
    }

    /// Total arrival-steps spent waiting in the front-door backlog
    /// under an [`Admission::Defer`] policy: each step, every still-
    /// parked arrival adds one (so this is the aggregate front-door
    /// waiting time, not a task count).
    ///
    /// [`Admission::Defer`]: crate::Admission::Defer
    pub fn total_deferred(&self) -> u64 {
        self.stats.deferred.iter().sum()
    }

    /// Arrivals currently parked in `p`'s front-door backlog.
    #[inline]
    pub fn backlog(&self, p: ProcId) -> usize {
        self.backlog[p] as usize
    }

    /// Per-processor RNG stream.
    #[inline]
    pub fn rng_of(&mut self, p: ProcId) -> &mut SimRng {
        &mut self.rngs[p]
    }

    /// Global protocol RNG stream.
    #[inline]
    pub fn rng_global(&mut self) -> &mut SimRng {
        &mut self.global_rng
    }

    /// Message ledger (read).
    #[inline]
    pub fn messages(&self) -> MessageStats {
        self.ledger.snapshot()
    }

    /// Message ledger (write) — strategies record their traffic here.
    #[inline]
    pub fn ledger_mut(&mut self) -> &mut MessageLedger {
        &mut self.ledger
    }

    /// Completion statistics.
    #[inline]
    pub fn completions(&self) -> &CompletionStats {
        &self.completions
    }

    /// Whether an observer (probe pipeline) is attached. Strategies can
    /// use this to skip expensive event construction when unobserved.
    #[inline]
    pub fn observed(&self) -> bool {
        self.observer.is_some()
    }

    /// Attaches the observer sink so [`World::emit_phase`] /
    /// [`World::emit_event`] start buffering. Called by the runner.
    pub(crate) fn enable_observer(&mut self) {
        self.observer = Some(ObserverSink::default());
    }

    /// Publishes a per-phase report to the probe pipeline. No-op when
    /// nothing is observing.
    pub fn emit_phase(&mut self, report: PhaseReport) {
        if let Some(sink) = &mut self.observer {
            sink.phases.push(report);
        }
    }

    /// Publishes a trace event to the probe pipeline. No-op when
    /// nothing is observing.
    pub fn emit_event(&mut self, event: Event) {
        if let Some(sink) = &mut self.observer {
            sink.events.push(event);
        }
    }

    /// Drains buffered observations into the given vectors (appending).
    /// Called once per step by the runner.
    pub(crate) fn take_observations(
        &mut self,
        phases: &mut Vec<PhaseReport>,
        events: &mut Vec<Event>,
    ) {
        if let Some(sink) = &mut self.observer {
            phases.append(&mut sink.phases);
            events.append(&mut sink.events);
        }
    }

    /// Whether a net runtime is collecting wire traffic from this
    /// world. Strategies consult this to narrate their control
    /// messages via [`World::record_wire_control`] /
    /// [`World::record_wire_log`].
    #[inline]
    pub fn wire_enabled(&self) -> bool {
        self.wire.is_some()
    }

    /// Attaches the wire sink. Called by the net runtime only: from
    /// here on, [`World::transfer`] defers physical delivery (see
    /// [`TransferRecord`]) and control records accumulate for framing.
    pub(crate) fn enable_wire(&mut self) {
        self.wire = Some(WireSink::default());
    }

    /// Appends one control record to the wire sink. No-op when no net
    /// runtime is listening.
    #[inline]
    pub fn record_wire_control(&mut self, rec: ControlRecord) {
        if let Some(sink) = &mut self.wire {
            sink.control.push(rec);
        }
    }

    /// Moves all records out of `log` into the wire sink, preserving
    /// emission order. No-op (but still draining) when no net runtime
    /// is listening.
    pub fn record_wire_log(&mut self, log: &mut WireLog) {
        if let Some(sink) = &mut self.wire {
            sink.control.append(&mut log.control);
        } else {
            log.control.clear();
        }
    }

    /// Drains the step's wire traffic: control records in emission
    /// order plus deferred transfers (already `seq`-stamped). Called
    /// once per step by the net runtime.
    pub(crate) fn take_wire_step(&mut self) -> (Vec<ControlRecord>, Vec<TransferRecord>) {
        match &mut self.wire {
            Some(sink) => (
                std::mem::take(&mut sink.control),
                std::mem::take(&mut sink.transfers),
            ),
            None => (Vec::new(), Vec::new()),
        }
    }

    /// Physically completes a deferred transfer from a decoded frame:
    /// appends the tasks to `to`'s queue. All ledger/stat accounting
    /// happened when the transfer was decided, so this only moves
    /// payload.
    pub(crate) fn apply_wire_transfer(&mut self, to: ProcId, tasks: Vec<Task>) {
        self.arena.append_back(to, tasks);
    }

    /// Cumulative physical frame statistics, present only when a net
    /// runtime drove this world.
    #[inline]
    pub fn net_frames(&self) -> Option<FrameStats> {
        self.wire.as_ref().map(|s| s.frames)
    }

    /// Accumulates one step's frame statistics. Net runtime only.
    pub(crate) fn add_net_frames(&mut self, fs: FrameStats) {
        if let Some(sink) = &mut self.wire {
            sink.frames += fs;
        }
    }

    /// Removes and returns the back `k` tasks of `p`'s queue *without*
    /// recording a transfer. Building block for strategies whose
    /// communication pattern differs from a point-to-point transfer
    /// (e.g. the §5 scatter variant); callers must account for their own
    /// messages via [`World::ledger_mut`].
    pub fn extract_back(&mut self, p: ProcId, k: usize) -> Vec<Task> {
        self.arena.take_back(p, k)
    }

    /// Appends tasks to the back of `p`'s queue without accounting.
    /// Counterpart of [`World::extract_back`].
    pub fn deposit(&mut self, p: ProcId, tasks: Vec<Task>) {
        self.arena.append_back(p, tasks);
    }

    /// Splits the machine into `shard_count` disjoint shard views for
    /// the execution backends, plus the world's completion accumulator
    /// for the caller to merge into. Each [`WorldShard`] carries
    /// everything the step kernel touches for its contiguous processor
    /// range — arena window, RNG streams, progress/sequence scalars,
    /// generated/consumed counters — so worker threads run without
    /// locks. With `shard_count == 1` this is the (allocation-light)
    /// sequential path.
    ///
    /// After the kernel runs, any [`WorldShard::spill`]ed tasks must be
    /// handed back via [`World::absorb_spill`] before anything reads
    /// loads — backends do this inside their `run_substeps`.
    pub(crate) fn shard_views(
        &mut self,
        shard_count: usize,
    ) -> (Vec<WorldShard<'_>>, &mut CompletionStats) {
        // Only the live prefix is sharded: departed processors do not
        // generate or consume, so the kernels never touch them (their
        // RNG streams and id sequences stay frozen for rejoin).
        let n = self.active_n();
        let per = n.div_ceil(shard_count.max(1));
        let mut sizes = Vec::with_capacity(shard_count);
        let mut left = n;
        while left > 0 {
            let take = per.min(left);
            sizes.push(take);
            left -= take;
        }
        let now = self.step;
        let arena_shards = self.arena.split_shards(&sizes);
        let (mut rngs, mut progress, mut generated, mut consumed) = (
            &mut self.rngs[..],
            &mut self.progress[..],
            &mut self.stats.generated[..],
            &mut self.stats.consumed[..],
        );
        let (mut shed, mut deferred, mut backlog) = (
            &mut self.stats.shed[..],
            &mut self.stats.deferred[..],
            &mut self.backlog[..],
        );
        let mut backlog_since = &mut self.backlog_since[..];
        let mut out = Vec::with_capacity(sizes.len());
        let mut start = 0;
        for (arena, &size) in arena_shards.into_iter().zip(&sizes) {
            let (r, rt) = std::mem::take(&mut rngs).split_at_mut(size);
            let (pr, pt) = std::mem::take(&mut progress).split_at_mut(size);
            let (g, gt) = std::mem::take(&mut generated).split_at_mut(size);
            let (c, ct) = std::mem::take(&mut consumed).split_at_mut(size);
            let (sh, sht) = std::mem::take(&mut shed).split_at_mut(size);
            let (df, dft) = std::mem::take(&mut deferred).split_at_mut(size);
            let (bk, bkt) = std::mem::take(&mut backlog).split_at_mut(size);
            let (bs, bst) = std::mem::take(&mut backlog_since).split_at_mut(size);
            out.push(WorldShard {
                start,
                now,
                arena,
                rngs: r,
                progress: pr,
                generated: g,
                consumed: c,
                shed: sh,
                deferred: df,
                backlog: bk,
                backlog_since: bs,
                spill: Vec::new(),
            });
            rngs = rt;
            progress = pt;
            generated = gt;
            consumed = ct;
            shed = sht;
            deferred = dft;
            backlog = bkt;
            backlog_since = bst;
            start += size;
        }
        (out, &mut self.completions)
    }

    /// Grows queues and enqueues tasks a shard kernel could not fit in
    /// its fixed-capacity rings (see [`WorldShard::spill`]). Called by
    /// every backend after its parallel section, before any strategy or
    /// probe observes loads — so spilling is invisible: final queue
    /// contents equal what single-threaded inline growth would have
    /// produced.
    pub(crate) fn absorb_spill(&mut self, spill: &mut Vec<(ProcId, Task)>) {
        for (p, task) in spill.drain(..) {
            self.arena.push(p, task);
        }
    }
}

/// One shard's mutable window onto the world for the step kernel: a
/// contiguous processor range `[start, start + len)` with exclusive
/// access to every per-processor array the generate/consume loop
/// touches. Safe to move to a worker thread (regions are disjoint; see
/// [`ArenaShard`]).
pub(crate) struct WorldShard<'a> {
    /// Global id of the first processor in this shard.
    pub(crate) start: usize,
    /// The step being executed.
    pub(crate) now: Step,
    /// Queue window (fixed capacity during the shard's lifetime).
    pub(crate) arena: ArenaShard<'a>,
    /// RNG streams of the shard's processors.
    pub(crate) rngs: &'a mut [SimRng],
    /// Front-task progress of the shard's processors.
    pub(crate) progress: &'a mut [u32],
    /// `stats.generated` window. Doubles as the task-id sequence
    /// source: id assignment and the generation counter move in
    /// lockstep, so one array serves both.
    pub(crate) generated: &'a mut [u64],
    /// `stats.consumed` window.
    pub(crate) consumed: &'a mut [u64],
    /// `stats.shed` window (arrivals dropped by an `Admission::Shed`
    /// policy).
    pub(crate) shed: &'a mut [u64],
    /// `stats.deferred` window (arrival-steps spent in the backlog
    /// under `Admission::Defer`).
    pub(crate) deferred: &'a mut [u64],
    /// Front-door backlog window (pending deferred arrivals).
    pub(crate) backlog: &'a mut [u32],
    /// Offer-step FIFO of each backlog, parallel to `backlog`.
    pub(crate) backlog_since: &'a mut [std::collections::VecDeque<Step>],
    /// Tasks generated this step that did not fit their ring (kernels
    /// never grow the shared slab). The owning world absorbs these via
    /// [`World::absorb_spill`] right after the parallel section.
    pub(crate) spill: Vec<(ProcId, Task)>,
}

impl WorldShard<'_> {
    /// Processors in this shard.
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.rngs.len()
    }

    /// Total pending tasks across the shard, counting spilled tasks —
    /// the quantity the net runtime gossips between nodes.
    pub(crate) fn total_load(&self) -> u64 {
        self.arena.total_load() + self.spill.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_world_is_empty() {
        let w = World::new(8, 1);
        assert_eq!(w.n(), 8);
        assert_eq!(w.step(), 0);
        assert_eq!(w.total_load(), 0);
        assert_eq!(w.max_load(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        World::new(0, 1);
    }

    #[test]
    fn generate_consume_cycle() {
        let mut w = World::new(2, 7);
        w.generate_one(0);
        w.generate_one(0);
        assert_eq!(w.load(0), 2);
        w.tick();
        w.tick();
        let t = w.consume_one(0).unwrap();
        assert_eq!(t.born, 0);
        assert_eq!(w.completions().count, 1);
        assert_eq!(w.completions().sojourn_max, 2);
        assert!(w.consume_one(1).is_none());
    }

    #[test]
    fn transfer_moves_back_tasks_and_records() {
        let mut w = World::new(2, 3);
        for _ in 0..5 {
            w.generate_one(0);
        }
        let moved = w.transfer(0, 1, 3);
        assert_eq!(moved, 3);
        assert_eq!(w.load(0), 2);
        assert_eq!(w.load(1), 3);
        let m = w.messages();
        assert_eq!(m.transfers, 1);
        assert_eq!(m.tasks_moved, 3);
        assert_eq!(w.proc(0).stats.tasks_sent, 3);
        assert_eq!(w.proc(1).stats.tasks_received, 3);
    }

    #[test]
    fn empty_transfer_records_nothing() {
        let mut w = World::new(2, 3);
        assert_eq!(w.transfer(0, 1, 4), 0);
        assert_eq!(w.messages().transfers, 0);
        assert_eq!(w.proc(0).stats.transfers_out, 0);
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_transfer_panics() {
        let mut w = World::new(2, 3);
        w.generate_one(0);
        w.transfer(0, 0, 1);
    }

    #[test]
    fn locality_tracks_transfers() {
        let mut w = World::new(2, 5);
        w.generate_one(0);
        w.generate_one(0);
        w.transfer(0, 1, 1);
        w.consume_one(0);
        w.consume_one(1);
        let c = w.completions();
        assert_eq!(c.count, 2);
        assert_eq!(c.local_count, 1);
        assert!((c.locality() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inject_and_annihilate() {
        let mut w = World::new(3, 9);
        w.inject(2, 10);
        assert_eq!(w.load(2), 10);
        assert_eq!(w.proc(2).stats.generated, 10);
        assert_eq!(w.annihilate(2, 4), 4);
        assert_eq!(w.load(2), 6);
        // Annihilated tasks are not completions.
        assert_eq!(w.completions().count, 0);
    }

    #[test]
    fn loads_snapshot() {
        let mut w = World::new(3, 11);
        w.inject(1, 2);
        w.inject(2, 5);
        assert_eq!(w.loads(), vec![0, 2, 5]);
        assert_eq!(w.max_load(), 5);
        assert_eq!(w.total_load(), 7);
        assert_eq!(w.load_slice(), &[0, 2, 5]);
        let mut buf = Vec::new();
        w.loads_into(&mut buf);
        assert_eq!(buf, vec![0, 2, 5]);
    }

    #[test]
    fn weighted_slices_match_scalar_reads() {
        let mut w = World::new(2, 11);
        w.generate_one_weighted(0, 3);
        w.generate_one_weighted(0, 2);
        w.generate_one(1);
        w.consume_one(0); // one unit of progress on the weight-3 front
        assert_eq!(w.weighted_load(0), 4);
        assert_eq!(w.weighted_load(1), 1);
        let (weights, progress) = w.weighted_load_slices();
        assert_eq!(weights[0] - progress[0] as u64, 4);
        assert_eq!(weights[1] - progress[1] as u64, 1);
        assert_eq!(w.max_weighted_load(), 4);
        assert_eq!(w.total_weighted_load(), 5);
    }

    #[test]
    fn determinism_same_seed() {
        let mut a = World::new(4, 42);
        let mut b = World::new(4, 42);
        for p in 0..4 {
            assert_eq!(a.rng_of(p).next_u64(), b.rng_of(p).next_u64());
        }
    }

    #[test]
    fn observer_disabled_by_default_and_buffers_when_enabled() {
        let mut w = World::new(2, 1);
        assert!(!w.observed());
        w.emit_event(Event::SearchFailed { phase: 0, proc: 1 });
        let (mut phases, mut events) = (Vec::new(), Vec::new());
        w.take_observations(&mut phases, &mut events);
        assert!(events.is_empty());

        w.enable_observer();
        assert!(w.observed());
        w.emit_event(Event::SearchFailed { phase: 0, proc: 1 });
        w.emit_phase(PhaseReport {
            phase: 3,
            ..PhaseReport::default()
        });
        w.take_observations(&mut phases, &mut events);
        assert_eq!(events.len(), 1);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].phase, 3);
        // Drained: a second take yields nothing new.
        w.take_observations(&mut phases, &mut events);
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn shards_cover_all_processors() {
        let mut w = World::new(10, 1);
        let (shards, _) = w.shard_views(3);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(shards[0].start, 0);
        // Shard starts are contiguous and every array splits alike.
        let mut expected = 0;
        for s in &shards {
            assert_eq!(s.start, expected);
            assert_eq!(s.rngs.len(), s.progress.len());
            assert_eq!(s.rngs.len(), s.generated.len());
            assert_eq!(s.rngs.len(), s.arena.queues());
            expected += s.len();
        }
    }

    #[test]
    fn spill_absorption_matches_direct_generation() {
        // Generate through a shard view until the ring overflows, spill
        // the excess, absorb — the world must look exactly as if the
        // tasks had been pushed directly.
        let mut direct = World::new(2, 9);
        for _ in 0..10 {
            direct.generate_one(0);
        }
        let mut via_spill = World::new(2, 9);
        // Pre-size the ring to 4 slots.
        for _ in 0..4 {
            via_spill.generate_one(0);
        }
        for _ in 0..4 {
            via_spill.arena.pop(0);
        }
        via_spill.stats.generated[0] = 0;
        let mut collected = Vec::new();
        {
            let (mut shards, _) = via_spill.shard_views(1);
            let s = &mut shards[0];
            for _ in 0..10 {
                let id = task_id(0, s.generated[0]);
                s.generated[0] += 1;
                let t = Task::new(id, 0, s.now);
                if !s.arena.push(0, t) {
                    s.spill.push((0, t));
                }
            }
            assert_eq!(s.total_load(), 10);
            assert!(!s.spill.is_empty());
            collected.append(&mut shards[0].spill);
        }
        via_spill.absorb_spill(&mut collected);
        assert_eq!(via_spill.load(0), direct.load(0));
        assert_eq!(
            via_spill.arena.iter(0).map(|t| t.id).collect::<Vec<_>>(),
            direct.arena.iter(0).map(|t| t.id).collect::<Vec<_>>()
        );
        assert_eq!(
            via_spill.proc(0).stats.generated,
            direct.proc(0).stats.generated
        );
    }

    #[test]
    fn completion_tail_probability() {
        let mut c = CompletionStats::new(16);
        for w in [0u64, 1, 1, 5] {
            c.record(&Completion {
                task: Task::new(1, 0, 0),
                executed_on: 0,
                finished: w,
            });
        }
        assert!((c.tail_probability(0) - 0.75).abs() < 1e-12);
        assert!((c.tail_probability(1) - 0.25).abs() < 1e-12);
        assert_eq!(c.tail_probability(5), 0.0);
        assert_eq!(c.sojourn_max, 5);
    }

    #[test]
    fn sync_membership_evacuates_departing_queues() {
        let mut w = World::new(4, 7);
        w.install_churn(ChurnSpec::parse("step:1,2").unwrap());
        w.inject(2, 3);
        w.inject(3, 2);
        let before = w.total_load();
        w.sync_membership(); // step 0: all four still live
        assert_eq!(w.active_n(), 4);
        assert_eq!(w.load(2), 3);
        w.tick();
        w.sync_membership(); // step 1: shrink to 2, suffix evacuates
        assert_eq!(w.active_n(), 2);
        assert_eq!(w.load(2), 0);
        assert_eq!(w.load(3), 0);
        assert_eq!(w.load(0), 3); // 2 % 2 == 0
        assert_eq!(w.load(1), 2); // 3 % 2 == 1
        assert_eq!(w.total_load(), before); // conservation
        assert_eq!(w.evacuated_tasks(), 5);
        let view = w.membership_view().unwrap();
        assert_eq!(view.epoch, 1);
        assert_eq!(view.active, 2);
        // The evacuation is an accounted transfer.
        assert_eq!(w.messages().transfers, 2);
        assert_eq!(w.proc(0).stats.tasks_received, 3);
    }

    #[test]
    fn sync_membership_sweeps_late_arrivals() {
        let mut w = World::new(4, 7);
        w.install_churn(ChurnSpec::parse("step:0,2").unwrap());
        w.sync_membership();
        assert_eq!(w.active_n(), 2);
        // A task lands on a departed processor after the shrink (e.g. a
        // transfer decided before the membership change was observed).
        w.deposit(3, vec![Task::new(1, 3, 0)]);
        w.sync_membership();
        assert_eq!(w.load(3), 0);
        assert_eq!(w.load(1), 1);
    }

    #[test]
    fn shard_views_cover_only_live_prefix() {
        let mut w = World::new(8, 1);
        w.install_churn(ChurnSpec::parse("step:0,5").unwrap());
        w.sync_membership();
        let (shards, _) = w.shard_views(3);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn completion_hist_caps_overflow() {
        let mut c = CompletionStats::new(4);
        c.record(&Completion {
            task: Task::new(1, 0, 0),
            executed_on: 0,
            finished: 1000,
        });
        assert_eq!(c.hist[3], 1);
        assert_eq!(c.sojourn_max, 1000);
    }
}
