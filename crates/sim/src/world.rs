//! The shared simulation state: processors, time, RNG streams, message
//! ledger, and completion statistics.
//!
//! A [`World`] is what balancing strategies manipulate. It deliberately
//! exposes only operations that a distributed algorithm could perform —
//! reading a load takes a message in reality, so strategies that inspect
//! loads must account for it themselves via [`World::ledger_mut`];
//! the world does not hide communication.

use crate::message::{MessageLedger, MessageStats};
use crate::probe::PhaseReport;
use crate::processor::Processor;
use crate::queue::TaskQueue;
use crate::rng::SimRng;
use crate::task::{Completion, Task};
use crate::trace::Event;
use crate::types::{ProcId, Step};
use pcrlb_faults::{FaultModel, Reliable};
use pcrlb_net::{ControlRecord, FrameStats, WireLog};
use std::sync::Arc;

/// Aggregated completion (executed-task) statistics.
///
/// Stores a histogram of sojourn times rather than every completion:
/// long runs at `n = 2^16` complete hundreds of millions of tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionStats {
    /// Tasks completed.
    pub count: u64,
    /// Sum of sojourn times (for the mean).
    pub sojourn_sum: u64,
    /// Largest sojourn observed.
    pub sojourn_max: u64,
    /// Tasks that executed on their origin processor.
    pub local_count: u64,
    /// `hist[w]` = completions with sojourn `w`; the final bucket
    /// aggregates everything `>= hist.len() - 1`.
    pub hist: Vec<u64>,
}

impl CompletionStats {
    /// `hist_cap` bounds the sojourn histogram resolution.
    pub fn new(hist_cap: usize) -> Self {
        CompletionStats {
            count: 0,
            sojourn_sum: 0,
            sojourn_max: 0,
            local_count: 0,
            hist: vec![0; hist_cap.max(2)],
        }
    }

    pub(crate) fn record(&mut self, c: &Completion) {
        let w = c.sojourn();
        self.count += 1;
        self.sojourn_sum += w;
        self.sojourn_max = self.sojourn_max.max(w);
        if c.ran_at_origin() {
            self.local_count += 1;
        }
        let idx = (w as usize).min(self.hist.len() - 1);
        self.hist[idx] += 1;
    }

    /// Mean sojourn time, 0 when nothing completed.
    pub fn sojourn_mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sojourn_sum as f64 / self.count as f64
        }
    }

    /// Fraction of tasks that executed where they were generated.
    pub fn locality(&self) -> f64 {
        if self.count == 0 {
            1.0
        } else {
            self.local_count as f64 / self.count as f64
        }
    }

    /// Empirical `P(sojourn > w)`.
    pub fn tail_probability(&self, w: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let above: u64 = self
            .hist
            .iter()
            .enumerate()
            .filter(|(i, _)| *i as u64 > w)
            .map(|(_, c)| *c)
            .sum();
        above as f64 / self.count as f64
    }

    /// Zeroes all counters while keeping the histogram allocation —
    /// lets the worker pool reuse per-worker scratch every step.
    pub(crate) fn reset(&mut self) {
        self.count = 0;
        self.sojourn_sum = 0;
        self.sojourn_max = 0;
        self.local_count = 0;
        self.hist.fill(0);
    }

    pub(crate) fn merge(&mut self, other: &CompletionStats) {
        self.count += other.count;
        self.sojourn_sum += other.sojourn_sum;
        self.sojourn_max = self.sojourn_max.max(other.sojourn_max);
        self.local_count += other.local_count;
        for (a, b) in self.hist.iter_mut().zip(&other.hist) {
            *a += b;
        }
    }
}

/// Per-step buffer of strategy observations (phase reports and trace
/// events) awaiting pickup by the probe pipeline.
///
/// Disabled by default: strategies call [`World::emit_phase`] /
/// [`World::emit_event`] unconditionally, and the calls are no-ops
/// unless a runner enabled the sink — so strategies pay nothing when
/// nobody is listening.
#[derive(Debug, Clone, Default)]
struct ObserverSink {
    phases: Vec<PhaseReport>,
    events: Vec<Event>,
}

/// A block transfer awaiting physical delivery: when the wire sink is
/// active, [`World::transfer`] records all statistics at decision time
/// (exactly as the shared-memory backends do) but holds the moved
/// tasks here instead of appending them to the destination queue. The
/// net runtime encodes each record into a real `Transfer` frame, ships
/// it over the transport, and applies the decoded frames in `seq`
/// order at the end of the step — so queue contents are independent of
/// network arrival order and bit-identical to the sequential backend.
#[derive(Debug, Clone)]
pub struct TransferRecord {
    /// Global emission sequence number within the step.
    pub seq: u32,
    /// Sending processor.
    pub from: ProcId,
    /// Receiving processor.
    pub to: ProcId,
    /// The tasks, in queue order.
    pub tasks: Vec<Task>,
}

/// Per-step buffer of wire traffic awaiting the net runtime: control
/// records narrated by the protocol layer plus deferred task
/// transfers. Disabled (and cost-free) unless a net runtime enabled
/// it.
#[derive(Debug, Clone, Default)]
struct WireSink {
    control: Vec<ControlRecord>,
    transfers: Vec<TransferRecord>,
    next_seq: u32,
    frames: FrameStats,
}

/// Complete state of the simulated machine.
#[derive(Debug, Clone)]
pub struct World {
    step: Step,
    procs: Vec<Processor>,
    /// Per-processor RNG streams (index `i`) — local decisions only.
    rngs: Vec<SimRng>,
    /// Stream used by globally-coordinated protocol machinery.
    global_rng: SimRng,
    ledger: MessageLedger,
    completions: CompletionStats,
    observer: Option<ObserverSink>,
    /// Wire sink; `Some` only while a net runtime drives this world.
    wire: Option<WireSink>,
    seed: u64,
    /// Active fault model; [`Reliable`] (and skipped entirely) unless a
    /// runner installed a real one via [`World::set_fault_model`].
    faults: Arc<dyn FaultModel>,
    /// Cached `!faults.is_noop()` so the hot paths pay one bool test.
    faulty: bool,
}

/// Default sojourn-histogram resolution (buckets).
pub const DEFAULT_SOJOURN_HIST: usize = 4096;

impl World {
    /// Creates a world of `n` processors driven by `seed`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "a world needs at least one processor");
        World {
            step: 0,
            procs: (0..n).map(Processor::new).collect(),
            rngs: (0..n as u64).map(|i| SimRng::stream(seed, i)).collect(),
            global_rng: SimRng::stream(seed, n as u64),
            ledger: MessageLedger::new(),
            completions: CompletionStats::new(DEFAULT_SOJOURN_HIST),
            observer: None,
            wire: None,
            seed,
            faults: Arc::new(Reliable),
            faulty: false,
        }
    }

    /// Installs a fault model. A no-op model (see
    /// [`FaultModel::is_noop`]) leaves the world in the fault-free fast
    /// path, bit-identical to never having called this.
    pub fn set_fault_model(&mut self, model: Arc<dyn FaultModel>) {
        self.faulty = !model.is_noop();
        self.faults = model;
    }

    /// The active fault model (the default is [`Reliable`]).
    #[inline]
    pub fn fault_model(&self) -> &dyn FaultModel {
        &*self.faults
    }

    /// Shared handle to the active fault model, for backends that move
    /// it across threads.
    #[inline]
    pub fn fault_handle(&self) -> Arc<dyn FaultModel> {
        Arc::clone(&self.faults)
    }

    /// Handle to the fault model only when it actually injects faults —
    /// `None` means "take the fault-free fast path".
    #[inline]
    pub fn active_faults(&self) -> Option<Arc<dyn FaultModel>> {
        self.faulty.then(|| Arc::clone(&self.faults))
    }

    /// Whether a non-trivial fault model is installed.
    #[inline]
    pub fn faults_enabled(&self) -> bool {
        self.faulty
    }

    /// Number of processors.
    #[inline]
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Current simulation step.
    #[inline]
    pub fn step(&self) -> Step {
        self.step
    }

    /// Master seed the world was built from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Advances the clock by one step. Called by the engine only.
    pub(crate) fn tick(&mut self) {
        self.step += 1;
    }

    /// Load of processor `p`.
    ///
    /// # Panics
    /// Panics when `p >= n` — processor ids are dense indices, so an
    /// out-of-range id is a caller bug (this applies to every
    /// per-processor accessor on `World`).
    #[inline]
    pub fn load(&self, p: ProcId) -> usize {
        self.procs[p].load()
    }

    /// Copies all loads into `out` (reused buffer pattern).
    pub fn loads_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.procs.iter().map(|p| p.load()));
    }

    /// All loads as a fresh vector.
    pub fn loads(&self) -> Vec<usize> {
        self.procs.iter().map(|p| p.load()).collect()
    }

    /// Maximum load over all processors.
    pub fn max_load(&self) -> usize {
        self.procs.iter().map(|p| p.load()).max().unwrap_or(0)
    }

    /// Total system load.
    pub fn total_load(&self) -> u64 {
        self.procs.iter().map(|p| p.load() as u64).sum()
    }

    /// Remaining work units on `p` (weighted load; equals
    /// [`World::load`] for unit-weight tasks).
    #[inline]
    pub fn weighted_load(&self, p: ProcId) -> u64 {
        self.procs[p].remaining_work()
    }

    /// Maximum weighted load over all processors.
    pub fn max_weighted_load(&self) -> u64 {
        self.procs
            .iter()
            .map(|p| p.remaining_work())
            .max()
            .unwrap_or(0)
    }

    /// Total remaining work in the system.
    pub fn total_weighted_load(&self) -> u64 {
        self.procs.iter().map(|p| p.remaining_work()).sum()
    }

    /// Immutable processor access.
    #[inline]
    pub fn proc(&self, p: ProcId) -> &Processor {
        &self.procs[p]
    }

    /// Iterate over processors.
    pub fn procs(&self) -> impl Iterator<Item = &Processor> {
        self.procs.iter()
    }

    /// Generates one unit-weight task on `p` (a local action; no
    /// message cost).
    pub fn generate_one(&mut self, p: ProcId) -> Task {
        let step = self.step;
        self.procs[p].generate(step)
    }

    /// Generates one task of the given weight on `p`.
    pub fn generate_one_weighted(&mut self, p: ProcId, weight: u32) -> Task {
        let step = self.step;
        self.procs[p].generate_weighted(step, weight)
    }

    /// Consumes one work unit from the oldest task on `p`, recording a
    /// completion when that unit finishes the task. For unit-weight
    /// tasks this is exactly "consume the oldest task".
    pub fn consume_one(&mut self, p: ProcId) -> Option<Task> {
        let step = self.step;
        let task = self.procs[p].consume()?;
        self.completions.record(&Completion {
            task,
            executed_on: p,
            finished: step,
        });
        Some(task)
    }

    /// Moves up to `k` tasks from the back of `from`'s queue to the back
    /// of `to`'s queue (paper §3 transfer rule) and records the transfer
    /// in the ledger. Returns the number actually moved.
    ///
    /// # Panics
    /// Panics when `from == to`: the protocol never balances with
    /// itself, so this indicates a strategy bug.
    pub fn transfer(&mut self, from: ProcId, to: ProcId, k: usize) -> usize {
        assert_ne!(from, to, "self-transfer is a strategy bug");
        let tasks = self.procs[from].queue_mut().take_back(k);
        let moved = tasks.len();
        if moved > 0 {
            self.procs[from].stats.transfers_out += 1;
            self.procs[from].stats.tasks_sent += moved as u64;
            self.procs[to].stats.transfers_in += 1;
            self.procs[to].stats.tasks_received += moved as u64;
            self.ledger.record_transfer(moved as u64);
            self.deliver_or_defer(from, to, tasks);
        }
        moved
    }

    /// Moves tasks totalling at least `w` weight units (as available)
    /// from the back of `from`'s queue to the back of `to`'s queue —
    /// the weighted-transfer counterpart of [`World::transfer`].
    /// Returns the weight actually moved.
    pub fn transfer_weight(&mut self, from: ProcId, to: ProcId, w: u64) -> u64 {
        assert_ne!(from, to, "self-transfer is a strategy bug");
        let tasks = self.procs[from].queue_mut().take_back_weight(w);
        if tasks.is_empty() {
            return 0;
        }
        let moved_weight: u64 = tasks.iter().map(|t| t.weight as u64).sum();
        let moved = tasks.len();
        self.procs[from].stats.transfers_out += 1;
        self.procs[from].stats.tasks_sent += moved as u64;
        self.procs[to].stats.transfers_in += 1;
        self.procs[to].stats.tasks_received += moved as u64;
        self.ledger.record_transfer(moved as u64);
        self.deliver_or_defer(from, to, tasks);
        moved_weight
    }

    /// Completes a transfer: appends directly to the destination queue
    /// (the shared-memory backends), or — when the wire sink is active
    /// — parks the tasks as a [`TransferRecord`] for the net runtime
    /// to ship as a real frame. All accounting has already happened at
    /// the call site; only the physical append is deferred.
    fn deliver_or_defer(&mut self, from: ProcId, to: ProcId, tasks: Vec<Task>) {
        if let Some(sink) = &mut self.wire {
            let seq = sink.next_seq;
            sink.next_seq += 1;
            sink.transfers.push(TransferRecord {
                seq,
                from,
                to,
                tasks,
            });
        } else {
            self.procs[to].queue_mut().append_back(tasks);
        }
    }

    /// Injects `k` adversarial/spike tasks on `p` (they count as
    /// generated by `p` at the current step).
    pub fn inject(&mut self, p: ProcId, k: usize) {
        let step = self.step;
        for _ in 0..k {
            self.procs[p].generate(step);
        }
    }

    /// Removes up to `k` tasks from the back of `p`'s queue without
    /// executing them (adversarial consumption). Returns the number
    /// removed. These do **not** count as completions.
    pub fn annihilate(&mut self, p: ProcId, k: usize) -> usize {
        self.procs[p].queue_mut().discard_back(k)
    }

    /// Marks `p` as heavy for the current phase (statistics only).
    pub fn note_heavy(&mut self, p: ProcId) {
        self.procs[p].stats.heavy_phases += 1;
    }

    /// Per-processor RNG stream.
    #[inline]
    pub fn rng_of(&mut self, p: ProcId) -> &mut SimRng {
        &mut self.rngs[p]
    }

    /// Global protocol RNG stream.
    #[inline]
    pub fn rng_global(&mut self) -> &mut SimRng {
        &mut self.global_rng
    }

    /// Message ledger (read).
    #[inline]
    pub fn messages(&self) -> MessageStats {
        self.ledger.snapshot()
    }

    /// Message ledger (write) — strategies record their traffic here.
    #[inline]
    pub fn ledger_mut(&mut self) -> &mut MessageLedger {
        &mut self.ledger
    }

    /// Completion statistics.
    #[inline]
    pub fn completions(&self) -> &CompletionStats {
        &self.completions
    }

    /// Whether an observer (probe pipeline) is attached. Strategies can
    /// use this to skip expensive event construction when unobserved.
    #[inline]
    pub fn observed(&self) -> bool {
        self.observer.is_some()
    }

    /// Attaches the observer sink so [`World::emit_phase`] /
    /// [`World::emit_event`] start buffering. Called by the runner.
    pub(crate) fn enable_observer(&mut self) {
        self.observer = Some(ObserverSink::default());
    }

    /// Publishes a per-phase report to the probe pipeline. No-op when
    /// nothing is observing.
    pub fn emit_phase(&mut self, report: PhaseReport) {
        if let Some(sink) = &mut self.observer {
            sink.phases.push(report);
        }
    }

    /// Publishes a trace event to the probe pipeline. No-op when
    /// nothing is observing.
    pub fn emit_event(&mut self, event: Event) {
        if let Some(sink) = &mut self.observer {
            sink.events.push(event);
        }
    }

    /// Drains buffered observations into the given vectors (appending).
    /// Called once per step by the runner.
    pub(crate) fn take_observations(
        &mut self,
        phases: &mut Vec<PhaseReport>,
        events: &mut Vec<Event>,
    ) {
        if let Some(sink) = &mut self.observer {
            phases.append(&mut sink.phases);
            events.append(&mut sink.events);
        }
    }

    /// Whether a net runtime is collecting wire traffic from this
    /// world. Strategies consult this to narrate their control
    /// messages via [`World::record_wire_control`] /
    /// [`World::record_wire_log`].
    #[inline]
    pub fn wire_enabled(&self) -> bool {
        self.wire.is_some()
    }

    /// Attaches the wire sink. Called by the net runtime only: from
    /// here on, [`World::transfer`] defers physical delivery (see
    /// [`TransferRecord`]) and control records accumulate for framing.
    pub(crate) fn enable_wire(&mut self) {
        self.wire = Some(WireSink::default());
    }

    /// Appends one control record to the wire sink. No-op when no net
    /// runtime is listening.
    #[inline]
    pub fn record_wire_control(&mut self, rec: ControlRecord) {
        if let Some(sink) = &mut self.wire {
            sink.control.push(rec);
        }
    }

    /// Moves all records out of `log` into the wire sink, preserving
    /// emission order. No-op (but still draining) when no net runtime
    /// is listening.
    pub fn record_wire_log(&mut self, log: &mut WireLog) {
        if let Some(sink) = &mut self.wire {
            sink.control.append(&mut log.control);
        } else {
            log.control.clear();
        }
    }

    /// Drains the step's wire traffic: control records in emission
    /// order plus deferred transfers (already `seq`-stamped). Called
    /// once per step by the net runtime.
    pub(crate) fn take_wire_step(&mut self) -> (Vec<ControlRecord>, Vec<TransferRecord>) {
        match &mut self.wire {
            Some(sink) => (
                std::mem::take(&mut sink.control),
                std::mem::take(&mut sink.transfers),
            ),
            None => (Vec::new(), Vec::new()),
        }
    }

    /// Physically completes a deferred transfer from a decoded frame:
    /// appends the tasks to `to`'s queue. All ledger/stat accounting
    /// happened when the transfer was decided, so this only moves
    /// payload.
    pub(crate) fn apply_wire_transfer(&mut self, to: ProcId, tasks: Vec<Task>) {
        self.procs[to].queue_mut().append_back(tasks);
    }

    /// Cumulative physical frame statistics, present only when a net
    /// runtime drove this world.
    #[inline]
    pub fn net_frames(&self) -> Option<FrameStats> {
        self.wire.as_ref().map(|s| s.frames)
    }

    /// Accumulates one step's frame statistics. Net runtime only.
    pub(crate) fn add_net_frames(&mut self, fs: FrameStats) {
        if let Some(sink) = &mut self.wire {
            sink.frames += fs;
        }
    }

    /// Removes and returns the back `k` tasks of `p`'s queue *without*
    /// recording a transfer. Building block for strategies whose
    /// communication pattern differs from a point-to-point transfer
    /// (e.g. the §5 scatter variant); callers must account for their own
    /// messages via [`World::ledger_mut`].
    pub fn extract_back(&mut self, p: ProcId, k: usize) -> Vec<Task> {
        self.procs[p].queue_mut().take_back(k)
    }

    /// Appends tasks to the back of `p`'s queue without accounting.
    /// Counterpart of [`World::extract_back`].
    pub fn deposit(&mut self, p: ProcId, tasks: Vec<Task>) {
        self.procs[p].queue_mut().append_back(tasks);
    }

    /// Direct queue access for substrates layered on top.
    #[allow(dead_code)]
    pub(crate) fn queue_mut(&mut self, p: ProcId) -> &mut TaskQueue {
        self.procs[p].queue_mut()
    }

    /// Hands the whole machine to the sequential backend as one shard,
    /// with the world's own completion accumulator as the sink — no
    /// per-step allocation or merging.
    #[allow(clippy::type_complexity)]
    pub(crate) fn whole_shard(
        &mut self,
    ) -> (
        Step,
        usize,
        &mut [Processor],
        &mut [SimRng],
        &mut CompletionStats,
    ) {
        (
            self.step,
            0,
            &mut self.procs,
            &mut self.rngs,
            &mut self.completions,
        )
    }

    /// Splits the processor and RNG arrays into disjoint shard views for
    /// the threaded backend. Each shard gets matching slices so worker
    /// threads can run generation/consumption without locks; per-shard
    /// completion locals are merged into the returned accumulator.
    #[allow(clippy::type_complexity)]
    pub(crate) fn shards(
        &mut self,
        shard_count: usize,
    ) -> (
        Step,
        Vec<(usize, &mut [Processor], &mut [SimRng])>,
        &mut CompletionStats,
    ) {
        let n = self.procs.len();
        let step = self.step;
        let per = n.div_ceil(shard_count.max(1));
        let mut out = Vec::new();
        let mut procs: &mut [Processor] = &mut self.procs;
        let mut rngs: &mut [SimRng] = &mut self.rngs;
        let mut start = 0;
        while !procs.is_empty() {
            let take = per.min(procs.len());
            let (ph, pt) = procs.split_at_mut(take);
            let (rh, rt) = rngs.split_at_mut(take);
            out.push((start, ph, rh));
            procs = pt;
            rngs = rt;
            start += take;
        }
        (step, out, &mut self.completions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_world_is_empty() {
        let w = World::new(8, 1);
        assert_eq!(w.n(), 8);
        assert_eq!(w.step(), 0);
        assert_eq!(w.total_load(), 0);
        assert_eq!(w.max_load(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        World::new(0, 1);
    }

    #[test]
    fn generate_consume_cycle() {
        let mut w = World::new(2, 7);
        w.generate_one(0);
        w.generate_one(0);
        assert_eq!(w.load(0), 2);
        w.tick();
        w.tick();
        let t = w.consume_one(0).unwrap();
        assert_eq!(t.born, 0);
        assert_eq!(w.completions().count, 1);
        assert_eq!(w.completions().sojourn_max, 2);
        assert!(w.consume_one(1).is_none());
    }

    #[test]
    fn transfer_moves_back_tasks_and_records() {
        let mut w = World::new(2, 3);
        for _ in 0..5 {
            w.generate_one(0);
        }
        let moved = w.transfer(0, 1, 3);
        assert_eq!(moved, 3);
        assert_eq!(w.load(0), 2);
        assert_eq!(w.load(1), 3);
        let m = w.messages();
        assert_eq!(m.transfers, 1);
        assert_eq!(m.tasks_moved, 3);
        assert_eq!(w.proc(0).stats.tasks_sent, 3);
        assert_eq!(w.proc(1).stats.tasks_received, 3);
    }

    #[test]
    fn empty_transfer_records_nothing() {
        let mut w = World::new(2, 3);
        assert_eq!(w.transfer(0, 1, 4), 0);
        assert_eq!(w.messages().transfers, 0);
        assert_eq!(w.proc(0).stats.transfers_out, 0);
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_transfer_panics() {
        let mut w = World::new(2, 3);
        w.generate_one(0);
        w.transfer(0, 0, 1);
    }

    #[test]
    fn locality_tracks_transfers() {
        let mut w = World::new(2, 5);
        w.generate_one(0);
        w.generate_one(0);
        w.transfer(0, 1, 1);
        w.consume_one(0);
        w.consume_one(1);
        let c = w.completions();
        assert_eq!(c.count, 2);
        assert_eq!(c.local_count, 1);
        assert!((c.locality() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inject_and_annihilate() {
        let mut w = World::new(3, 9);
        w.inject(2, 10);
        assert_eq!(w.load(2), 10);
        assert_eq!(w.proc(2).stats.generated, 10);
        assert_eq!(w.annihilate(2, 4), 4);
        assert_eq!(w.load(2), 6);
        // Annihilated tasks are not completions.
        assert_eq!(w.completions().count, 0);
    }

    #[test]
    fn loads_snapshot() {
        let mut w = World::new(3, 11);
        w.inject(1, 2);
        w.inject(2, 5);
        assert_eq!(w.loads(), vec![0, 2, 5]);
        assert_eq!(w.max_load(), 5);
        assert_eq!(w.total_load(), 7);
        let mut buf = Vec::new();
        w.loads_into(&mut buf);
        assert_eq!(buf, vec![0, 2, 5]);
    }

    #[test]
    fn determinism_same_seed() {
        let mut a = World::new(4, 42);
        let mut b = World::new(4, 42);
        for p in 0..4 {
            assert_eq!(a.rng_of(p).next_u64(), b.rng_of(p).next_u64());
        }
    }

    #[test]
    fn observer_disabled_by_default_and_buffers_when_enabled() {
        let mut w = World::new(2, 1);
        assert!(!w.observed());
        w.emit_event(Event::SearchFailed { phase: 0, proc: 1 });
        let (mut phases, mut events) = (Vec::new(), Vec::new());
        w.take_observations(&mut phases, &mut events);
        assert!(events.is_empty());

        w.enable_observer();
        assert!(w.observed());
        w.emit_event(Event::SearchFailed { phase: 0, proc: 1 });
        w.emit_phase(PhaseReport {
            phase: 3,
            ..PhaseReport::default()
        });
        w.take_observations(&mut phases, &mut events);
        assert_eq!(events.len(), 1);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].phase, 3);
        // Drained: a second take yields nothing new.
        w.take_observations(&mut phases, &mut events);
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn shards_cover_all_processors() {
        let mut w = World::new(10, 1);
        let (_, shards, _) = w.shards(3);
        let total: usize = shards.iter().map(|(_, p, _)| p.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(shards[0].0, 0);
        // Shard starts are contiguous.
        let mut expected = 0;
        for (start, procs, rngs) in &shards {
            assert_eq!(*start, expected);
            assert_eq!(procs.len(), rngs.len());
            expected += procs.len();
        }
    }

    #[test]
    fn completion_tail_probability() {
        let mut c = CompletionStats::new(16);
        for w in [0u64, 1, 1, 5] {
            c.record(&Completion {
                task: Task::new(1, 0, 0),
                executed_on: 0,
                finished: w,
            });
        }
        assert!((c.tail_probability(0) - 0.75).abs() < 1e-12);
        assert!((c.tail_probability(1) - 0.25).abs() < 1e-12);
        assert_eq!(c.tail_probability(5), 0.0);
        assert_eq!(c.sojourn_max, 5);
    }

    #[test]
    fn completion_hist_caps_overflow() {
        let mut c = CompletionStats::new(4);
        c.record(&Completion {
            task: Task::new(1, 0, 0),
            executed_on: 0,
            finished: 1000,
        });
        assert_eq!(c.hist[3], 1);
        assert_eq!(c.sojourn_max, 1000);
    }
}
