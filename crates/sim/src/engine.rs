//! The unified simulation driver.
//!
//! One engine step implements the paper's time-step decomposition (§5
//! remark: "a time step in our model actually consists of four steps"):
//!
//! 1. **generate** — every processor asks the load model how many tasks
//!    to create and enqueues them;
//! 2. **consume**  — every processor asks the model how many tasks to
//!    execute and pops them (FIFO);
//! 3. **decide** / 4. **move** — the strategy's [`Strategy::on_step`]
//!    runs, performing balancing decisions and task movement.
//!
//! Sub-steps 1–2 are delegated to an [`ExecBackend`] — [`Sequential`]
//! by default, [`crate::backend::Threaded`] for real shared-memory
//! parallelism — while 3–4 always run on the coordinating thread. Both
//! backends execute the same kernel, so a threaded run is *bit-identical*
//! to a sequential one with the same seed (see `crate::backend`).
//!
//! The engine is generic so the same driver runs the paper's algorithm,
//! every baseline, and the unbalanced system on identical arrival
//! streams (same seed ⇒ same generated tasks), which is what makes the
//! comparison experiments fair. Most callers should not drive the
//! engine directly: [`crate::runner::Runner`] wraps it with the probe
//! pipeline and is the single entry point for experiments, benches,
//! the CLI, and examples.

use crate::backend::{ExecBackend, Sequential, Threaded};
use crate::model::{LoadModel, Strategy};
use crate::pool::WorkerPool;
use crate::world::World;

/// The simulation driver, generic over model, strategy, and execution
/// backend (sequential by default).
pub struct Engine<M, S, B = Sequential> {
    world: World,
    model: M,
    strategy: S,
    backend: B,
}

impl<M: LoadModel, S: Strategy> Engine<M, S> {
    /// Builds a sequential engine over a fresh world of `n` processors.
    pub fn new(n: usize, seed: u64, model: M, strategy: S) -> Self {
        Engine::with_backend(n, seed, model, strategy, Sequential::default())
    }

    /// Builds a sequential engine over an existing world (e.g. one
    /// pre-loaded with an adversarial spike).
    pub fn with_world(world: World, model: M, strategy: S) -> Self {
        Engine::with_world_and_backend(world, model, strategy, Sequential::default())
    }
}

impl<M: LoadModel + Sync, S: Strategy> Engine<M, S, Threaded> {
    /// Builds an engine whose per-processor sub-steps run across
    /// `threads` OS threads (clamped to at least 1), spawned fresh
    /// every step. Prefer [`Engine::pooled`] for long or large runs.
    pub fn threaded(n: usize, seed: u64, model: M, strategy: S, threads: usize) -> Self {
        Engine::with_backend(n, seed, model, strategy, Threaded { threads })
    }
}

impl<M: LoadModel + Sync, S: Strategy> Engine<M, S, WorkerPool> {
    /// Builds an engine whose per-processor sub-steps run on a
    /// persistent pool of `threads` workers (clamped to at least 1),
    /// spawned once here and joined when the engine drops. Produces
    /// bit-identical results to [`Engine::new`] for the same seed.
    pub fn pooled(n: usize, seed: u64, model: M, strategy: S, threads: usize) -> Self {
        Engine::with_backend(n, seed, model, strategy, WorkerPool::new(threads))
    }
}

impl<M: LoadModel, S: Strategy, B: ExecBackend<M>> Engine<M, S, B> {
    /// Builds an engine over a fresh world with an explicit backend.
    pub fn with_backend(n: usize, seed: u64, model: M, strategy: S, backend: B) -> Self {
        Engine::with_world_and_backend(World::new(n, seed), model, strategy, backend)
    }

    /// Builds an engine over an existing world with an explicit backend.
    pub fn with_world_and_backend(world: World, model: M, strategy: S, backend: B) -> Self {
        Engine {
            world,
            model,
            strategy,
            backend,
        }
    }

    /// Executes one full step (generate, consume, decide+move, tick).
    pub fn step(&mut self) {
        // Membership first: the live prefix for this step is fixed (and
        // departing queues evacuated) before any kernel runs, so every
        // backend sees identical pre-kernel state.
        self.world.sync_membership();
        // Sub-steps 1–2 on the backend.
        self.backend.run_substeps(&mut self.world, &self.model);
        // Sub-steps 3+4: balancing decisions and load movement.
        self.strategy.on_step(&mut self.world);
        self.world.tick();
    }

    /// Runs `steps` steps.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// The world (read).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The world (write) — e.g. to inject spikes between runs.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The strategy (read) — for strategies exposing their own stats.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// The strategy (write).
    pub fn strategy_mut(&mut self) -> &mut S {
        &mut self.strategy
    }

    /// The load model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Consumes the engine, returning the final world.
    pub fn into_world(self) -> World {
        self.world
    }

    /// Consumes the engine, returning world, model, and strategy.
    pub fn into_parts(self) -> (World, M, S) {
        (self.world, self.model, self.strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Unbalanced;
    use crate::rng::SimRng;
    use crate::types::{ProcId, Step};

    /// Generates exactly one task per step, consumes nothing.
    struct Pump;

    impl LoadModel for Pump {
        fn generate(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
            1
        }
        fn consume(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
            0
        }
    }

    /// Generates one task per step and immediately consumes one.
    struct Churn;

    impl LoadModel for Churn {
        fn generate(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
            1
        }
        fn consume(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
            1
        }
    }

    /// Consumes more than exists; engine must cap.
    struct Vacuum;

    impl LoadModel for Vacuum {
        fn generate(&self, _: ProcId, step: Step, _: usize, _: &mut SimRng) -> usize {
            usize::from(step == 0)
        }
        fn consume(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
            1_000_000
        }
    }

    #[test]
    fn pump_accumulates_load() {
        let mut e = Engine::new(4, 1, Pump, Unbalanced);
        e.run(10);
        assert_eq!(e.world().step(), 10);
        assert_eq!(e.world().total_load(), 40);
        assert_eq!(e.world().max_load(), 10);
    }

    #[test]
    fn churn_is_stationary_at_zero_queue_growth() {
        // Generation happens before consumption within a step, so a
        // generate-1/consume-1 model keeps every queue at zero and every
        // task waits exactly 0 steps.
        let mut e = Engine::new(3, 2, Churn, Unbalanced);
        e.run(100);
        assert_eq!(e.world().total_load(), 0);
        let c = e.world().completions();
        assert_eq!(c.count, 300);
        assert_eq!(c.sojourn_max, 0);
        assert!((c.locality() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn consumption_is_capped_at_load() {
        let mut e = Engine::new(2, 3, Vacuum, Unbalanced);
        e.run(5);
        assert_eq!(e.world().total_load(), 0);
        assert_eq!(e.world().completions().count, 2);
    }

    #[test]
    fn with_world_preserves_preloaded_state() {
        let mut w = World::new(2, 5);
        w.inject(0, 7);
        let mut e = Engine::with_world(w, Churn, Unbalanced);
        e.run(1);
        // proc 0: 7 + 1 generated - 1 consumed = 7.
        assert_eq!(e.world().load(0), 7);
        let w = e.into_world();
        assert_eq!(w.step(), 1);
    }

    #[test]
    fn single_processor_world_works() {
        let mut e = Engine::new(1, 8, Churn, Unbalanced);
        e.run(100);
        assert_eq!(e.world().completions().count, 100);
        assert_eq!(e.world().total_load(), 0);
    }

    #[test]
    fn burst_generation_is_fully_enqueued() {
        /// Generates 50 tasks on step 0 only.
        struct Burst;
        impl LoadModel for Burst {
            fn generate(&self, _: ProcId, step: Step, _: usize, _: &mut SimRng) -> usize {
                if step == 0 {
                    50
                } else {
                    0
                }
            }
            fn consume(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
                1
            }
        }
        let mut e = Engine::new(2, 9, Burst, Unbalanced);
        e.step();
        assert_eq!(e.world().total_load(), 2 * 49); // 50 in, 1 out each
        e.run(100);
        assert_eq!(e.world().total_load(), 0);
        assert_eq!(e.world().completions().count, 100);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let mut a = Engine::new(8, 99, Churn, Unbalanced);
        let mut b = Engine::new(8, 99, Churn, Unbalanced);
        a.run(50);
        b.run(50);
        assert_eq!(a.world().loads(), b.world().loads());
        assert_eq!(a.world().completions().count, b.world().completions().count);
    }

    #[test]
    fn into_parts_returns_everything() {
        let mut e = Engine::new(2, 1, Pump, Unbalanced);
        e.run(3);
        let (w, _model, _strategy) = e.into_parts();
        assert_eq!(w.step(), 3);
        assert_eq!(w.total_load(), 6);
    }
}
