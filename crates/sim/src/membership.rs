//! Elastic membership: deterministic churn schedules and epoch views.
//!
//! The paper's collision protocol re-converges from arbitrary imbalance
//! within `T` phases, which makes membership churn (autoscaling,
//! rolling restarts, scale-to-zero) a *measurable scenario* rather than
//! a fatal error — Berenbrink et al.'s *Self-stabilizing Balls & Bins
//! in Batches* gives the template: batched joins/leaves self-stabilize
//! back to the `(log log n)^2` max-load envelope.
//!
//! The subsystem is built around one invariant: the schedule is a
//! **pure function of the step counter**. [`ChurnSpec::active_at`]
//! maps a step to the number of live processors; every backend
//! (sequential, threaded, pooled, net) evaluates it at the same
//! coordination point ([`crate::world::World::sync_membership`], called
//! at the top of every engine step), so all four backends see identical
//! membership transitions and produce bit-identical `RunReport`s under
//! any schedule.
//!
//! Membership is *prefix-structured*: the world is allocated at
//! `n_max` and processors `[0, active)` are live. A shrink deactivates
//! a suffix (evacuating its queues deterministically), a grow
//! reactivates it — rejoining processors resume their untouched RNG
//! streams and task-id sequences, so a leave/join round-trip is
//! deterministic by construction.
//!
//! ## Schedule grammar
//!
//! A [`ChurnSpec`] is one or more `;`-separated clauses applied in
//! order (later clauses compose on top of earlier ones), everything
//! clamped to `[1, n_max]`:
//!
//! | clause | meaning |
//! |---|---|
//! | `step:AT,TARGET` | membership step: from step `AT` on, `TARGET` processors (2× joins/leaves) |
//! | `ramp:FROM,TO,START,LEN` | autoscale ramp: linear `FROM → TO` over `LEN` steps starting at `START` |
//! | `valley:AT,LEN,FRAC` | scale-to-(near-)zero valley: for `LEN` steps from `AT`, keep `FRAC` of current |
//! | `batch:PERIOD,K` | leaky-bins batch churn: alternating `±K` square wave with half-period `PERIOD` |

use std::fmt;
use std::str::FromStr;

use crate::types::Step;

/// One clause of a churn schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEvent {
    /// From step `at` on, the active count becomes `target`.
    Step {
        /// First step at which the new target applies.
        at: Step,
        /// Active-processor target from that step on.
        target: usize,
    },
    /// Linear ramp from `from` to `to` over `len` steps starting at
    /// `start`; holds at `to` afterwards. Before `start` the clause has
    /// no effect.
    Ramp {
        /// Active count at the start of the ramp.
        from: usize,
        /// Active count at (and after) the end of the ramp.
        to: usize,
        /// First step of the ramp.
        start: Step,
        /// Ramp duration in steps (≥ 1).
        len: Step,
    },
    /// For steps in `[at, at + len)` the active count is scaled down to
    /// `frac` of its current value (floor, clamped to ≥ 1 — "scale to
    /// zero" keeps one survivor to absorb the evacuated work).
    Valley {
        /// First step of the valley.
        at: Step,
        /// Valley duration in steps (≥ 1).
        len: Step,
        /// Fraction of the current count kept, in `[0, 1]`.
        frac: f64,
    },
    /// Alternating batch churn: during every odd half-period of length
    /// `period`, `k` processors are departed (the leaky-bins square
    /// wave — `k` leave, then the same `k` rejoin, forever).
    Batch {
        /// Half-period of the square wave in steps (≥ 1).
        period: Step,
        /// Batch size (processors leaving per odd half-period).
        k: usize,
    },
}

/// A deterministic churn schedule: an ordered list of [`ChurnEvent`]
/// clauses. The schedule is pure — [`ChurnSpec::active_at`] depends
/// only on the step and `n_max` — which is what lets every backend
/// replay identical membership transitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChurnSpec {
    events: Vec<ChurnEvent>,
}

/// Why a churn-schedule string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnError {
    /// Empty schedule string (or an empty clause between `;`s).
    Empty,
    /// A clause did not match `kind:args`.
    Malformed(String),
    /// Unknown clause kind.
    UnknownKind(String),
    /// Wrong number of (or unparseable) arguments for the clause kind.
    BadArgs(String),
    /// Arguments parsed but violate the clause's constraints.
    Invalid(String),
}

impl fmt::Display for ChurnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChurnError::Empty => write!(f, "empty churn schedule"),
            ChurnError::Malformed(c) => write!(f, "malformed churn clause {c:?} (want kind:args)"),
            ChurnError::UnknownKind(k) => write!(
                f,
                "unknown churn clause kind {k:?} (want step|ramp|valley|batch)"
            ),
            ChurnError::BadArgs(c) => write!(f, "bad arguments in churn clause {c:?}"),
            ChurnError::Invalid(msg) => write!(f, "invalid churn clause: {msg}"),
        }
    }
}

impl std::error::Error for ChurnError {}

impl ChurnSpec {
    /// Builds a schedule from explicit clauses (mostly for tests; the
    /// CLI and experiments go through [`ChurnSpec::parse`]).
    #[must_use]
    pub fn from_events(events: Vec<ChurnEvent>) -> Self {
        ChurnSpec { events }
    }

    /// Parses the `;`-separated clause grammar described in the module
    /// docs, e.g. `"step:500,32"` or `"ramp:64,16,100,200;batch:50,8"`.
    pub fn parse(s: &str) -> Result<Self, ChurnError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ChurnError::Empty);
        }
        let mut events = Vec::new();
        for clause in s.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                return Err(ChurnError::Empty);
            }
            let (kind, args) = clause
                .split_once(':')
                .ok_or_else(|| ChurnError::Malformed(clause.to_string()))?;
            let nums: Vec<&str> = args.split(',').map(str::trim).collect();
            fn int(s: &str, clause: &str) -> Result<u64, ChurnError> {
                s.parse::<u64>()
                    .map_err(|_| ChurnError::BadArgs(clause.to_string()))
            }
            let event = match kind.trim() {
                "step" => {
                    let [at, target] = nums[..] else {
                        return Err(ChurnError::BadArgs(clause.to_string()));
                    };
                    let target = int(target, clause)? as usize;
                    if target == 0 {
                        return Err(ChurnError::Invalid(format!("{clause}: target must be ≥ 1")));
                    }
                    ChurnEvent::Step {
                        at: int(at, clause)?,
                        target,
                    }
                }
                "ramp" => {
                    let [from, to, start, len] = nums[..] else {
                        return Err(ChurnError::BadArgs(clause.to_string()));
                    };
                    let (from, to) = (int(from, clause)? as usize, int(to, clause)? as usize);
                    let len = int(len, clause)?;
                    if from == 0 || to == 0 {
                        return Err(ChurnError::Invalid(format!(
                            "{clause}: endpoints must be ≥ 1"
                        )));
                    }
                    if len == 0 {
                        return Err(ChurnError::Invalid(format!("{clause}: len must be ≥ 1")));
                    }
                    ChurnEvent::Ramp {
                        from,
                        to,
                        start: int(start, clause)?,
                        len,
                    }
                }
                "valley" => {
                    let [at, len, frac] = nums[..] else {
                        return Err(ChurnError::BadArgs(clause.to_string()));
                    };
                    let fr: f64 = frac
                        .parse()
                        .map_err(|_| ChurnError::BadArgs(clause.to_string()))?;
                    if !(0.0..=1.0).contains(&fr) {
                        return Err(ChurnError::Invalid(format!(
                            "{clause}: frac must be in [0, 1]"
                        )));
                    }
                    let len = int(len, clause)?;
                    if len == 0 {
                        return Err(ChurnError::Invalid(format!("{clause}: len must be ≥ 1")));
                    }
                    ChurnEvent::Valley {
                        at: int(at, clause)?,
                        len,
                        frac: fr,
                    }
                }
                "batch" => {
                    let [period, k] = nums[..] else {
                        return Err(ChurnError::BadArgs(clause.to_string()));
                    };
                    let period = int(period, clause)?;
                    if period == 0 {
                        return Err(ChurnError::Invalid(format!("{clause}: period must be ≥ 1")));
                    }
                    ChurnEvent::Batch {
                        period,
                        k: int(k, clause)? as usize,
                    }
                }
                other => return Err(ChurnError::UnknownKind(other.to_string())),
            };
            events.push(event);
        }
        Ok(ChurnSpec { events })
    }

    /// The active-processor count this schedule prescribes at `step` in
    /// a world of `n_max` processors. Pure: no state, no RNG. Clauses
    /// compose in order on top of the base value `n_max`; the result is
    /// clamped to `[1, n_max]` (membership can never exceed the
    /// allocated world, and at least one processor always survives to
    /// hold evacuated work).
    #[must_use]
    pub fn active_at(&self, step: Step, n_max: usize) -> usize {
        let mut active = n_max as i64;
        for ev in &self.events {
            match *ev {
                ChurnEvent::Step { at, target } => {
                    if step >= at {
                        active = target as i64;
                    }
                }
                ChurnEvent::Ramp {
                    from,
                    to,
                    start,
                    len,
                } => {
                    if step >= start {
                        let t = (step - start).min(len) as i64;
                        let (from, to) = (from as i64, to as i64);
                        active = from + (to - from) * t / len as i64;
                    }
                }
                ChurnEvent::Valley { at, len, frac } => {
                    if step >= at && step - at < len {
                        active = (active as f64 * frac).floor() as i64;
                    }
                }
                ChurnEvent::Batch { period, k } => {
                    if (step / period) % 2 == 1 {
                        active -= k as i64;
                    }
                }
            }
        }
        active.clamp(1, n_max.max(1) as i64) as usize
    }

    /// True when the schedule has no clauses (never changes anything).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The clauses, in application order.
    #[must_use]
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }
}

impl FromStr for ChurnSpec {
    type Err = ChurnError;
    fn from_str(s: &str) -> Result<Self, ChurnError> {
        ChurnSpec::parse(s)
    }
}

impl fmt::Display for ChurnSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            match *ev {
                ChurnEvent::Step { at, target } => write!(f, "step:{at},{target}")?,
                ChurnEvent::Ramp {
                    from,
                    to,
                    start,
                    len,
                } => write!(f, "ramp:{from},{to},{start},{len}")?,
                ChurnEvent::Valley { at, len, frac } => write!(f, "valley:{at},{len},{frac}")?,
                ChurnEvent::Batch { period, k } => write!(f, "batch:{period},{k}")?,
            }
        }
        Ok(())
    }
}

/// A snapshot of the membership state at some step: which epoch the
/// cluster is in and how many processors are live. Epochs advance by
/// one at every transition (grow or shrink); consumers that cache
/// membership-derived structures (shard pins, forest draw domains)
/// compare epochs to decide whether to repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipView {
    /// Monotone epoch counter; bumps by one per membership transition.
    pub epoch: u64,
    /// Live processors: ids `[0, active)` participate in this epoch.
    pub active: usize,
    /// Allocated world size (the join ceiling).
    pub n_max: usize,
}

/// The world-resident membership state: the compiled schedule plus the
/// current epoch and deterministic counters. Owned by
/// `World`; mutated only by `World::sync_membership` on the
/// coordinator, which is what keeps all backends in lock-step.
#[derive(Debug, Clone)]
pub struct MembershipState {
    spec: ChurnSpec,
    n_max: usize,
    /// Live prefix length this epoch.
    pub(crate) active: usize,
    /// Epoch counter (0 until the first transition).
    pub(crate) epoch: u64,
    /// Tasks moved off departing processors over the run.
    pub(crate) evacuated_tasks: u64,
    /// Processor departures (planned deactivations) over the run.
    pub(crate) departures: u64,
    /// Processor joins (re-activations) over the run.
    pub(crate) joins: u64,
    /// Smallest active count seen.
    pub(crate) min_active: usize,
    /// Largest active count seen.
    pub(crate) max_active: usize,
}

impl MembershipState {
    /// Compiles a schedule against a world of `n_max` processors,
    /// evaluated from step `step` (the world's current step, so churn
    /// can be installed into a warm world).
    #[must_use]
    pub fn new(spec: ChurnSpec, n_max: usize, step: Step) -> Self {
        let active = spec.active_at(step, n_max);
        MembershipState {
            spec,
            n_max,
            active,
            epoch: 0,
            evacuated_tasks: 0,
            departures: 0,
            joins: 0,
            min_active: active,
            max_active: active,
        }
    }

    /// The schedule's prescription for `step`.
    #[must_use]
    pub fn target(&self, step: Step) -> usize {
        self.spec.active_at(step, self.n_max)
    }

    /// Current snapshot.
    #[must_use]
    pub fn view(&self) -> MembershipView {
        MembershipView {
            epoch: self.epoch,
            active: self.active,
            n_max: self.n_max,
        }
    }

    /// Applies a transition to `target` live processors, bumping the
    /// epoch and the join/departure counters. Returns the previous
    /// active count. Does **not** move any tasks — queue evacuation is
    /// the world's job (it owns the arena).
    pub(crate) fn transition(&mut self, target: usize) -> usize {
        let prev = self.active;
        if target > prev {
            self.joins += (target - prev) as u64;
        } else {
            self.departures += (prev - target) as u64;
        }
        self.active = target;
        self.epoch += 1;
        self.min_active = self.min_active.min(target);
        self.max_active = self.max_active.max(target);
        prev
    }

    /// The schedule this state was compiled from.
    #[must_use]
    pub fn spec(&self) -> &ChurnSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(ChurnSpec::parse(""), Err(ChurnError::Empty));
        assert_eq!(ChurnSpec::parse("step:10,2;"), Err(ChurnError::Empty));
        assert!(matches!(
            ChurnSpec::parse("steppy:1,2"),
            Err(ChurnError::UnknownKind(_))
        ));
        assert!(matches!(
            ChurnSpec::parse("step:1"),
            Err(ChurnError::BadArgs(_))
        ));
        assert!(matches!(
            ChurnSpec::parse("step:1,0"),
            Err(ChurnError::Invalid(_))
        ));
        assert!(matches!(
            ChurnSpec::parse("ramp:8,4,0,0"),
            Err(ChurnError::Invalid(_))
        ));
        assert!(matches!(
            ChurnSpec::parse("valley:10,5,1.5"),
            Err(ChurnError::Invalid(_))
        ));
        assert!(matches!(
            ChurnSpec::parse("batch:0,4"),
            Err(ChurnError::BadArgs(_) | ChurnError::Invalid(_))
        ));
        assert!(matches!(
            ChurnSpec::parse("nocolon"),
            Err(ChurnError::Malformed(_))
        ));
    }

    #[test]
    fn step_clause_switches_at_boundary() {
        let spec = ChurnSpec::parse("step:100,8").unwrap();
        assert_eq!(spec.active_at(0, 32), 32);
        assert_eq!(spec.active_at(99, 32), 32);
        assert_eq!(spec.active_at(100, 32), 8);
        assert_eq!(spec.active_at(1_000_000, 32), 8);
    }

    #[test]
    fn step_clause_clamps_to_world() {
        // Join target above the allocation ceiling clamps to n_max …
        let spec = ChurnSpec::parse("step:0,100").unwrap();
        assert_eq!(spec.active_at(5, 32), 32);
        // … and the floor is one processor.
        let spec = ChurnSpec::parse("valley:0,10,0").unwrap();
        assert_eq!(spec.active_at(5, 32), 1);
    }

    #[test]
    fn ramp_interpolates_and_holds() {
        let spec = ChurnSpec::parse("ramp:32,16,100,160").unwrap();
        assert_eq!(spec.active_at(0, 32), 32); // before: no effect
        assert_eq!(spec.active_at(100, 32), 32); // t = 0
        assert_eq!(spec.active_at(180, 32), 24); // halfway
        assert_eq!(spec.active_at(260, 32), 16); // end
        assert_eq!(spec.active_at(10_000, 32), 16); // holds
    }

    #[test]
    fn valley_scales_then_restores() {
        let spec = ChurnSpec::parse("valley:50,20,0.25").unwrap();
        assert_eq!(spec.active_at(49, 64), 64);
        assert_eq!(spec.active_at(50, 64), 16);
        assert_eq!(spec.active_at(69, 64), 16);
        assert_eq!(spec.active_at(70, 64), 64);
    }

    #[test]
    fn batch_alternates_square_wave() {
        let spec = ChurnSpec::parse("batch:10,4").unwrap();
        assert_eq!(spec.active_at(0, 16), 16); // even half-period
        assert_eq!(spec.active_at(9, 16), 16);
        assert_eq!(spec.active_at(10, 16), 12); // odd: k depart
        assert_eq!(spec.active_at(19, 16), 12);
        assert_eq!(spec.active_at(20, 16), 16); // rejoin
    }

    #[test]
    fn clauses_compose_in_order() {
        // Step down to 16, then a valley keeps half of *that*.
        let spec = ChurnSpec::parse("step:0,16;valley:10,5,0.5").unwrap();
        assert_eq!(spec.active_at(5, 64), 16);
        assert_eq!(spec.active_at(12, 64), 8);
        assert_eq!(spec.active_at(20, 64), 16);
    }

    #[test]
    fn display_roundtrips() {
        for s in [
            "step:100,8",
            "ramp:32,16,100,160",
            "valley:50,20,0.25",
            "batch:10,4",
            "step:0,16;batch:7,3",
        ] {
            let spec = ChurnSpec::parse(s).unwrap();
            assert_eq!(ChurnSpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }

    #[test]
    fn state_tracks_epochs_and_extremes() {
        let spec = ChurnSpec::parse("step:10,4").unwrap();
        let mut st = MembershipState::new(spec, 16, 0);
        assert_eq!(st.active, 16);
        assert_eq!(st.view().epoch, 0);
        let prev = st.transition(4);
        assert_eq!(prev, 16);
        assert_eq!(st.departures, 12);
        st.transition(16);
        assert_eq!(st.joins, 12);
        assert_eq!(st.epoch, 2);
        assert_eq!(st.min_active, 4);
        assert_eq!(st.max_active, 16);
    }

    #[test]
    fn schedule_is_pure() {
        let spec = ChurnSpec::parse("ramp:64,8,0,100;batch:13,5").unwrap();
        for step in 0..500 {
            assert_eq!(spec.active_at(step, 64), spec.active_at(step, 64));
        }
    }
}
