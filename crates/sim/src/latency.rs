//! Streaming log-bucketed latency histograms.
//!
//! Open-loop service simulation needs tail quantiles (p999, pmax) of
//! task sojourn over runs producing hundreds of millions of samples —
//! far too many to keep individually, and a plain power-of-two
//! histogram is too coarse at the tail (each octave doubles the error).
//! [`LatencyHist`] uses the HdrHistogram bucket scheme: every octave is
//! split into `2^SUB_BITS` equal-width sub-buckets, so any recorded
//! value lands in a bucket whose width is at most `1/2^SUB_BITS` of the
//! value itself. Quantile estimates therefore carry a bounded
//! *relative* error at every magnitude.
//!
//! The histogram is a fixed flat `Vec<u64>` with value-independent
//! indexing, so it is mergeable across shards and nodes by plain
//! element-wise addition — recording into per-shard histograms and
//! merging in shard order is *bit-identical* to recording into one
//! histogram, which is what lets the parallel backends keep the
//! cross-backend determinism contract (a property test enforces this
//! over arbitrary splits).

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS`
/// equal-width buckets, bounding quantile relative error by
/// `1 / 2^SUB_BITS` (≈ 3.1%).
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (`2^SUB_BITS`).
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Octaves above the exact range: values with a most-significant bit in
/// `SUB_BITS..64` each get `SUB_COUNT` sub-buckets.
const OCTAVES: usize = 64 - SUB_BITS as usize;
/// Total bucket count: `SUB_COUNT` exact unit buckets for `0..SUB_COUNT`
/// plus `SUB_COUNT` per octave above them.
const BUCKETS: usize = SUB_COUNT + OCTAVES * SUB_COUNT;

/// Bucket index for a value: exact below `SUB_COUNT`, log-bucketed with
/// `SUB_COUNT` sub-buckets per octave above.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS here
    let octave = (msb - SUB_BITS + 1) as usize;
    let shift = msb - SUB_BITS;
    octave * SUB_COUNT + (v >> shift) as usize - SUB_COUNT
}

/// Largest value mapping to bucket `index` — what [`LatencyHist`]
/// quantiles report, so estimates never understate the true quantile.
#[inline]
fn bucket_high(index: usize) -> u64 {
    if index < SUB_COUNT {
        return index as u64;
    }
    let octave = (index / SUB_COUNT) as u32;
    let sub = (index % SUB_COUNT) as u64 + SUB_COUNT as u64;
    let shift = octave - 1;
    // The top bucket's nominal bound is 2^64; saturate instead of
    // overflowing (its real bound is u64::MAX anyway).
    ((sub + 1) << shift).wrapping_sub(1)
}

/// A streaming log-bucketed histogram of `u64` samples (HdrHistogram
/// bucket scheme: power-of-two octaves × `2^5` equal sub-buckets).
///
/// Recording is O(1) with no allocation; merging is element-wise
/// addition and exactly equals having recorded every sample into one
/// histogram. Quantiles report the upper bound of the selected bucket,
/// so `true_q <= estimate <= true_q * (1 + 1/32) + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHist {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// Creates an empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        LatencyHist {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (exact, not bucketed); 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts (fixed length, value-indexed) — exposed so
    /// equivalence tests can compare histograms bit for bit.
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Clears all samples, keeping the allocation.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// Adds every sample of `other` into `self` — bit-identical to
    /// having recorded `other`'s samples here directly.
    pub fn merge(&mut self, other: &LatencyHist) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// The `q`-quantile (0 < q ≤ 1): the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q · count)`. For the
    /// exact unit buckets this is the true quantile; above them it
    /// overestimates by at most a factor `1 + 1/32`. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                // Never report past the observed maximum: the top
                // occupied bucket's upper bound can exceed it.
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (`quantile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (`quantile(0.99)`).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (`quantile(0.999)`).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// The exact maximum recorded sample (alias of [`LatencyHist::max`]
    /// for report symmetry with the quantile accessors).
    pub fn pmax(&self) -> u64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        // Along a dense sweep of magnitudes the index never decreases
        // and never leaves the table.
        let mut prev = 0usize;
        let mut last_v = 0u64;
        for shift in 0..64u32 {
            for off in 0..4u64 {
                let v = (1u64 << shift).saturating_add(off << shift.saturating_sub(2));
                if v < last_v {
                    continue;
                }
                last_v = v;
                let i = bucket_index(v);
                assert!(i < BUCKETS, "v={v} index {i} out of range");
                assert!(i >= prev, "v={v}: index {i} < previous {prev}");
                prev = i;
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_high_bounds_its_bucket() {
        // Every value maps to a bucket whose recorded upper bound is
        // >= the value and within a 1/32 relative band of it.
        for &v in &[
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1_000,
            123_456,
            u32::MAX as u64,
            1 << 50,
            u64::MAX,
        ] {
            let hi = bucket_high(bucket_index(v));
            assert!(hi >= v, "v={v} hi={hi}");
            assert!(
                hi as u128 <= v as u128 + v as u128 / 32 + 1,
                "v={v} hi={hi}"
            );
        }
        // Bucket upper bounds are strictly increasing.
        let mut prev = None;
        for i in 0..BUCKETS {
            let hi = bucket_high(i);
            if let Some(p) = prev {
                assert!(hi > p, "bucket {i}: {hi} <= {p}");
            }
            prev = Some(hi);
        }
    }

    #[test]
    fn exact_below_subcount() {
        let mut h = LatencyHist::new();
        for v in 0..32u64 {
            h.record(v);
        }
        // Unit buckets: quantiles below 32 are exact.
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.p50(), 15);
        assert_eq!(h.count(), 32);
        assert_eq!(h.sum(), (0..32).sum::<u64>());
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHist::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.pmax(), 0);
    }

    #[test]
    fn merge_equals_single() {
        let vals: Vec<u64> = (0..1000u64).map(|i| i * i * 37 % 1_000_003).collect();
        let mut one = LatencyHist::new();
        for &v in &vals {
            one.record(v);
        }
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        for (i, &v) in vals.iter().enumerate() {
            if i % 3 == 0 { &mut a } else { &mut b }.record(v);
        }
        a.merge(&b);
        assert_eq!(a, one);
    }

    #[test]
    fn reset_keeps_allocation_and_clears() {
        let mut h = LatencyHist::new();
        h.record(7);
        h.record(70_000);
        h.reset();
        assert_eq!(h, LatencyHist::new());
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let mut h = LatencyHist::new();
        h.record(1_000_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert_eq!(h.p999(), 1_000_000);
    }
}
