//! FIFO task queues with the paper's transfer semantics.
//!
//! §3 of the paper fixes two queue rules that the waiting-time argument
//! (Corollary 1) depends on:
//!
//! 1. tasks are *processed* in FIFO order (pop from the front), and
//! 2. tasks moved by a balancing action are *taken from the back* of the
//!    sender's queue and *appended to the back* of the receiver's queue
//!    "in their old order".
//!
//! Rule 2 guarantees a transferred task's position relative to the front
//! of its new queue is no worse than it was in the old one, which is what
//! bounds sojourn times by the maximum load.

use crate::task::Task;
use std::collections::VecDeque;

/// A processor's pending-task queue.
///
/// ```
/// use pcrlb_sim::{Task, TaskQueue};
///
/// let mut sender = TaskQueue::new();
/// for id in 0..5 {
///     sender.push(Task::new(id, 0, 0));
/// }
/// // The paper's transfer rule: take from the back...
/// let block = sender.take_back(2);
/// assert_eq!(block.iter().map(|t| t.id).collect::<Vec<_>>(), vec![3, 4]);
/// // ...append to the receiver's back, old order preserved.
/// let mut receiver = TaskQueue::new();
/// receiver.append_back(block);
/// assert_eq!(receiver.front().unwrap().id, 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskQueue {
    tasks: VecDeque<Task>,
    /// Sum of pending task weights, maintained incrementally so
    /// weighted balancing reads it in O(1).
    weight: u64,
}

impl TaskQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        TaskQueue {
            tasks: VecDeque::new(),
            weight: 0,
        }
    }

    /// Creates an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        TaskQueue {
            tasks: VecDeque::with_capacity(cap),
            weight: 0,
        }
    }

    /// Number of pending tasks — the processor's *load*.
    #[inline]
    pub fn load(&self) -> usize {
        self.tasks.len()
    }

    /// Sum of pending task weights — the processor's *weighted load*
    /// (equals [`TaskQueue::load`] for unit-weight tasks).
    #[inline]
    pub fn weighted_load(&self) -> u64 {
        self.weight
    }

    /// True when no tasks are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Enqueues a freshly generated task (rule 1: arrivals at the back).
    #[inline]
    pub fn push(&mut self, task: Task) {
        self.weight += task.weight as u64;
        self.tasks.push_back(task);
    }

    /// Dequeues the oldest task for execution (rule 1: FIFO service).
    #[inline]
    pub fn pop(&mut self) -> Option<Task> {
        let t = self.tasks.pop_front();
        if let Some(t) = &t {
            self.weight -= t.weight as u64;
        }
        t
    }

    /// Oldest pending task, if any.
    #[inline]
    pub fn front(&self) -> Option<&Task> {
        self.tasks.front()
    }

    /// Newest pending task, if any. Task-allocation strategies use this
    /// to spot arrivals of the current step (their `born` equals the
    /// current step) and relocate them at placement time.
    #[inline]
    pub fn back(&self) -> Option<&Task> {
        self.tasks.back()
    }

    /// Removes up to `k` tasks from the *back* of the queue, returning
    /// them in their old front-to-back order (rule 2, sender side).
    pub fn take_back(&mut self, k: usize) -> Vec<Task> {
        let k = k.min(self.tasks.len());
        let split = self.tasks.len() - k;
        let taken: Vec<Task> = self.tasks.split_off(split).into();
        self.weight -= taken.iter().map(|t| t.weight as u64).sum::<u64>();
        taken
    }

    /// Removes tasks from the back until at least `w` weight units have
    /// been taken (or the queue is empty), returning them in their old
    /// order — the sender side of a *weighted* transfer.
    pub fn take_back_weight(&mut self, w: u64) -> Vec<Task> {
        let mut taken_weight = 0u64;
        let mut count = 0usize;
        for t in self.tasks.iter().rev() {
            if taken_weight >= w {
                break;
            }
            taken_weight += t.weight as u64;
            count += 1;
        }
        self.take_back(count)
    }

    /// Appends transferred tasks at the back, preserving their order
    /// (rule 2, receiver side).
    pub fn append_back(&mut self, tasks: Vec<Task>) {
        self.weight += tasks.iter().map(|t| t.weight as u64).sum::<u64>();
        self.tasks.extend(tasks);
    }

    /// Iterates tasks front (oldest) to back (newest).
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// Drops all tasks (used by adversarial scenarios that annihilate
    /// load in place).
    pub fn clear(&mut self) {
        self.tasks.clear();
        self.weight = 0;
    }

    /// Removes up to `k` tasks from the back *without* returning them —
    /// the adversarial model's "consume O(T) tasks" move.
    pub fn discard_back(&mut self, k: usize) -> usize {
        let k = k.min(self.tasks.len());
        let split = self.tasks.len() - k;
        self.weight -= self
            .tasks
            .iter()
            .skip(split)
            .map(|t| t.weight as u64)
            .sum::<u64>();
        self.tasks.truncate(split);
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(ids: &[u64]) -> TaskQueue {
        let mut q = TaskQueue::new();
        for &id in ids {
            q.push(Task::new(id, 0, 0));
        }
        q
    }

    fn ids(q: &TaskQueue) -> Vec<u64> {
        q.iter().map(|t| t.id).collect()
    }

    #[test]
    fn fifo_order() {
        let mut q = q(&[1, 2, 3]);
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop().unwrap().id, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn take_back_removes_newest_preserving_order() {
        let mut q = q(&[1, 2, 3, 4, 5]);
        let moved = q.take_back(2);
        assert_eq!(moved.iter().map(|t| t.id).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(ids(&q), vec![1, 2, 3]);
    }

    #[test]
    fn take_back_caps_at_len() {
        let mut q = q(&[1, 2]);
        let moved = q.take_back(10);
        assert_eq!(moved.len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn take_back_zero_is_noop() {
        let mut q = q(&[1, 2]);
        assert!(q.take_back(0).is_empty());
        assert_eq!(q.load(), 2);
    }

    #[test]
    fn transfer_roundtrip_matches_paper_rule() {
        // Sender [1,2,3,4], receiver [9]; transfer 2 from back.
        let mut s = q(&[1, 2, 3, 4]);
        let mut r = q(&[9]);
        r.append_back(s.take_back(2));
        assert_eq!(ids(&s), vec![1, 2]);
        assert_eq!(ids(&r), vec![9, 3, 4]);
        // Transferred task 3 was at position 2 (0-based) in the sender,
        // now position 1 in the receiver: "closer to the front than it
        // was in the sender's queue" (paper, proof of Corollary 1).
    }

    #[test]
    fn discard_back_drops_newest() {
        let mut q = q(&[1, 2, 3]);
        assert_eq!(q.discard_back(2), 2);
        assert_eq!(ids(&q), vec![1]);
        assert_eq!(q.discard_back(5), 1);
        assert!(q.is_empty());
        assert_eq!(q.discard_back(1), 0);
    }

    fn wq(weights: &[u32]) -> TaskQueue {
        let mut q = TaskQueue::new();
        for (i, &w) in weights.iter().enumerate() {
            q.push(Task::new(i as u64, 0, 0).with_weight(w));
        }
        q
    }

    #[test]
    fn weighted_load_tracks_all_mutations() {
        let mut q = wq(&[2, 3, 5]);
        assert_eq!(q.weighted_load(), 10);
        assert_eq!(q.load(), 3);
        q.pop(); // removes weight 2
        assert_eq!(q.weighted_load(), 8);
        let taken = q.take_back(1); // removes weight 5
        assert_eq!(taken[0].weight, 5);
        assert_eq!(q.weighted_load(), 3);
        q.append_back(taken);
        assert_eq!(q.weighted_load(), 8);
        q.discard_back(1);
        assert_eq!(q.weighted_load(), 3);
        q.clear();
        assert_eq!(q.weighted_load(), 0);
    }

    #[test]
    fn take_back_weight_takes_just_enough() {
        let mut q = wq(&[1, 1, 4, 2, 3]);
        // Need >= 5 from the back: 3 + 2 = 5 — exactly two tasks.
        let taken = q.take_back_weight(5);
        assert_eq!(
            taken.iter().map(|t| t.weight).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(q.weighted_load(), 6);
        // Asking for more than exists drains the queue.
        let rest = q.take_back_weight(100);
        assert_eq!(rest.len(), 3);
        assert_eq!(q.weighted_load(), 0);
        // Zero request takes nothing.
        assert!(q.take_back_weight(0).is_empty());
    }

    #[test]
    fn unit_weight_queue_has_equal_loads() {
        let q = q(&[1, 2, 3]);
        assert_eq!(q.load() as u64, q.weighted_load());
    }

    #[test]
    fn front_and_load() {
        let mut q = q(&[7, 8]);
        assert_eq!(q.load(), 2);
        assert_eq!(q.front().unwrap().id, 7);
        assert_eq!(q.back().unwrap().id, 8);
        q.clear();
        assert_eq!(q.load(), 0);
        assert!(q.front().is_none());
        assert!(q.back().is_none());
    }
}
