//! The arena-backed task-queue pool, with the paper's transfer
//! semantics.
//!
//! §3 of the paper fixes two queue rules that the waiting-time argument
//! (Corollary 1) depends on:
//!
//! 1. tasks are *processed* in FIFO order (pop from the front), and
//! 2. tasks moved by a balancing action are *taken from the back* of the
//!    sender's queue and *appended to the back* of the receiver's queue
//!    "in their old order".
//!
//! Rule 2 guarantees a transferred task's position relative to the front
//! of its new queue is no worse than it was in the old one, which is what
//! bounds sojourn times by the maximum load.
//!
//! # Layout
//!
//! All `n` queues live in **one** [`TaskArena`]: a single `Vec<Task>`
//! slab plus per-processor `{base, cap, head, len}` ring metadata
//! (capacities are powers of two, so slot arithmetic is a mask). This
//! replaces the former one-`VecDeque`-per-processor layout, whose
//! scattered heap buffers made the generate/consume hot path
//! latency-bound on cache misses at `n = 2^20`. The metadata vectors
//! are contiguous and walked in processor order, so the hot kernel
//! streams them; queue regions are allocated in first-push order
//! (≈ processor order) and re-packed by [`TaskArena::maybe_compact`],
//! so slab traffic is prefetch-friendly too.
//!
//! # Ownership / growth rules
//!
//! * A queue's region belongs to exactly one processor; regions never
//!   overlap.
//! * Growth (amortized doubling) **relocates** the queue's region to
//!   the end of the slab and orphans the old region. Orphaned slots
//!   are reclaimed by [`TaskArena::maybe_compact`], which the world
//!   runs at each clock tick, bounding waste to ~⅓ of the slab.
//! * Growth and compaction are single-threaded operations: the
//!   parallel backends never grow. A shard that runs out of ring
//!   capacity mid-step *spills* the overflow (see
//!   [`crate::world::WorldShard`]) and the coordinator regrows and
//!   absorbs it after the parallel section — same final state, one
//!   kernel for every backend.
//!
//! ```
//! use pcrlb_sim::{Task, TaskArena};
//!
//! let mut arena = TaskArena::new(2);
//! for id in 0..5 {
//!     arena.push(0, Task::new(id, 0, 0));
//! }
//! // The paper's transfer rule: take from the back of queue 0...
//! let block = arena.take_back(0, 2);
//! assert_eq!(block.iter().map(|t| t.id).collect::<Vec<_>>(), vec![3, 4]);
//! // ...append to the receiver's back, old order preserved.
//! arena.append_back(1, block);
//! assert_eq!(arena.front(1).unwrap().id, 3);
//! ```

use crate::task::Task;
use crate::types::ProcId;

/// Smallest non-zero ring capacity (power of two). Queues start at
/// capacity 0 and first allocate on first push, so an idle processor
/// costs metadata only.
const MIN_CAP: u32 = 4;

/// All pending-task queues of the machine, in one slab.
///
/// Per-queue operations take the owning processor id `p`; out-of-range
/// ids panic (dense indices, caller bug).
#[derive(Debug, Clone, Default)]
pub struct TaskArena {
    /// The one backing allocation. Every region stays fully
    /// initialized ([`Task::PAD`] in unused slots) so no slot is ever
    /// uninit memory.
    slab: Vec<Task>,
    /// Region start per queue.
    base: Vec<usize>,
    /// Region capacity per queue (0 or a power of two).
    cap: Vec<u32>,
    /// Ring head offset within the region.
    head: Vec<u32>,
    /// Live tasks per queue — the processor's *load*, as one
    /// contiguous slice (see [`TaskArena::loads`]).
    len: Vec<u32>,
    /// Sum of pending task weights per queue, maintained incrementally
    /// so weighted balancing reads it in O(1).
    weight: Vec<u64>,
    /// Slab slots stranded by region relocation, reclaimed by
    /// [`TaskArena::maybe_compact`].
    orphaned: usize,
}

impl TaskArena {
    /// Creates `n` empty queues sharing one (initially empty) slab.
    pub fn new(n: usize) -> Self {
        TaskArena {
            slab: Vec::new(),
            base: vec![0; n],
            cap: vec![0; n],
            head: vec![0; n],
            len: vec![0; n],
            weight: vec![0; n],
            orphaned: 0,
        }
    }

    /// Number of queues.
    #[inline]
    pub fn queues(&self) -> usize {
        self.len.len()
    }

    /// Slab index of the `i`-th task (front = 0) of queue `p`.
    #[inline]
    fn slot(&self, p: ProcId, i: u32) -> usize {
        debug_assert!(i < self.len[p]);
        self.base[p] + ((self.head[p].wrapping_add(i)) & (self.cap[p] - 1)) as usize
    }

    /// Load (pending-task count) of queue `p`.
    #[inline]
    pub fn load(&self, p: ProcId) -> usize {
        self.len[p] as usize
    }

    /// Weighted load of queue `p` (equals the load for unit tasks).
    #[inline]
    pub fn weighted_load(&self, p: ProcId) -> u64 {
        self.weight[p]
    }

    /// True when queue `p` holds no tasks.
    #[inline]
    pub fn is_empty(&self, p: ProcId) -> bool {
        self.len[p] == 0
    }

    /// All loads, as the flat per-processor slice the SoA hot paths
    /// scan (index = processor id).
    #[inline]
    pub fn loads(&self) -> &[u32] {
        &self.len
    }

    /// All weighted loads (sum of pending weights per queue), flat.
    #[inline]
    pub fn weights(&self) -> &[u64] {
        &self.weight
    }

    /// Enqueues a freshly generated or delivered task at the back of
    /// queue `p` (rule 1: arrivals at the back), growing the region if
    /// full.
    pub fn push(&mut self, p: ProcId, task: Task) {
        if self.len[p] == self.cap[p] {
            self.grow(p);
        }
        let idx =
            self.base[p] + ((self.head[p].wrapping_add(self.len[p])) & (self.cap[p] - 1)) as usize;
        self.slab[idx] = task;
        self.len[p] += 1;
        self.weight[p] += task.weight as u64;
    }

    /// Dequeues the oldest task of queue `p` for execution (rule 1:
    /// FIFO service).
    pub fn pop(&mut self, p: ProcId) -> Option<Task> {
        if self.len[p] == 0 {
            return None;
        }
        let t = self.slab[self.base[p] + self.head[p] as usize];
        self.head[p] = (self.head[p] + 1) & (self.cap[p] - 1);
        self.len[p] -= 1;
        self.weight[p] -= t.weight as u64;
        Some(t)
    }

    /// Oldest pending task of queue `p`, if any.
    #[inline]
    pub fn front(&self, p: ProcId) -> Option<&Task> {
        (self.len[p] > 0).then(|| &self.slab[self.base[p] + self.head[p] as usize])
    }

    /// Newest pending task of queue `p`, if any. Task-allocation
    /// strategies use this to spot arrivals of the current step (their
    /// `born` equals the current step) and relocate them at placement
    /// time.
    #[inline]
    pub fn back(&self, p: ProcId) -> Option<&Task> {
        (self.len[p] > 0).then(|| &self.slab[self.slot(p, self.len[p] - 1)])
    }

    /// Removes up to `k` tasks from the *back* of queue `p`, returning
    /// them in their old front-to-back order (rule 2, sender side).
    pub fn take_back(&mut self, p: ProcId, k: usize) -> Vec<Task> {
        let k = (k.min(self.len[p] as usize)) as u32;
        let mut taken = Vec::with_capacity(k as usize);
        let first = self.len[p] - k;
        for i in first..self.len[p] {
            taken.push(self.slab[self.slot(p, i)]);
        }
        self.len[p] = first;
        self.weight[p] -= taken.iter().map(|t| t.weight as u64).sum::<u64>();
        taken
    }

    /// Number of back tasks of queue `p` needed to reach at least `w`
    /// weight units (or the whole queue), and the weight they carry —
    /// the sizing half of a weighted transfer.
    pub fn count_back_weight(&self, p: ProcId, w: u64) -> (usize, u64) {
        let mut taken_weight = 0u64;
        let mut count = 0u32;
        while count < self.len[p] && taken_weight < w {
            count += 1;
            taken_weight += self.slab[self.slot(p, self.len[p] - count)].weight as u64;
        }
        (count as usize, taken_weight)
    }

    /// Removes tasks from the back of `p` until at least `w` weight
    /// units have been taken (or the queue is empty), returning them in
    /// their old order — the sender side of a *weighted* transfer.
    pub fn take_back_weight(&mut self, p: ProcId, w: u64) -> Vec<Task> {
        let (count, _) = self.count_back_weight(p, w);
        self.take_back(p, count)
    }

    /// Moves up to `k` tasks from the back of queue `from` to the back
    /// of queue `to` in their old order — rules 2a+2b fused, with no
    /// intermediate allocation. Returns the number moved.
    pub fn move_back(&mut self, from: ProcId, to: ProcId, k: usize) -> usize {
        debug_assert_ne!(from, to);
        let k = (k.min(self.len[from] as usize)) as u32;
        let first = self.len[from] - k;
        let mut moved_weight = 0u64;
        for i in first..self.len[from] {
            // Read before push: push(to) may grow and reallocate the
            // slab, but slot indices (not pointers) stay valid and
            // `from`'s region is never relocated by `to`'s growth.
            let t = self.slab[self.slot(from, i)];
            moved_weight += t.weight as u64;
            self.push(to, t);
        }
        self.len[from] = first;
        self.weight[from] -= moved_weight;
        k as usize
    }

    /// Appends transferred tasks at the back of queue `p`, preserving
    /// their order (rule 2, receiver side).
    pub fn append_back(&mut self, p: ProcId, tasks: Vec<Task>) {
        for t in tasks {
            self.push(p, t);
        }
    }

    /// Iterates queue `p`'s tasks front (oldest) to back (newest).
    pub fn iter(&self, p: ProcId) -> impl Iterator<Item = &Task> {
        (0..self.len[p]).map(move |i| &self.slab[self.slot(p, i)])
    }

    /// Drops all tasks of queue `p` (used by adversarial scenarios
    /// that annihilate load in place).
    pub fn clear(&mut self, p: ProcId) {
        self.len[p] = 0;
        self.head[p] = 0;
        self.weight[p] = 0;
    }

    /// Removes up to `k` tasks from the back of queue `p` *without*
    /// returning them — the adversarial model's "consume O(T) tasks"
    /// move.
    pub fn discard_back(&mut self, p: ProcId, k: usize) -> usize {
        let k = (k.min(self.len[p] as usize)) as u32;
        let first = self.len[p] - k;
        let mut dropped = 0u64;
        for i in first..self.len[p] {
            dropped += self.slab[self.slot(p, i)].weight as u64;
        }
        self.len[p] = first;
        self.weight[p] -= dropped;
        k as usize
    }

    /// Doubles queue `p`'s capacity by relocating its region to the end
    /// of the slab (head-normalized), orphaning the old region.
    /// Single-threaded contexts only — shard kernels spill instead.
    fn grow(&mut self, p: ProcId) {
        let old_cap = self.cap[p];
        let new_cap = (old_cap * 2).max(MIN_CAP);
        let new_base = self.slab.len();
        self.slab.resize(new_base + new_cap as usize, Task::PAD);
        for i in 0..self.len[p] {
            let idx = self.base[p] + ((self.head[p].wrapping_add(i)) & (old_cap - 1)) as usize;
            self.slab[new_base + i as usize] = self.slab[idx];
        }
        self.orphaned += old_cap as usize;
        self.base[p] = new_base;
        self.cap[p] = new_cap;
        self.head[p] = 0;
    }

    /// Re-packs every region contiguously in processor order when at
    /// least a third of the slab is orphaned. (Doubling growth orphans
    /// `new_cap / 2` per `new_cap` appended, so the orphaned fraction
    /// approaches — but never exceeds — one half; a ½ threshold would
    /// be dead code.) Called by the world once per clock tick (a
    /// single-threaded moment), so slab waste stays bounded at ~1.5×
    /// the live capacity without any cost in the parallel sections.
    pub(crate) fn maybe_compact(&mut self) {
        if self.orphaned * 3 < self.slab.len() || self.slab.len() < 4096 {
            return;
        }
        let live: usize = self.cap.iter().map(|&c| c as usize).sum();
        let mut packed = Vec::with_capacity(live);
        for p in 0..self.queues() {
            let new_base = packed.len();
            for i in 0..self.len[p] {
                packed.push(self.slab[self.slot(p, i)]);
            }
            packed.resize(new_base + self.cap[p] as usize, Task::PAD);
            self.base[p] = new_base;
            self.head[p] = 0;
        }
        self.slab = packed;
        self.orphaned = 0;
    }

    /// Splits the arena into `shard_sizes.len()` disjoint shard views,
    /// one per contiguous run of queues (sizes in order, summing to at
    /// most `n` — under elastic membership only the live prefix is
    /// sharded and the departed suffix is simply left out). The slab
    /// itself is shared via a raw pointer — see [`ArenaShard`] for the
    /// safety contract.
    pub(crate) fn split_shards(&mut self, shard_sizes: &[usize]) -> Vec<ArenaShard<'_>> {
        debug_assert!(shard_sizes.iter().sum::<usize>() <= self.queues());
        let slab = SlabPtr(self.slab.as_mut_ptr());
        let slab_len = self.slab.len();
        let mut out = Vec::with_capacity(shard_sizes.len());
        let (mut base, mut cap, mut head, mut len, mut weight) = (
            &self.base[..],
            &self.cap[..],
            &mut self.head[..],
            &mut self.len[..],
            &mut self.weight[..],
        );
        for &size in shard_sizes {
            let (b, bt) = base.split_at(size);
            let (c, ct) = cap.split_at(size);
            let (h, ht) = std::mem::take(&mut head).split_at_mut(size);
            let (l, lt) = std::mem::take(&mut len).split_at_mut(size);
            let (w, wt) = std::mem::take(&mut weight).split_at_mut(size);
            out.push(ArenaShard {
                slab,
                slab_len,
                base: b,
                cap: c,
                head: h,
                len: l,
                weight: w,
            });
            base = bt;
            cap = ct;
            head = ht;
            len = lt;
            weight = wt;
        }
        out
    }
}

/// Shared slab pointer for shard views. `Send` is sound because every
/// shard only dereferences slots inside its own queues' regions, and
/// regions are disjoint (see [`ArenaShard`]).
#[derive(Clone, Copy)]
struct SlabPtr(*mut Task);

unsafe impl Send for SlabPtr {}

/// A shard's mutable window onto the arena: exclusive metadata slices
/// for a contiguous run of queues, plus the shared slab pointer.
///
/// # Safety contract
///
/// * Slot indices are always derived from this shard's own
///   `base`/`cap`/`head`/`len` entries, so two shards never touch the
///   same slab slot (queue regions are disjoint by construction).
/// * Shards never grow: [`ArenaShard::push`] reports overflow instead,
///   and the caller spills — the slab is never reallocated while any
///   shard view is alive.
pub(crate) struct ArenaShard<'a> {
    slab: SlabPtr,
    slab_len: usize,
    base: &'a [usize],
    cap: &'a [u32],
    head: &'a mut [u32],
    len: &'a mut [u32],
    weight: &'a mut [u64],
}

// SAFETY: the raw slab pointer is the only non-auto-Send field; the
// disjoint-regions contract above makes moving a shard to another
// thread sound.
unsafe impl Send for ArenaShard<'_> {}

impl ArenaShard<'_> {
    /// Queues in this shard.
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn queues(&self) -> usize {
        self.len.len()
    }

    /// Load of local queue `i`.
    #[inline]
    pub(crate) fn load(&self, i: usize) -> usize {
        self.len[i] as usize
    }

    /// Sum of loads over the shard (barrier gossip for the net
    /// runtime).
    pub(crate) fn total_load(&self) -> u64 {
        self.len.iter().map(|&l| l as u64).sum()
    }

    /// Pushes at the back of local queue `i`; `false` means the ring
    /// is full (the caller must spill — shards never grow).
    #[inline]
    pub(crate) fn push(&mut self, i: usize, task: Task) -> bool {
        if self.len[i] == self.cap[i] {
            return false;
        }
        let idx =
            self.base[i] + ((self.head[i].wrapping_add(self.len[i])) & (self.cap[i] - 1)) as usize;
        debug_assert!(idx < self.slab_len);
        // SAFETY: idx lies inside queue i's region (see the shard
        // safety contract); no other thread touches that region.
        unsafe { *self.slab.0.add(idx) = task };
        self.len[i] += 1;
        self.weight[i] += task.weight as u64;
        true
    }

    /// Copy of the front task of local queue `i`.
    #[inline]
    pub(crate) fn front(&self, i: usize) -> Option<Task> {
        if self.len[i] == 0 {
            return None;
        }
        let idx = self.base[i] + self.head[i] as usize;
        debug_assert!(idx < self.slab_len);
        // SAFETY: as in `push`.
        Some(unsafe { *self.slab.0.add(idx) })
    }

    /// Pops the front task of local queue `i`.
    #[inline]
    pub(crate) fn pop(&mut self, i: usize) -> Option<Task> {
        let t = self.front(i)?;
        self.head[i] = (self.head[i] + 1) & (self.cap[i] - 1);
        self.len[i] -= 1;
        self.weight[i] -= t.weight as u64;
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(ids: &[u64]) -> TaskArena {
        let mut a = TaskArena::new(2);
        for &id in ids {
            a.push(0, Task::new(id, 0, 0));
        }
        a
    }

    fn ids(a: &TaskArena, p: ProcId) -> Vec<u64> {
        a.iter(p).map(|t| t.id).collect()
    }

    #[test]
    fn fifo_order() {
        let mut a = arena(&[1, 2, 3]);
        assert_eq!(a.pop(0).unwrap().id, 1);
        assert_eq!(a.pop(0).unwrap().id, 2);
        assert_eq!(a.pop(0).unwrap().id, 3);
        assert!(a.pop(0).is_none());
    }

    #[test]
    fn take_back_removes_newest_preserving_order() {
        let mut a = arena(&[1, 2, 3, 4, 5]);
        let moved = a.take_back(0, 2);
        assert_eq!(moved.iter().map(|t| t.id).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(ids(&a, 0), vec![1, 2, 3]);
    }

    #[test]
    fn take_back_caps_at_len() {
        let mut a = arena(&[1, 2]);
        let moved = a.take_back(0, 10);
        assert_eq!(moved.len(), 2);
        assert!(a.is_empty(0));
    }

    #[test]
    fn take_back_zero_is_noop() {
        let mut a = arena(&[1, 2]);
        assert!(a.take_back(0, 0).is_empty());
        assert_eq!(a.load(0), 2);
    }

    #[test]
    fn transfer_roundtrip_matches_paper_rule() {
        // Sender [1,2,3,4], receiver [9]; transfer 2 from back.
        let mut a = arena(&[1, 2, 3, 4]);
        a.push(1, Task::new(9, 0, 0));
        a.move_back(0, 1, 2);
        assert_eq!(ids(&a, 0), vec![1, 2]);
        assert_eq!(ids(&a, 1), vec![9, 3, 4]);
        // Transferred task 3 was at position 2 (0-based) in the sender,
        // now position 1 in the receiver: "closer to the front than it
        // was in the sender's queue" (paper, proof of Corollary 1).
    }

    #[test]
    fn move_back_equals_take_plus_append() {
        let mut via_move = TaskArena::new(2);
        let mut via_vecs = TaskArena::new(2);
        for id in 0..23 {
            via_move.push(0, Task::new(id, 0, 0));
            via_vecs.push(0, Task::new(id, 0, 0));
        }
        assert_eq!(via_move.move_back(0, 1, 9), 9);
        let block = via_vecs.take_back(0, 9);
        via_vecs.append_back(1, block);
        assert_eq!(ids(&via_move, 0), ids(&via_vecs, 0));
        assert_eq!(ids(&via_move, 1), ids(&via_vecs, 1));
        assert_eq!(via_move.weighted_load(1), via_vecs.weighted_load(1));
    }

    #[test]
    fn discard_back_drops_newest() {
        let mut a = arena(&[1, 2, 3]);
        assert_eq!(a.discard_back(0, 2), 2);
        assert_eq!(ids(&a, 0), vec![1]);
        assert_eq!(a.discard_back(0, 5), 1);
        assert!(a.is_empty(0));
        assert_eq!(a.discard_back(0, 1), 0);
    }

    fn warena(weights: &[u32]) -> TaskArena {
        let mut a = TaskArena::new(1);
        for (i, &w) in weights.iter().enumerate() {
            a.push(0, Task::new(i as u64, 0, 0).with_weight(w));
        }
        a
    }

    #[test]
    fn weighted_load_tracks_all_mutations() {
        let mut a = warena(&[2, 3, 5]);
        assert_eq!(a.weighted_load(0), 10);
        assert_eq!(a.load(0), 3);
        a.pop(0); // removes weight 2
        assert_eq!(a.weighted_load(0), 8);
        let taken = a.take_back(0, 1); // removes weight 5
        assert_eq!(taken[0].weight, 5);
        assert_eq!(a.weighted_load(0), 3);
        a.append_back(0, taken);
        assert_eq!(a.weighted_load(0), 8);
        a.discard_back(0, 1);
        assert_eq!(a.weighted_load(0), 3);
        a.clear(0);
        assert_eq!(a.weighted_load(0), 0);
    }

    #[test]
    fn take_back_weight_takes_just_enough() {
        let mut a = warena(&[1, 1, 4, 2, 3]);
        // Need >= 5 from the back: 3 + 2 = 5 — exactly two tasks.
        let taken = a.take_back_weight(0, 5);
        assert_eq!(
            taken.iter().map(|t| t.weight).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(a.weighted_load(0), 6);
        // Asking for more than exists drains the queue.
        let rest = a.take_back_weight(0, 100);
        assert_eq!(rest.len(), 3);
        assert_eq!(a.weighted_load(0), 0);
        // Zero request takes nothing.
        assert!(a.take_back_weight(0, 0).is_empty());
    }

    #[test]
    fn unit_weight_queue_has_equal_loads() {
        let a = arena(&[1, 2, 3]);
        assert_eq!(a.load(0) as u64, a.weighted_load(0));
    }

    #[test]
    fn front_back_and_load() {
        let mut a = arena(&[7, 8]);
        assert_eq!(a.load(0), 2);
        assert_eq!(a.front(0).unwrap().id, 7);
        assert_eq!(a.back(0).unwrap().id, 8);
        a.clear(0);
        assert_eq!(a.load(0), 0);
        assert!(a.front(0).is_none());
        assert!(a.back(0).is_none());
    }

    #[test]
    fn rings_survive_wraparound_churn() {
        // Interleave pushes and pops so head wraps the power-of-two
        // ring many times; FIFO order must be preserved throughout.
        let mut a = TaskArena::new(1);
        let mut next_id = 0u64;
        let mut expect_front = 0u64;
        for round in 0..200 {
            for _ in 0..(round % 5) + 1 {
                a.push(0, Task::new(next_id, 0, 0));
                next_id += 1;
            }
            for _ in 0..(round % 4) + 1 {
                if let Some(t) = a.pop(0) {
                    assert_eq!(t.id, expect_front);
                    expect_front += 1;
                }
            }
        }
        let remaining: Vec<u64> = ids(&a, 0);
        assert_eq!(remaining, (expect_front..next_id).collect::<Vec<u64>>());
    }

    #[test]
    fn growth_is_invisible_to_queue_contents() {
        let mut a = TaskArena::new(3);
        // Interleave across queues so regions grow at different times.
        for id in 0..100u64 {
            a.push((id % 3) as usize, Task::new(id, 0, 0));
        }
        for p in 0..3 {
            let got = ids(&a, p);
            let want: Vec<u64> = (0..100).filter(|id| (id % 3) as usize == p).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn compaction_preserves_contents_and_reclaims_slab() {
        let mut a = TaskArena::new(8);
        for round in 0..2000u64 {
            a.push((round % 8) as usize, Task::new(round, 0, 0));
        }
        // Orphan regions by growing one queue past its capacity over
        // and over until at least a third of the slab is stranded.
        let mut round = 0;
        while a.orphaned * 3 < a.slab.len() || a.slab.len() < 4096 {
            while a.pop(0).is_some() {}
            for id in 0..(700u64 << round) {
                a.push(0, Task::new(id, 0, 0));
            }
            round += 1;
            assert!(round < 12, "compaction threshold never reached");
        }
        let before: Vec<Vec<u64>> = (0..8).map(|p| ids(&a, p)).collect();
        let slab_before = a.slab.len();
        a.maybe_compact();
        let after: Vec<Vec<u64>> = (0..8).map(|p| ids(&a, p)).collect();
        assert_eq!(before, after);
        assert!(a.slab.len() <= slab_before);
        assert_eq!(a.orphaned, 0);
    }

    #[test]
    fn shard_views_split_and_mutate_disjointly() {
        let mut a = TaskArena::new(6);
        for p in 0..6 {
            for id in 0..4u64 {
                a.push(p, Task::new(p as u64 * 10 + id, 0, 0));
            }
        }
        {
            let mut shards = a.split_shards(&[2, 2, 2]);
            assert_eq!(shards.len(), 3);
            for s in &shards {
                assert_eq!(s.queues(), 2);
            }
            // Shard 1 pops from its queue 0 (= global queue 2) and
            // pushes to its queue 1 (= global queue 3); ring full →
            // push reports overflow instead of growing.
            let t = shards[1].pop(0).unwrap();
            assert_eq!(t.id, 20);
            assert!(!shards[1].push(1, Task::new(99, 0, 0)), "ring is full");
            assert_eq!(shards[1].load(0), 3);
            assert_eq!(shards[1].total_load(), 7);
        }
        assert_eq!(a.load(2), 3);
        assert_eq!(a.front(2).unwrap().id, 21);
        assert_eq!(a.load(3), 4);
    }
}
