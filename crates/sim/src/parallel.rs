//! The threaded engine: real shared-memory parallelism for the
//! generate/consume sub-steps.
//!
//! The paper's machine runs all `n` processors in parallel each step.
//! This engine shards the processor array across OS threads (scoped via
//! `crossbeam`) and executes sub-steps 1–2 concurrently; the balancing
//! strategy (sub-steps 3–4) then runs on the coordinating thread, which
//! mirrors how the paper serializes a phase's collision games into a
//! globally-consistent assignment.
//!
//! **Determinism:** each processor owns a private RNG stream and the
//! load model is a pure function of `(processor, step, load, stream)`,
//! so a parallel run produces *bit-identical* results to the sequential
//! [`crate::engine::Engine`] with the same seed. A test asserts this.

use crate::model::{LoadModel, Strategy};
use crate::task::Completion;
use crate::world::{CompletionStats, World, DEFAULT_SOJOURN_HIST};

/// Threaded simulation driver. Functionally identical to
/// [`crate::engine::Engine`]; see module docs for the execution model.
pub struct ParallelEngine<M, S> {
    world: World,
    model: M,
    strategy: S,
    threads: usize,
}

impl<M, S> ParallelEngine<M, S>
where
    M: LoadModel + Sync,
    S: Strategy,
{
    /// Builds a threaded engine with `threads` worker threads
    /// (clamped to at least 1).
    pub fn new(n: usize, seed: u64, model: M, strategy: S, threads: usize) -> Self {
        ParallelEngine {
            world: World::new(n, seed),
            model,
            strategy,
            threads: threads.max(1),
        }
    }

    /// Builds over an existing world.
    pub fn with_world(world: World, model: M, strategy: S, threads: usize) -> Self {
        ParallelEngine {
            world,
            model,
            strategy,
            threads: threads.max(1),
        }
    }

    /// Executes one full step.
    pub fn step(&mut self) {
        let model = &self.model;
        let merged: Vec<CompletionStats> = {
            let (now, shards) = self.world.shards(self.threads);
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .map(|(start, procs, rngs)| {
                        scope.spawn(move |_| {
                            let mut local = CompletionStats::new(DEFAULT_SOJOURN_HIST);
                            for (off, (proc, rng)) in
                                procs.iter_mut().zip(rngs.iter_mut()).enumerate()
                            {
                                let p = start + off;
                                // Sub-step 1: generation. The RNG draw
                                // order per processor (generate, then
                                // consume) matches the sequential
                                // engine exactly.
                                let g = model.generate(p, now, proc.load(), rng);
                                for _ in 0..g {
                                    let w = model.task_weight(p, now, rng);
                                    proc.generate_weighted(now, w);
                                }
                                // Sub-step 2: consumption.
                                let load = proc.load();
                                let c = model.consume(p, now, load, rng).min(load);
                                for _ in 0..c {
                                    if let Some(task) = proc.consume() {
                                        local.record(&Completion {
                                            task,
                                            executed_on: p,
                                            finished: now,
                                        });
                                    }
                                }
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("simulation worker panicked"))
                    .collect()
            })
            .expect("crossbeam scope failed")
        };
        for local in &merged {
            self.world.merge_completions(local);
        }

        // Sub-steps 3+4 on the coordinator thread.
        self.strategy.on_step(&mut self.world);
        self.world.tick();
    }

    /// Runs `steps` steps.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Runs `steps` steps with a per-step observation hook.
    pub fn run_observed(&mut self, steps: u64, mut observe: impl FnMut(&World)) {
        for _ in 0..steps {
            self.step();
            observe(&self.world);
        }
    }

    /// The world (read).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The world (write).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The strategy (read).
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Consumes the engine, returning the final world.
    pub fn into_world(self) -> World {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::model::Unbalanced;
    use crate::rng::SimRng;
    use crate::types::{ProcId, Step};

    /// A stochastic model exercising the RNG streams: generate 1 w.p.
    /// 0.5, consume 1 w.p. 0.6.
    struct Coin;

    impl LoadModel for Coin {
        fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.5))
        }
        fn consume(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.6))
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        for threads in [1, 2, 3, 7] {
            let mut seq = Engine::new(37, 1234, Coin, Unbalanced);
            let mut par = ParallelEngine::new(37, 1234, Coin, Unbalanced, threads);
            seq.run(200);
            par.run(200);
            assert_eq!(
                seq.world().loads(),
                par.world().loads(),
                "threads={threads}"
            );
            assert_eq!(
                seq.world().completions().count,
                par.world().completions().count
            );
            assert_eq!(
                seq.world().completions().sojourn_sum,
                par.world().completions().sojourn_sum
            );
            assert_eq!(
                seq.world().completions().hist,
                par.world().completions().hist
            );
        }
    }

    /// A weighted model: weights are drawn from the per-processor
    /// stream, which must stay aligned across engines.
    struct WeightedCoin;

    impl LoadModel for WeightedCoin {
        fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.5))
        }
        fn consume(&self, _: ProcId, _: Step, load: usize, rng: &mut SimRng) -> usize {
            usize::from(load > 0 && rng.chance(0.6))
        }
        fn task_weight(&self, _: ProcId, _: Step, rng: &mut SimRng) -> u32 {
            1 + rng.below(4) as u32
        }
    }

    #[test]
    fn parallel_matches_sequential_with_weighted_tasks() {
        for threads in [2, 5] {
            let mut seq = Engine::new(41, 77, WeightedCoin, Unbalanced);
            let mut par = ParallelEngine::new(41, 77, WeightedCoin, Unbalanced, threads);
            seq.run(300);
            par.run(300);
            assert_eq!(seq.world().loads(), par.world().loads());
            let seq_w: Vec<u64> = (0..41).map(|p| seq.world().weighted_load(p)).collect();
            let par_w: Vec<u64> = (0..41).map(|p| par.world().weighted_load(p)).collect();
            assert_eq!(seq_w, par_w, "threads={threads}");
            assert_eq!(
                seq.world().completions().count,
                par.world().completions().count
            );
        }
    }

    #[test]
    fn more_threads_than_processors() {
        let mut par = ParallelEngine::new(3, 7, Coin, Unbalanced, 16);
        par.run(50);
        assert_eq!(par.world().step(), 50);
    }

    #[test]
    fn zero_threads_clamped() {
        let mut par = ParallelEngine::new(4, 7, Coin, Unbalanced, 0);
        par.run(10);
        assert_eq!(par.world().step(), 10);
    }
}
