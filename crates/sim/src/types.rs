//! Shared primitive types of the simulation substrate.

/// Index of a processor, `0..n`.
pub type ProcId = usize;

/// Discrete simulation time. One step is the paper's four-sub-step time
/// unit: generate, consume, decide, move (§5 remark).
pub type Step = u64;

/// `ceil(log2 x)` for `x >= 1`, with `ilog2ceil(1) == 0`.
#[inline]
pub fn ilog2ceil(x: usize) -> u32 {
    assert!(x >= 1, "ilog2ceil of 0");
    if x == 1 {
        0
    } else {
        usize::BITS - (x - 1).leading_zeros()
    }
}

/// The paper's `log log n` (base 2, ceiled, and clamped below by 1 so
/// that small-`n` configurations stay non-degenerate).
#[inline]
pub fn loglog(n: usize) -> u32 {
    ilog2ceil(ilog2ceil(n.max(2)) as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilog2ceil_values() {
        assert_eq!(ilog2ceil(1), 0);
        assert_eq!(ilog2ceil(2), 1);
        assert_eq!(ilog2ceil(3), 2);
        assert_eq!(ilog2ceil(4), 2);
        assert_eq!(ilog2ceil(5), 3);
        assert_eq!(ilog2ceil(1024), 10);
        assert_eq!(ilog2ceil(1025), 11);
    }

    #[test]
    #[should_panic(expected = "ilog2ceil of 0")]
    fn ilog2ceil_zero_panics() {
        ilog2ceil(0);
    }

    #[test]
    fn loglog_values() {
        assert_eq!(loglog(2), 1); // log2 = 1, loglog clamped to 1
        assert_eq!(loglog(4), 1);
        assert_eq!(loglog(16), 2);
        assert_eq!(loglog(256), 3);
        assert_eq!(loglog(65_536), 4);
        assert_eq!(loglog(1 << 20), 5);
    }

    #[test]
    fn loglog_handles_tiny_n() {
        assert_eq!(loglog(0), 1);
        assert_eq!(loglog(1), 1);
    }
}
