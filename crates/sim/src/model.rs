//! The load-model and strategy abstractions.
//!
//! A [`LoadModel`] decides, per processor and step, how many tasks are
//! generated and how many are consumed — the paper's `Single`,
//! `Geometric`, `Multi` and `Adversarial` schemes implement this trait
//! (in `pcrlb-core`), as do the arrival processes of the baselines.
//!
//! A [`Strategy`] is a balancing algorithm: it runs once per step after
//! generation and consumption (the paper's "perform balancing decisions
//! / move load" sub-steps) and may move tasks between processors.

use crate::rng::SimRng;
use crate::types::{ProcId, Step};
use crate::world::World;

/// Back-pressure policy applied to generated tasks before they enter a
/// processor's queue.
///
/// Open-loop traffic models keep generating regardless of system state,
/// so at offered load ρ ≥ 1 queues grow without bound. An admission
/// policy bounds the per-processor queue at the front door:
///
/// * [`Admission::Unbounded`] — every generated task is enqueued
///   (the historical behavior; closed-loop models use this).
/// * [`Admission::Shed { cap }`](Admission::Shed) — arrivals that would
///   push the queue past `cap` are dropped and counted per processor.
/// * [`Admission::Defer { cap }`](Admission::Defer) — excess arrivals
///   wait in a front-door backlog and are re-offered next step;
///   each arrival-step spent waiting is counted per processor.
///
/// The policy only gates *admission*: the model's RNG draws for
/// generation happen unconditionally (the stream stays aligned with an
/// unbounded run), and task weights are drawn only for admitted tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Admission {
    /// Admit everything (historical behavior).
    #[default]
    Unbounded,
    /// Drop arrivals beyond a queue length of `cap`, counting them.
    Shed {
        /// Maximum queue length at admission time.
        cap: u32,
    },
    /// Park arrivals beyond a queue length of `cap` in a front-door
    /// backlog, re-offered (FIFO) on subsequent steps.
    Defer {
        /// Maximum queue length at admission time.
        cap: u32,
    },
}

/// Per-processor stochastic load generation/consumption.
///
/// Implementations must be deterministic functions of their arguments
/// and the RNG stream — the threaded engine calls them from worker
/// threads in arbitrary order but always hands processor `p` its own
/// stream, so sequential and parallel runs agree exactly.
pub trait LoadModel: Send {
    /// Number of tasks processor `p` generates at `step`, given its
    /// pre-generation load.
    fn generate(&self, p: ProcId, step: Step, load: usize, rng: &mut SimRng) -> usize;

    /// Number of tasks processor `p` consumes at `step`, given its load
    /// *after* generation. The engine caps consumption at the available
    /// load, so returning a large number means "consume what's there".
    /// Each consumed count is one *work unit*: a task of weight `w`
    /// finishes after `w` units.
    fn consume(&self, p: ProcId, step: Step, load: usize, rng: &mut SimRng) -> usize;

    /// Weight of the next task generated on `p` (the BMS'97-style
    /// weighted extension). The default returns 1 **without touching
    /// the RNG stream**, so unit-weight models keep their exact
    /// historical trajectories.
    fn task_weight(&self, _p: ProcId, _step: Step, _rng: &mut SimRng) -> u32 {
        1
    }

    /// Weights of the next `count` tasks generated on `p`, appended to
    /// `out` — the batched form the hot kernel uses so a processor's
    /// weight draws happen back to back instead of interleaved with
    /// queue pushes.
    ///
    /// The default is `count` sequential [`LoadModel::task_weight`]
    /// calls, so implementations that only override `task_weight` keep
    /// draw-for-draw identical RNG trajectories. Override both
    /// consistently or neither.
    fn task_weights(
        &self,
        p: ProcId,
        step: Step,
        count: usize,
        rng: &mut SimRng,
        out: &mut Vec<u32>,
    ) {
        out.reserve(count);
        for _ in 0..count {
            out.push(self.task_weight(p, step, rng));
        }
    }

    /// Expected per-processor steady-state generation rate (tasks per
    /// step), used by analysis code to predict system load. `None` when
    /// no closed form exists (adversarial models).
    fn arrival_rate(&self) -> Option<f64> {
        None
    }

    /// Back-pressure policy for generated tasks. The default admits
    /// everything, which is draw-for-draw and queue-for-queue identical
    /// to the pre-admission kernel; open-loop models override this to
    /// bound their queues when ρ ≥ 1.
    fn admission(&self) -> Admission {
        Admission::Unbounded
    }

    /// Human-readable model name for experiment tables.
    fn name(&self) -> &'static str {
        "model"
    }
}

/// A balancing algorithm driven by the engine.
pub trait Strategy {
    /// Called once per step, after all processors generated and
    /// consumed. All inter-processor communication and task movement
    /// happens here and must be recorded in the world's ledger.
    fn on_step(&mut self, world: &mut World);

    /// Human-readable strategy name for experiment tables.
    fn name(&self) -> &'static str {
        "strategy"
    }
}

/// The do-nothing strategy: the paper's *unbalanced system* (§4.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Unbalanced;

impl Strategy for Unbalanced {
    fn on_step(&mut self, _world: &mut World) {}

    fn name(&self) -> &'static str {
        "unbalanced"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Always(usize);

    impl LoadModel for Always {
        fn generate(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
            self.0
        }
        fn consume(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
            0
        }
    }

    #[test]
    fn default_trait_methods() {
        let m = Always(1);
        assert!(m.arrival_rate().is_none());
        assert_eq!(m.name(), "model");
        assert_eq!(m.admission(), Admission::Unbounded);
        assert_eq!(Admission::default(), Admission::Unbounded);
        let mut s = Unbalanced;
        assert_eq!(Strategy::name(&s), "unbalanced");
        let mut w = World::new(1, 0);
        s.on_step(&mut w); // must be a no-op
        assert_eq!(w.total_load(), 0);
    }
}
