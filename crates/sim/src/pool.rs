//! A persistent, sharded worker pool.
//!
//! [`crate::backend::Threaded`] spawns fresh OS threads on *every*
//! engine step, which caps how large an `n` the parallel backend can
//! sweep: at `n = 2^16` a run spends a measurable fraction of its time
//! in `pthread_create`. [`WorkerPool`] spawns its workers **once** —
//! per [`crate::runner::Runner`] / [`crate::engine::Engine`] lifetime —
//! and dispatches each step to them over channels:
//!
//! 1. the coordinator erases the step's borrowed state into a shared
//!    job closure and sends one message per worker;
//! 2. every worker runs the closure with its own worker id (selecting
//!    its pinned shard) and acknowledges on a completion channel;
//! 3. the coordinator blocks until **all** workers have acknowledged,
//!    so the borrows inside the job never outlive the dispatch call.
//!
//! Determinism holds by construction: the pool partitions the world
//! with the same shard split (`World::shard_views`) as `Threaded`
//! and runs the same [`crate::backend::drive_shard`] kernel, so a
//! pooled run is bit-identical to a sequential (or scoped-threaded)
//! run with the same seed, for any worker count. Ring overflow spilled
//! by the kernel is collected in worker order and absorbed by the
//! coordinator right after the broadcast, before any strategy runs.
//!
//! Each worker owns a reusable [`CompletionStats`] scratch accumulator
//! (reset, not reallocated, every step) that the coordinator merges
//! after the step — statistics are additive, so the merge order is
//! immaterial and fixed anyway (worker 0, 1, …).
//!
//! Workers shut down when the pool drops: an exit message per worker,
//! then a join. A job that panics inside a worker is caught there,
//! reported back over the completion channel, and re-raised on the
//! coordinator once every worker has acknowledged — the pool stays
//! consistent and still shuts down cleanly. [`live_workers`] exposes a
//! global count of running pool workers so leak tests can assert the
//! process returns to its baseline.

use crate::backend::{drive_shard, ExecBackend, StepScratch};
use crate::model::LoadModel;
use crate::task::Task;
use crate::types::ProcId;
use crate::world::{CompletionStats, World, WorldShard, DEFAULT_SOJOURN_HIST};
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// Pool workers currently alive in this process (across all pools).
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Number of pool worker threads currently alive in the whole process.
///
/// Incremented before a worker thread starts and decremented as the
/// last action of the worker before it exits; [`WorkerPool`]'s drop
/// joins its workers, so after a pool is dropped its workers are no
/// longer counted. Intended for soak/leak tests.
pub fn live_workers() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

/// A dispatched job: a borrow-erased reference to the step closure.
///
/// The `'static` is a lie told only for transport — the dispatcher
/// blocks until every worker acknowledges, so the referent outlives
/// every use (see [`WorkerPool::broadcast`]).
struct Job(&'static (dyn Fn(usize) + Sync));

enum Msg {
    Run(Job),
    Exit,
}

/// Long-lived worker threads with pinned shard ranges.
///
/// Workers are spawned by [`WorkerPool::new`] and live until the pool
/// is dropped. The pool is an [`ExecBackend`], so it plugs into
/// [`crate::engine::Engine`] / [`crate::runner::Runner`] directly; the
/// lower-level [`WorkerPool::broadcast`] primitive is also public so
/// other subsystems (the collision game, see `pcrlb-collision`) can
/// run their own sharded protocols on the same persistent workers.
///
/// ```
/// use pcrlb_sim::{Engine, LoadModel, ProcId, SimRng, Step, Unbalanced, WorkerPool};
///
/// struct Coin;
/// impl LoadModel for Coin {
///     fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
///         usize::from(rng.chance(0.5))
///     }
///     fn consume(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
///         usize::from(rng.chance(0.6))
///     }
/// }
///
/// let mut seq = Engine::new(64, 7, Coin, Unbalanced);
/// let mut pooled = Engine::pooled(64, 7, Coin, Unbalanced, 4);
/// seq.run(100);
/// pooled.run(100);
/// assert_eq!(seq.world().loads(), pooled.world().loads());
/// ```
pub struct WorkerPool {
    job_txs: Vec<Sender<Msg>>,
    done_rx: Receiver<bool>,
    handles: Vec<JoinHandle<()>>,
    /// Per-worker completion scratch, reset (not reallocated) each step.
    scratch: Vec<UnsafeCell<CompletionStats>>,
    /// Per-worker kernel scratch (batched weights + ring overflow),
    /// reused across steps so the steady state allocates nothing.
    kernel_scratch: Vec<UnsafeCell<StepScratch>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.job_txs.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` persistent workers (clamped to at least 1).
    ///
    /// # Panics
    /// Panics if the OS refuses to spawn a thread.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (done_tx, done_rx) = channel();
        let mut job_txs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for wid in 0..threads {
            let (tx, rx) = channel::<Msg>();
            let done = done_tx.clone();
            LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
            let handle = std::thread::Builder::new()
                .name(format!("pcrlb-pool-{wid}"))
                .spawn(move || {
                    worker_loop(wid, rx, done);
                    LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
                })
                .expect("failed to spawn pool worker");
            handles.push(handle);
            job_txs.push(tx);
        }
        WorkerPool {
            job_txs,
            done_rx,
            handles,
            scratch: (0..threads)
                .map(|_| UnsafeCell::new(CompletionStats::new(DEFAULT_SOJOURN_HIST)))
                .collect(),
            kernel_scratch: (0..threads)
                .map(|_| UnsafeCell::new(StepScratch::default()))
                .collect(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.job_txs.len()
    }

    /// Runs `f(worker_id)` once on every worker, blocking until all of
    /// them finish. `f` may borrow freely from the caller's stack: the
    /// call does not return (normally or by panic) before every worker
    /// has acknowledged, so no borrow escapes.
    ///
    /// Workers coordinate among themselves however `f` likes (the
    /// collision game runs a multi-round barrier protocol inside one
    /// broadcast); worker ids not used by `f` should simply return.
    ///
    /// # Panics
    /// Re-raises (after all workers acknowledged) if `f` panicked on
    /// any worker. The pool remains usable afterwards.
    pub fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        // SAFETY: the referent outlives this call, and this call does
        // not return until every worker has sent its acknowledgement —
        // after which no worker retains the reference.
        let f: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        for tx in &self.job_txs {
            tx.send(Msg::Run(Job(f))).expect("pool worker exited early");
        }
        let mut panicked = false;
        for _ in 0..self.job_txs.len() {
            panicked |= self.done_rx.recv().expect("pool worker exited early");
        }
        assert!(!panicked, "worker-pool job panicked (see worker output)");
    }
}

fn worker_loop(wid: usize, rx: Receiver<Msg>, done: Sender<bool>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Run(job) => {
                // A panicking job must not kill the worker — the
                // coordinator is blocked waiting for our ack.
                let panicked = catch_unwind(AssertUnwindSafe(|| (job.0)(wid))).is_err();
                if done.send(panicked).is_err() {
                    break; // pool gone; nobody to report to
                }
            }
            Msg::Exit => break,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for tx in &self.job_txs {
            // A worker that already exited has closed its channel;
            // nothing to tell it.
            let _ = tx.send(Msg::Exit);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker's pinned slice of the step: its [`WorldShard`] (owned
/// for the duration of the broadcast) plus raw pointers to that
/// worker's scratch accumulators.
struct PoolJob<'a> {
    shard: WorldShard<'a>,
    stats: *mut CompletionStats,
    kernel: *mut StepScratch,
}

struct PoolJobs<'a>(Vec<UnsafeCell<Option<PoolJob<'a>>>>);

// SAFETY: slot `wid` holds state disjoint from every other slot (the
// world's shard split and the per-worker scratch vecs), and worker
// `wid` is the only thread that touches slot `wid` during a broadcast.
unsafe impl Sync for PoolJobs<'_> {}

impl<M: LoadModel + Sync> ExecBackend<M> for WorkerPool {
    fn run_substeps(&mut self, world: &mut World, model: &M) {
        for cell in &mut self.scratch {
            cell.get_mut().reset();
        }
        let threads = self.workers();
        let faults = world.active_faults();
        let faults = faults.as_deref();
        let mut all_spills: Vec<(ProcId, Task)> = Vec::new();
        {
            let (shards, completions) = world.shard_views(threads);
            // `shards` may be shorter than `threads` when n < threads;
            // workers without a slot no-op.
            let mut jobs = PoolJobs((0..threads).map(|_| UnsafeCell::new(None)).collect());
            for (wid, shard) in shards.into_iter().enumerate() {
                *jobs.0[wid].get_mut() = Some(PoolJob {
                    shard,
                    stats: self.scratch[wid].get(),
                    kernel: self.kernel_scratch[wid].get(),
                });
            }
            let jobs_ref = &jobs;
            self.broadcast(&|wid: usize| {
                // SAFETY: see `PoolJobs` — slot `wid` is exclusively
                // ours, and the coordinator keeps the backing world
                // borrowed for the whole broadcast.
                let slot = unsafe { &mut *jobs_ref.0[wid].get() };
                if let Some(job) = slot.as_mut() {
                    // SAFETY: the stats/kernel pointers target this
                    // worker's private scratch cells.
                    unsafe {
                        drive_shard(
                            &mut job.shard,
                            model,
                            &mut *job.stats,
                            faults,
                            &mut *job.kernel,
                        );
                    }
                }
            });
            // Collect spills in fixed worker (= processor) order and
            // merge completion locals the same way (additive, so any
            // order would do).
            for cell in jobs.0 {
                if let Some(job) = cell.into_inner() {
                    let mut spill = job.shard.spill;
                    all_spills.append(&mut spill);
                }
            }
            for cell in &mut self.scratch {
                completions.merge(cell.get_mut());
            }
        }
        world.absorb_spill(&mut all_spills);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::model::Unbalanced;
    use crate::rng::SimRng;
    use crate::types::Step;
    use std::sync::Mutex;

    /// Serializes tests that assert on the global worker counter.
    static COUNTER_LOCK: Mutex<()> = Mutex::new(());

    struct Coin;

    impl LoadModel for Coin {
        fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.5))
        }
        fn consume(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.6))
        }
        fn task_weight(&self, _: ProcId, _: Step, rng: &mut SimRng) -> u32 {
            1 + rng.below(4) as u32
        }
    }

    #[test]
    fn pooled_matches_sequential_exactly() {
        for threads in [1, 2, 3, 7] {
            let mut seq = Engine::new(37, 1234, Coin, Unbalanced);
            let mut pooled = Engine::pooled(37, 1234, Coin, Unbalanced, threads);
            seq.run(200);
            pooled.run(200);
            assert_eq!(
                seq.world().loads(),
                pooled.world().loads(),
                "threads={threads}"
            );
            assert_eq!(*seq.world().completions(), *pooled.world().completions());
        }
    }

    #[test]
    fn scratch_is_reset_between_steps_not_leaked_across_runs() {
        // Reusing one engine (and thus one pool) for two long stretches
        // must match a single sequential run — any scratch leakage
        // between steps would double-count completions.
        let mut seq = Engine::new(19, 5, Coin, Unbalanced);
        let mut pooled = Engine::pooled(19, 5, Coin, Unbalanced, 3);
        seq.run(100);
        pooled.run(60);
        pooled.run(40);
        assert_eq!(*seq.world().completions(), *pooled.world().completions());
    }

    #[test]
    fn more_workers_than_processors() {
        let mut seq = Engine::new(3, 7, Coin, Unbalanced);
        let mut pooled = Engine::pooled(3, 7, Coin, Unbalanced, 16);
        seq.run(50);
        pooled.run(50);
        assert_eq!(seq.world().loads(), pooled.world().loads());
    }

    #[test]
    fn zero_workers_clamped() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn broadcast_runs_every_worker_once() {
        let _guard = COUNTER_LOCK.lock().unwrap();
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..10 {
            pool.broadcast(&|wid| {
                hits[wid].fetch_add(1, Ordering::SeqCst);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 10);
        }
    }

    #[test]
    fn drop_joins_all_workers() {
        let _guard = COUNTER_LOCK.lock().unwrap();
        let before = live_workers();
        let pool = WorkerPool::new(6);
        assert_eq!(live_workers(), before + 6);
        drop(pool);
        assert_eq!(live_workers(), before);
    }

    #[test]
    fn pool_survives_a_panicking_job_and_still_shuts_down() {
        let _guard = COUNTER_LOCK.lock().unwrap();
        let before = live_workers();
        {
            let pool = WorkerPool::new(3);
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.broadcast(&|wid| {
                    if wid == 1 {
                        panic!("boom");
                    }
                });
            }));
            assert!(result.is_err(), "panic must propagate to the caller");
            // The pool is still usable after a panicked job.
            let ran = AtomicUsize::new(0);
            pool.broadcast(&|_| {
                ran.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(ran.load(Ordering::SeqCst), 3);
        }
        assert_eq!(live_workers(), before, "workers leaked after drop");
    }
}
