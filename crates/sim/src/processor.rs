//! Per-processor state, in structure-of-arrays form.
//!
//! The simulator used to model each processor as a `Processor` struct
//! (own `VecDeque` queue, own counters). The hot generate/consume loop
//! touches every processor every step, so that layout was cache-hostile
//! at `n = 2^20`. Processor state now lives as parallel flat arrays
//! owned by the world: queues in [`crate::queue::TaskArena`], counters
//! in [`StatsSoa`], and RNG/progress/sequence state alongside them in
//! `World`.
//!
//! Call sites that read per-processor state keep the old ergonomics
//! through [`ProcView`] (`world.proc(p).stats.generated`,
//! `world.proc(p).queue().back()`), which is a cheap by-value
//! assembly over the flat arrays — nothing is materialized per step.

use crate::queue::TaskArena;
use crate::task::Task;
use crate::types::ProcId;

/// Per-processor lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Tasks generated locally.
    pub generated: u64,
    /// Tasks consumed (executed) here.
    pub consumed: u64,
    /// Balancing actions in which this processor gave load away.
    pub transfers_out: u64,
    /// Balancing actions in which this processor received load.
    pub transfers_in: u64,
    /// Tasks sent away by balancing.
    pub tasks_sent: u64,
    /// Tasks received by balancing.
    pub tasks_received: u64,
    /// Phases in which this processor was classified heavy.
    pub heavy_phases: u64,
    /// Arrivals dropped at the front door by an `Admission::Shed`
    /// policy (0 for unbounded admission).
    pub shed: u64,
    /// Arrival-steps spent waiting in the front-door backlog under
    /// `Admission::Defer` (each parked arrival adds one per step it
    /// waits).
    pub deferred: u64,
}

/// The lifetime counters of all processors, one flat array per field.
///
/// The hot kernel increments `generated[p]`/`consumed[p]` for a
/// contiguous range of `p` each step; keeping each counter in its own
/// array means those increments stream two cache lines per 8
/// processors instead of touching a 56-byte struct per processor.
#[derive(Debug, Clone, Default)]
pub(crate) struct StatsSoa {
    pub(crate) generated: Vec<u64>,
    pub(crate) consumed: Vec<u64>,
    pub(crate) transfers_out: Vec<u64>,
    pub(crate) transfers_in: Vec<u64>,
    pub(crate) tasks_sent: Vec<u64>,
    pub(crate) tasks_received: Vec<u64>,
    pub(crate) heavy_phases: Vec<u64>,
    pub(crate) shed: Vec<u64>,
    pub(crate) deferred: Vec<u64>,
}

impl StatsSoa {
    pub(crate) fn new(n: usize) -> Self {
        StatsSoa {
            generated: vec![0; n],
            consumed: vec![0; n],
            transfers_out: vec![0; n],
            transfers_in: vec![0; n],
            tasks_sent: vec![0; n],
            tasks_received: vec![0; n],
            heavy_phases: vec![0; n],
            shed: vec![0; n],
            deferred: vec![0; n],
        }
    }

    /// Assembles processor `p`'s counters into the by-value struct the
    /// reporting API exposes.
    #[inline]
    pub(crate) fn get(&self, p: ProcId) -> ProcStats {
        ProcStats {
            generated: self.generated[p],
            consumed: self.consumed[p],
            transfers_out: self.transfers_out[p],
            transfers_in: self.transfers_in[p],
            tasks_sent: self.tasks_sent[p],
            tasks_received: self.tasks_received[p],
            heavy_phases: self.heavy_phases[p],
            shed: self.shed[p],
            deferred: self.deferred[p],
        }
    }
}

/// Read-only view of one processor, assembled on demand from the
/// world's flat arrays. `stats` is a by-value copy (cheap: 56 bytes);
/// the queue view borrows the shared task arena.
#[derive(Clone, Copy)]
pub struct ProcView<'a> {
    pub(crate) id: ProcId,
    pub(crate) arena: &'a TaskArena,
    pub(crate) progress: u32,
    /// Lifetime counters of this processor (copied out of the SoA
    /// store at view-construction time).
    pub stats: ProcStats,
}

impl<'a> ProcView<'a> {
    /// This processor's id.
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Current load (queue length).
    #[inline]
    pub fn load(&self) -> usize {
        self.arena.load(self.id)
    }

    /// Remaining work units: the weighted load minus the progress
    /// already made on the front task. Equals [`ProcView::load`] for
    /// unit-weight tasks.
    #[inline]
    pub fn remaining_work(&self) -> u64 {
        self.arena.weighted_load(self.id) - self.progress as u64
    }

    /// Read access to this processor's queue.
    #[inline]
    pub fn queue(&self) -> QueueView<'a> {
        QueueView {
            id: self.id,
            arena: self.arena,
        }
    }
}

/// Read-only view of one processor's queue within the shared arena.
#[derive(Clone, Copy)]
pub struct QueueView<'a> {
    id: ProcId,
    arena: &'a TaskArena,
}

impl<'a> QueueView<'a> {
    /// Pending-task count.
    #[inline]
    pub fn load(&self) -> usize {
        self.arena.load(self.id)
    }

    /// Sum of pending task weights.
    #[inline]
    pub fn weighted_load(&self) -> u64 {
        self.arena.weighted_load(self.id)
    }

    /// True when no tasks are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty(self.id)
    }

    /// Oldest pending task, if any.
    #[inline]
    pub fn front(&self) -> Option<&'a Task> {
        self.arena.front(self.id)
    }

    /// Newest pending task, if any.
    #[inline]
    pub fn back(&self) -> Option<&'a Task> {
        self.arena.back(self.id)
    }

    /// Iterates tasks front (oldest) to back (newest).
    pub fn iter(&self) -> impl Iterator<Item = &'a Task> {
        self.arena.iter(self.id)
    }
}

/// Globally unique, thread-independent task id: high bits are the
/// generating processor, low bits its local sequence number. No shared
/// counter, which keeps the parallel backends deterministic.
#[inline]
pub(crate) fn task_id(proc: ProcId, seq: u64) -> u64 {
    ((proc as u64 + 1) << 40) | (seq & ((1 << 40) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn generate_and_consume_update_stats() {
        let mut w = World::new(4, 7);
        w.generate_one(3);
        w.tick();
        w.generate_one(3);
        let view = w.proc(3);
        assert_eq!(view.load(), 2);
        assert_eq!(view.stats.generated, 2);
        let t = w.consume_one(3).unwrap();
        assert_eq!(t.origin, 3);
        assert_eq!(t.born, 0); // FIFO: oldest first
        assert_eq!(w.proc(3).stats.consumed, 1);
        assert_eq!(w.proc(3).load(), 1);
    }

    #[test]
    fn consume_empty_returns_none() {
        let mut w = World::new(1, 7);
        assert!(w.consume_one(0).is_none());
        assert_eq!(w.proc(0).stats.consumed, 0);
    }

    #[test]
    fn task_ids_are_unique_across_processors() {
        let mut w = World::new(2, 7);
        let mut ids: Vec<u64> = (0..10).map(|_| w.generate_one(0).id).collect();
        ids.extend((0..10).map(|_| w.generate_one(1).id));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn generated_task_records_birth_step() {
        let mut w = World::new(6, 7);
        for _ in 0..42 {
            w.tick();
        }
        let t = w.generate_one(5);
        assert_eq!(t.born, 42);
        assert_eq!(t.origin, 5);
        assert_eq!(t.weight, 1);
    }

    #[test]
    fn weighted_task_takes_weight_units_to_finish() {
        let mut w = World::new(1, 7);
        w.generate_one_weighted(0, 3);
        assert_eq!(w.proc(0).remaining_work(), 3);
        assert!(w.consume_one(0).is_none()); // unit 1
        assert_eq!(w.proc(0).remaining_work(), 2);
        assert!(w.consume_one(0).is_none()); // unit 2
        let done = w.consume_one(0).expect("unit 3 completes the task");
        assert_eq!(done.weight, 3);
        assert_eq!(w.proc(0).remaining_work(), 0);
        assert_eq!(w.proc(0).stats.consumed, 1);
        assert_eq!(w.proc(0).load(), 0);
    }

    #[test]
    fn unit_tasks_complete_in_one_unit() {
        let mut w = World::new(1, 7);
        w.generate_one(0);
        assert!(w.consume_one(0).is_some());
        assert_eq!(w.proc(0).remaining_work(), 0);
    }

    #[test]
    fn zero_weight_clamped_to_one() {
        let mut w = World::new(1, 7);
        w.generate_one_weighted(0, 0);
        assert_eq!(w.proc(0).remaining_work(), 1);
    }

    #[test]
    fn stats_soa_round_trips() {
        let mut s = StatsSoa::new(3);
        s.generated[1] = 5;
        s.heavy_phases[1] = 2;
        let got = s.get(1);
        assert_eq!(got.generated, 5);
        assert_eq!(got.heavy_phases, 2);
        assert_eq!(s.get(0), ProcStats::default());
    }
}
