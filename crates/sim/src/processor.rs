//! A simulated processor: a FIFO task queue plus per-processor counters.

use crate::queue::TaskQueue;
use crate::task::Task;
use crate::types::{ProcId, Step};

/// Per-processor lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Tasks generated locally.
    pub generated: u64,
    /// Tasks consumed (executed) here.
    pub consumed: u64,
    /// Balancing actions in which this processor gave load away.
    pub transfers_out: u64,
    /// Balancing actions in which this processor received load.
    pub transfers_in: u64,
    /// Tasks sent away by balancing.
    pub tasks_sent: u64,
    /// Tasks received by balancing.
    pub tasks_received: u64,
    /// Phases in which this processor was classified heavy.
    pub heavy_phases: u64,
}

/// One of the `n` processors of the synchronous machine.
#[derive(Debug, Clone)]
pub struct Processor {
    id: ProcId,
    queue: TaskQueue,
    /// Local sequence number for task-id assignment; combining it with
    /// the processor id yields globally unique ids without any shared
    /// counter, which keeps the threaded engine deterministic.
    next_seq: u64,
    /// Work units already spent on the front task (weighted tasks take
    /// `weight` consume-units to finish; always 0 for unit tasks
    /// between steps).
    progress: u32,
    /// Lifetime counters.
    pub stats: ProcStats,
}

impl Processor {
    /// Creates an idle processor with the given id.
    pub fn new(id: ProcId) -> Self {
        Processor {
            id,
            queue: TaskQueue::new(),
            next_seq: 0,
            progress: 0,
            stats: ProcStats::default(),
        }
    }

    /// This processor's id.
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Current load (queue length).
    #[inline]
    pub fn load(&self) -> usize {
        self.queue.load()
    }

    /// Remaining work units: the weighted load minus the progress
    /// already made on the front task. Equals [`Processor::load`] for
    /// unit-weight tasks.
    #[inline]
    pub fn remaining_work(&self) -> u64 {
        self.queue.weighted_load() - self.progress as u64
    }

    /// Generates one local unit-weight task at `step`, enqueues it, and
    /// returns a copy of it.
    pub fn generate(&mut self, step: Step) -> Task {
        self.generate_weighted(step, 1)
    }

    /// Generates one local task of the given weight.
    pub fn generate_weighted(&mut self, step: Step, weight: u32) -> Task {
        let id = Self::task_id(self.id, self.next_seq);
        self.next_seq += 1;
        self.stats.generated += 1;
        let task = Task::new(id, self.id, step).with_weight(weight.max(1));
        self.queue.push(task);
        task
    }

    /// Consumes one *work unit* from the oldest task. Returns the task
    /// when this unit completes it (always, for unit-weight tasks).
    pub fn consume(&mut self) -> Option<Task> {
        let front_weight = self.queue.front()?.weight;
        self.progress += 1;
        if self.progress >= front_weight {
            self.progress = 0;
            self.stats.consumed += 1;
            self.queue.pop()
        } else {
            None
        }
    }

    /// Read access to the queue.
    #[inline]
    pub fn queue(&self) -> &TaskQueue {
        &self.queue
    }

    /// Mutable access to the queue (used by transfers and adversaries;
    /// the world keeps the ledger/stat updates consistent).
    #[inline]
    pub(crate) fn queue_mut(&mut self) -> &mut TaskQueue {
        &mut self.queue
    }

    /// Globally unique, thread-independent task id: high bits are the
    /// generating processor, low bits its local sequence number.
    #[inline]
    fn task_id(proc: ProcId, seq: u64) -> u64 {
        ((proc as u64 + 1) << 40) | (seq & ((1 << 40) - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_and_consume_update_stats() {
        let mut p = Processor::new(3);
        p.generate(0);
        p.generate(1);
        assert_eq!(p.load(), 2);
        assert_eq!(p.stats.generated, 2);
        let t = p.consume().unwrap();
        assert_eq!(t.origin, 3);
        assert_eq!(t.born, 0); // FIFO: oldest first
        assert_eq!(p.stats.consumed, 1);
        assert_eq!(p.load(), 1);
    }

    #[test]
    fn consume_empty_returns_none() {
        let mut p = Processor::new(0);
        assert!(p.consume().is_none());
        assert_eq!(p.stats.consumed, 0);
    }

    #[test]
    fn task_ids_are_unique_across_processors() {
        let mut a = Processor::new(0);
        let mut b = Processor::new(1);
        let ids: Vec<u64> = (0..10)
            .map(|s| a.generate(s).id)
            .chain((0..10).map(|s| b.generate(s).id))
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn generated_task_records_birth_step() {
        let mut p = Processor::new(5);
        let t = p.generate(42);
        assert_eq!(t.born, 42);
        assert_eq!(t.origin, 5);
        assert_eq!(t.weight, 1);
    }

    #[test]
    fn weighted_task_takes_weight_units_to_finish() {
        let mut p = Processor::new(0);
        p.generate_weighted(0, 3);
        assert_eq!(p.remaining_work(), 3);
        assert!(p.consume().is_none()); // unit 1
        assert_eq!(p.remaining_work(), 2);
        assert!(p.consume().is_none()); // unit 2
        let done = p.consume().expect("unit 3 completes the task");
        assert_eq!(done.weight, 3);
        assert_eq!(p.remaining_work(), 0);
        assert_eq!(p.stats.consumed, 1);
        assert_eq!(p.load(), 0);
    }

    #[test]
    fn unit_tasks_complete_in_one_unit() {
        let mut p = Processor::new(0);
        p.generate(0);
        assert!(p.consume().is_some());
        assert_eq!(p.remaining_work(), 0);
    }

    #[test]
    fn zero_weight_clamped_to_one() {
        let mut p = Processor::new(0);
        p.generate_weighted(0, 0);
        assert_eq!(p.remaining_work(), 1);
    }
}
