//! # pcrlb-sim — simulation substrate
//!
//! A discrete-time, synchronous simulation of the parallel machine
//! assumed by Berenbrink, Friedetzky and Mayr, *"Parallel Continuous
//! Randomized Load Balancing"* (SPAA 1998): `n` processors that each
//! step generate tasks, consume tasks, make balancing decisions, and
//! move load.
//!
//! The substrate provides
//!
//! * [`World`] — processors with FIFO task queues (paper-faithful
//!   back-of-queue transfer semantics), a message ledger, per-task
//!   completion statistics, and deterministic per-processor RNG streams;
//! * [`Engine`] — the sequential lock-step driver;
//! * [`ParallelEngine`] — a threaded driver producing bit-identical
//!   results (real parallelism for the per-processor sub-steps);
//! * the [`LoadModel`] / [`Strategy`] traits that the paper's algorithm
//!   (`pcrlb-core`) and all baselines (`pcrlb-baselines`) implement.
//!
//! ## Example
//!
//! ```
//! use pcrlb_sim::{Engine, LoadModel, ProcId, SimRng, Step, Unbalanced};
//!
//! /// Generate one task per step with probability 0.4, consume with 0.5.
//! struct Simple;
//! impl LoadModel for Simple {
//!     fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
//!         usize::from(rng.chance(0.4))
//!     }
//!     fn consume(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
//!         usize::from(rng.chance(0.5))
//!     }
//! }
//!
//! let mut engine = Engine::new(64, 42, Simple, Unbalanced);
//! engine.run(1000);
//! assert!(engine.world().total_load() < 64 * 20);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod message;
pub mod model;
pub mod parallel;
pub mod processor;
pub mod queue;
pub mod rng;
pub mod task;
pub mod trace;
pub mod types;
pub mod world;

pub use engine::Engine;
pub use message::{MessageKind, MessageLedger, MessageStats};
pub use model::{LoadModel, Strategy, Unbalanced};
pub use parallel::ParallelEngine;
pub use processor::{ProcStats, Processor};
pub use queue::TaskQueue;
pub use rng::SimRng;
pub use task::{Completion, Task};
pub use trace::{Event, Trace};
pub use types::{ilog2ceil, loglog, ProcId, Step};
pub use world::{CompletionStats, World};
