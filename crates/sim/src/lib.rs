//! # pcrlb-sim — simulation substrate
//!
//! A discrete-time, synchronous simulation of the parallel machine
//! assumed by Berenbrink, Friedetzky and Mayr, *"Parallel Continuous
//! Randomized Load Balancing"* (SPAA 1998): `n` processors that each
//! step generate tasks, consume tasks, make balancing decisions, and
//! move load.
//!
//! The substrate provides
//!
//! * [`World`] — processor state in structure-of-arrays form: all FIFO
//!   task queues in one arena ([`TaskArena`], paper-faithful
//!   back-of-queue transfer semantics), flat per-processor counters, a
//!   message ledger, per-task completion statistics, and deterministic
//!   per-processor RNG streams;
//! * [`Engine`] — the lock-step driver, generic over an execution
//!   backend: [`Sequential`] (default), [`Threaded`] (scoped OS
//!   threads spawned per step), or [`WorkerPool`] (persistent sharded
//!   workers spawned once per run — the backend for large-`n` sweeps);
//!   every backend produces *bit-identical* results;
//! * [`Runner`] — the builder-style entry point combining engine,
//!   backend, and a pipeline of [`Probe`] observers into a
//!   [`RunReport`]; experiments, benches, the CLI, and examples all go
//!   through it;
//! * the [`LoadModel`] / [`Strategy`] traits that the paper's algorithm
//!   (`pcrlb-core`) and all baselines (`pcrlb-baselines`) implement.
//!
//! ## Example
//!
//! ```
//! use pcrlb_sim::{LoadModel, MaxLoadProbe, ProcId, ProbeOutput, Runner};
//! use pcrlb_sim::{SimRng, Step, Unbalanced};
//!
//! /// Generate one task per step with probability 0.4, consume with 0.5.
//! struct Simple;
//! impl LoadModel for Simple {
//!     fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
//!         usize::from(rng.chance(0.4))
//!     }
//!     fn consume(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
//!         usize::from(rng.chance(0.5))
//!     }
//! }
//!
//! let report = Runner::new(64, 42)
//!     .model(Simple)
//!     .strategy(Unbalanced)
//!     .probe(MaxLoadProbe::after_warmup(100))
//!     .run(1000);
//! assert!(report.total_load < 64 * 20);
//! assert!(matches!(
//!     report.probe("max_load"),
//!     Some(ProbeOutput::MaxLoad { .. })
//! ));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod engine;
pub mod latency;
pub mod membership;
pub mod message;
pub mod model;
pub mod net;
pub mod policy;
pub mod pool;
pub mod probe;
pub mod processor;
pub mod queue;
pub mod rng;
pub mod runner;
pub mod task;
pub mod topology;
pub mod trace;
pub mod types;
pub mod world;

pub use backend::{Backend, ExecBackend, ResolvedBackend, Sequential, Threaded};
pub use engine::Engine;
pub use latency::LatencyHist;
pub use membership::{ChurnError, ChurnEvent, ChurnSpec, MembershipState, MembershipView};
pub use message::{MessageKind, MessageLedger, MessageStats};
pub use model::{Admission, LoadModel, Strategy, Unbalanced};
pub use net::control_kind;
pub use pcrlb_faults::{
    Bernoulli, BoundedDelay, CrashWindows, FaultConfig, FaultConfigError, FaultModel, FaultPlan,
    GameFaults, MsgCtx, MsgKind, Reliable, StalledProcs,
};
pub use pcrlb_net::{
    ControlKind, ControlRecord, FrameStats, LoopbackNet, NetError, TcpNet, Transport, WireLog,
    WireMsg, WireTask,
};
pub use policy::{
    AlwaysGoLeft, GreedyD, OnePlusBeta, PartnerOutcome, PartnerPolicy, PartnerStats, PolicySpec,
    ThresholdProbe,
};
pub use pool::{live_workers, WorkerPool};
pub use probe::{
    FaultProbe, LoadSnapshotProbe, MaxLoadProbe, MembershipProbe, MessageRateProbe, PhaseProbe,
    PhaseReport, Probe, ProbeOutput, RecoveryProbe, SeriesProbe, SojournProbe, SojournTailProbe,
    TraceProbe,
};
pub use processor::{ProcStats, ProcView, QueueView};
pub use queue::TaskArena;
pub use rng::SimRng;
pub use runner::{RunReport, Runner};
pub use task::{Completion, Task};
pub use topology::{
    ring_distance, Complete, Hypercube, RandomRegular, Ring, Topology, TopologySpec, Torus,
};
pub use trace::{Event, Trace};
pub use types::{ilog2ceil, loglog, ProcId, Step};
pub use world::{CompletionStats, TransferRecord, World};
