//! Pluggable partner-selection policies.
//!
//! The paper's collision protocol is one point in a large space of
//! randomized balancing rules. [`PartnerPolicy`] abstracts the "who
//! balances with whom" decision a `ThresholdBalancer` phase makes:
//! given this phase's heavy and light sets, produce heavy→light
//! matches plus a message accounting. The collision protocol itself
//! lives behind this trait in `pcrlb-core` (it needs the balance
//! forest); this module holds the trait and the probe-based ladder
//! from the literature: d-choice `greedy_d`, `(1+β)` mixing,
//! threshold/adaptive probing, and always-go-left.
//!
//! Determinism contract: a policy may only draw randomness from
//! `world.rng_global()` — the shared protocol stream that every
//! backend advances on the coordinating thread during the decide
//! sub-step — and must make the same draws whether or not a wire log
//! is attached. That is the entire proof obligation for cross-backend
//! bit-equality: anything built from these pieces inherits it.

use std::sync::Arc;

use pcrlb_net::{ControlKind, WireLog};

use crate::topology::Topology;
use crate::types::ProcId;
use crate::world::World;

/// Message/work accounting for one `select` call, mirroring the
/// collision search's `SearchStats` so the balancer can feed the
/// ledger identically for every policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct PartnerStats {
    /// Balancing requests issued (collision: tree roots; probe
    /// policies: one per heavy processor).
    pub requests: u64,
    /// Games / probe rounds played.
    pub levels: u32,
    /// Collision-game rounds (probe policies report 1).
    pub rounds: u32,
    /// Rounds that produced no progress.
    pub wasted_rounds: u32,
    /// Query messages sent (load probes).
    pub queries: u64,
    /// Accept / reply messages sent.
    pub accepts: u64,
    /// Id messages (match confirmations).
    pub id_messages: u64,
    /// Auxiliary probe messages (collision: sibling checks).
    pub probes: u64,
    /// Messages lost to fault injection.
    pub dropped: u64,
}

/// The result of one partner-selection round.
#[derive(Clone, Debug, Default)]
pub struct PartnerOutcome {
    /// `(heavy, light, level)` matches; `level` is the collision-tree
    /// level for the collision policy and 0 for probe policies.
    pub matches: Vec<(ProcId, ProcId, u32)>,
    /// Heavy processors that found no partner this phase.
    pub unmatched: Vec<ProcId>,
    /// Requests attributed to each root, parallel to the heavy set
    /// passed in (feeds the Lemma 7 request histogram).
    pub requests_per_root: Vec<u32>,
    /// Message accounting.
    pub stats: PartnerStats,
}

/// How a heavy processor picks a balancing partner each phase.
///
/// Implementations run on the coordinating thread (the decide
/// sub-step), draw randomness only from `world.rng_global()`, and
/// narrate their messages into `wire` when a net runtime listens.
pub trait PartnerPolicy: Send {
    /// Short policy name for reports and tables, e.g. `"greedy-d"`.
    fn name(&self) -> &'static str;

    /// Picks partners for this phase's `heavy` set out of `light`.
    ///
    /// `topo` restricts candidate partners to graph neighbors. The
    /// returned matches are not yet executed — the balancer schedules
    /// the actual transfers.
    fn select(
        &mut self,
        world: &mut World,
        topo: &Arc<dyn Topology>,
        heavy: &[ProcId],
        light: &[ProcId],
        wire: Option<&mut WireLog>,
    ) -> PartnerOutcome;
}

/// Parsed `--policy` grammar. Building the boxed policy happens in
/// `pcrlb-core` (`ThresholdBalancer::with_policy_spec`) because the
/// collision variant needs the balance forest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PolicySpec {
    /// The paper's collision protocol (the default).
    Collision,
    /// d-choice: probe `d` neighbors, take the least loaded.
    Greedy {
        /// Number of probes per heavy processor.
        d: usize,
    },
    /// `(1+β)`: one probe, with probability `beta` a second.
    Beta {
        /// Probability of the second probe.
        beta: f64,
    },
    /// Adaptive probing: probe until a light partner is found, up to
    /// `max_probes`.
    Probe {
        /// Probe budget per heavy processor.
        max_probes: usize,
    },
    /// Always-go-left: `d` probes from `d` contiguous neighbor-slot
    /// groups, ties broken toward the leftmost group.
    Left {
        /// Number of groups/probes.
        d: usize,
    },
}

impl PolicySpec {
    /// Parses the `--policy` grammar:
    ///
    /// ```text
    /// collision | greedy[:D] | beta[:B] | probe[:K] | left[:D]
    /// ```
    pub fn parse(s: &str) -> Result<Self, String> {
        let (head, rest) = match s.split_once(':') {
            Some((h, r)) => (h, Some(r)),
            None => (s, None),
        };
        let num = |r: Option<&str>, default: usize, what: &str| -> Result<usize, String> {
            match r {
                None => Ok(default),
                Some(v) => v.parse().map_err(|_| format!("bad {what} `{v}`")),
            }
        };
        match head {
            "collision" if rest.is_none() => Ok(PolicySpec::Collision),
            "greedy" => {
                let d = num(rest, 2, "greedy choice count")?;
                if d < 1 {
                    return Err("greedy needs d >= 1".into());
                }
                Ok(PolicySpec::Greedy { d })
            }
            "beta" => {
                let beta = match rest {
                    None => 0.5,
                    Some(v) => v.parse().map_err(|_| format!("bad beta `{v}`"))?,
                };
                if !(0.0..=1.0).contains(&beta) {
                    return Err("beta must be in [0, 1]".into());
                }
                Ok(PolicySpec::Beta { beta })
            }
            "probe" => {
                let max_probes = num(rest, 4, "probe budget")?;
                if max_probes < 1 {
                    return Err("probe needs a budget >= 1".into());
                }
                Ok(PolicySpec::Probe { max_probes })
            }
            "left" => {
                let d = num(rest, 2, "left group count")?;
                if d < 1 {
                    return Err("left needs d >= 1".into());
                }
                Ok(PolicySpec::Left { d })
            }
            _ => Err(format!(
                "unknown policy `{s}` (want collision | greedy[:D] | beta[:B] | \
                 probe[:K] | left[:D])"
            )),
        }
    }

    /// Canonical spec string (round-trips through `parse`).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            PolicySpec::Collision => "collision".into(),
            PolicySpec::Greedy { d } => format!("greedy:{d}"),
            PolicySpec::Beta { beta } => format!("beta:{beta}"),
            PolicySpec::Probe { max_probes } => format!("probe:{max_probes}"),
            PolicySpec::Left { d } => format!("left:{d}"),
        }
    }
}

/// Shared scratch for the probe-based policies: membership and
/// reservation bitmaps over the light set, reused across phases.
#[derive(Debug, Default)]
struct ProbeScratch {
    /// `light_state[p]`: 0 = not light, 1 = light, 2 = light but
    /// already reserved by an earlier heavy this phase.
    light_state: Vec<u8>,
    touched: Vec<ProcId>,
}

impl ProbeScratch {
    fn begin(&mut self, n: usize, light: &[ProcId]) {
        if self.light_state.len() < n {
            self.light_state.resize(n, 0);
        }
        for &p in &self.touched {
            self.light_state[p] = 0;
        }
        self.touched.clear();
        for &l in light {
            self.light_state[l] = 1;
            self.touched.push(l);
        }
    }
}

/// One load probe: narrates Query (probe out) + Accept (load reply)
/// when a wire log listens, and counts both. These ride the reliable
/// control path, like the collision protocol's sibling checks.
#[inline]
fn narrate_probe(wire: &mut Option<&mut WireLog>, stats: &mut PartnerStats, h: ProcId, t: ProcId) {
    stats.queries += 1;
    stats.accepts += 1;
    if let Some(w) = wire.as_deref_mut() {
        w.push_reliable(ControlKind::Query, h, t);
        w.push_reliable(ControlKind::Accept, t, h);
    }
}

/// Commits `h -> best` if `best` is a still-unreserved light
/// processor; returns true on a match.
#[inline]
fn try_commit(
    scratch: &mut ProbeScratch,
    wire: &mut Option<&mut WireLog>,
    out: &mut PartnerOutcome,
    h: ProcId,
    best: ProcId,
) -> bool {
    if scratch.light_state[best] == 1 {
        scratch.light_state[best] = 2;
        out.stats.id_messages += 1;
        if let Some(w) = wire.as_deref_mut() {
            w.push_reliable(ControlKind::IdMessage, best, h);
        }
        out.matches.push((h, best, 0));
        true
    } else {
        false
    }
}

/// Finishes the shared bookkeeping of a probe-policy phase.
fn finish(out: &mut PartnerOutcome, heavy_len: usize) {
    out.stats.requests = heavy_len as u64;
    out.stats.levels = u32::from(heavy_len > 0);
    out.stats.rounds = u32::from(heavy_len > 0);
    out.stats.wasted_rounds = u32::from(heavy_len > 0 && out.matches.is_empty());
}

/// Classic d-choice (`greedy_d`): probe `d` uniform neighbors, commit
/// to the least loaded (ties to the earliest draw).
#[derive(Debug)]
pub struct GreedyD {
    d: usize,
    scratch: ProbeScratch,
}

impl GreedyD {
    /// `d` probes per heavy processor.
    #[must_use]
    pub fn new(d: usize) -> Self {
        GreedyD {
            d: d.max(1),
            scratch: ProbeScratch::default(),
        }
    }
}

impl PartnerPolicy for GreedyD {
    fn name(&self) -> &'static str {
        "greedy-d"
    }

    fn select(
        &mut self,
        world: &mut World,
        topo: &Arc<dyn Topology>,
        heavy: &[ProcId],
        light: &[ProcId],
        mut wire: Option<&mut WireLog>,
    ) -> PartnerOutcome {
        let mut out = PartnerOutcome::default();
        self.scratch.begin(world.n(), light);
        out.requests_per_root = vec![1; heavy.len()];
        for &h in heavy {
            if topo.degree(h) == 0 {
                out.unmatched.push(h);
                continue;
            }
            let mut best: Option<(usize, ProcId)> = None;
            for _ in 0..self.d {
                let t = topo.random_partner(h, world.rng_global());
                narrate_probe(&mut wire, &mut out.stats, h, t);
                let load = world.load(t);
                if best.is_none_or(|(bl, _)| load < bl) {
                    best = Some((load, t));
                }
            }
            let (_, t) = best.expect("d >= 1 probes");
            if !try_commit(&mut self.scratch, &mut wire, &mut out, h, t) {
                out.unmatched.push(h);
            }
        }
        finish(&mut out, heavy.len());
        out
    }
}

/// `(1+β)`: one probe always, a second with probability `beta`, then
/// commit to the lighter. Interpolates between random matching and
/// 2-choice at a fraction of the probe cost.
#[derive(Debug)]
pub struct OnePlusBeta {
    beta: f64,
    scratch: ProbeScratch,
}

impl OnePlusBeta {
    /// Probability `beta` of the second probe.
    #[must_use]
    pub fn new(beta: f64) -> Self {
        OnePlusBeta {
            beta: beta.clamp(0.0, 1.0),
            scratch: ProbeScratch::default(),
        }
    }
}

impl PartnerPolicy for OnePlusBeta {
    fn name(&self) -> &'static str {
        "one-plus-beta"
    }

    fn select(
        &mut self,
        world: &mut World,
        topo: &Arc<dyn Topology>,
        heavy: &[ProcId],
        light: &[ProcId],
        mut wire: Option<&mut WireLog>,
    ) -> PartnerOutcome {
        let mut out = PartnerOutcome::default();
        self.scratch.begin(world.n(), light);
        out.requests_per_root = vec![1; heavy.len()];
        for &h in heavy {
            if topo.degree(h) == 0 {
                out.unmatched.push(h);
                continue;
            }
            // Draw order is fixed (coin, then probes) so the stream
            // is identical on every backend.
            let second = world.rng_global().chance(self.beta);
            let mut t = topo.random_partner(h, world.rng_global());
            narrate_probe(&mut wire, &mut out.stats, h, t);
            if second {
                let u = topo.random_partner(h, world.rng_global());
                narrate_probe(&mut wire, &mut out.stats, h, u);
                if world.load(u) < world.load(t) {
                    t = u;
                }
            }
            if !try_commit(&mut self.scratch, &mut wire, &mut out, h, t) {
                out.unmatched.push(h);
            }
        }
        finish(&mut out, heavy.len());
        out
    }
}

/// Threshold/adaptive probing: probe sequentially and stop at the
/// first still-unreserved light neighbor; give up after `max_probes`.
/// Message cost adapts to how hard light partners are to find.
#[derive(Debug)]
pub struct ThresholdProbe {
    max_probes: usize,
    scratch: ProbeScratch,
}

impl ThresholdProbe {
    /// Probe budget per heavy processor.
    #[must_use]
    pub fn new(max_probes: usize) -> Self {
        ThresholdProbe {
            max_probes: max_probes.max(1),
            scratch: ProbeScratch::default(),
        }
    }
}

impl PartnerPolicy for ThresholdProbe {
    fn name(&self) -> &'static str {
        "threshold-probe"
    }

    fn select(
        &mut self,
        world: &mut World,
        topo: &Arc<dyn Topology>,
        heavy: &[ProcId],
        light: &[ProcId],
        mut wire: Option<&mut WireLog>,
    ) -> PartnerOutcome {
        let mut out = PartnerOutcome::default();
        self.scratch.begin(world.n(), light);
        out.requests_per_root = Vec::with_capacity(heavy.len());
        for &h in heavy {
            if topo.degree(h) == 0 {
                out.unmatched.push(h);
                out.requests_per_root.push(1);
                continue;
            }
            let mut matched = false;
            let mut probes = 0u32;
            for _ in 0..self.max_probes {
                let t = topo.random_partner(h, world.rng_global());
                probes += 1;
                narrate_probe(&mut wire, &mut out.stats, h, t);
                if try_commit(&mut self.scratch, &mut wire, &mut out, h, t) {
                    matched = true;
                    break;
                }
            }
            out.requests_per_root.push(probes.max(1));
            if !matched {
                out.unmatched.push(h);
            }
        }
        finish(&mut out, heavy.len());
        out
    }
}

/// Always-go-left (Vöcking): split the neighbor-slot space into `d`
/// contiguous groups, draw one candidate per group, commit to the
/// least loaded with ties broken toward the leftmost group.
#[derive(Debug)]
pub struct AlwaysGoLeft {
    d: usize,
    scratch: ProbeScratch,
}

impl AlwaysGoLeft {
    /// Number of groups (and probes) per heavy processor.
    #[must_use]
    pub fn new(d: usize) -> Self {
        AlwaysGoLeft {
            d: d.max(1),
            scratch: ProbeScratch::default(),
        }
    }
}

impl PartnerPolicy for AlwaysGoLeft {
    fn name(&self) -> &'static str {
        "always-go-left"
    }

    fn select(
        &mut self,
        world: &mut World,
        topo: &Arc<dyn Topology>,
        heavy: &[ProcId],
        light: &[ProcId],
        mut wire: Option<&mut WireLog>,
    ) -> PartnerOutcome {
        let mut out = PartnerOutcome::default();
        self.scratch.begin(world.n(), light);
        out.requests_per_root = vec![1; heavy.len()];
        for &h in heavy {
            let deg = topo.degree(h);
            if deg == 0 {
                out.unmatched.push(h);
                continue;
            }
            let groups = self.d.min(deg);
            let mut best: Option<(usize, ProcId)> = None;
            for g in 0..groups {
                let lo = g * deg / groups;
                let hi = (g + 1) * deg / groups;
                let slot = lo + world.rng_global().below(hi - lo);
                let t = topo.neighbor(h, slot);
                narrate_probe(&mut wire, &mut out.stats, h, t);
                let load = world.load(t);
                // Strict `<` keeps ties with the leftmost group.
                if best.is_none_or(|(bl, _)| load < bl) {
                    best = Some((load, t));
                }
            }
            let (_, t) = best.expect("groups >= 1");
            if !try_commit(&mut self.scratch, &mut wire, &mut out, h, t) {
                out.unmatched.push(h);
            }
        }
        finish(&mut out, heavy.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_spec_grammar_round_trips() {
        for s in [
            "collision",
            "greedy:2",
            "greedy:4",
            "beta:0.5",
            "probe:4",
            "left:3",
        ] {
            let spec = PolicySpec::parse(s).unwrap();
            assert_eq!(spec.label(), s);
        }
        assert_eq!(
            PolicySpec::parse("greedy").unwrap(),
            PolicySpec::Greedy { d: 2 }
        );
        assert_eq!(
            PolicySpec::parse("beta").unwrap(),
            PolicySpec::Beta { beta: 0.5 }
        );
        assert_eq!(
            PolicySpec::parse("probe").unwrap(),
            PolicySpec::Probe { max_probes: 4 }
        );
        assert!(PolicySpec::parse("greedy:0").is_err());
        assert!(PolicySpec::parse("beta:1.5").is_err());
        assert!(PolicySpec::parse("collision:2").is_err());
        assert!(PolicySpec::parse("rr").is_err());
    }
}
