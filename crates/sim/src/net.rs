//! The message-passing runtime: drives a simulation where every
//! protocol message and block transfer is encoded, shipped over a
//! [`Transport`], decoded, and only then applied.
//!
//! # Architecture
//!
//! `Backend::Net { nodes, tcp }` hosts a contiguous shard of
//! processors per **node thread**. Each step runs in two scoped
//! sections around the control step:
//!
//! 1. **Phase A (local work):** every node thread runs the shared
//!    generate/consume kernel (`drive_shard`) on its own shard — the
//!    same kernel, same RNG streams, and same fault gating as every
//!    other backend — then closes with a coordinator-free
//!    **phase-synchronization round**: one `Barrier` frame to each
//!    peer (piggybacking the shard's load as gossip), blocking until
//!    all `nodes − 1` peer barriers arrive. No node proceeds until
//!    every node has finished the sub-steps.
//! 2. **Control step:** the driving thread runs the strategy exactly
//!    as `Engine::step` does. With the world's *wire sink* enabled,
//!    the collision game, balance forest, and balancer narrate every
//!    query/accept/id/probe/load-reply as a [`ControlRecord`], and
//!    `World::transfer` defers physical task delivery into
//!    `TransferRecord`s (all statistics still recorded at decision
//!    time, identically to the sequential backend).
//! 3. **Phase B (wire delivery):** the runtime assigns each record to
//!    its source node, encodes it into a real frame, and the node
//!    threads ship the frames over the transport. The transport layer
//!    consults [`FaultModel::frame_dropped`] per faultable frame — a
//!    pure hash of the same coordinates the logical layer used, so the
//!    physical drop coincides with the simulated one. Receivers decode
//!    every arriving frame; a second barrier round closes the phase.
//!    Decoded `Transfer` frames are then applied to destination queues
//!    in global `seq` order, making queue contents independent of
//!    network arrival order.
//!
//! # Determinism contract
//!
//! A loopback (or localhost-TCP) net run reproduces the sequential
//! backend's `RunReport` **bit-for-bit** for the same `(n, seed,
//! steps, faults)`: sub-steps use the shared kernel and per-processor
//! RNG streams; control decisions run on one thread in program order
//! with the same global RNG; transfers are applied in emission order
//! regardless of arrival order; and fault decisions are pure hashes,
//! so wire-level loss mirrors simulated loss exactly. The only
//! net-specific observables — frame and byte counts — live *outside*
//! the report's compared fields (see [`World::net_frames`] and the
//! `frames` slot of `ProbeOutput::MessageRate`).

use crate::backend::{drive_shard, StepScratch};
use crate::message::MessageKind;
use crate::model::{LoadModel, Strategy};
use crate::probe::{PhaseReport, Probe};
use crate::runner::RunReport;
use crate::task::Task;
use crate::trace::Event;
use crate::types::{ProcId, Step};
use crate::world::{CompletionStats, World, DEFAULT_SOJOURN_HIST};
use pcrlb_faults::{FaultModel, MsgCtx};
use pcrlb_net::{
    codec, ControlKind, FrameStats, LoopbackNet, TcpNet, Transport, WireMsg, WireTask,
};

/// Converts a ledger message kind to its wire twin.
#[must_use]
pub fn control_kind(kind: MessageKind) -> ControlKind {
    match kind {
        MessageKind::Query => ControlKind::Query,
        MessageKind::Accept => ControlKind::Accept,
        MessageKind::IdMessage => ControlKind::IdMessage,
        MessageKind::Probe => ControlKind::Probe,
        MessageKind::LoadReply => ControlKind::LoadReply,
    }
}

/// One encoded frame awaiting transmission by a node thread.
struct OutFrame {
    /// Destination node.
    to: usize,
    /// Encoded bytes (envelope included).
    bytes: Vec<u8>,
    /// Fault coordinates for the transport-level drop consult.
    fault: Option<MsgCtx>,
    /// The logical layer's drop verdict (cross-checked in debug).
    logical_drop: bool,
    /// Control frame (vs. transfer frame)?
    control: bool,
    /// Tasks carried (transfer frames only).
    tasks: u64,
}

/// Entry point used by `Runner::run_detailed` for `Backend::Net`. The
/// `world` arrives fully configured (faults installed, observer
/// enabled); this function enables the wire sink, builds the transport
/// group, and drives the run.
///
/// # Panics
/// Panics when the TCP group cannot bind on 127.0.0.1, or on any
/// transport failure mid-run (a lost peer is fatal, not recoverable).
pub(crate) fn run_net_detailed<M: LoadModel + Sync, S: Strategy>(
    steps: u64,
    nodes: usize,
    tcp: bool,
    mut world: World,
    model: M,
    strategy: S,
    probes: Vec<Box<dyn Probe>>,
) -> (RunReport, World, S) {
    let nodes = nodes.max(1);
    world.enable_wire();
    if tcp {
        let endpoints = TcpNet::group(nodes).expect("failed to bind localhost TCP group");
        drive(endpoints, steps, world, model, strategy, probes)
    } else {
        drive(
            LoopbackNet::group(nodes),
            steps,
            world,
            model,
            strategy,
            probes,
        )
    }
}

/// The runner loop, transport-generic. Mirrors `Runner::run_detailed`
/// step-for-step, with [`net_step`] in place of `Engine::step`.
fn drive<T: Transport, M: LoadModel + Sync, S: Strategy>(
    mut endpoints: Vec<T>,
    steps: u64,
    mut world: World,
    model: M,
    mut strategy: S,
    mut probes: Vec<Box<dyn Probe>>,
) -> (RunReport, World, S) {
    for probe in probes.iter_mut() {
        probe.on_run_start(&world);
    }
    let mut phases: Vec<PhaseReport> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut executed = 0u64;
    for _ in 0..steps {
        net_step(&mut endpoints, &mut world, &model, &mut strategy);
        executed += 1;
        world.take_observations(&mut phases, &mut events);
        for probe in probes.iter_mut() {
            for report in &phases {
                probe.on_phase(report);
            }
            for event in &events {
                probe.on_event(event);
            }
            probe.on_step(&world);
        }
        phases.clear();
        events.clear();
        if probes.iter().any(|p| p.stop_requested()) {
            break;
        }
    }
    for probe in probes.iter_mut() {
        probe.on_run_end(&world);
    }

    let report = RunReport {
        n: world.n(),
        seed: world.seed(),
        steps: executed,
        loads: world.loads(),
        weighted_loads: (0..world.n()).map(|p| world.weighted_load(p)).collect(),
        max_load: world.max_load(),
        total_load: world.total_load(),
        max_weighted_load: world.max_weighted_load(),
        total_weighted_load: world.total_weighted_load(),
        completions: world.completions().clone(),
        total_shed: world.total_shed(),
        total_deferred: world.total_deferred(),
        messages: world.messages(),
        model: model.name(),
        strategy: strategy.name(),
        backend: "net",
        probes: probes
            .into_iter()
            .map(|p| {
                let name = p.name();
                (name, p.finish())
            })
            .collect(),
    };
    (report, world, strategy)
}

/// One simulation step over real messages. See the module docs for the
/// three-phase structure.
fn net_step<T: Transport, M: LoadModel + Sync, S: Strategy>(
    endpoints: &mut [T],
    world: &mut World,
    model: &M,
    strategy: &mut S,
) {
    let nodes = endpoints.len();
    let faults = world.active_faults();
    let fmodel: Option<&dyn FaultModel> = faults.as_deref();
    let now = world.step();
    let mut step_stats = FrameStats::default();

    // ---- Phase A: local sub-steps + barrier round --------------------
    let mut all_spills: Vec<(ProcId, Task)> = Vec::new();
    {
        let (shard_list, completions) = world.shard_views(nodes);
        let mut shards: Vec<Option<_>> = shard_list.into_iter().map(Some).collect();
        shards.resize_with(nodes, || None);
        type NodeResult = (CompletionStats, FrameStats, Vec<(ProcId, Task)>);
        let results: Vec<NodeResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = endpoints
                .iter_mut()
                .zip(shards)
                .map(|(ep, shard)| {
                    scope.spawn(move || {
                        let mut local = CompletionStats::new(DEFAULT_SOJOURN_HIST);
                        let mut fs = FrameStats::default();
                        let mut spill = Vec::new();
                        let load = if let Some(mut shard) = shard {
                            let mut scratch = StepScratch::default();
                            drive_shard(&mut shard, model, &mut local, fmodel, &mut scratch);
                            // Gossip the logical load: ring contents
                            // plus spilled tasks (they are real queue
                            // entries awaiting absorption).
                            let load = shard.total_load();
                            spill = std::mem::take(&mut shard.spill);
                            load
                        } else {
                            0
                        };
                        exchange(ep, Vec::new(), 0, now, load, fmodel, &mut fs);
                        (local, fs, spill)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("net node thread panicked"))
                .collect()
        });
        for (local, fs, mut spill) in results {
            completions.merge(&local);
            step_stats += fs;
            all_spills.append(&mut spill);
        }
    }
    world.absorb_spill(&mut all_spills);

    // ---- Control step (driving thread; mirrors Engine::step) ---------
    strategy.on_step(world);
    world.tick();

    // ---- Phase B: frame, ship, decode, apply -------------------------
    let (controls, transfers) = world.take_wire_step();
    let per = world.n().div_ceil(nodes);
    let node_of = |p: u64| ((p as usize) / per).min(nodes - 1);

    let mut outs: Vec<Vec<OutFrame>> = (0..nodes).map(|_| Vec::new()).collect();
    let mut expect = vec![0usize; nodes];
    for rec in &controls {
        let (nonce, round) = rec.fault.map_or((0, 0), |c| (c.nonce, c.round));
        let bytes = codec::encode(&WireMsg::Control {
            kind: rec.kind,
            src: rec.src,
            dst: rec.dst,
            nonce,
            round,
        });
        let dst_node = node_of(rec.dst);
        if !rec.dropped {
            expect[dst_node] += 1;
        }
        outs[node_of(rec.src)].push(OutFrame {
            to: dst_node,
            bytes,
            fault: rec.fault,
            logical_drop: rec.dropped,
            control: true,
            tasks: 0,
        });
    }
    let expected_transfers = transfers.len();
    for tr in transfers {
        let wire_tasks: Vec<WireTask> = tr
            .tasks
            .iter()
            .map(|t| WireTask {
                id: t.id,
                origin: t.origin as u64,
                born: t.born,
                weight: t.weight,
            })
            .collect();
        let count = wire_tasks.len() as u64;
        let bytes = codec::encode(&WireMsg::Transfer {
            seq: tr.seq,
            src: tr.from as u64,
            dst: tr.to as u64,
            tasks: wire_tasks,
        });
        let dst_node = node_of(tr.to as u64);
        expect[dst_node] += 1;
        outs[node_of(tr.from as u64)].push(OutFrame {
            to: dst_node,
            bytes,
            fault: None,
            logical_drop: false,
            control: false,
            tasks: count,
        });
    }

    let results: Vec<(Vec<WireMsg>, FrameStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .iter_mut()
            .zip(outs.into_iter().zip(expect))
            .map(|(ep, (out, expect_n))| {
                scope.spawn(move || {
                    let mut fs = FrameStats::default();
                    let data = exchange(ep, out, expect_n, now, 0, fmodel, &mut fs);
                    (data, fs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("net node thread panicked"))
            .collect()
    });

    // Apply decoded transfers in global emission (`seq`) order: this
    // is what makes queue contents — and therefore the whole run —
    // independent of the transport's arrival interleaving.
    let mut decoded_transfers: Vec<(u32, u64, Vec<WireTask>)> =
        Vec::with_capacity(expected_transfers);
    for (data, fs) in results {
        step_stats += fs;
        for msg in data {
            if let WireMsg::Transfer {
                seq, dst, tasks, ..
            } = msg
            {
                decoded_transfers.push((seq, dst, tasks));
            }
        }
    }
    assert_eq!(
        decoded_transfers.len(),
        expected_transfers,
        "transfer frames lost in flight"
    );
    decoded_transfers.sort_by_key(|(seq, _, _)| *seq);
    for (_, dst, tasks) in decoded_transfers {
        let tasks: Vec<Task> = tasks
            .into_iter()
            .map(|t| Task {
                id: t.id,
                origin: t.origin as u32,
                born: t.born,
                weight: t.weight,
            })
            .collect();
        world.apply_wire_transfer(dst as usize, tasks);
    }
    world.add_net_frames(step_stats);
}

/// Ships `out` frames, closes with a barrier round, and collects the
/// `expect` data frames addressed to this node (barriers and data
/// interleave arbitrarily across peers). Returns the decoded data
/// frames in arrival order.
fn exchange<T: Transport>(
    ep: &mut T,
    out: Vec<OutFrame>,
    expect: usize,
    step: Step,
    load: u64,
    fmodel: Option<&dyn FaultModel>,
    fs: &mut FrameStats,
) -> Vec<WireMsg> {
    let me = ep.node();
    let peers = ep.nodes();
    for f in out {
        // Lemma 8 charging rule: the sender pays for every frame at
        // send time, delivered or not — so the frame is charged before
        // the transport-level fault hook gets to discard it.
        fs.record_sent(f.bytes.len());
        if f.control {
            fs.control_frames += 1;
        } else {
            fs.transfer_frames += 1;
            fs.payload_tasks += f.tasks;
        }
        if let (Some(ctx), Some(model)) = (&f.fault, fmodel) {
            // Transport-level fault hook: the same pure hash the
            // logical layer used, evaluated independently here.
            let phys = model.frame_dropped(ctx);
            debug_assert_eq!(
                phys, f.logical_drop,
                "transport and logical fault decisions diverged"
            );
            if phys {
                fs.frames_dropped += 1;
                continue;
            }
        }
        ep.send(f.to, &f.bytes).expect("net send failed");
    }
    let barrier = codec::encode(&WireMsg::Barrier {
        node: me as u32,
        step,
        load,
    });
    for peer in 0..peers {
        if peer != me {
            ep.send(peer, &barrier).expect("net barrier send failed");
            fs.record_sent(barrier.len());
            fs.barrier_frames += 1;
        }
    }
    let mut data = Vec::with_capacity(expect);
    let mut barriers_seen = 0;
    while data.len() < expect || barriers_seen < peers - 1 {
        let raw = ep.recv().expect("net recv failed");
        fs.record_received(raw.len());
        match codec::decode(&raw).expect("undecodable frame on the wire") {
            WireMsg::Barrier { .. } => barriers_seen += 1,
            msg => data.push(msg),
        }
    }
    data
}
