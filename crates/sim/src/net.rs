//! The message-passing runtime: drives a simulation where every
//! protocol message and block transfer is encoded, shipped over a
//! [`Transport`], decoded, and only then applied.
//!
//! # Architecture
//!
//! `Backend::Net { nodes, tcp, relaxed }` hosts a contiguous shard of
//! processors per **node thread**. The node threads are persistent
//! (one [`WorkerPool`] per run, not per step); each step runs as two
//! pool broadcasts around the control step:
//!
//! 1. **Phase A (local work):** every node thread runs the shared
//!    generate/consume kernel (`drive_shard`) on its own shard — the
//!    same kernel, same RNG streams, and same fault gating as every
//!    other backend — and captures its shard load. Phase A has **no
//!    wire traffic**: the broadcast join is the synchronization, per
//!    Lemma 6 (games complete within their phase, so nothing outside
//!    the phase can observe intermediate state).
//! 2. **Control step:** the driving thread runs the strategy exactly
//!    as `Engine::step` does. With the world's *wire sink* enabled,
//!    the collision game, balance forest, and balancer narrate every
//!    query/accept/id/probe/load-reply as a [`ControlRecord`], and
//!    `World::transfer` defers physical task delivery into
//!    `TransferRecord`s (all statistics still recorded at decision
//!    time, identically to the sequential backend).
//! 3. **Phase B (one batched delivery round):** the runtime buckets
//!    each record by (source node, destination node). Every node
//!    encodes everything it owes a peer into **one batch frame** per
//!    peer — a reused [`BatchBuilder`] buffer, so the steady state
//!    allocates nothing on the encode path — and sends it. The batch
//!    header carries the sender's **round watermark** (and its shard
//!    load as gossip); an empty batch is a pure watermark (counted as
//!    a `sync_frame`). A node's round is complete exactly when one
//!    batch from every peer with `watermark == round` has arrived —
//!    coordinator-free phase synchronization with `nodes × (nodes−1)`
//!    physical frames per step, replacing the old design's two global
//!    barrier rounds (`2 × nodes × (nodes−1)` dedicated frames on top
//!    of per-message sends). The transport layer consults
//!    [`FaultModel::frame_dropped`] per faultable record before it
//!    enters the batch — a pure hash of the same coordinates the
//!    logical layer used, so the physical drop coincides with the
//!    simulated one.
//!
//! Decoded `Transfer` frames are applied to destination queues in
//! global `seq` order by default, making queue contents independent of
//! network arrival order. A run may instead opt into arrival-order
//! application (`relaxed`, CLI `--net-relaxed`): genuine out-of-order
//! delivery that trades the bit-for-bit contract for not having to
//! buffer-and-sort, for TCP throughput runs.
//!
//! # Determinism contract
//!
//! A strict (non-relaxed) loopback or localhost-TCP net run reproduces
//! the sequential backend's `RunReport` **bit-for-bit** for the same
//! `(n, seed, steps, faults)`: sub-steps use the shared kernel and
//! per-processor RNG streams; control decisions run on one thread in
//! program order with the same global RNG; transfers are applied in
//! emission order regardless of arrival order; and fault decisions are
//! pure hashes, so wire-level loss mirrors simulated loss exactly. The
//! only net-specific observables — frame and byte counts — live
//! *outside* the report's compared fields (see [`World::net_frames`]
//! and the `frames` slot of `ProbeOutput::MessageRate`).
//!
//! # Accounting
//!
//! [`FrameStats`] counts *logical* envelope frames (`frames_sent`,
//! `control_frames`, `transfer_frames`, …) exactly as the unbatched
//! runtime did — the sender pays at send time whether or not the
//! fault hook then discards the record (the Lemma 8 charging rule) —
//! plus the physical `batches_sent`/`batches_received` and the batch
//! header/length-prefix overhead in the byte counters. Self-node
//! records never touch the transport but are charged as both sent and
//! received, so loopback and TCP report identical stats.

use crate::backend::{drive_shard, StepScratch};
use crate::message::MessageKind;
use crate::model::{LoadModel, Strategy};
use crate::pool::WorkerPool;
use crate::probe::{PhaseReport, Probe};
use crate::runner::RunReport;
use crate::task::Task;
use crate::trace::Event;
use crate::types::ProcId;
use crate::world::{CompletionStats, World, WorldShard, DEFAULT_SOJOURN_HIST};
use pcrlb_faults::{FaultModel, MsgCtx};
use pcrlb_net::{
    codec, BatchBuilder, ControlKind, FrameStats, LoopbackNet, TcpNet, Transport, WireMsg, WireTask,
};
use std::cell::UnsafeCell;

/// Converts a ledger message kind to its wire twin.
#[must_use]
pub fn control_kind(kind: MessageKind) -> ControlKind {
    match kind {
        MessageKind::Query => ControlKind::Query,
        MessageKind::Accept => ControlKind::Accept,
        MessageKind::IdMessage => ControlKind::IdMessage,
        MessageKind::Probe => ControlKind::Probe,
        MessageKind::LoadReply => ControlKind::LoadReply,
    }
}

/// One protocol record assigned to a source node for batching.
struct OutRec {
    /// The decoded message (encoded into the batch on the node thread,
    /// so the encode buffer is the node's reused [`BatchBuilder`]).
    msg: WireMsg,
    /// Fault coordinates for the transport-level drop consult.
    fault: Option<MsgCtx>,
    /// The logical layer's drop verdict (cross-checked in debug).
    logical_drop: bool,
    /// Control frame (vs. transfer frame)?
    control: bool,
    /// Tasks carried (transfer frames only).
    tasks: u64,
}

/// Everything one persistent node thread owns across the run.
struct NodeState<T> {
    ep: T,
    /// Reused batch encode buffer.
    batch: BatchBuilder,
    /// This step's frame accounting (reset each step).
    fs: FrameStats,
    /// This step's completion accounting (reset each step).
    local: CompletionStats,
    /// Kernel scratch, reused across steps.
    scratch: StepScratch,
    /// Shard load captured in phase A, gossiped in batch headers.
    load: u64,
    /// Ring overflow spilled by the kernel this step.
    spill: Vec<(ProcId, Task)>,
    /// Outgoing records bucketed by destination node (filled by the
    /// coordinator, drained by the node thread).
    out: Vec<Vec<OutRec>>,
    /// Burst-receive scratch.
    raw: Vec<Vec<u8>>,
    /// Transfers decoded this step, in arrival order.
    decoded: Vec<(u32, u64, Vec<WireTask>)>,
}

/// Per-node slots for the pool broadcasts.
///
/// # Safety
/// Slot `wid` is touched only by worker `wid` during a broadcast and
/// only by the coordinator between broadcasts — the same discipline as
/// the pool's own job slots.
struct NodeSlots<T>(Vec<UnsafeCell<NodeState<T>>>);
unsafe impl<T: Send> Sync for NodeSlots<T> {}

/// Per-node shard slots for the phase-A broadcast (the shard split can
/// be shorter than the node count when `n < nodes`).
struct ShardSlots<'a>(Vec<UnsafeCell<Option<WorldShard<'a>>>>);
unsafe impl Sync for ShardSlots<'_> {}

/// Shape of a net run, unpacked from [`crate::Backend::Net`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct NetTopology {
    pub nodes: usize,
    pub tcp: bool,
    pub relaxed: bool,
}

/// Entry point used by `Runner::run_detailed` for `Backend::Net`. The
/// `world` arrives fully configured (faults installed, observer
/// enabled); this function enables the wire sink, builds the transport
/// group, and drives the run.
///
/// # Panics
/// Panics when the TCP group cannot bind on 127.0.0.1, or on a
/// transport failure mid-run **without churn** (a lost peer is then
/// fatal, not recoverable). With a churn schedule installed, a peer
/// departure degrades gracefully instead: the coordinator stops
/// waiting for the dead peer, recovers its in-flight transfers from
/// retained copies (shard takeover — see [`net_step`]), and the run
/// continues bit-identically to the shared-memory backends.
pub(crate) fn run_net_detailed<M: LoadModel + Sync, S: Strategy>(
    steps: u64,
    topo: NetTopology,
    mut world: World,
    model: M,
    strategy: S,
    probes: Vec<Box<dyn Probe>>,
) -> (RunReport, World, S) {
    let NetTopology {
        nodes,
        tcp,
        relaxed,
    } = topo;
    let nodes = nodes.max(1);
    world.enable_wire();
    if tcp {
        let endpoints = TcpNet::group(nodes).expect("failed to bind localhost TCP group");
        drive(endpoints, steps, relaxed, world, model, strategy, probes)
    } else {
        drive(
            LoopbackNet::group(nodes),
            steps,
            relaxed,
            world,
            model,
            strategy,
            probes,
        )
    }
}

/// The runner loop, transport-generic. Mirrors `Runner::run_detailed`
/// step-for-step, with [`net_step`] in place of `Engine::step`.
fn drive<T: Transport, M: LoadModel + Sync, S: Strategy>(
    endpoints: Vec<T>,
    steps: u64,
    relaxed: bool,
    mut world: World,
    model: M,
    mut strategy: S,
    mut probes: Vec<Box<dyn Probe>>,
) -> (RunReport, World, S) {
    let nodes = endpoints.len();
    let pool = WorkerPool::new(nodes);
    let mut slots = NodeSlots(
        endpoints
            .into_iter()
            .map(|ep| {
                UnsafeCell::new(NodeState {
                    ep,
                    batch: BatchBuilder::new(),
                    fs: FrameStats::default(),
                    local: CompletionStats::new(DEFAULT_SOJOURN_HIST),
                    scratch: StepScratch::default(),
                    load: 0,
                    spill: Vec::new(),
                    out: (0..nodes).map(|_| Vec::new()).collect(),
                    raw: Vec::new(),
                    decoded: Vec::new(),
                })
            })
            .collect(),
    );

    for probe in probes.iter_mut() {
        probe.on_run_start(&world);
    }
    let mut phases: Vec<PhaseReport> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut executed = 0u64;
    for _ in 0..steps {
        net_step(
            &pool,
            &mut slots,
            relaxed,
            &mut world,
            &model,
            &mut strategy,
        );
        executed += 1;
        world.take_observations(&mut phases, &mut events);
        for probe in probes.iter_mut() {
            for report in &phases {
                probe.on_phase(report);
            }
            for event in &events {
                probe.on_event(event);
            }
            probe.on_step(&world);
        }
        phases.clear();
        events.clear();
        if probes.iter().any(|p| p.stop_requested()) {
            break;
        }
    }
    for probe in probes.iter_mut() {
        probe.on_run_end(&world);
    }

    let report = RunReport {
        n: world.n(),
        seed: world.seed(),
        steps: executed,
        loads: world.loads(),
        weighted_loads: (0..world.n()).map(|p| world.weighted_load(p)).collect(),
        max_load: world.max_load(),
        total_load: world.total_load(),
        max_weighted_load: world.max_weighted_load(),
        total_weighted_load: world.total_weighted_load(),
        completions: world.completions().clone(),
        total_shed: world.total_shed(),
        total_deferred: world.total_deferred(),
        messages: world.messages(),
        model: model.name(),
        strategy: strategy.name(),
        backend: "net",
        probes: probes
            .into_iter()
            .map(|p| {
                let name = p.name();
                (name, p.finish())
            })
            .collect(),
    };
    (report, world, strategy)
}

/// One simulation step over real messages. See the module docs for the
/// phase structure.
fn net_step<T: Transport, M: LoadModel + Sync, S: Strategy>(
    pool: &WorkerPool,
    slots: &mut NodeSlots<T>,
    relaxed: bool,
    world: &mut World,
    model: &M,
    strategy: &mut S,
) {
    let nodes = slots.0.len();
    // Membership first, exactly as `Engine::step` does: the live
    // prefix for this round is fixed (and departing queues evacuated
    // by the coordinator) before any node thread runs its kernel.
    world.sync_membership();
    let churn = world.churn_enabled();
    let faults = world.active_faults();
    let fmodel: Option<&dyn FaultModel> = faults.as_deref();
    let round = world.step();

    // ---- Phase A: local sub-steps (no wire traffic; the broadcast
    // ---- join is the synchronization) ---------------------------------
    let mut all_spills: Vec<(ProcId, Task)> = Vec::new();
    {
        let (shard_list, completions) = world.shard_views(nodes);
        let mut shard_slots = ShardSlots((0..nodes).map(|_| UnsafeCell::new(None)).collect());
        for (wid, shard) in shard_list.into_iter().enumerate() {
            *shard_slots.0[wid].get_mut() = Some(shard);
        }
        let shards = &shard_slots;
        let nodes_ref: &NodeSlots<T> = slots;
        pool.broadcast(&|wid: usize| {
            // SAFETY: see `NodeSlots` — slot `wid` is exclusively ours
            // for the duration of the broadcast.
            let state = unsafe { &mut *nodes_ref.0[wid].get() };
            let shard = unsafe { &mut *shards.0[wid].get() };
            state.local.reset();
            state.fs = FrameStats::default();
            state.load = 0;
            if let Some(shard) = shard.as_mut() {
                drive_shard(shard, model, &mut state.local, fmodel, &mut state.scratch);
                // Gossip the logical load: ring contents plus spilled
                // tasks (they are real queue entries awaiting
                // absorption).
                state.load = shard.total_load();
                state.spill = std::mem::take(&mut shard.spill);
            }
        });
        // Merge completion locals and collect spills in fixed node
        // (= processor) order.
        for cell in &mut slots.0 {
            let state = cell.get_mut();
            completions.merge(&state.local);
            all_spills.append(&mut state.spill);
        }
    }
    world.absorb_spill(&mut all_spills);

    // ---- Control step (driving thread; mirrors Engine::step) ---------
    strategy.on_step(world);
    world.tick();

    // ---- Phase B: bucket, batch, ship one watermark round ------------
    // Shard pins follow the live prefix: `node_of` mirrors the phase-A
    // `shard_views(nodes)` split of `[0, active_n)`, so each record is
    // encoded by the node that owns its source processor *this epoch*.
    // (Records addressed past the prefix — e.g. a graph-topology probe
    // to a departed neighbor — clamp to the last node and are applied
    // by the coordinator like any other; they find no light partner.)
    let (controls, transfers) = world.take_wire_step();
    let per = world.active_n().div_ceil(nodes);
    let node_of = |p: u64| ((p as usize) / per).min(nodes - 1);

    for rec in &controls {
        let (nonce, game_round) = rec.fault.map_or((0, 0), |c| (c.nonce, c.round));
        let src_node = node_of(rec.src);
        let dst_node = node_of(rec.dst);
        slots.0[src_node].get_mut().out[dst_node].push(OutRec {
            msg: WireMsg::Control {
                kind: rec.kind,
                src: rec.src,
                dst: rec.dst,
                nonce,
                round: game_round,
            },
            fault: rec.fault,
            logical_drop: rec.dropped,
            control: true,
            tasks: 0,
        });
    }
    let expected_transfers = transfers.len();
    // Shard-takeover insurance: with churn enabled the coordinator
    // retains a copy of every transfer it hands to the node threads.
    // Should a peer depart mid-exchange, the transfers it was carrying
    // are recovered from here instead of aborting the run — the data
    // never actually left the process, so the recovered queues are
    // bit-identical to what a fully-delivered round would produce.
    let mut retained: Vec<(u32, u64, Vec<WireTask>)> = Vec::new();
    for tr in transfers {
        let wire_tasks: Vec<WireTask> = tr
            .tasks
            .iter()
            .map(|t| WireTask {
                id: t.id,
                origin: t.origin as u64,
                born: t.born,
                weight: t.weight,
            })
            .collect();
        let count = wire_tasks.len() as u64;
        if churn {
            retained.push((tr.seq, tr.to as u64, wire_tasks.clone()));
        }
        let dst_node = node_of(tr.to as u64);
        slots.0[node_of(tr.from as u64)].get_mut().out[dst_node].push(OutRec {
            msg: WireMsg::Transfer {
                seq: tr.seq,
                src: tr.from as u64,
                dst: tr.to as u64,
                tasks: wire_tasks,
            },
            fault: None,
            logical_drop: false,
            control: false,
            tasks: count,
        });
    }

    let nodes_ref: &NodeSlots<T> = slots;
    pool.broadcast(&|wid: usize| {
        // SAFETY: see `NodeSlots`.
        let state = unsafe { &mut *nodes_ref.0[wid].get() };
        exchange_round(state, wid, round, fmodel, churn);
    });

    // Apply decoded transfers. Strict mode restores global emission
    // (`seq`) order — this is what makes queue contents, and therefore
    // the whole run, independent of the transport's arrival
    // interleaving. Relaxed mode applies them as they arrived.
    let mut step_stats = FrameStats::default();
    let mut decoded: Vec<(u32, u64, Vec<WireTask>)> = Vec::with_capacity(expected_transfers);
    for cell in &mut slots.0 {
        let state = cell.get_mut();
        step_stats += state.fs;
        decoded.append(&mut state.decoded);
    }
    if decoded.len() != expected_transfers && churn {
        // Shard takeover: a peer departed mid-exchange and its batches
        // never arrived. Recover the missing transfers from the
        // coordinator's retained copies — the compared report stays
        // bit-identical because these are the exact tasks the wire
        // would have carried.
        let have: std::collections::HashSet<u32> = decoded.iter().map(|d| d.0).collect();
        for (seq, dst, tasks) in retained {
            if !have.contains(&seq) {
                step_stats.takeovers += 1;
                decoded.push((seq, dst, tasks));
            }
        }
    }
    assert_eq!(
        decoded.len(),
        expected_transfers,
        "transfer frames lost in flight"
    );
    if !relaxed {
        decoded.sort_by_key(|(seq, _, _)| *seq);
    }
    for (_, dst, tasks) in decoded {
        let tasks: Vec<Task> = tasks
            .into_iter()
            .map(|t| Task {
                id: t.id,
                origin: t.origin as u32,
                born: t.born,
                weight: t.weight,
            })
            .collect();
        world.apply_wire_transfer(dst as usize, tasks);
    }
    world.add_net_frames(step_stats);
}

/// One node's half of a watermark round: encode one batch per peer
/// (charging every record to the sender first, then letting the fault
/// hook discard), ship them, account self-records locally, and receive
/// until every peer's watermark for `round` has arrived.
///
/// With `churn` set, a [`pcrlb_net::NetError::Closed`] from the
/// transport is an *unplanned-departure membership event*, not a
/// crash: the node stops talking to (or waiting for) the dead peer,
/// counts a takeover in the (uncompared) frame statistics, and lets
/// the coordinator backfill any transfers the peer was carrying.
/// Without churn the historic contract holds — a lost peer is fatal.
fn exchange_round<T: Transport>(
    state: &mut NodeState<T>,
    me: usize,
    round: u64,
    fmodel: Option<&dyn FaultModel>,
    churn: bool,
) {
    let NodeState {
        ep,
        batch,
        fs,
        load,
        out,
        raw,
        decoded,
        ..
    } = state;
    let nodes = ep.nodes();
    decoded.clear();

    for dst in 0..nodes {
        if dst == me {
            // Self-records bypass the transport but are charged as
            // both sent and received, so loopback and TCP stats agree.
            for rec in out[me].drain(..) {
                let len = charge_send(fs, &rec);
                if record_dropped(fs, &rec, fmodel) {
                    continue;
                }
                fs.record_received(len);
                if let WireMsg::Transfer {
                    seq, dst, tasks, ..
                } = rec.msg
                {
                    decoded.push((seq, dst, tasks));
                }
            }
            continue;
        }
        batch.begin(me as u32, round, *load);
        let mut payload = 0usize;
        for rec in out[dst].drain(..) {
            charge_send(fs, &rec);
            if record_dropped(fs, &rec, fmodel) {
                continue;
            }
            payload += batch.push(&rec.msg);
        }
        if batch.frames() == 0 {
            fs.sync_frames += 1;
        }
        let frame = batch.finish();
        // The batch header and per-frame length prefixes are physical
        // overhead on top of the logical frame bytes.
        fs.bytes_sent += (frame.len() - payload) as u64;
        fs.batches_sent += 1;
        match ep.send(dst, frame) {
            Ok(()) => {}
            Err(pcrlb_net::NetError::Closed) if churn => {
                // Unplanned departure: the peer is gone. Its shard is
                // taken over by the coordinator's membership sweep; we
                // just stop sending to it.
                fs.takeovers += 1;
            }
            Err(e) => panic!("net send failed: {e:?}"),
        }
    }

    let mut peers_done = 0usize;
    while peers_done < nodes.saturating_sub(1) {
        raw.clear();
        match ep.recv_burst(raw) {
            Ok(()) => {}
            Err(pcrlb_net::NetError::Closed) if churn => {
                // A peer died before delivering its watermark. Queued
                // frames were already drained (the transport surfaces
                // `Closed` only once its inbox is empty), so whatever
                // is still missing rides the coordinator's retained
                // copies. Stop waiting.
                fs.takeovers += ((nodes - 1) - peers_done) as u64;
                break;
            }
            Err(e) => panic!("net recv failed: {e:?}"),
        }
        for frame in raw.drain(..) {
            let view = codec::decode_batch(&frame).expect("undecodable batch on the wire");
            // The coordinator joins both broadcasts between rounds, so
            // no peer can be a round ahead of us: a mismatched
            // watermark is a protocol bug, not reordering.
            assert_eq!(view.round, round, "cross-round batch interleaving");
            fs.batches_received += 1;
            let mut payload = 0usize;
            for sub in view {
                let sub = sub.expect("corrupt batch payload");
                fs.record_received(sub.len());
                payload += sub.len();
                if let WireMsg::Transfer {
                    seq, dst, tasks, ..
                } = codec::decode(sub).expect("undecodable frame in batch")
                {
                    decoded.push((seq, dst, tasks));
                }
            }
            fs.bytes_received += (frame.len() - payload) as u64;
            peers_done += 1;
        }
    }
}

/// Lemma 8 charging rule: the sender pays for every frame at send
/// time, delivered or not — so the frame is charged before the
/// transport-level fault hook gets to discard it. Returns the logical
/// frame length.
fn charge_send(fs: &mut FrameStats, rec: &OutRec) -> usize {
    let len = codec::encoded_len(&rec.msg);
    fs.record_sent(len);
    if rec.control {
        fs.control_frames += 1;
    } else {
        fs.transfer_frames += 1;
        fs.payload_tasks += rec.tasks;
    }
    len
}

/// Transport-level fault hook: the same pure hash the logical layer
/// used, evaluated independently here. Returns `true` when the record
/// must be discarded instead of batched.
fn record_dropped(fs: &mut FrameStats, rec: &OutRec, fmodel: Option<&dyn FaultModel>) -> bool {
    if let (Some(ctx), Some(model)) = (&rec.fault, fmodel) {
        let phys = model.frame_dropped(ctx);
        debug_assert_eq!(
            phys, rec.logical_drop,
            "transport and logical fault decisions diverged"
        );
        if phys {
            fs.frames_dropped += 1;
            return true;
        }
    }
    false
}
