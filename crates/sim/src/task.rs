//! Tasks (the paper's "load units" / "balls").
//!
//! A task records where and when it was born so the simulator can report
//! the two per-task quantities the paper reasons about: *waiting time*
//! (Corollary 1: `O((log log n)^2)` w.h.p. for constant-length tasks)
//! and *locality* (§1.2: the algorithm "attempts to have the tasks
//! generated on the same processor together").

use crate::types::{ProcId, Step};

/// A unit of load. Kept at 24 bytes — the task slab is the largest
/// per-step memory stream at `n = 2^20`, so every byte here is paid on
/// each push and pop of the hot generate/consume kernel.
///
/// `origin` is stored as `u32` (machine sizes are bounded well below
/// `2^32`; ids themselves only encode 24 bits of processor). Use
/// [`Task::origin_proc`] where a [`ProcId`] is needed.
///
/// Tasks carry a `weight` (default 1) for the weighted extension in the
/// spirit of Berenbrink–Meyer auf der Heide–Schröder (SPAA'97): a
/// processor's *weighted load* is the sum of its tasks' weights, and
/// weighted balancing moves weight rather than task counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// Globally unique id (assigned monotonically by the world).
    pub id: u64,
    /// Step at which the task was generated.
    pub born: Step,
    /// Processor that generated the task (narrowed; see type docs).
    pub origin: u32,
    /// Work units this task represents (1 for the paper's unit tasks).
    pub weight: u32,
}

impl Task {
    /// Filler value for unused arena slots (see [`crate::queue`]): the
    /// task arena keeps every slab slot initialized, and ring slots
    /// beyond a queue's live length hold this placeholder. It is never
    /// observable through the queue API.
    pub(crate) const PAD: Task = Task {
        id: 0,
        born: 0,
        origin: 0,
        weight: 1,
    };

    /// Creates a unit-weight task born on `origin` at step `born`.
    pub fn new(id: u64, origin: ProcId, born: Step) -> Self {
        Task {
            id,
            born,
            origin: origin as u32,
            weight: 1,
        }
    }

    /// The generating processor as a [`ProcId`].
    #[inline]
    pub fn origin_proc(&self) -> ProcId {
        self.origin as ProcId
    }

    /// Returns a copy with the given weight (≥ 1).
    pub fn with_weight(mut self, weight: u32) -> Self {
        debug_assert!(weight >= 1, "zero-weight tasks are meaningless");
        self.weight = weight;
        self
    }

    /// Sojourn time if the task completes at `now`.
    pub fn waiting_time(&self, now: Step) -> u64 {
        now.saturating_sub(self.born)
    }
}

/// Record emitted when a task finishes (is consumed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The task that finished.
    pub task: Task,
    /// Processor that executed the task.
    pub executed_on: ProcId,
    /// Step at which it was consumed.
    pub finished: Step,
}

impl Completion {
    /// Steps the task spent in the system, inclusive of the birth step.
    pub fn sojourn(&self) -> u64 {
        self.task.waiting_time(self.finished)
    }

    /// True when the task ran on the processor that generated it — the
    /// locality property the paper advertises over balls-into-bins.
    pub fn ran_at_origin(&self) -> bool {
        self.executed_on == self.task.origin_proc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiting_time_is_elapsed_steps() {
        let t = Task::new(1, 3, 10);
        assert_eq!(t.waiting_time(10), 0);
        assert_eq!(t.waiting_time(25), 15);
    }

    #[test]
    fn waiting_time_saturates_on_clock_skew() {
        // Defensive: a transfer must never make time run backwards, but
        // if a caller misuses the API we saturate rather than wrap.
        let t = Task::new(1, 0, 10);
        assert_eq!(t.waiting_time(5), 0);
    }

    #[test]
    fn completion_locality() {
        let t = Task::new(7, 2, 0);
        let local = Completion {
            task: t,
            executed_on: 2,
            finished: 4,
        };
        let remote = Completion {
            task: t,
            executed_on: 9,
            finished: 4,
        };
        assert!(local.ran_at_origin());
        assert!(!remote.ran_at_origin());
        assert_eq!(local.sojourn(), 4);
    }

    #[test]
    fn task_is_small() {
        // Transfers move T/4 tasks at a time, and the hot kernel
        // streams the whole slab every step: keep tasks at 24 bytes.
        assert!(std::mem::size_of::<Task>() <= 24);
    }

    #[test]
    fn default_weight_is_one_and_with_weight_overrides() {
        let t = Task::new(1, 0, 0);
        assert_eq!(t.weight, 1);
        let heavy = t.with_weight(7);
        assert_eq!(heavy.weight, 7);
        assert_eq!(heavy.id, t.id);
    }
}
