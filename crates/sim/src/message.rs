//! Message accounting.
//!
//! The paper's headline trade-off is *communication vs. maximum load*:
//! parallel balls-into-bins games spend `Θ(n)` messages per step, while
//! the threshold algorithm spends `O(n / (log n)^{log log n - 1})`
//! messages per whole phase. Every strategy in this workspace therefore
//! routes its communication through a [`MessageLedger`] so experiments
//! E8/E11 can compare message counts like-for-like.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Classification of control messages exchanged by balancing protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Collision-protocol query ("can you take a request?").
    Query,
    /// Collision-protocol accept answer.
    Accept,
    /// Id message from an applicative processor to the request's boss.
    IdMessage,
    /// Generic probe used by baseline strategies (load enquiries,
    /// random-seeking probes, ball placement messages, ...).
    Probe,
    /// Answer to a probe carrying load information.
    LoadReply,
}

/// Cumulative message counters. Cheap to copy; subtraction produces the
/// per-window counts used by the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// Collision-protocol queries sent.
    pub queries: u64,
    /// Collision-protocol accept answers sent.
    pub accepts: u64,
    /// Id messages sent to request originators.
    pub id_messages: u64,
    /// Baseline probe messages sent.
    pub probes: u64,
    /// Probe answers carrying load information.
    pub load_replies: u64,
    /// Number of balancing actions (bulk task moves).
    pub transfers: u64,
    /// Total tasks moved by those transfers.
    pub tasks_moved: u64,
    /// Control messages lost in flight by the fault layer. Every
    /// dropped message is *also* counted under its kind — the sender
    /// paid for it — so this is not part of [`control_total`].
    ///
    /// [`control_total`]: MessageStats::control_total
    pub dropped: u64,
}

impl MessageStats {
    /// All control messages (everything except the task payloads).
    ///
    /// # The Lemma 8 charging rule
    ///
    /// Lemma 8 bounds the number of messages the protocol **sends**
    /// per phase (`O(n/(log n)^{llog n − 1})`), so the ledger charges
    /// every control message exactly once, *at the sender, at send
    /// time* — delivery is irrelevant to the bound. Three corollaries
    /// keep all accounting layers consistent:
    ///
    /// 1. A message lost in flight stays counted under its kind here
    ///    (the sender paid for it); [`MessageStats::dropped`] is a
    ///    *subset annotation* over those counts, never an additional
    ///    term. Adding `dropped` to this sum would double-charge
    ///    losses and break every Lemma 8 comparison under faults.
    /// 2. Re-sends after a loss are new messages and are charged
    ///    again — which is exactly how the fault experiments observe
    ///    the `O(1/(1−p)²)` rounds-to-partner degradation.
    /// 3. The net runtime's physical layer obeys the same rule: each
    ///    record becomes one frame charged to its sender even when the
    ///    transport then drops it (`FrameStats::frames_dropped`
    ///    mirrors `dropped` one-for-one), so for protocol traffic
    ///    `frames == control_total() + transfers` and wire
    ///    measurements compare like-for-like with ledger
    ///    measurements. Batch frames are physical packaging and empty
    ///    sync batches are round-watermark overhead, not protocol
    ///    messages; both are excluded (tracked separately in
    ///    `FrameStats::batches_sent` / `FrameStats::sync_frames`).
    pub fn control_total(&self) -> u64 {
        self.queries + self.accepts + self.id_messages + self.probes + self.load_replies
    }

    /// Control messages plus one message per transfer (the paper counts
    /// a bulk move as a single communication, streamed or not).
    /// Follows the same charging rule as
    /// [`MessageStats::control_total`]; transfers are never dropped by
    /// the fault layer, so the transfer term needs no loss caveat.
    pub fn total(&self) -> u64 {
        self.control_total() + self.transfers
    }

    /// Control messages that actually arrived: the sent total minus
    /// in-flight losses. This is the *receiver-side* view; Lemma 8
    /// (and therefore [`MessageStats::control_total`]) uses the
    /// sender-side view.
    pub fn delivered_control(&self) -> u64 {
        self.control_total() - self.dropped
    }
}

impl Add for MessageStats {
    type Output = MessageStats;
    fn add(self, o: MessageStats) -> MessageStats {
        MessageStats {
            queries: self.queries + o.queries,
            accepts: self.accepts + o.accepts,
            id_messages: self.id_messages + o.id_messages,
            probes: self.probes + o.probes,
            load_replies: self.load_replies + o.load_replies,
            transfers: self.transfers + o.transfers,
            tasks_moved: self.tasks_moved + o.tasks_moved,
            dropped: self.dropped + o.dropped,
        }
    }
}

impl AddAssign for MessageStats {
    fn add_assign(&mut self, o: MessageStats) {
        *self = *self + o;
    }
}

impl Sub for MessageStats {
    type Output = MessageStats;
    /// Windowed difference; panics in debug builds if `o` is not an
    /// earlier snapshot of the same ledger.
    fn sub(self, o: MessageStats) -> MessageStats {
        MessageStats {
            queries: self.queries - o.queries,
            accepts: self.accepts - o.accepts,
            id_messages: self.id_messages - o.id_messages,
            probes: self.probes - o.probes,
            load_replies: self.load_replies - o.load_replies,
            transfers: self.transfers - o.transfers,
            tasks_moved: self.tasks_moved - o.tasks_moved,
            dropped: self.dropped - o.dropped,
        }
    }
}

impl fmt::Display for MessageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queries={} accepts={} ids={} probes={} replies={} transfers={} tasks_moved={} dropped={}",
            self.queries,
            self.accepts,
            self.id_messages,
            self.probes,
            self.load_replies,
            self.transfers,
            self.tasks_moved,
            self.dropped
        )
    }
}

/// The world's single message ledger.
#[derive(Debug, Clone, Default)]
pub struct MessageLedger {
    stats: MessageStats,
}

impl MessageLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` messages of `kind`.
    #[inline]
    pub fn record(&mut self, kind: MessageKind, count: u64) {
        match kind {
            MessageKind::Query => self.stats.queries += count,
            MessageKind::Accept => self.stats.accepts += count,
            MessageKind::IdMessage => self.stats.id_messages += count,
            MessageKind::Probe => self.stats.probes += count,
            MessageKind::LoadReply => self.stats.load_replies += count,
        }
    }

    /// Records one bulk transfer of `tasks` tasks.
    #[inline]
    pub fn record_transfer(&mut self, tasks: u64) {
        self.stats.transfers += 1;
        self.stats.tasks_moved += tasks;
    }

    /// Records `count` control messages lost in flight (in addition to
    /// their per-kind send counts).
    #[inline]
    pub fn record_dropped(&mut self, count: u64) {
        self.stats.dropped += count;
    }

    /// Current cumulative counters (copy; use subtraction for windows).
    #[inline]
    pub fn snapshot(&self) -> MessageStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_by_kind() {
        let mut l = MessageLedger::new();
        l.record(MessageKind::Query, 5);
        l.record(MessageKind::Accept, 2);
        l.record(MessageKind::IdMessage, 1);
        l.record(MessageKind::Probe, 7);
        l.record(MessageKind::LoadReply, 3);
        l.record_transfer(10);
        l.record_dropped(4);
        let s = l.snapshot();
        assert_eq!(s.queries, 5);
        assert_eq!(s.accepts, 2);
        assert_eq!(s.id_messages, 1);
        assert_eq!(s.probes, 7);
        assert_eq!(s.load_replies, 3);
        assert_eq!(s.transfers, 1);
        assert_eq!(s.tasks_moved, 10);
        assert_eq!(s.dropped, 4);
        // Dropped messages are already counted under their kind; they
        // must not inflate the totals (the Lemma 8 charging rule).
        assert_eq!(s.control_total(), 18);
        assert_eq!(s.total(), 19);
        assert_eq!(s.delivered_control(), 14);
    }

    #[test]
    fn windowed_difference() {
        let mut l = MessageLedger::new();
        l.record(MessageKind::Query, 3);
        let before = l.snapshot();
        l.record(MessageKind::Query, 4);
        l.record_transfer(2);
        let window = l.snapshot() - before;
        assert_eq!(window.queries, 4);
        assert_eq!(window.transfers, 1);
        assert_eq!(window.tasks_moved, 2);
    }

    #[test]
    fn stats_add() {
        let a = MessageStats {
            queries: 1,
            accepts: 2,
            ..Default::default()
        };
        let b = MessageStats {
            queries: 10,
            tasks_moved: 5,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.queries, 11);
        assert_eq!(c.accepts, 2);
        assert_eq!(c.tasks_moved, 5);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn display_is_readable() {
        let s = MessageStats {
            queries: 1,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("queries=1"));
    }
}
