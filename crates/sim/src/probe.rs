//! Composable observers for simulation runs.
//!
//! A [`Probe`] watches a run from the outside: the
//! [`crate::runner::Runner`] invokes it after every engine step (and
//! forwards any [`PhaseReport`]s / [`crate::trace::Event`]s the strategy
//! emitted during that step), then collects a [`ProbeOutput`] at the
//! end. Probes replace the hand-rolled observation closures that used
//! to be duplicated across every experiment, bench, and example: each
//! §4 measurement (worst max-load after warm-up, load histograms,
//! message rates, sojourn tails, per-phase match statistics) is a stock
//! probe here, registered once and reused everywhere.
//!
//! Probes are deliberately *passive* — they receive `&World` and cannot
//! mutate the simulation — with one escape hatch: a probe may request
//! early termination via [`Probe::stop_requested`] (used by recovery
//! experiments that stop once the spike has drained).

use crate::message::MessageStats;
use crate::trace::Event;
use crate::types::Step;
use crate::world::World;
use pcrlb_net::FrameStats;

/// What happened in one balancing phase. Emitted by phase-based
/// strategies through [`World::emit_phase`] and delivered to probes via
/// [`Probe::on_phase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseReport {
    /// Phase index.
    pub phase: u64,
    /// Step at which the phase began.
    pub start_step: Step,
    /// Heavy processors at the boundary.
    pub heavy: usize,
    /// Light processors at the boundary.
    pub light: usize,
    /// Heavy processors matched to a partner (incl. pre-round matches).
    pub matched: usize,
    /// Heavy processors that exhausted the tree depth unmatched.
    pub failed: usize,
    /// Collision-game requests sent during the phase.
    pub requests: u64,
    /// Collision games (tree levels) played during the phase.
    pub games: u64,
    /// Control messages spent during the phase.
    pub messages: u64,
    /// Collision-game rounds executed during the phase (including
    /// wasted ones — Lemma 8 charges each round whether or not it
    /// makes progress).
    pub rounds: u64,
    /// Rounds in which no accept was delivered (total collisions, or
    /// every accept lost in flight).
    pub wasted_rounds: u64,
    /// Control messages the fault layer dropped during the phase.
    pub dropped: u64,
    /// Heavy processors re-entering the search after a failed phase
    /// (retry-with-backoff bookkeeping; 0 unless enabled).
    pub retries: u64,
}

/// The result a probe hands back when the run ends.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeOutput {
    /// From [`MaxLoadProbe`].
    MaxLoad {
        /// Worst max load observed after warm-up.
        worst: usize,
        /// Worst max *weighted* load observed after warm-up.
        worst_weighted: u64,
        /// Steps that contributed (i.e. post-warm-up steps).
        steps_observed: u64,
    },
    /// From [`LoadSnapshotProbe`].
    LoadHistogram {
        /// `counts[k]` = processor-instants observed holding load `k`
        /// (last bucket aggregates overflow).
        counts: Vec<u64>,
        /// Snapshot instants taken.
        samples: u64,
        /// Sum over instants of the system's total load.
        load_sum: u64,
    },
    /// From [`MessageRateProbe`].
    MessageRate {
        /// Messages accumulated during the observed window.
        window: MessageStats,
        /// Steps in the window.
        steps: u64,
        /// Collision-game rounds reported by the strategy's phase
        /// reports during the window (0 for non-phase strategies or
        /// unobserved runs).
        game_rounds: u64,
        /// Of those, rounds that delivered no accept.
        wasted_rounds: u64,
        /// Physical frame/byte traffic during the window. `Some` only
        /// on the net backend, where the counts come from frames that
        /// actually moved through a transport; `None` on shared-memory
        /// backends (which is what keeps their reports bit-identical
        /// to historic ones).
        frames: Option<FrameStats>,
    },
    /// From [`SojournTailProbe`].
    SojournTail {
        /// Tasks completed.
        count: u64,
        /// Mean sojourn time.
        mean: f64,
        /// Largest sojourn observed.
        max: u64,
        /// Median sojourn.
        p50: u64,
        /// 99th-percentile sojourn.
        p99: u64,
        /// 99.9th-percentile sojourn.
        p999: u64,
        /// Fraction of tasks executed where they were generated.
        locality: f64,
    },
    /// From [`SojournProbe`] — the service-level latency summary,
    /// computed from the streaming log-bucketed histogram (bounded
    /// relative error at every magnitude; see
    /// [`crate::latency::LatencyHist`]).
    Sojourn {
        /// Tasks completed.
        count: u64,
        /// Mean sojourn time (steps).
        mean: f64,
        /// Median sojourn (log-bucket upper bound).
        p50: u64,
        /// 99th-percentile sojourn.
        p99: u64,
        /// 99.9th-percentile sojourn.
        p999: u64,
        /// Exact largest sojourn observed.
        pmax: u64,
        /// Arrivals dropped by an `Admission::Shed` policy.
        shed: u64,
        /// Arrival-steps spent in the `Admission::Defer` backlog.
        deferred: u64,
    },
    /// From [`PhaseProbe`].
    Phases(Vec<PhaseReport>),
    /// From [`TraceProbe`].
    Events(Vec<Event>),
    /// From [`RecoveryProbe`].
    Recovery {
        /// First post-spike step at which max load fell to the
        /// threshold, `None` if it never did.
        recovered_at: Option<Step>,
    },
    /// From [`SeriesProbe`].
    Series(Vec<f64>),
    /// From [`MembershipProbe`]. Every field is a pure function of the
    /// churn schedule (plus the run's deterministic evacuations), so
    /// this output is bit-identical across backends and safe inside
    /// the compared `RunReport::probes`.
    Membership {
        /// Membership transitions (epoch bumps) observed.
        epochs: u64,
        /// Tasks evacuated off departing processors.
        evacuated_tasks: u64,
        /// Processor departures summed over all transitions.
        departures: u64,
        /// Processor joins summed over all transitions.
        joins: u64,
        /// Smallest live count seen.
        min_active: usize,
        /// Largest live count seen.
        max_active: usize,
        /// Live count at run end.
        final_active: usize,
    },
    /// From [`FaultProbe`].
    Faults {
        /// Control messages lost in flight over the run.
        dropped_messages: u64,
        /// Collision-game rounds that delivered no accept.
        wasted_rounds: u64,
        /// Heavy-processor search retries after failed phases.
        retries: u64,
        /// Crash transitions (alive → down) observed.
        crash_events: u64,
        /// Recovery transitions (down → alive) observed.
        recover_events: u64,
        /// Processor-steps spent crashed.
        crashed_steps: u64,
        /// Mean downtime per completed outage, in steps (0 when no
        /// outage completed).
        mean_downtime: f64,
    },
}

/// A passive observer of a simulation run.
///
/// Lifecycle, driven by [`crate::runner::Runner`]: `on_run_start` once,
/// then per step `on_phase`* / `on_event`* / `on_step` (strategy
/// observations first, in emission order), then `on_run_end` once, then
/// `finish`. Multiple probes see each step exactly once, in
/// registration order.
pub trait Probe {
    /// Stable name identifying this probe in a
    /// [`crate::runner::RunReport`].
    fn name(&self) -> &'static str;

    /// Called once before the first step, with the initial world.
    fn on_run_start(&mut self, _world: &World) {}

    /// Called after every completed engine step.
    fn on_step(&mut self, world: &World);

    /// Called for each phase report the strategy emitted this step.
    fn on_phase(&mut self, _report: &PhaseReport) {}

    /// Called for each trace event the strategy emitted this step.
    fn on_event(&mut self, _event: &Event) {}

    /// When any registered probe returns `true`, the runner stops the
    /// run early (after the current step).
    fn stop_requested(&self) -> bool {
        false
    }

    /// Called once after the last step, with the final world.
    fn on_run_end(&mut self, _world: &World) {}

    /// Consumes the probe, producing its output.
    fn finish(self: Box<Self>) -> ProbeOutput;
}

/// Tracks the worst maximum (and maximum weighted) load after an
/// optional warm-up — the §4 "max load at an arbitrary fixed time"
/// measurement used by most experiments.
#[derive(Debug, Clone, Default)]
pub struct MaxLoadProbe {
    warmup: u64,
    seen: u64,
    worst: usize,
    worst_weighted: u64,
    observed: u64,
}

impl MaxLoadProbe {
    /// Observes every step.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ignores the first `warmup` steps (mixing time).
    pub fn after_warmup(warmup: u64) -> Self {
        MaxLoadProbe {
            warmup,
            ..Self::default()
        }
    }

    /// Worst max load so far (readable mid-run through
    /// [`crate::runner::Runner::run_detailed`] is not possible — probes
    /// are consumed — so this is mainly for hand-driven use).
    pub fn worst(&self) -> usize {
        self.worst
    }
}

impl Probe for MaxLoadProbe {
    fn name(&self) -> &'static str {
        "max_load"
    }

    fn on_step(&mut self, world: &World) {
        self.seen += 1;
        if self.seen > self.warmup {
            self.observed += 1;
            self.worst = self.worst.max(world.max_load());
            self.worst_weighted = self.worst_weighted.max(world.max_weighted_load());
        }
    }

    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::MaxLoad {
            worst: self.worst,
            worst_weighted: self.worst_weighted,
            steps_observed: self.observed,
        }
    }
}

/// Histograms per-processor loads at a fixed cadence after warm-up —
/// the Lemma 2 steady-state measurement (E2).
#[derive(Debug, Clone)]
pub struct LoadSnapshotProbe {
    cadence: u64,
    warmup: u64,
    seen: u64,
    counts: Vec<u64>,
    samples: u64,
    load_sum: u64,
    /// Probe-owned load snapshot buffer, refilled in place via
    /// [`World::loads_into`] each sample — the hot sampling path
    /// allocates nothing after the first snapshot.
    scratch: Vec<usize>,
}

impl LoadSnapshotProbe {
    /// Samples every `cadence` steps (≥ 1) once `warmup` steps have
    /// passed. Histogram buckets grow on demand up to `cap` (overflow
    /// aggregates in the last bucket).
    pub fn new(cadence: u64, warmup: u64, cap: usize) -> Self {
        LoadSnapshotProbe {
            cadence: cadence.max(1),
            warmup,
            seen: 0,
            counts: vec![0; cap.max(2)],
            samples: 0,
            load_sum: 0,
            scratch: Vec::new(),
        }
    }
}

impl Probe for LoadSnapshotProbe {
    fn name(&self) -> &'static str {
        "load_snapshot"
    }

    fn on_step(&mut self, world: &World) {
        self.seen += 1;
        if self.seen <= self.warmup || !(self.seen - self.warmup).is_multiple_of(self.cadence) {
            return;
        }
        let cap = self.counts.len() - 1;
        world.loads_into(&mut self.scratch);
        let mut total = 0u64;
        for &load in &self.scratch {
            self.counts[load.min(cap)] += 1;
            total += load as u64;
        }
        self.samples += 1;
        self.load_sum += total;
    }

    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::LoadHistogram {
            counts: self.counts,
            samples: self.samples,
            load_sum: self.load_sum,
        }
    }
}

/// Measures message traffic over the run (E6): the difference between
/// the ledger at start and end, normalised by steps by the consumer.
/// Also accumulates collision-game round counts from phase reports, so
/// message rates can be normalised by *protocol time* — a wasted round
/// costs a round of the schedule even though it moved nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct MessageRateProbe {
    start: MessageStats,
    end: MessageStats,
    net_start: Option<FrameStats>,
    net_end: Option<FrameStats>,
    steps: u64,
    game_rounds: u64,
    wasted_rounds: u64,
}

impl MessageRateProbe {
    /// Measures from the current ledger state onward.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Probe for MessageRateProbe {
    fn name(&self) -> &'static str {
        "message_rate"
    }

    fn on_run_start(&mut self, world: &World) {
        self.start = world.messages();
        self.net_start = world.net_frames();
    }

    fn on_step(&mut self, _world: &World) {
        self.steps += 1;
    }

    fn on_phase(&mut self, report: &PhaseReport) {
        self.game_rounds += report.rounds;
        self.wasted_rounds += report.wasted_rounds;
    }

    fn on_run_end(&mut self, world: &World) {
        self.end = world.messages();
        self.net_end = world.net_frames();
    }

    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::MessageRate {
            window: self.end - self.start,
            steps: self.steps,
            game_rounds: self.game_rounds,
            wasted_rounds: self.wasted_rounds,
            frames: match (self.net_end, self.net_start) {
                (Some(end), Some(start)) => Some(end - start),
                (end, _) => end,
            },
        }
    }
}

/// Observes the fault layer (dropped messages, wasted rounds, retries,
/// crash/recovery dynamics). Crash statistics are computed by querying
/// the world's pure fault model per step, so the probe needs no help
/// from the execution backends; message-level counters arrive through
/// the strategy's phase reports.
#[derive(Debug, Clone, Default)]
pub struct FaultProbe {
    crashed: Vec<bool>,
    down_since: Vec<Step>,
    crash_events: u64,
    recover_events: u64,
    crashed_steps: u64,
    downtime_sum: u64,
    dropped: u64,
    wasted_rounds: u64,
    retries: u64,
}

impl FaultProbe {
    /// Builds the probe; sizes itself at run start.
    pub fn new() -> Self {
        Self::default()
    }

    fn observe(&mut self, world: &World, step: Step) {
        let model = world.fault_model();
        for p in 0..self.crashed.len() {
            let down = model.is_crashed(p, step);
            if down {
                self.crashed_steps += 1;
            }
            if down != self.crashed[p] {
                if down {
                    self.crash_events += 1;
                    self.down_since[p] = step;
                } else {
                    self.recover_events += 1;
                    self.downtime_sum += step - self.down_since[p];
                }
                self.crashed[p] = down;
            }
        }
    }
}

impl Probe for FaultProbe {
    fn name(&self) -> &'static str {
        "faults"
    }

    fn on_run_start(&mut self, world: &World) {
        self.crashed = vec![false; world.n()];
        self.down_since = vec![0; world.n()];
    }

    fn on_step(&mut self, world: &World) {
        if !world.faults_enabled() {
            return;
        }
        // The step that just executed is `step() - 1` (the engine ticks
        // before probes run).
        let step = world.step().saturating_sub(1);
        self.observe(world, step);
    }

    fn on_phase(&mut self, report: &PhaseReport) {
        self.dropped += report.dropped;
        self.wasted_rounds += report.wasted_rounds;
        self.retries += report.retries;
    }

    fn on_run_end(&mut self, world: &World) {
        // Close outages still open at the end of the run.
        let step = world.step();
        for p in 0..self.crashed.len() {
            if self.crashed[p] {
                self.recover_events += 1;
                self.downtime_sum += step - self.down_since[p];
                self.crashed[p] = false;
            }
        }
    }

    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::Faults {
            dropped_messages: self.dropped,
            wasted_rounds: self.wasted_rounds,
            retries: self.retries,
            crash_events: self.crash_events,
            recover_events: self.recover_events,
            crashed_steps: self.crashed_steps,
            mean_downtime: if self.recover_events == 0 {
                0.0
            } else {
                self.downtime_sum as f64 / self.recover_events as f64
            },
        }
    }
}

/// Summarises the sojourn-time distribution at the end of the run (E7
/// waiting-time experiment): mean, max, and tail quantiles from the
/// world's completion histogram.
#[derive(Debug, Clone, Copy, Default)]
pub struct SojournTailProbe {
    count: u64,
    mean: f64,
    max: u64,
    p50: u64,
    p99: u64,
    p999: u64,
    locality: f64,
}

impl SojournTailProbe {
    /// Builds the probe; all statistics are computed at run end.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Smallest `w` with `cum_count(w) >= q * count` (histogram quantile;
/// the overflow bucket reports as its index).
fn hist_quantile(hist: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = (q * count as f64).ceil() as u64;
    let mut cum = 0u64;
    for (w, &c) in hist.iter().enumerate() {
        cum += c;
        if cum >= target {
            return w as u64;
        }
    }
    hist.len().saturating_sub(1) as u64
}

impl Probe for SojournTailProbe {
    fn name(&self) -> &'static str {
        "sojourn_tail"
    }

    fn on_step(&mut self, _world: &World) {}

    fn on_run_end(&mut self, world: &World) {
        let c = world.completions();
        self.count = c.count;
        self.mean = c.sojourn_mean();
        self.max = c.sojourn_max;
        self.p50 = hist_quantile(&c.hist, c.count, 0.50);
        self.p99 = hist_quantile(&c.hist, c.count, 0.99);
        self.p999 = hist_quantile(&c.hist, c.count, 0.999);
        self.locality = c.locality();
    }

    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::SojournTail {
            count: self.count,
            mean: self.mean,
            max: self.max,
            p50: self.p50,
            p99: self.p99,
            p999: self.p999,
            locality: self.locality,
        }
    }
}

/// Summarises the service-level latency picture at run end (E23): tail
/// quantiles from the *log-bucketed* sojourn histogram — which, unlike
/// [`SojournTailProbe`]'s linear histogram, has no overflow bucket, so
/// p999/pmax stay meaningful when queues explode at ρ ≥ 1 — plus the
/// back-pressure counters (shed arrivals, deferred arrival-steps).
#[derive(Debug, Clone, Copy, Default)]
pub struct SojournProbe {
    count: u64,
    mean: f64,
    p50: u64,
    p99: u64,
    p999: u64,
    pmax: u64,
    shed: u64,
    deferred: u64,
}

impl SojournProbe {
    /// Builds the probe; all statistics are computed at run end.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Probe for SojournProbe {
    fn name(&self) -> &'static str {
        "sojourn"
    }

    fn on_step(&mut self, _world: &World) {}

    fn on_run_end(&mut self, world: &World) {
        let lat = &world.completions().latency;
        self.count = lat.count();
        self.mean = lat.mean();
        self.p50 = lat.p50();
        self.p99 = lat.p99();
        self.p999 = lat.p999();
        self.pmax = lat.pmax();
        self.shed = world.total_shed();
        self.deferred = world.total_deferred();
    }

    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::Sojourn {
            count: self.count,
            mean: self.mean,
            p50: self.p50,
            p99: self.p99,
            p999: self.p999,
            pmax: self.pmax,
            shed: self.shed,
            deferred: self.deferred,
        }
    }
}

/// Collects every [`PhaseReport`] the strategy emits (E5 phase
/// dynamics). Requires the strategy to publish reports through
/// [`World::emit_phase`].
#[derive(Debug, Clone, Default)]
pub struct PhaseProbe {
    reports: Vec<PhaseReport>,
}

impl PhaseProbe {
    /// Builds an empty collector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Probe for PhaseProbe {
    fn name(&self) -> &'static str {
        "phases"
    }

    fn on_step(&mut self, _world: &World) {}

    fn on_phase(&mut self, report: &PhaseReport) {
        self.reports.push(*report);
    }

    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::Phases(self.reports)
    }
}

/// Collects strategy trace events, bounded to the first `cap` (further
/// events are dropped silently — same discipline as
/// [`crate::trace::Trace`]).
#[derive(Debug, Clone)]
pub struct TraceProbe {
    cap: usize,
    events: Vec<Event>,
}

impl TraceProbe {
    /// Keeps at most `cap` events.
    pub fn new(cap: usize) -> Self {
        TraceProbe {
            cap,
            events: Vec::new(),
        }
    }
}

impl Probe for TraceProbe {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn on_step(&mut self, _world: &World) {}

    fn on_event(&mut self, event: &Event) {
        if self.events.len() < self.cap {
            self.events.push(*event);
        }
    }

    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::Events(self.events)
    }
}

/// Watches for the system's max load to drain to a threshold (E4
/// adversarial recovery) and optionally stops the run once it has.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryProbe {
    threshold: usize,
    stop_on_recovery: bool,
    recovered_at: Option<Step>,
}

impl RecoveryProbe {
    /// Reports the first step at which `max_load <= threshold`.
    pub fn new(threshold: usize) -> Self {
        RecoveryProbe {
            threshold,
            stop_on_recovery: false,
            recovered_at: None,
        }
    }

    /// Additionally ends the run at that step.
    pub fn stop_on_recovery(mut self) -> Self {
        self.stop_on_recovery = true;
        self
    }
}

impl Probe for RecoveryProbe {
    fn name(&self) -> &'static str {
        "recovery"
    }

    fn on_step(&mut self, world: &World) {
        if self.recovered_at.is_none() && world.max_load() <= self.threshold {
            self.recovered_at = Some(world.step());
        }
    }

    fn stop_requested(&self) -> bool {
        self.stop_on_recovery && self.recovered_at.is_some()
    }

    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::Recovery {
            recovered_at: self.recovered_at,
        }
    }
}

/// Watches the elastic-membership state (E25): epoch transitions,
/// evacuated tasks, and the live-count envelope over the run. All
/// counters come from the world's deterministic membership state, so
/// the output is identical on every backend for the same schedule —
/// which is exactly what lets churn runs keep the bit-identical
/// `RunReport` contract with this probe attached.
///
/// Without a churn schedule the probe reports a quiet cluster
/// (`epochs == 0`, `min == max == final == n`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MembershipProbe {
    epochs: u64,
    evacuated_tasks: u64,
    departures: u64,
    joins: u64,
    min_active: usize,
    max_active: usize,
    final_active: usize,
}

impl MembershipProbe {
    /// Builds the probe; it sizes itself at run start.
    pub fn new() -> Self {
        Self::default()
    }

    fn observe(&mut self, world: &World) {
        match world.membership() {
            Some(ms) => {
                self.epochs = ms.view().epoch;
                self.evacuated_tasks = ms.evacuated_tasks;
                self.departures = ms.departures;
                self.joins = ms.joins;
                self.min_active = ms.min_active;
                self.max_active = ms.max_active;
                self.final_active = ms.view().active;
            }
            None => {
                self.min_active = world.n();
                self.max_active = world.n();
                self.final_active = world.n();
            }
        }
    }
}

impl Probe for MembershipProbe {
    fn name(&self) -> &'static str {
        "membership"
    }

    fn on_run_start(&mut self, world: &World) {
        self.observe(world);
    }

    fn on_step(&mut self, world: &World) {
        self.observe(world);
    }

    fn on_run_end(&mut self, world: &World) {
        self.observe(world);
    }

    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::Membership {
            epochs: self.epochs,
            evacuated_tasks: self.evacuated_tasks,
            departures: self.departures,
            joins: self.joins,
            min_active: self.min_active,
            max_active: self.max_active,
            final_active: self.final_active,
        }
    }
}

/// Records an arbitrary per-step scalar — the escape hatch for one-off
/// measurements (examples plot time series of whatever they like).
pub struct SeriesProbe {
    name: &'static str,
    f: Box<dyn Fn(&World) -> f64>,
    series: Vec<f64>,
}

impl SeriesProbe {
    /// Evaluates `f` after every step, collecting the series.
    pub fn new(f: impl Fn(&World) -> f64 + 'static) -> Self {
        Self::named("series", f)
    }

    /// Same, under a custom report name.
    pub fn named(name: &'static str, f: impl Fn(&World) -> f64 + 'static) -> Self {
        SeriesProbe {
            name,
            f: Box::new(f),
            series: Vec::new(),
        }
    }
}

impl Probe for SeriesProbe {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_step(&mut self, world: &World) {
        self.series.push((self.f)(world));
    }

    fn finish(self: Box<Self>) -> ProbeOutput {
        ProbeOutput::Series(self.series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_load_probe_respects_warmup() {
        let mut w = World::new(2, 1);
        let mut p = MaxLoadProbe::after_warmup(2);
        w.inject(0, 10);
        p.on_step(&w); // step 1: warm-up, ignored
        w.annihilate(0, 10);
        w.inject(0, 3);
        p.on_step(&w); // step 2: warm-up, ignored
        p.on_step(&w); // step 3: observed, max = 3
        assert_eq!(p.worst(), 3);
        let out = Box::new(p).finish();
        assert_eq!(
            out,
            ProbeOutput::MaxLoad {
                worst: 3,
                worst_weighted: 3,
                steps_observed: 1
            }
        );
    }

    #[test]
    fn load_snapshot_probe_samples_on_cadence() {
        let mut w = World::new(3, 1);
        w.inject(1, 2);
        let mut p = LoadSnapshotProbe::new(2, 1, 8);
        p.on_step(&w); // 1: warm-up
        p.on_step(&w); // 2: (2-1) % 2 == 1 → skip
        p.on_step(&w); // 3: (3-1) % 2 == 0 → sample
        match Box::new(p).finish() {
            ProbeOutput::LoadHistogram {
                counts,
                samples,
                load_sum,
            } => {
                assert_eq!(samples, 1);
                assert_eq!(load_sum, 2);
                assert_eq!(counts[0], 2); // two idle processors
                assert_eq!(counts[2], 1); // one holding 2
            }
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn message_rate_probe_windows_the_ledger() {
        let mut w = World::new(2, 1);
        w.inject(0, 5);
        w.transfer(0, 1, 2); // pre-run traffic, must be excluded
        let mut p = MessageRateProbe::new();
        p.on_run_start(&w);
        w.transfer(0, 1, 1);
        p.on_step(&w);
        p.on_run_end(&w);
        match Box::new(p).finish() {
            ProbeOutput::MessageRate { window, steps, .. } => {
                assert_eq!(steps, 1);
                assert_eq!(window.transfers, 1);
                assert_eq!(window.tasks_moved, 1);
            }
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn message_rate_probe_accumulates_game_rounds() {
        let mut p = MessageRateProbe::new();
        p.on_phase(&PhaseReport {
            rounds: 5,
            wasted_rounds: 2,
            ..PhaseReport::default()
        });
        p.on_phase(&PhaseReport {
            rounds: 3,
            ..PhaseReport::default()
        });
        match Box::new(p).finish() {
            ProbeOutput::MessageRate {
                game_rounds,
                wasted_rounds,
                ..
            } => {
                assert_eq!(game_rounds, 8);
                assert_eq!(wasted_rounds, 2);
            }
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn fault_probe_tracks_crash_transitions() {
        use pcrlb_faults::FaultModel;
        use std::sync::Arc;

        /// Processor 1 is down for steps 2..4, everyone else up.
        #[derive(Debug)]
        struct Window;
        impl FaultModel for Window {
            fn name(&self) -> &'static str {
                "window"
            }
            fn is_crashed(&self, p: usize, step: u64) -> bool {
                p == 1 && (2..4).contains(&step)
            }
        }

        let mut w = World::new(3, 1);
        w.set_fault_model(Arc::new(Window));
        let mut p = FaultProbe::new();
        p.on_run_start(&w);
        for _ in 0..6 {
            w.tick();
            p.on_step(&w);
        }
        p.on_run_end(&w);
        p.on_phase(&PhaseReport {
            dropped: 7,
            wasted_rounds: 1,
            retries: 2,
            ..PhaseReport::default()
        });
        match Box::new(p).finish() {
            ProbeOutput::Faults {
                dropped_messages,
                wasted_rounds,
                retries,
                crash_events,
                recover_events,
                crashed_steps,
                mean_downtime,
            } => {
                assert_eq!(dropped_messages, 7);
                assert_eq!(wasted_rounds, 1);
                assert_eq!(retries, 2);
                assert_eq!(crash_events, 1);
                assert_eq!(recover_events, 1);
                assert_eq!(crashed_steps, 2);
                assert!((mean_downtime - 2.0).abs() < 1e-12);
            }
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn hist_quantiles() {
        // 10 completions: sojourns 0..=9, one each.
        let hist = vec![1u64; 10];
        assert_eq!(hist_quantile(&hist, 10, 0.5), 4);
        assert_eq!(hist_quantile(&hist, 10, 0.99), 9);
        assert_eq!(hist_quantile(&hist, 10, 1.0), 9);
        assert_eq!(hist_quantile(&[], 0, 0.5), 0);
    }

    #[test]
    fn recovery_probe_stops_once_drained() {
        let mut w = World::new(2, 1);
        w.inject(0, 4);
        let mut p = RecoveryProbe::new(1).stop_on_recovery();
        p.on_step(&w);
        assert!(!p.stop_requested());
        w.annihilate(0, 3);
        w.tick();
        p.on_step(&w);
        assert!(p.stop_requested());
        assert_eq!(
            Box::new(p).finish(),
            ProbeOutput::Recovery {
                recovered_at: Some(1)
            }
        );
    }

    #[test]
    fn series_probe_records_every_step() {
        let mut w = World::new(2, 1);
        let mut p = SeriesProbe::named("total", |w| w.total_load() as f64);
        p.on_step(&w);
        w.inject(0, 2);
        p.on_step(&w);
        assert_eq!(Box::new(p).finish(), ProbeOutput::Series(vec![0.0, 2.0]));
    }

    #[test]
    fn membership_probe_tracks_transitions() {
        use crate::membership::ChurnSpec;
        let mut w = World::new(8, 1);
        w.install_churn(ChurnSpec::parse("step:1,4").unwrap());
        let mut p = MembershipProbe::new();
        p.on_run_start(&w);
        w.sync_membership(); // step 0: quiet
        p.on_step(&w);
        w.tick();
        w.sync_membership(); // step 1: shrink to 4
        p.on_step(&w);
        p.on_run_end(&w);
        match Box::new(p).finish() {
            ProbeOutput::Membership {
                epochs,
                departures,
                joins,
                min_active,
                max_active,
                final_active,
                ..
            } => {
                assert_eq!(epochs, 1);
                assert_eq!(departures, 4);
                assert_eq!(joins, 0);
                assert_eq!(min_active, 4);
                assert_eq!(max_active, 8);
                assert_eq!(final_active, 4);
            }
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn membership_probe_quiet_without_churn() {
        let w = World::new(8, 1);
        let mut p = MembershipProbe::new();
        p.on_run_start(&w);
        p.on_step(&w);
        p.on_run_end(&w);
        match Box::new(p).finish() {
            ProbeOutput::Membership {
                epochs,
                min_active,
                max_active,
                final_active,
                ..
            } => {
                assert_eq!(epochs, 0);
                assert_eq!((min_active, max_active, final_active), (8, 8, 8));
            }
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn phase_and_trace_probes_collect_emissions() {
        let mut phases = PhaseProbe::new();
        let mut trace = TraceProbe::new(1);
        let r = PhaseReport {
            phase: 1,
            heavy: 4,
            ..PhaseReport::default()
        };
        phases.on_phase(&r);
        trace.on_event(&Event::SearchFailed { phase: 1, proc: 0 });
        trace.on_event(&Event::SearchFailed { phase: 1, proc: 1 }); // over cap
        assert_eq!(Box::new(phases).finish(), ProbeOutput::Phases(vec![r]));
        assert_eq!(
            Box::new(trace).finish(),
            ProbeOutput::Events(vec![Event::SearchFailed { phase: 1, proc: 0 }])
        );
    }
}
