//! Execution backends: *where* the per-processor sub-steps run.
//!
//! One engine step implements the paper's time-step decomposition (§5
//! remark: "a time step in our model actually consists of four steps"):
//! generate, consume, decide, move. Sub-steps 1–2 are embarrassingly
//! parallel — every processor only touches its own queue and its own
//! RNG stream — so the engine delegates them to an [`ExecBackend`]:
//!
//! * [`Sequential`] runs them on the calling thread;
//! * [`Threaded`] shards the processor array across OS threads.
//!
//! Both call the *same* per-shard kernel ([`drive_shard`]), so
//! sequential ≡ threaded determinism holds by construction: there is
//! exactly one implementation of the generate/consume loop, and the RNG
//! draw order per processor (generate count, per-task weights, consume
//! count) is fixed by that kernel regardless of scheduling.
//!
//! Sub-steps 3–4 (the balancing strategy) always run on the
//! coordinating thread — see [`crate::engine::Engine::step`] — which
//! mirrors how the paper serializes a phase's collision games into a
//! globally-consistent assignment.

use crate::model::LoadModel;
use crate::pool::WorkerPool;
use crate::processor::Processor;
use crate::rng::SimRng;
use crate::task::Completion;
use crate::types::Step;
use crate::world::{CompletionStats, World, DEFAULT_SOJOURN_HIST};
use pcrlb_faults::FaultModel;

/// The one and only generate/consume kernel (sub-steps 1–2), applied to
/// a contiguous shard of processors starting at index `start`.
///
/// Per processor the RNG draw order is: generate count, then one weight
/// per generated task, then consume count. Consumption is capped at the
/// post-generation load. Completions are recorded into `completions`,
/// which may be the world's own accumulator (sequential) or a per-shard
/// local merged afterwards (threaded) — the statistics are additive, so
/// the two are indistinguishable.
///
/// `faults` is `None` on the fault-free fast path. A crashed processor
/// is skipped entirely (its queue is frozen and its RNG stream
/// untouched, so the skip is identical on every backend); a stalled
/// one still generates but consumes nothing. Crash/stall predicates
/// are pure functions of `(processor, step)`, never RNG draws, which
/// is what keeps the three backends bit-identical under faults.
pub(crate) fn drive_shard<M: LoadModel>(
    start: usize,
    now: Step,
    procs: &mut [Processor],
    rngs: &mut [SimRng],
    model: &M,
    completions: &mut CompletionStats,
    faults: Option<&dyn FaultModel>,
) {
    for (off, (proc, rng)) in procs.iter_mut().zip(rngs.iter_mut()).enumerate() {
        let p = start + off;
        if let Some(f) = faults {
            if f.is_crashed(p, now) {
                continue;
            }
        }
        // Sub-step 1: generation.
        let g = model.generate(p, now, proc.load(), rng);
        for _ in 0..g {
            let w = model.task_weight(p, now, rng);
            proc.generate_weighted(now, w);
        }
        if let Some(f) = faults {
            if f.is_stalled(p, now) {
                continue;
            }
        }
        // Sub-step 2: consumption (capped at available load).
        let load = proc.load();
        let c = model.consume(p, now, load, rng).min(load);
        for _ in 0..c {
            if let Some(task) = proc.consume() {
                completions.record(&Completion {
                    task,
                    executed_on: p,
                    finished: now,
                });
            }
        }
    }
}

/// Executes the per-processor sub-steps (1–2) of one engine step.
///
/// The trait is generic over the load model so that [`Sequential`] can
/// serve any model while [`Threaded`] requires `Sync` (worker threads
/// share the model by reference).
pub trait ExecBackend<M: LoadModel> {
    /// Runs generation and consumption for every processor at the
    /// world's current step.
    fn run_substeps(&mut self, world: &mut World, model: &M);
}

/// Runs sub-steps on the calling thread. The default backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sequential;

impl<M: LoadModel> ExecBackend<M> for Sequential {
    fn run_substeps(&mut self, world: &mut World, model: &M) {
        let faults = world.active_faults();
        let (now, start, procs, rngs, completions) = world.whole_shard();
        drive_shard(
            start,
            now,
            procs,
            rngs,
            model,
            completions,
            faults.as_deref(),
        );
    }
}

/// Shards the processor array across `threads` OS threads (scoped;
/// clamped to at least 1). Produces bit-identical results to
/// [`Sequential`] for the same seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threaded {
    /// Number of worker threads.
    pub threads: usize,
}

impl<M: LoadModel + Sync> ExecBackend<M> for Threaded {
    fn run_substeps(&mut self, world: &mut World, model: &M) {
        let faults = world.active_faults();
        let faults = faults.as_deref();
        let (now, shards, completions) = world.shards(self.threads.max(1));
        let locals: Vec<CompletionStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|(start, procs, rngs)| {
                    scope.spawn(move || {
                        let mut local = CompletionStats::new(DEFAULT_SOJOURN_HIST);
                        drive_shard(start, now, procs, rngs, model, &mut local, faults);
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("simulation worker panicked"))
                .collect()
        });
        for local in &locals {
            completions.merge(local);
        }
    }
}

/// Runtime-selectable backend, used by [`crate::runner::Runner`] so the
/// execution mode is a value, not a type parameter.
///
/// `Backend` is a cheap *descriptor*; [`Backend::resolve`] turns it
/// into the owned execution state (which for [`Backend::Pooled`] means
/// spawning the persistent worker pool). The runner resolves once per
/// run, so the pool lives for the whole run and each step is a channel
/// dispatch rather than a thread spawn.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Backend {
    /// Run on the calling thread.
    #[default]
    Sequential,
    /// Spawn this many scoped OS threads *per step*. Kept as the
    /// baseline the persistent pool is benchmarked against.
    Threaded(usize),
    /// Run on a persistent pool of this many workers, spawned once per
    /// run ([`WorkerPool`]).
    Pooled(usize),
    /// Host a shard of processors per node thread and exchange all
    /// protocol traffic as real encoded frames over a transport
    /// (`pcrlb-net`): the in-process loopback when `tcp` is false, a
    /// localhost TCP group when true.
    ///
    /// The full message-passing semantics live in the net runtime,
    /// which only [`crate::runner::Runner`] drives (see
    /// `crate::net`). Plugging this descriptor straight into an
    /// [`crate::engine::Engine`] degrades to the scoped-thread path
    /// for sub-steps — bit-identical simulation results, but no frames
    /// move.
    Net {
        /// Number of node threads (each owning one processor shard).
        nodes: usize,
        /// Use the localhost TCP transport instead of loopback.
        tcp: bool,
    },
}

impl Backend {
    /// Human-readable backend name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Sequential => "sequential",
            Backend::Threaded(_) => "threaded",
            Backend::Pooled(_) => "pooled",
            Backend::Net { .. } => "net",
        }
    }

    /// Materializes the descriptor into owned execution state; for
    /// [`Backend::Pooled`] this spawns the worker pool.
    ///
    /// [`Backend::Net`] resolves to scoped threads here: a resolved
    /// backend only runs sub-steps, and the net runtime's wire layer
    /// is driven by [`crate::runner::Runner`], which intercepts `Net`
    /// *before* resolving.
    pub fn resolve(self) -> ResolvedBackend {
        match self {
            Backend::Sequential => ResolvedBackend::Sequential,
            Backend::Threaded(threads) => ResolvedBackend::Threaded(Threaded { threads }),
            Backend::Pooled(threads) => ResolvedBackend::Pooled(WorkerPool::new(threads)),
            Backend::Net { nodes, .. } => ResolvedBackend::Threaded(Threaded { threads: nodes }),
        }
    }
}

/// The descriptor itself also executes, for callers that plug a
/// `Backend` value straight into an [`crate::engine::Engine`]. Per-call
/// dispatch cannot persist workers, so [`Backend::Pooled`] degrades to
/// the scoped-thread path here (bit-identical results either way); use
/// [`Backend::resolve`] — as [`crate::runner::Runner`] does — to get
/// the persistent pool.
impl<M: LoadModel + Sync> ExecBackend<M> for Backend {
    fn run_substeps(&mut self, world: &mut World, model: &M) {
        match *self {
            Backend::Sequential => Sequential.run_substeps(world, model),
            Backend::Threaded(threads) | Backend::Pooled(threads) => {
                Threaded { threads }.run_substeps(world, model)
            }
            Backend::Net { nodes, .. } => Threaded { threads: nodes }.run_substeps(world, model),
        }
    }
}

/// Owned execution state produced by [`Backend::resolve`]: the
/// [`Backend::Pooled`] variant holds the live [`WorkerPool`], which is
/// why this type (unlike `Backend`) is not `Copy` — dropping it shuts
/// the workers down.
#[derive(Debug)]
pub enum ResolvedBackend {
    /// Run on the calling thread.
    Sequential,
    /// Spawn scoped OS threads per step.
    Threaded(Threaded),
    /// Dispatch to a persistent worker pool.
    Pooled(WorkerPool),
}

impl ResolvedBackend {
    /// Human-readable backend name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ResolvedBackend::Sequential => "sequential",
            ResolvedBackend::Threaded(_) => "threaded",
            ResolvedBackend::Pooled(_) => "pooled",
        }
    }
}

impl<M: LoadModel + Sync> ExecBackend<M> for ResolvedBackend {
    fn run_substeps(&mut self, world: &mut World, model: &M) {
        match self {
            ResolvedBackend::Sequential => Sequential.run_substeps(world, model),
            ResolvedBackend::Threaded(threaded) => threaded.run_substeps(world, model),
            ResolvedBackend::Pooled(pool) => pool.run_substeps(world, model),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::model::Unbalanced;
    use crate::types::ProcId;

    /// A stochastic model exercising the RNG streams: generate 1 w.p.
    /// 0.5, consume 1 w.p. 0.6.
    struct Coin;

    impl LoadModel for Coin {
        fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.5))
        }
        fn consume(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.6))
        }
    }

    #[test]
    fn threaded_matches_sequential_exactly() {
        for threads in [1, 2, 3, 7] {
            let mut seq = Engine::new(37, 1234, Coin, Unbalanced);
            let mut par = Engine::threaded(37, 1234, Coin, Unbalanced, threads);
            seq.run(200);
            par.run(200);
            assert_eq!(
                seq.world().loads(),
                par.world().loads(),
                "threads={threads}"
            );
            assert_eq!(
                seq.world().completions().count,
                par.world().completions().count
            );
            assert_eq!(
                seq.world().completions().sojourn_sum,
                par.world().completions().sojourn_sum
            );
            assert_eq!(
                seq.world().completions().hist,
                par.world().completions().hist
            );
        }
    }

    /// A weighted model: weights are drawn from the per-processor
    /// stream, which must stay aligned across backends.
    struct WeightedCoin;

    impl LoadModel for WeightedCoin {
        fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.5))
        }
        fn consume(&self, _: ProcId, _: Step, load: usize, rng: &mut SimRng) -> usize {
            usize::from(load > 0 && rng.chance(0.6))
        }
        fn task_weight(&self, _: ProcId, _: Step, rng: &mut SimRng) -> u32 {
            1 + rng.below(4) as u32
        }
    }

    #[test]
    fn threaded_matches_sequential_with_weighted_tasks() {
        for threads in [2, 5] {
            let mut seq = Engine::new(41, 77, WeightedCoin, Unbalanced);
            let mut par = Engine::threaded(41, 77, WeightedCoin, Unbalanced, threads);
            seq.run(300);
            par.run(300);
            assert_eq!(seq.world().loads(), par.world().loads());
            let seq_w: Vec<u64> = (0..41).map(|p| seq.world().weighted_load(p)).collect();
            let par_w: Vec<u64> = (0..41).map(|p| par.world().weighted_load(p)).collect();
            assert_eq!(seq_w, par_w, "threads={threads}");
            assert_eq!(
                seq.world().completions().count,
                par.world().completions().count
            );
        }
    }

    #[test]
    fn more_threads_than_processors() {
        let mut par = Engine::threaded(3, 7, Coin, Unbalanced, 16);
        par.run(50);
        assert_eq!(par.world().step(), 50);
    }

    #[test]
    fn zero_threads_clamped() {
        let mut par = Engine::threaded(4, 7, Coin, Unbalanced, 0);
        par.run(10);
        assert_eq!(par.world().step(), 10);
    }

    #[test]
    fn backend_enum_dispatches_all_ways() {
        let mut a = Engine::with_backend(16, 5, Coin, Unbalanced, Backend::Sequential);
        let mut b = Engine::with_backend(16, 5, Coin, Unbalanced, Backend::Threaded(4));
        let mut c = Engine::with_backend(16, 5, Coin, Unbalanced, Backend::Pooled(4));
        a.run(100);
        b.run(100);
        c.run(100);
        assert_eq!(a.world().loads(), b.world().loads());
        assert_eq!(a.world().loads(), c.world().loads());
        assert_eq!(Backend::Sequential.name(), "sequential");
        assert_eq!(Backend::Threaded(2).name(), "threaded");
        assert_eq!(Backend::Pooled(2).name(), "pooled");
    }

    #[test]
    fn resolved_backend_matches_descriptor_name_and_results() {
        let seq = Backend::Sequential.resolve();
        let thr = Backend::Threaded(3).resolve();
        let pool = Backend::Pooled(3).resolve();
        assert_eq!(seq.name(), "sequential");
        assert_eq!(thr.name(), "threaded");
        assert_eq!(pool.name(), "pooled");
        let mut a = Engine::with_backend(16, 5, Coin, Unbalanced, seq);
        let mut b = Engine::with_backend(16, 5, Coin, Unbalanced, pool);
        a.run(100);
        b.run(100);
        assert_eq!(a.world().loads(), b.world().loads());
        assert_eq!(a.world().completions().count, b.world().completions().count);
    }
}
