//! Deterministic, splittable random-number streams.
//!
//! The paper's processors make independent random choices every step
//! (task generation, consumption, and the i.u.a.r. processor selections
//! of the collision protocol). For the simulation to be reproducible —
//! and for the threaded engine to produce *bit-identical* results to the
//! sequential one — every processor owns its own statistically
//! independent stream, derived from a single master seed.
//!
//! We implement the generator ourselves (xoshiro256**, seeded through
//! SplitMix64) rather than relying on `rand::rngs::SmallRng`, whose
//! algorithm is explicitly unspecified and may change between `rand`
//! releases. Experiment outputs recorded in `EXPERIMENTS.md` must stay
//! reproducible from the seeds printed next to them.
//!
//! The generator is fully self-contained (no external crates), so the
//! workspace builds in offline environments and the stream definition
//! can never drift underneath recorded experiment outputs.

/// SplitMix64 step: the standard 64-bit finalizer-based generator used
/// for seeding and for deriving independent sub-streams.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256** generator: fast, 256-bit state, passes BigCrush, and
/// fully specified here so simulation outputs are stable across builds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a stream from a master seed. Equal seeds give equal
    /// streams; this is the root of all determinism in the simulator.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        // SplitMix64 expansion is the seeding procedure recommended by
        // the xoshiro authors; it also maps the all-zero seed to a valid
        // (nonzero) state.
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives the `index`-th sub-stream of this seed. Used to give each
    /// processor (and the global protocol driver) independent streams:
    /// `SimRng::stream(seed, i)` and `SimRng::stream(seed, j)` are
    /// decorrelated for `i != j` because the (seed, index) pair is mixed
    /// through SplitMix64 before state expansion.
    pub fn stream(seed: u64, index: u64) -> Self {
        let mut sm = seed ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(index.wrapping_add(1));
        let mixed = splitmix64(&mut sm);
        SimRng::new(mixed ^ index.rotate_left(17))
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `0..bound` without modulo bias (Lemire's
    /// widening-multiply rejection method). `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "below() requires a nonzero bound");
        let bound = bound as u64;
        loop {
            let x = self.next();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as usize;
            }
            // Rejected draw (probability < bound / 2^64); resample.
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.f64() < p
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples `k` distinct values from `0..n` (a uniform k-subset,
    /// order of first appearance). Uses rejection, which is fast for the
    /// regime the collision protocol needs (`k` ≤ a ≪ n). Panics if
    /// `k > n`.
    pub fn distinct(&mut self, n: usize, k: usize, out: &mut Vec<usize>) {
        assert!(k <= n, "cannot draw {k} distinct values from 0..{n}");
        out.clear();
        if k == 0 {
            return;
        }
        // For small k relative to n, rejection terminates quickly; for
        // the degenerate k ~ n case fall back to a partial shuffle.
        if k * 4 <= n {
            while out.len() < k {
                let v = self.below(n);
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        } else {
            let mut pool: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + self.below(n - i);
                pool.swap(i, j);
            }
            out.extend_from_slice(&pool[..k]);
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.next()
    }

    /// Next raw 32-bit draw (high half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    /// Fills `out` with consecutive raw draws — the bulk primitive
    /// behind batched-RNG paths. Exactly equivalent to one
    /// [`SimRng::next_u64`] per slot (same stream advance), but keeps
    /// the 256-bit state in registers for the whole burst instead of
    /// reloading it per call, which is what the hot kernels want when
    /// a model needs a known-in-advance number of draws.
    pub fn fill_u64s(&mut self, out: &mut [u64]) {
        let mut s = self.s;
        for slot in out.iter_mut() {
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            *slot = result;
        }
        self.s = s;
    }

    /// Samples a Poisson-distributed count with mean `lambda` (Knuth's
    /// product-of-uniforms method). Non-positive or non-finite `lambda`
    /// yields 0. The number of `f64` draws consumed is itself random
    /// (sample + 1 per chunk), which is fine under the determinism
    /// contract: each processor owns its stream, so draw *order* within
    /// the stream is all that must be stable, not draw *count* across
    /// processors.
    ///
    /// Means above 32 are split into chunks (Poisson(a + b) equals
    /// Poisson(a) + Poisson(b) in distribution) so `exp(-lambda)` never
    /// underflows to a degenerate always-reject threshold.
    pub fn poisson(&mut self, lambda: f64) -> usize {
        if !lambda.is_finite() || lambda <= 0.0 {
            return 0;
        }
        const CHUNK: f64 = 32.0;
        let mut remaining = lambda;
        let mut total = 0usize;
        while remaining > 0.0 {
            let step = if remaining > CHUNK { CHUNK } else { remaining };
            remaining -= step;
            let threshold = (-step).exp();
            let mut p = 1.0f64;
            loop {
                p *= self.f64();
                if p <= threshold {
                    break;
                }
                total += 1;
            }
        }
        total
    }

    /// Fills `dest` with random bytes (little-endian 64-bit chunks).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let equal = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 3, "streams from different seeds should diverge");
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut a = SimRng::stream(7, 0);
        let mut b = SimRng::stream(7, 1);
        let equal = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 3);
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut r = SimRng::new(0);
        // xoshiro's all-zero state is a fixed point; seeding through
        // SplitMix64 must avoid it.
        assert_ne!(r.next_u64() | r.next_u64() | r.next_u64(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(3);
        for bound in [1usize, 2, 3, 7, 100, 12345] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::new(11);
        let bound = 10;
        let mut counts = [0usize; 10];
        let draws = 100_000;
        for _ in 0..draws {
            counts[r.below(bound)] += 1;
        }
        let expected = draws / bound;
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.1,
                "value {v} count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_frequency_matches_p() {
        let mut r = SimRng::new(13);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.01, "observed {freq}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(17);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn distinct_yields_distinct_in_range() {
        let mut r = SimRng::new(23);
        let mut out = Vec::new();
        for (n, k) in [(100, 5), (10, 10), (10, 9), (5, 0), (1, 1), (1000, 250)] {
            r.distinct(n, k, &mut out);
            assert_eq!(out.len(), k);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates for n={n} k={k}");
            assert!(out.iter().all(|&v| v < n));
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn distinct_panics_when_k_exceeds_n() {
        let mut r = SimRng::new(1);
        let mut out = Vec::new();
        r.distinct(3, 4, &mut out);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(29);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_unaligned_lengths() {
        let mut r = SimRng::new(31);
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            // No assertion beyond "doesn't panic"; content checked by
            // determinism test below.
        }
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn fill_u64s_matches_per_call_draws() {
        let mut a = SimRng::new(57);
        let mut b = SimRng::new(57);
        let mut bulk = [0u64; 37];
        a.fill_u64s(&mut bulk);
        for &v in &bulk {
            assert_eq!(v, b.next_u64());
        }
        // The streams stay aligned afterwards.
        assert_eq!(a.next_u64(), b.next_u64());
        // Empty fill is a no-op on the state.
        a.fill_u64s(&mut []);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn poisson_degenerate_means() {
        let mut r = SimRng::new(61);
        assert_eq!(r.poisson(0.0), 0);
        assert_eq!(r.poisson(-3.0), 0);
        assert_eq!(r.poisson(f64::NAN), 0);
        assert_eq!(r.poisson(f64::INFINITY), 0);
    }

    #[test]
    fn poisson_mean_and_variance_match() {
        // Mean and variance of Poisson(λ) are both λ; check both at a
        // small mean and at one past the λ > 32 chunking threshold.
        for (seed, lambda) in [(67u64, 0.9f64), (71, 4.5), (73, 50.0)] {
            let mut r = SimRng::new(seed);
            let trials = 100_000usize;
            let mut sum = 0.0f64;
            let mut sum_sq = 0.0f64;
            for _ in 0..trials {
                let x = r.poisson(lambda) as f64;
                sum += x;
                sum_sq += x * x;
            }
            let mean = sum / trials as f64;
            let var = sum_sq / trials as f64 - mean * mean;
            // ~9σ band on the sample mean: σ_mean = sqrt(λ/trials).
            let band = 9.0 * (lambda / trials as f64).sqrt();
            assert!(
                (mean - lambda).abs() < band,
                "λ={lambda}: mean {mean} outside ±{band}"
            );
            assert!(
                (var - lambda).abs() < lambda * 0.1,
                "λ={lambda}: variance {var} too far from {lambda}"
            );
        }
    }

    #[test]
    fn next_u32_is_high_half() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }
}
