//! Communication topologies restricting who may balance with whom.
//!
//! The paper's collision protocol assumes a complete communication
//! graph: any processor can probe any other. Cai–Sauerwald's network
//! model instead restricts partners to graph neighbors. This module
//! provides the [`Topology`] trait plus stock graphs (complete, ring,
//! 2-D torus, hypercube, seeded random-regular) so partner-selection
//! policies can be swept across locality regimes.
//!
//! Determinism contract: a topology is a pure function of its
//! construction parameters. `RandomRegular` is built once from a
//! seed (union of `d/2` seeded Hamiltonian cycles), so the same
//! `(n, d, seed)` triple yields the same adjacency on every backend
//! and every machine — graph construction never touches the
//! simulation's RNG streams.

use std::sync::Arc;

use crate::rng::SimRng;
use crate::types::ProcId;

/// A static undirected communication graph over processors `0..n`.
///
/// Neighbors are addressed by *slot index* `0..degree(v)`. Slots may
/// repeat a neighbor on degenerate parameters (a 2-wide torus ring, a
/// random-regular multigraph edge); policies treat slots as the unit
/// of choice, which keeps degree exact and sampling uniform.
pub trait Topology: Send + Sync {
    /// Number of vertices (processors).
    fn n(&self) -> usize;

    /// Number of neighbor slots of `v`.
    fn degree(&self, v: ProcId) -> usize;

    /// The neighbor in slot `k` of `v` (`k < degree(v)`).
    fn neighbor(&self, v: ProcId, k: usize) -> ProcId;

    /// Short display name, e.g. `"ring"`.
    fn name(&self) -> &'static str;

    /// True for the complete graph: policies may then use global
    /// fast paths (the collision forest skips neighbor sampling).
    fn is_complete(&self) -> bool {
        false
    }

    /// Draws a uniformly random partner of `v`.
    ///
    /// The default draws a uniform neighbor slot. `Complete`
    /// overrides this with the historical rejection loop so the
    /// default policy's RNG draw sequence is bit-identical to the
    /// pre-topology code.
    fn random_partner(&self, v: ProcId, rng: &mut SimRng) -> ProcId {
        debug_assert!(self.degree(v) > 0, "vertex {v} has no neighbors");
        self.neighbor(v, rng.below(self.degree(v)))
    }

    /// True when `u` has `v` in some neighbor slot (test helper;
    /// linear in `degree(u)`).
    fn has_edge(&self, u: ProcId, v: ProcId) -> bool {
        (0..self.degree(u)).any(|k| self.neighbor(u, k) == v)
    }
}

/// The complete graph `K_n`: every processor can reach every other.
#[derive(Clone, Copy, Debug)]
pub struct Complete {
    n: usize,
}

impl Complete {
    /// Complete graph on `n >= 2` vertices.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Complete { n }
    }
}

impl Topology for Complete {
    fn n(&self) -> usize {
        self.n
    }

    fn degree(&self, _v: ProcId) -> usize {
        self.n - 1
    }

    fn neighbor(&self, v: ProcId, k: usize) -> ProcId {
        // Slots enumerate 0..n skipping v itself.
        k + usize::from(k >= v)
    }

    fn name(&self) -> &'static str {
        "complete"
    }

    fn is_complete(&self) -> bool {
        true
    }

    fn random_partner(&self, v: ProcId, rng: &mut SimRng) -> ProcId {
        // Rejection loop, bit-identical to the historical preround
        // draw (one `below(n)` per attempt, retry on self).
        let mut t = rng.below(self.n);
        while t == v {
            t = rng.below(self.n);
        }
        t
    }

    fn has_edge(&self, u: ProcId, v: ProcId) -> bool {
        u != v && u < self.n && v < self.n
    }
}

/// The cycle `C_n`: each processor talks to its two ring neighbors.
#[derive(Clone, Copy, Debug)]
pub struct Ring {
    n: usize,
}

impl Ring {
    /// Ring on `n >= 3` vertices.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Ring { n }
    }
}

impl Topology for Ring {
    fn n(&self) -> usize {
        self.n
    }

    fn degree(&self, _v: ProcId) -> usize {
        2
    }

    fn neighbor(&self, v: ProcId, k: usize) -> ProcId {
        match k {
            0 => (v + 1) % self.n,
            _ => (v + self.n - 1) % self.n,
        }
    }

    fn name(&self) -> &'static str {
        "ring"
    }
}

/// A 2-D torus (`rows x cols` grid with wraparound), degree 4.
#[derive(Clone, Copy, Debug)]
pub struct Torus {
    rows: usize,
    cols: usize,
}

impl Torus {
    /// `rows x cols` torus; both dimensions must be >= 2.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        Torus { rows, cols }
    }
}

impl Topology for Torus {
    fn n(&self) -> usize {
        self.rows * self.cols
    }

    fn degree(&self, _v: ProcId) -> usize {
        4
    }

    fn neighbor(&self, v: ProcId, k: usize) -> ProcId {
        let (r, c) = (v / self.cols, v % self.cols);
        let (nr, nc) = match k {
            0 => (r, (c + 1) % self.cols),
            1 => (r, (c + self.cols - 1) % self.cols),
            2 => ((r + 1) % self.rows, c),
            _ => ((r + self.rows - 1) % self.rows, c),
        };
        nr * self.cols + nc
    }

    fn name(&self) -> &'static str {
        "torus"
    }
}

/// The `d`-dimensional hypercube (`n = 2^d`), degree `log2 n`.
#[derive(Clone, Copy, Debug)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// Hypercube with `2^dim` vertices, `dim >= 1`.
    #[must_use]
    pub fn new(dim: u32) -> Self {
        Hypercube { dim }
    }
}

impl Topology for Hypercube {
    fn n(&self) -> usize {
        1 << self.dim
    }

    fn degree(&self, _v: ProcId) -> usize {
        self.dim as usize
    }

    fn neighbor(&self, v: ProcId, k: usize) -> ProcId {
        v ^ (1 << k)
    }

    fn name(&self) -> &'static str {
        "hypercube"
    }
}

/// A `d`-regular graph built as the union of `d/2` seeded Hamiltonian
/// cycles: connected by construction, degree exactly `d`, and fully
/// determined by `(n, d, seed)`.
#[derive(Clone, Debug)]
pub struct RandomRegular {
    n: usize,
    d: usize,
    /// `d` neighbor slots per vertex, row-major.
    adj: Vec<ProcId>,
}

impl RandomRegular {
    /// Builds the graph; `d` must be even, `2 <= d`, `n >= 3`.
    ///
    /// Uses private RNG streams derived from `seed` — never the
    /// simulation streams, so the graph is identical across backends.
    #[must_use]
    pub fn new(n: usize, d: usize, seed: u64) -> Self {
        assert!(
            d >= 2 && d.is_multiple_of(2),
            "random-regular degree must be even and >= 2"
        );
        assert!(n >= 3, "random-regular needs n >= 3");
        let mut adj = vec![0usize; n * d];
        let mut perm: Vec<usize> = (0..n).collect();
        for cycle in 0..d / 2 {
            let mut rng = SimRng::stream(seed ^ 0x7090_1998_0000_0000, cycle as u64);
            for (i, p) in perm.iter_mut().enumerate() {
                *p = i;
            }
            rng.shuffle(&mut perm);
            for i in 0..n {
                let a = perm[i];
                let b = perm[(i + 1) % n];
                adj[a * d + 2 * cycle] = b;
                adj[b * d + 2 * cycle + 1] = a;
            }
        }
        RandomRegular { n, d, adj }
    }
}

impl Topology for RandomRegular {
    fn n(&self) -> usize {
        self.n
    }

    fn degree(&self, _v: ProcId) -> usize {
        self.d
    }

    fn neighbor(&self, v: ProcId, k: usize) -> ProcId {
        self.adj[v * self.d + k]
    }

    fn name(&self) -> &'static str {
        "random-regular"
    }
}

/// Parsed `--topology` grammar; `build(n)` validates against the
/// processor count and yields the shared graph.
///
/// Grammar (mirroring `--arrivals`):
///
/// ```text
/// complete | ring | torus | torus:RxC | hypercube
/// | regular:D | regular:D,SEED
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// Complete graph (the default; the paper's model).
    Complete,
    /// Cycle.
    Ring,
    /// 2-D torus; `None` auto-factors `n` near its square root.
    Torus(Option<(usize, usize)>),
    /// Hypercube (`n` must be a power of two).
    Hypercube,
    /// Seeded random-regular graph of even degree `d`.
    Regular {
        /// Even degree.
        d: usize,
        /// Construction seed.
        seed: u64,
    },
}

/// Default construction seed for `regular:D` without an explicit seed.
pub const DEFAULT_REGULAR_SEED: u64 = 1998;

impl TopologySpec {
    /// Parses the `--topology` grammar.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (head, rest) = match s.split_once(':') {
            Some((h, r)) => (h, Some(r)),
            None => (s, None),
        };
        match (head, rest) {
            ("complete", None) => Ok(TopologySpec::Complete),
            ("ring", None) => Ok(TopologySpec::Ring),
            ("torus", None) => Ok(TopologySpec::Torus(None)),
            ("torus", Some(dims)) => {
                let (r, c) = dims
                    .split_once('x')
                    .ok_or_else(|| format!("torus dims must be RxC, got `{dims}`"))?;
                let rows: usize = r.parse().map_err(|_| format!("bad torus rows `{r}`"))?;
                let cols: usize = c.parse().map_err(|_| format!("bad torus cols `{c}`"))?;
                if rows < 2 || cols < 2 {
                    return Err("torus dims must both be >= 2".into());
                }
                Ok(TopologySpec::Torus(Some((rows, cols))))
            }
            ("hypercube", None) => Ok(TopologySpec::Hypercube),
            ("regular", Some(args)) => {
                let (d_str, seed_str) = match args.split_once(',') {
                    Some((d, s)) => (d, Some(s)),
                    None => (args, None),
                };
                let d: usize = d_str
                    .parse()
                    .map_err(|_| format!("bad regular degree `{d_str}`"))?;
                if d < 2 || !d.is_multiple_of(2) {
                    return Err("regular degree must be even and >= 2".into());
                }
                let seed = match seed_str {
                    Some(s) => s.parse().map_err(|_| format!("bad regular seed `{s}`"))?,
                    None => DEFAULT_REGULAR_SEED,
                };
                Ok(TopologySpec::Regular { d, seed })
            }
            ("regular", None) => Err("regular needs a degree: regular:D[,SEED]".into()),
            _ => Err(format!(
                "unknown topology `{s}` (want complete | ring | torus[:RxC] | \
                 hypercube | regular:D[,SEED])"
            )),
        }
    }

    /// Builds the graph for `n` processors, validating fit.
    pub fn build(&self, n: usize) -> Result<Arc<dyn Topology>, String> {
        match *self {
            TopologySpec::Complete => {
                if n < 2 {
                    return Err("complete graph needs n >= 2".into());
                }
                Ok(Arc::new(Complete::new(n)))
            }
            TopologySpec::Ring => {
                if n < 3 {
                    return Err("ring needs n >= 3".into());
                }
                Ok(Arc::new(Ring::new(n)))
            }
            TopologySpec::Torus(dims) => {
                let (rows, cols) = match dims {
                    Some(rc) => rc,
                    None => factor_near_sqrt(n).ok_or_else(|| {
                        format!("cannot factor n={n} into a torus; pass torus:RxC")
                    })?,
                };
                if rows * cols != n {
                    return Err(format!("torus {rows}x{cols} does not cover n={n}"));
                }
                if rows < 2 || cols < 2 {
                    return Err("torus dims must both be >= 2".into());
                }
                Ok(Arc::new(Torus::new(rows, cols)))
            }
            TopologySpec::Hypercube => {
                if n < 2 || !n.is_power_of_two() {
                    return Err(format!("hypercube needs a power-of-two n, got {n}"));
                }
                Ok(Arc::new(Hypercube::new(n.trailing_zeros())))
            }
            TopologySpec::Regular { d, seed } => {
                if n < 3 {
                    return Err("regular needs n >= 3".into());
                }
                if d >= n {
                    return Err(format!("regular degree {d} must be < n={n}"));
                }
                Ok(Arc::new(RandomRegular::new(n, d, seed)))
            }
        }
    }

    /// Canonical spec string (round-trips through `parse`).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            TopologySpec::Complete => "complete".into(),
            TopologySpec::Ring => "ring".into(),
            TopologySpec::Torus(None) => "torus".into(),
            TopologySpec::Torus(Some((r, c))) => format!("torus:{r}x{c}"),
            TopologySpec::Hypercube => "hypercube".into(),
            TopologySpec::Regular { d, seed } if seed == DEFAULT_REGULAR_SEED => {
                format!("regular:{d}")
            }
            TopologySpec::Regular { d, seed } => format!("regular:{d},{seed}"),
        }
    }
}

/// Largest divisor pair `(r, n/r)` with `r <= sqrt(n)` and both >= 2.
fn factor_near_sqrt(n: usize) -> Option<(usize, usize)> {
    let mut r = (n as f64).sqrt() as usize;
    while r >= 2 {
        if n.is_multiple_of(r) {
            return Some((r, n / r));
        }
        r -= 1;
    }
    None
}

/// Ring distance `min(|a-b|, n-|a-b|)` — the locality metric reported
/// by the balancer for matched partner pairs.
#[must_use]
pub fn ring_distance(a: ProcId, b: ProcId, n: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(n - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connected(topo: &dyn Topology) -> bool {
        let n = topo.n();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for k in 0..topo.degree(v) {
                let u = topo.neighbor(v, k);
                if !seen[u] {
                    seen[u] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == n
    }

    #[test]
    fn complete_enumerates_everyone_but_self() {
        let t = Complete::new(8);
        for v in 0..8 {
            let mut seen: Vec<usize> = (0..t.degree(v)).map(|k| t.neighbor(v, k)).collect();
            seen.sort_unstable();
            let want: Vec<usize> = (0..8).filter(|&u| u != v).collect();
            assert_eq!(seen, want);
        }
    }

    #[test]
    fn complete_random_partner_matches_legacy_rejection_loop() {
        let t = Complete::new(64);
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for v in 0..64 {
            let got = t.random_partner(v, &mut a);
            let mut want = b.below(64);
            while want == v {
                want = b.below(64);
            }
            assert_eq!(got, want);
        }
    }

    #[test]
    fn ring_and_torus_and_hypercube_shapes() {
        let r = Ring::new(7);
        assert_eq!(r.neighbor(6, 0), 0);
        assert_eq!(r.neighbor(0, 1), 6);
        assert!(connected(&r));

        let t = Torus::new(3, 4);
        assert_eq!(t.n(), 12);
        for v in 0..12 {
            assert_eq!(t.degree(v), 4);
            for k in 0..4 {
                assert!(t.has_edge(t.neighbor(v, k), v), "torus must be symmetric");
            }
        }
        assert!(connected(&t));

        let h = Hypercube::new(4);
        assert_eq!(h.n(), 16);
        assert_eq!(h.degree(0), 4);
        assert_eq!(h.neighbor(5, 1), 7);
        assert!(connected(&h));
    }

    #[test]
    fn random_regular_is_regular_connected_and_seed_deterministic() {
        for &(n, d) in &[(17usize, 2usize), (32, 4), (101, 6)] {
            let g1 = RandomRegular::new(n, d, 7);
            let g2 = RandomRegular::new(n, d, 7);
            let g3 = RandomRegular::new(n, d, 8);
            for v in 0..n {
                assert_eq!(g1.degree(v), d);
                let a: Vec<_> = (0..d).map(|k| g1.neighbor(v, k)).collect();
                let b: Vec<_> = (0..d).map(|k| g2.neighbor(v, k)).collect();
                assert_eq!(a, b, "same seed must give the same graph");
                for &u in &a {
                    assert_ne!(u, v, "no self loops");
                    assert!(g1.has_edge(u, v), "regular graph must be symmetric");
                }
            }
            assert!(connected(&g1));
            let same = (0..n.min(8)).all(|v| {
                (0..d).map(|k| g1.neighbor(v, k)).collect::<Vec<_>>()
                    == (0..d).map(|k| g3.neighbor(v, k)).collect::<Vec<_>>()
            });
            assert!(!same || d == 2 && n < 4, "different seeds should differ");
        }
    }

    #[test]
    fn spec_grammar_round_trips() {
        for s in [
            "complete",
            "ring",
            "torus",
            "torus:8x16",
            "hypercube",
            "regular:4",
            "regular:6,99",
        ] {
            let spec = TopologySpec::parse(s).unwrap();
            assert_eq!(spec.label(), s);
            assert_eq!(TopologySpec::parse(&spec.label()).unwrap(), spec);
        }
        assert!(TopologySpec::parse("mesh").is_err());
        assert!(TopologySpec::parse("torus:1x9").is_err());
        assert!(TopologySpec::parse("regular:3").is_err());
        assert!(TopologySpec::parse("regular").is_err());
    }

    #[test]
    fn spec_build_validates_fit() {
        assert!(TopologySpec::Hypercube.build(48).is_err());
        assert!(TopologySpec::Torus(Some((4, 4))).build(15).is_err());
        assert!(TopologySpec::Regular { d: 4, seed: 1 }.build(4).is_err());
        let t = TopologySpec::Torus(None).build(48).unwrap();
        assert_eq!(t.n(), 48);
        assert!(connected(&*TopologySpec::Torus(None).build(48).unwrap()));
        // 6x8 factorization
        assert!(t.has_edge(0, 8));
    }

    #[test]
    fn ring_distance_wraps() {
        assert_eq!(ring_distance(1, 6, 8), 3);
        assert_eq!(ring_distance(0, 4, 8), 4);
        assert_eq!(ring_distance(3, 3, 8), 0);
    }
}
