//! The single entry point for running experiments: engine + backend +
//! probes, wired together.
//!
//! ```
//! use pcrlb_sim::{Backend, MaxLoadProbe, Runner, Unbalanced};
//! use pcrlb_sim::{LoadModel, ProcId, SimRng, Step};
//!
//! #[derive(Clone, Copy)]
//! struct Coin;
//! impl LoadModel for Coin {
//!     fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
//!         usize::from(rng.chance(0.5))
//!     }
//!     fn consume(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
//!         usize::from(rng.chance(0.6))
//!     }
//! }
//!
//! let report = Runner::new(64, 42)
//!     .model(Coin)
//!     .strategy(Unbalanced)
//!     .backend(Backend::Threaded(4))
//!     .probe(MaxLoadProbe::after_warmup(10))
//!     .run(100);
//! assert_eq!(report.steps, 100);
//! ```
//!
//! The runner owns the observation loop: after each engine step it
//! drains the strategy's phase reports and trace events from the world
//! and dispatches them — then the step itself — to every registered
//! probe in registration order. Because a [`crate::backend::Backend`]
//! value selects the execution backend at runtime, the *same* runner
//! call drives sequential and threaded runs, and the resulting
//! [`RunReport`]s compare equal for equal seeds (a cross-crate test
//! asserts this for every load model).

use crate::backend::Backend;
use crate::engine::Engine;
use crate::membership::ChurnSpec;
use crate::message::MessageStats;
use crate::model::{LoadModel, Strategy};
use crate::probe::{PhaseReport, Probe, ProbeOutput};
use crate::trace::Event;
use crate::world::{CompletionStats, World};
use pcrlb_faults::FaultConfig;
use std::sync::Arc;

/// Everything a run produced. `PartialEq` so determinism tests can
/// compare whole reports across backends with one assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Processors.
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// Steps actually executed (≤ requested when a probe stopped the
    /// run early).
    pub steps: u64,
    /// Final per-processor loads.
    pub loads: Vec<usize>,
    /// Final per-processor weighted loads.
    pub weighted_loads: Vec<u64>,
    /// Final maximum load.
    pub max_load: usize,
    /// Final total load.
    pub total_load: u64,
    /// Final maximum weighted load.
    pub max_weighted_load: u64,
    /// Final total weighted load.
    pub total_weighted_load: u64,
    /// Completion statistics over the whole run.
    pub completions: CompletionStats,
    /// Arrivals dropped by an [`crate::Admission::Shed`] policy (0
    /// under unbounded admission).
    pub total_shed: u64,
    /// Arrival-steps spent in the front-door backlog under an
    /// [`crate::Admission::Defer`] policy.
    pub total_deferred: u64,
    /// Message totals over the whole run.
    pub messages: MessageStats,
    /// Load-model name.
    pub model: &'static str,
    /// Strategy name.
    pub strategy: &'static str,
    /// Backend name.
    pub backend: &'static str,
    /// Each probe's output, in registration order.
    pub probes: Vec<(&'static str, ProbeOutput)>,
}

impl RunReport {
    /// The output of the first probe registered under `name`.
    pub fn probe(&self, name: &str) -> Option<&ProbeOutput> {
        self.probes.iter().find(|(n, _)| *n == name).map(|(_, o)| o)
    }

    /// Convenience: the post-warm-up worst max load from the first
    /// [`crate::probe::MaxLoadProbe`], if one was registered.
    pub fn worst_max_load(&self) -> Option<usize> {
        match self.probe("max_load") {
            Some(ProbeOutput::MaxLoad { worst, .. }) => Some(*worst),
            _ => None,
        }
    }

    /// Convenience: the post-warm-up worst max *weighted* load from the
    /// first [`crate::probe::MaxLoadProbe`], if one was registered.
    pub fn worst_max_weighted_load(&self) -> Option<u64> {
        match self.probe("max_load") {
            Some(ProbeOutput::MaxLoad { worst_weighted, .. }) => Some(*worst_weighted),
            _ => None,
        }
    }
}

/// Builder for a simulation run. Model and strategy are typestate
/// parameters: `run` only exists once both are set, so forgetting one
/// is a compile error rather than a panic.
pub struct Runner<M = (), S = ()> {
    n: usize,
    seed: u64,
    model: M,
    strategy: S,
    backend: Backend,
    probes: Vec<Box<dyn Probe>>,
    world: Option<World>,
    faults: Option<FaultConfig>,
    churn: Option<ChurnSpec>,
}

impl Runner {
    /// Starts a run description for `n` processors driven by `seed`.
    pub fn new(n: usize, seed: u64) -> Runner {
        Runner {
            n,
            seed,
            model: (),
            strategy: (),
            backend: Backend::Sequential,
            probes: Vec::new(),
            world: None,
            faults: None,
            churn: None,
        }
    }
}

impl<M, S> Runner<M, S> {
    /// Sets the load model.
    pub fn model<M2: LoadModel>(self, model: M2) -> Runner<M2, S> {
        Runner {
            n: self.n,
            seed: self.seed,
            model,
            strategy: self.strategy,
            backend: self.backend,
            probes: self.probes,
            world: self.world,
            faults: self.faults,
            churn: self.churn,
        }
    }

    /// Sets the balancing strategy.
    pub fn strategy<S2: Strategy>(self, strategy: S2) -> Runner<M, S2> {
        Runner {
            n: self.n,
            seed: self.seed,
            model: self.model,
            strategy,
            backend: self.backend,
            probes: self.probes,
            world: self.world,
            faults: self.faults,
            churn: self.churn,
        }
    }

    /// Selects the execution backend (sequential by default).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Registers a probe. Probes observe each step exactly once, in
    /// registration order.
    pub fn probe(mut self, probe: impl Probe + 'static) -> Self {
        self.probes.push(Box::new(probe));
        self
    }

    /// Runs over a pre-built world (e.g. one seeded with an adversarial
    /// spike) instead of a fresh one; the world's `n` and seed win.
    pub fn world(mut self, world: World) -> Self {
        self.world = Some(world);
        self
    }

    /// Installs a fault schedule for the run. A reliable (all-zero)
    /// config leaves the run bit-identical to never calling this; a
    /// real one compiles into a [`pcrlb_faults::FaultPlan`] keyed on
    /// `(world seed, fault seed)` before the first step.
    ///
    /// # Panics
    /// `run`/`run_detailed` panic if the config fails
    /// [`FaultConfig::validate`].
    pub fn faults(mut self, config: FaultConfig) -> Self {
        self.faults = Some(config);
        self
    }

    /// Installs an elastic-membership (churn) schedule for the run:
    /// the live-processor count follows `spec.active_at(step)` on
    /// every backend, with deterministic evacuation of departing
    /// queues (see [`crate::world::World::sync_membership`]). An empty
    /// schedule leaves the run bit-identical to never calling this.
    pub fn churn(mut self, spec: ChurnSpec) -> Self {
        self.churn = Some(spec);
        self
    }
}

impl<M: LoadModel + Sync, S: Strategy> Runner<M, S> {
    /// Executes up to `steps` steps and summarises the run.
    pub fn run(self, steps: u64) -> RunReport {
        self.run_detailed(steps).0
    }

    /// Like [`Runner::run`], additionally handing back the final world
    /// and strategy for callers that need state the report doesn't
    /// carry (strategy-internal statistics, further manual stepping).
    pub fn run_detailed(self, steps: u64) -> (RunReport, World, S) {
        let Runner {
            n,
            seed,
            model,
            strategy,
            backend,
            mut probes,
            world,
            faults,
            churn,
        } = self;
        let mut world = world.unwrap_or_else(|| World::new(n, seed));
        if let Some(spec) = churn {
            world.install_churn(spec);
        }
        if let Some(config) = faults {
            if !config.is_reliable() {
                let plan = config.build(world.seed());
                world.set_fault_model(Arc::new(plan));
            }
        }
        if !probes.is_empty() {
            world.enable_observer();
        }
        // The net backend replaces the engine loop wholesale: its wire
        // layer needs to interleave node threads with the control
        // step, so it is intercepted before `resolve()`.
        if let Backend::Net {
            nodes,
            tcp,
            relaxed,
        } = backend
        {
            let topo = crate::net::NetTopology {
                nodes,
                tcp,
                relaxed,
            };
            return crate::net::run_net_detailed(steps, topo, world, model, strategy, probes);
        }
        // Resolve once per run: for `Backend::Pooled` this spawns the
        // persistent worker pool, which lives until the engine drops.
        let mut engine = Engine::with_world_and_backend(world, model, strategy, backend.resolve());

        for probe in probes.iter_mut() {
            probe.on_run_start(engine.world());
        }
        let mut phases: Vec<PhaseReport> = Vec::new();
        let mut events: Vec<Event> = Vec::new();
        let mut executed = 0u64;
        for _ in 0..steps {
            engine.step();
            executed += 1;
            engine
                .world_mut()
                .take_observations(&mut phases, &mut events);
            for probe in probes.iter_mut() {
                for report in &phases {
                    probe.on_phase(report);
                }
                for event in &events {
                    probe.on_event(event);
                }
                probe.on_step(engine.world());
            }
            phases.clear();
            events.clear();
            if probes.iter().any(|p| p.stop_requested()) {
                break;
            }
        }
        for probe in probes.iter_mut() {
            probe.on_run_end(engine.world());
        }

        let (world, model, strategy) = engine.into_parts();
        let report = RunReport {
            n: world.n(),
            seed: world.seed(),
            steps: executed,
            loads: world.loads(),
            weighted_loads: (0..world.n()).map(|p| world.weighted_load(p)).collect(),
            max_load: world.max_load(),
            total_load: world.total_load(),
            max_weighted_load: world.max_weighted_load(),
            total_weighted_load: world.total_weighted_load(),
            completions: world.completions().clone(),
            total_shed: world.total_shed(),
            total_deferred: world.total_deferred(),
            messages: world.messages(),
            model: model.name(),
            strategy: strategy.name(),
            backend: backend.name(),
            probes: probes
                .into_iter()
                .map(|p| {
                    let name = p.name();
                    (name, p.finish())
                })
                .collect(),
        };
        (report, world, strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Unbalanced;
    use crate::probe::{MaxLoadProbe, MessageRateProbe, RecoveryProbe, SeriesProbe};
    use crate::rng::SimRng;
    use crate::types::{ProcId, Step};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Clone, Copy)]
    struct Coin;

    impl LoadModel for Coin {
        fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.5))
        }
        fn consume(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
            usize::from(rng.chance(0.6))
        }
    }

    #[test]
    fn run_matches_hand_driven_engine() {
        let report = Runner::new(16, 7).model(Coin).strategy(Unbalanced).run(50);
        let mut e = Engine::new(16, 7, Coin, Unbalanced);
        e.run(50);
        assert_eq!(report.loads, e.world().loads());
        assert_eq!(report.steps, 50);
        assert_eq!(report.completions, *e.world().completions());
        assert_eq!(report.strategy, "unbalanced");
    }

    #[test]
    fn backends_produce_equal_reports() {
        let seq = Runner::new(33, 9).model(Coin).strategy(Unbalanced).run(80);
        let thr = Runner::new(33, 9)
            .model(Coin)
            .strategy(Unbalanced)
            .backend(Backend::Threaded(4))
            .run(80);
        // Backend name differs by design; everything else must match.
        assert_eq!(seq.backend, "sequential");
        assert_eq!(thr.backend, "threaded");
        let mut thr_as_seq = thr.clone();
        thr_as_seq.backend = seq.backend;
        assert_eq!(seq, thr_as_seq);
    }

    #[test]
    fn churn_keeps_backends_bit_identical() {
        use crate::membership::ChurnSpec;
        use crate::probe::MembershipProbe;
        let spec = || ChurnSpec::parse("step:20,9;batch:7,3").unwrap();
        let run = |backend| {
            Runner::new(24, 11)
                .model(Coin)
                .strategy(Unbalanced)
                .backend(backend)
                .churn(spec())
                .probe(MembershipProbe::new())
                .run(60)
        };
        let seq = run(Backend::Sequential);
        match seq.probe("membership") {
            Some(ProbeOutput::Membership { epochs, .. }) => {
                assert!(*epochs > 0, "schedule should have fired")
            }
            other => panic!("unexpected membership output: {other:?}"),
        }
        for backend in [Backend::Threaded(4), Backend::Pooled(4)] {
            let other = run(backend);
            let mut other_as_seq = other.clone();
            other_as_seq.backend = seq.backend;
            assert_eq!(seq, other_as_seq);
        }
    }

    #[test]
    fn probes_observe_in_registration_order_exactly_once() {
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));

        struct Tattler {
            tag: &'static str,
            order: Rc<RefCell<Vec<&'static str>>>,
        }
        impl Probe for Tattler {
            fn name(&self) -> &'static str {
                self.tag
            }
            fn on_step(&mut self, _: &World) {
                self.order.borrow_mut().push(self.tag);
            }
            fn finish(self: Box<Self>) -> ProbeOutput {
                ProbeOutput::Series(Vec::new())
            }
        }

        let report = Runner::new(4, 1)
            .model(Coin)
            .strategy(Unbalanced)
            .probe(Tattler {
                tag: "first",
                order: Rc::clone(&order),
            })
            .probe(Tattler {
                tag: "second",
                order: Rc::clone(&order),
            })
            .run(3);
        assert_eq!(
            *order.borrow(),
            vec!["first", "second", "first", "second", "first", "second"]
        );
        assert_eq!(report.probes.len(), 2);
        assert_eq!(report.probes[0].0, "first");
        assert_eq!(report.probes[1].0, "second");
    }

    #[test]
    fn early_stop_truncates_run() {
        let mut w = World::new(2, 1);
        w.inject(0, 3);
        let report = Runner::new(2, 1)
            .world(w)
            .model(Coin)
            .strategy(Unbalanced)
            .probe(RecoveryProbe::new(0).stop_on_recovery())
            .run(10_000);
        assert!(report.steps < 10_000, "spike never drained");
        match report.probe("recovery") {
            Some(ProbeOutput::Recovery {
                recovered_at: Some(at),
            }) => assert_eq!(*at, report.steps),
            other => panic!("unexpected recovery output: {other:?}"),
        }
    }

    #[test]
    fn probe_lookup_and_multiple_probe_kinds() {
        let report = Runner::new(8, 3)
            .model(Coin)
            .strategy(Unbalanced)
            .probe(MaxLoadProbe::new())
            .probe(MessageRateProbe::new())
            .probe(SeriesProbe::named("total", |w| w.total_load() as f64))
            .run(20);
        assert!(matches!(
            report.probe("max_load"),
            Some(ProbeOutput::MaxLoad { .. })
        ));
        assert!(matches!(
            report.probe("message_rate"),
            Some(ProbeOutput::MessageRate { steps: 20, .. })
        ));
        match report.probe("total") {
            Some(ProbeOutput::Series(s)) => assert_eq!(s.len(), 20),
            other => panic!("unexpected series output: {other:?}"),
        }
        assert!(report.probe("nonexistent").is_none());
    }
}
