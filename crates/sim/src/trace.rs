//! Bounded event tracing for debugging and for tests that assert on
//! protocol behaviour (e.g. "no processor accepted two queries in one
//! collision game").
//!
//! Tracing is opt-in: strategies receive an optional [`Trace`] and emit
//! events only when one is attached, so production runs pay nothing.

use crate::types::{ProcId, Step};

/// A protocol-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant payloads are named self-descriptively
pub enum Event {
    /// A phase began; payload is the phase index.
    PhaseStart { phase: u64, step: Step },
    /// `proc` was classified heavy at the start of a phase.
    Heavy {
        phase: u64,
        proc: ProcId,
        load: usize,
    },
    /// A collision game round finished with this many open requests.
    GameRound {
        phase: u64,
        level: u32,
        open_requests: usize,
    },
    /// `from` transferred `tasks` tasks to `to`.
    Transfer {
        step: Step,
        from: ProcId,
        to: ProcId,
        tasks: usize,
    },
    /// A heavy processor failed to find a partner this phase.
    SearchFailed { phase: u64, proc: ProcId },
}

/// A bounded in-memory event log. Drops (and counts) events beyond the
/// capacity instead of growing without bound.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (or counts it as dropped when full).
    pub fn push(&mut self, ev: Event) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events that did not fit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears the log (capacity is kept).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Convenience: all transfers recorded.
    pub fn transfers(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Transfer { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_until_capacity_then_counts_drops() {
        let mut t = Trace::new(2);
        t.push(Event::PhaseStart { phase: 0, step: 0 });
        t.push(Event::PhaseStart { phase: 1, step: 4 });
        t.push(Event::PhaseStart { phase: 2, step: 8 });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::new(1);
        t.push(Event::SearchFailed { phase: 0, proc: 1 });
        t.push(Event::SearchFailed { phase: 0, proc: 2 });
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn transfer_filter() {
        let mut t = Trace::new(10);
        t.push(Event::PhaseStart { phase: 0, step: 0 });
        t.push(Event::Transfer {
            step: 1,
            from: 0,
            to: 1,
            tasks: 4,
        });
        t.push(Event::Heavy {
            phase: 0,
            proc: 0,
            load: 9,
        });
        assert_eq!(t.transfers().count(), 1);
    }
}
