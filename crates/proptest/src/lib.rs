//! A small, dependency-free, deterministic subset of the `proptest` API.
//!
//! This workspace builds in fully offline environments, so it vendors
//! the slice of proptest it actually uses: range/tuple/`any` strategies,
//! `prop_map` / `prop_filter_map`, `prop_oneof!`, `collection::vec` /
//! `collection::hash_set`, and the `proptest!` / `prop_assert*!` macros.
//!
//! Semantics differ from upstream in two deliberate ways: cases are
//! generated from a fixed per-test seed (fully reproducible, no
//! persistence files), and failing cases are reported but not shrunk.

#![warn(rust_2018_idioms)]

use std::marker::PhantomData;
use std::ops::Range;

/// Error type carried by `prop_assert*!` early returns.
pub type TestCaseError = String;

/// SplitMix64-based generator driving all case sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the stream for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-case-generation quality.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. The stub samples uniformly; it does not shrink.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, resampling
    /// otherwise. `whence` labels the filter in panic messages.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, used for type-erased strategies.
pub trait SampleObj<T> {
    /// Draws one value.
    fn sample_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> SampleObj<S::Value> for S {
    fn sample_obj(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn SampleObj<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_obj(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected 10000 consecutive samples: {}",
            self.whence
        );
    }
}

/// Strategy producing a constant.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Union of same-valued strategies; `prop_oneof!` builds one.
pub struct Union<T> {
    options: Vec<Box<dyn SampleObj<T>>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options (at least one).
    pub fn new(options: Vec<Box<dyn SampleObj<T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample_obj(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full value range.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (upstream `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>`; see [`hash_set`].
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates hash sets whose size lies in `size` (best effort: the
    /// size can fall below the minimum only if the element domain is
    /// smaller than requested).
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { elem, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0;
            while out.len() < target && attempts < target * 20 + 100 {
                out.insert(self.elem.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($lhs),
                    stringify!($rhs),
                    l,
                    r
                );
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)+);
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($lhs),
                    stringify!($rhs),
                    l
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::SampleObj<_>>),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(__e) = __result {
                    panic!("proptest case {} failed: {}", __case, __e);
                }
            }
        }
        $crate::__proptest_cases! { @cfg ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = TestRng::for_case("det", 7);
        let mut b = TestRng::for_case("det", 7);
        for _ in 0..100 {
            assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
        }
    }

    #[test]
    fn collection_vec_respects_size() {
        let mut rng = TestRng::for_case("vec", 1);
        for _ in 0..200 {
            let v = collection::vec(0u32..5, 2..9).sample(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(
            x in 0usize..10,
            (a, b) in (0u64..5, 1u64..6),
            v in collection::vec(0u8..3, 0..4),
            opt in prop_oneof![(1u32..4).prop_map(Some), Just(None)],
        ) {
            prop_assert!(x < 10);
            prop_assert!(a < 5 && (1..6).contains(&b));
            prop_assert!(v.len() < 4);
            if let Some(o) = opt {
                prop_assert_ne!(o, 0u32);
            }
            prop_assert_eq!(x + 1, x + 1);
        }
    }
}
