//! A small, dependency-free subset of the `criterion` benchmarking API.
//!
//! The workspace builds in fully offline environments, so it vendors
//! the slice of criterion its benches use: groups, throughput
//! annotations, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple — a short warm-up followed by a
//! timed batch, reported as ns/iter (plus derived throughput). It is
//! good enough for the relative comparisons the repo's benches make
//! (e.g. "Runner adds no abstraction tax over a direct step loop"),
//! without upstream's statistical machinery.

#![warn(rust_2018_idioms)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs and times one benchmark body.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
    target: Duration,
}

impl Bencher {
    /// Times `f`, storing the mean cost per call.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up and calibration: run until ~10% of the budget is
        // spent, counting iterations to size the timed batch.
        let calib_budget = self.target / 10;
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        loop {
            black_box(f());
            calib_iters += 1;
            if calib_start.elapsed() >= calib_budget {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let batch = ((self.target.as_secs_f64() * 0.9 / per_iter) as u64).max(1);

        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.ns_per_iter = start.elapsed().as_secs_f64() * 1e9 / batch as f64;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let target = self.target;
        run_one(None, &id.into(), None, target, f);
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub keeps its own budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let target = self.criterion.target;
        run_one(Some(&self.name), &id.into(), self.throughput, target, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let target = self.criterion.target;
        run_one(Some(&self.name), &id, self.throughput, target, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    group: Option<&str>,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    target: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        ns_per_iter: 0.0,
        target,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{}/{}", g, id.id),
        None => id.id.clone(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / b.ns_per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / b.ns_per_iter * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("bench {label:<50} {:>14.1} ns/iter{rate}", b.ns_per_iter);
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            target: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("busy", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &k| {
            b.iter(|| k * 2)
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }
}
