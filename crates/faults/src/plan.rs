//! Stock fault models and the composite [`FaultPlan`].
//!
//! Each model keys its decisions on a private salt so that, e.g., the
//! loss coin and the delay coin for the same message are independent.

use crate::config::FaultConfig;
use crate::{fault_hash, hash_chance, FaultModel, MsgCtx};

const SALT_PLAN: u64 = 0x70_6C_61_6E; // "plan"
const SALT_LOSS: u64 = 0x6C_6F_73_73; // "loss"
const SALT_DELAY: u64 = 0x64_6C_61_79; // "dlay"
const SALT_CRASH: u64 = 0x63_72_73_68; // "crsh"
const SALT_STALL: u64 = 0x73_74_6C_6C; // "stll"

#[inline]
fn msg_hash(seed: u64, salt: u64, ctx: &MsgCtx) -> u64 {
    let w = ctx.words();
    fault_hash(seed ^ salt, &w)
}

#[inline]
fn window_hash(seed: u64, salt: u64, proc: usize, step: u64, window: u64) -> u64 {
    fault_hash(seed ^ salt, &[proc as u64, step / window])
}

/// Bernoulli message loss: every message is independently dropped
/// with probability `p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bernoulli {
    seed: u64,
    p: f64,
}

impl Bernoulli {
    /// Loss model with drop probability `p`.
    #[must_use]
    pub fn new(seed: u64, p: f64) -> Self {
        Bernoulli { seed, p }
    }
}

impl FaultModel for Bernoulli {
    fn name(&self) -> &'static str {
        "bernoulli-loss"
    }

    fn is_noop(&self) -> bool {
        self.p <= 0.0
    }

    fn drop_message(&self, ctx: &MsgCtx) -> bool {
        hash_chance(msg_hash(self.seed, SALT_LOSS, ctx), self.p)
    }
}

/// Bounded message delay: with probability `rate` a message takes an
/// extra `1..=max_delay` rounds (uniform) to arrive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundedDelay {
    seed: u64,
    rate: f64,
    max_delay: u32,
}

impl BoundedDelay {
    /// Delay model: probability `rate`, bound `max_delay` (rounds).
    #[must_use]
    pub fn new(seed: u64, rate: f64, max_delay: u32) -> Self {
        BoundedDelay {
            seed,
            rate,
            max_delay,
        }
    }
}

impl FaultModel for BoundedDelay {
    fn name(&self) -> &'static str {
        "bounded-delay"
    }

    fn is_noop(&self) -> bool {
        self.rate <= 0.0 || self.max_delay == 0
    }

    fn message_delay(&self, ctx: &MsgCtx) -> u32 {
        if self.is_noop() {
            return 0;
        }
        let h = msg_hash(self.seed, SALT_DELAY, ctx);
        if !hash_chance(h, self.rate) {
            return 0;
        }
        // Independent magnitude draw from the same coordinates.
        let m = fault_hash(h, &[SALT_DELAY]);
        1 + (m % u64::from(self.max_delay)) as u32
    }
}

/// Crash/recover windows: time is cut into `window`-step intervals
/// and each processor is independently down for any given interval
/// with probability `rate`. Transitions only happen at window
/// boundaries, which gives crashes a dwell time (and the recovery
/// metric something to measure) instead of per-step flicker.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashWindows {
    seed: u64,
    rate: f64,
    window: u64,
}

impl CrashWindows {
    /// Crash model: per-window probability `rate`, window length
    /// `window` steps (must be nonzero).
    #[must_use]
    pub fn new(seed: u64, rate: f64, window: u64) -> Self {
        assert!(window > 0, "crash window must be positive");
        CrashWindows { seed, rate, window }
    }
}

impl FaultModel for CrashWindows {
    fn name(&self) -> &'static str {
        "crash-windows"
    }

    fn is_noop(&self) -> bool {
        self.rate <= 0.0
    }

    fn is_crashed(&self, proc: usize, step: u64) -> bool {
        hash_chance(
            window_hash(self.seed, SALT_CRASH, proc, step, self.window),
            self.rate,
        )
    }
}

/// Stalled ("slow") processors: same windowing as [`CrashWindows`],
/// but a stalled processor only stops *consuming* — it still receives
/// generated tasks and still participates in balancing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StalledProcs {
    seed: u64,
    rate: f64,
    window: u64,
}

impl StalledProcs {
    /// Stall model: per-window probability `rate`, window length
    /// `window` steps (must be nonzero).
    #[must_use]
    pub fn new(seed: u64, rate: f64, window: u64) -> Self {
        assert!(window > 0, "stall window must be positive");
        StalledProcs { seed, rate, window }
    }
}

impl FaultModel for StalledProcs {
    fn name(&self) -> &'static str {
        "stalled-procs"
    }

    fn is_noop(&self) -> bool {
        self.rate <= 0.0
    }

    fn is_stalled(&self, proc: usize, step: u64) -> bool {
        hash_chance(
            window_hash(self.seed, SALT_STALL, proc, step, self.window),
            self.rate,
        )
    }
}

/// A compiled per-run fault schedule: the composite of loss, delay,
/// crash, and stall channels, all keyed on one seed derived from
/// `(run seed, fault seed)`. This is what a [`FaultConfig`] builds and
/// what the engine actually consults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    loss: Bernoulli,
    delay: BoundedDelay,
    crash: CrashWindows,
    stall: StalledProcs,
    noop: bool,
}

impl FaultPlan {
    /// Compiles `cfg` against `run_seed`. Prefer
    /// [`FaultConfig::build`], which validates first.
    #[must_use]
    pub fn new(cfg: &FaultConfig, run_seed: u64) -> Self {
        let seed = fault_hash(run_seed, &[cfg.fault_seed, SALT_PLAN]);
        FaultPlan {
            seed,
            loss: Bernoulli::new(seed, cfg.loss_rate),
            delay: BoundedDelay::new(seed, cfg.delay_rate, cfg.max_delay),
            crash: CrashWindows::new(seed, cfg.crash_rate, cfg.crash_window.max(1)),
            stall: StalledProcs::new(seed, cfg.stall_rate, cfg.stall_window.max(1)),
            noop: cfg.is_reliable(),
        }
    }

    /// The no-op plan.
    #[must_use]
    pub fn reliable() -> Self {
        FaultPlan::new(&FaultConfig::reliable(), 0)
    }
}

impl FaultModel for FaultPlan {
    fn name(&self) -> &'static str {
        "fault-plan"
    }

    fn is_noop(&self) -> bool {
        self.noop
    }

    fn drop_message(&self, ctx: &MsgCtx) -> bool {
        self.loss.drop_message(ctx)
    }

    fn message_delay(&self, ctx: &MsgCtx) -> u32 {
        self.delay.message_delay(ctx)
    }

    fn is_crashed(&self, proc: usize, step: u64) -> bool {
        self.crash.is_crashed(proc, step)
    }

    fn is_stalled(&self, proc: usize, step: u64) -> bool {
        self.stall.is_stalled(proc, step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsgKind;

    fn ctx(nonce: u64, round: u32, request: u32, query: u32, kind: MsgKind) -> MsgCtx {
        MsgCtx {
            nonce,
            round,
            request,
            query,
            kind,
        }
    }

    #[test]
    fn loss_frequency_tracks_rate() {
        let m = Bernoulli::new(7, 0.1);
        let drops = (0..50_000u32)
            .filter(|&i| m.drop_message(&ctx(1, 0, i, 0, MsgKind::Query)))
            .count();
        let freq = drops as f64 / 50_000.0;
        assert!((freq - 0.1).abs() < 0.01, "observed {freq}");
    }

    #[test]
    fn loss_is_independent_per_round_and_kind() {
        let m = Bernoulli::new(7, 0.5);
        // The same (request, query) must be able to fail in one round
        // and succeed in another, and queries/accepts must use
        // independent coins.
        let rounds: Vec<bool> = (0..64)
            .map(|r| m.drop_message(&ctx(1, r, 3, 1, MsgKind::Query)))
            .collect();
        assert!(rounds.iter().any(|&d| d) && rounds.iter().any(|&d| !d));
        let q: Vec<bool> = (0..64)
            .map(|i| m.drop_message(&ctx(1, 0, i, 0, MsgKind::Query)))
            .collect();
        let a: Vec<bool> = (0..64)
            .map(|i| m.drop_message(&ctx(1, 0, i, 0, MsgKind::Accept)))
            .collect();
        assert_ne!(q, a);
    }

    #[test]
    fn delay_is_bounded_and_sometimes_zero() {
        let m = BoundedDelay::new(3, 0.5, 3);
        let delays: Vec<u32> = (0..1000u32)
            .map(|i| m.message_delay(&ctx(2, 0, i, 0, MsgKind::Query)))
            .collect();
        assert!(delays.iter().all(|&d| d <= 3));
        assert!(delays.contains(&0));
        assert!(delays.iter().any(|&d| d > 0));
    }

    #[test]
    fn crashes_are_stable_within_a_window() {
        let m = CrashWindows::new(11, 0.3, 100);
        for p in 0..50 {
            let w0 = m.is_crashed(p, 0);
            for s in 1..100 {
                assert_eq!(m.is_crashed(p, s), w0, "proc {p} flickered at {s}");
            }
        }
        // Across many windows, the crash frequency tracks the rate.
        let downs = (0..20_000u64).filter(|&w| m.is_crashed(1, w * 100)).count();
        let freq = downs as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "observed {freq}");
    }

    #[test]
    fn crash_and_stall_channels_are_independent() {
        let cfg = FaultConfig::reliable()
            .with_crashes(0.5, 10)
            .with_stalls(0.5, 10);
        let plan = cfg.build(5);
        let crashes: Vec<bool> = (0..100).map(|p| plan.is_crashed(p, 0)).collect();
        let stalls: Vec<bool> = (0..100).map(|p| plan.is_stalled(p, 0)).collect();
        assert_ne!(crashes, stalls);
    }

    #[test]
    fn plan_is_deterministic_in_seed_pair() {
        let cfg = FaultConfig::reliable().with_loss(0.2).with_seed(4);
        let a = cfg.build(99);
        let b = cfg.build(99);
        assert_eq!(a, b);
        let c = ctx(8, 2, 5, 1, MsgKind::Accept);
        assert_eq!(a.drop_message(&c), b.drop_message(&c));
        // Different fault seed, same run seed: different schedule.
        let other = FaultConfig::reliable()
            .with_loss(0.2)
            .with_seed(5)
            .build(99);
        let diverges = (0..256u32).any(|i| {
            a.drop_message(&ctx(8, 0, i, 0, MsgKind::Query))
                != other.drop_message(&ctx(8, 0, i, 0, MsgKind::Query))
        });
        assert!(diverges);
    }

    #[test]
    fn reliable_plan_is_noop() {
        assert!(FaultPlan::reliable().is_noop());
    }
}
