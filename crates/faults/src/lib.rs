//! Deterministic fault injection for the pcrlb simulator.
//!
//! The paper's collision protocol (Lemmas 6–7) assumes perfectly
//! reliable synchronous communication. This crate supplies the
//! machinery to *break* that assumption in a controlled way: message
//! loss, bounded message delay, processor crash/recover windows, and
//! stalled ("slow") processors, so the degradation of the Theorem 1
//! max-load bound can be measured empirically.
//!
//! # Determinism contract
//!
//! Every fault decision is a **pure function** of the fault seed and
//! the coordinates of the event it applies to — there is no fault RNG
//! *stream* anywhere. A message drop depends only on
//! `(seed, game nonce, round, request, query, kind)`; a crash depends
//! only on `(seed, processor, step window)`. Two consequences:
//!
//! 1. The sequential, scoped-thread, and worker-pool backends make
//!    identical fault decisions without sharing any state, because a
//!    pure hash needs no synchronization and no draw ordering.
//! 2. The fault layer consumes **zero** draws from the simulation's
//!    RNG streams, so the `Reliable` no-op model is bit-identical to
//!    not having a fault layer at all.
//!
//! The crate is a dependency leaf (the sim layer depends on it, not
//! vice versa), so it carries its own SplitMix64-finalizer hash rather
//! than reusing the simulator's.

mod config;
mod plan;

pub use config::{FaultConfig, FaultConfigError};
pub use plan::{Bernoulli, BoundedDelay, CrashWindows, FaultPlan, StalledProcs};

use std::fmt;

/// SplitMix64 finalizer: the standard 64-bit avalanche mix.
#[inline]
#[must_use]
fn fin64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless keyed hash: folds `words` into `key` through the
/// SplitMix64 finalizer. This is the root primitive behind every fault
/// decision — being a pure function of its arguments is what makes the
/// fault schedule identical across execution backends.
#[inline]
#[must_use]
pub fn fault_hash(key: u64, words: &[u64]) -> u64 {
    let mut h = key ^ 0xD6E8_FEB8_6659_FD93;
    for &w in words {
        h = fin64(h.wrapping_add(w).wrapping_add(0x9E37_79B9_7F4A_7C15));
    }
    fin64(h)
}

/// Bernoulli trial driven by a hash value instead of an RNG draw:
/// true with probability `p` over uniformly distributed `h`. Uses the
/// same 53-bit `[0,1)` convention as the simulator's generator.
#[inline]
#[must_use]
pub fn hash_chance(h: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
}

/// The kind of protocol message a fault decision applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// A collision-game query (request → target).
    Query,
    /// A collision-game acknowledgement (target → request).
    Accept,
    /// An id-message carrying a match back up the request tree.
    IdMessage,
}

impl MsgKind {
    #[inline]
    fn tag(self) -> u64 {
        match self {
            MsgKind::Query => 1,
            MsgKind::Accept => 2,
            MsgKind::IdMessage => 3,
        }
    }
}

/// Coordinates of a single protocol message: everything a
/// [`FaultModel`] may condition a drop/delay decision on. The `nonce`
/// distinguishes games (and phases) so that re-sends of the same
/// `(request, query)` pair in different games fail independently.
#[derive(Clone, Copy, Debug)]
pub struct MsgCtx {
    /// Per-game nonce (advanced by the balancer between games).
    pub nonce: u64,
    /// Game round the message is sent in.
    pub round: u32,
    /// Index of the request within the game.
    pub request: u32,
    /// Index of the query within the request (or child slot for
    /// id-messages).
    pub query: u32,
    /// Message kind.
    pub kind: MsgKind,
}

impl MsgCtx {
    /// Packs the coordinates into hash words.
    #[inline]
    #[must_use]
    pub fn words(&self) -> [u64; 3] {
        [
            self.nonce,
            (u64::from(self.round) << 32) | self.kind.tag(),
            (u64::from(self.request) << 32) | u64::from(self.query),
        ]
    }
}

/// A fault model: pure predicates over message coordinates and
/// processor/step pairs. All methods take `&self` and must be pure —
/// the engine may evaluate them from any thread, in any order, any
/// number of times, and expects the same answer every time.
pub trait FaultModel: Send + Sync + fmt::Debug {
    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// True if this model never injects anything. The engine skips the
    /// fault layer entirely for no-op models, which is what makes
    /// `Reliable` bit-identical to having no fault layer at all.
    fn is_noop(&self) -> bool {
        false
    }

    /// Should this message be dropped in flight?
    fn drop_message(&self, _ctx: &MsgCtx) -> bool {
        false
    }

    /// Extra rounds this message spends in flight (0 = same-round
    /// delivery, the reliable synchronous default).
    fn message_delay(&self, _ctx: &MsgCtx) -> u32 {
        0
    }

    /// Is processor `proc` crashed at `step`? A crashed processor's
    /// queue is frozen: it neither generates nor consumes tasks and is
    /// excluded from balancing until it recovers.
    fn is_crashed(&self, _proc: usize, _step: u64) -> bool {
        false
    }

    /// Is processor `proc` stalled at `step`? A stalled processor
    /// still receives newly generated tasks but consumes nothing.
    fn is_stalled(&self, _proc: usize, _step: u64) -> bool {
        false
    }

    /// Transport-level hook: should the **physical frame** carrying
    /// the message with these coordinates be dropped on the wire?
    ///
    /// The default delegates to [`FaultModel::drop_message`]: because
    /// every fault decision is a pure hash of the same coordinates,
    /// the transport and the protocol simulation reach the *same*
    /// verdict independently — a frame vanishes on the wire exactly
    /// when the logical layer already simulated its loss, which is
    /// what keeps a lossy message-passing run bit-identical to the
    /// sequential backend. Override only for transport-only fault
    /// models that drop frames the protocol layer does not know about
    /// (which will, by design, break sequential equivalence).
    fn frame_dropped(&self, ctx: &MsgCtx) -> bool {
        self.drop_message(ctx)
    }

    /// Transport-level hook: extra delivery rounds for the physical
    /// frame with these coordinates. Mirrors
    /// [`FaultModel::message_delay`] the same way
    /// [`FaultModel::frame_dropped`] mirrors drops. The synchronous
    /// net runtime delivers all of a step's frames within the step, so
    /// delay shows up as the logical round stamp on the frame rather
    /// than physical reordering.
    fn frame_delay(&self, ctx: &MsgCtx) -> u32 {
        self.message_delay(ctx)
    }
}

/// The no-op fault model: perfectly reliable messaging, no crashes,
/// no stalls. This is the default everywhere and costs nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Reliable;

impl FaultModel for Reliable {
    fn name(&self) -> &'static str {
        "reliable"
    }

    fn is_noop(&self) -> bool {
        true
    }
}

/// A fault model bound to one collision game's nonce: the view the
/// game implementations use to make per-message decisions.
#[derive(Clone, Copy, Debug)]
pub struct GameFaults<'a> {
    /// The underlying model.
    pub model: &'a dyn FaultModel,
    /// This game's nonce.
    pub nonce: u64,
}

impl<'a> GameFaults<'a> {
    /// Binds `model` to a game nonce.
    #[must_use]
    pub fn new(model: &'a dyn FaultModel, nonce: u64) -> Self {
        GameFaults { model, nonce }
    }

    /// Is the message with these coordinates dropped?
    #[inline]
    #[must_use]
    pub fn dropped(&self, round: u32, request: u32, query: u32, kind: MsgKind) -> bool {
        self.model.drop_message(&MsgCtx {
            nonce: self.nonce,
            round,
            request,
            query,
            kind,
        })
    }

    /// Delivery delay (in rounds) for the message with these
    /// coordinates; 0 means same-round delivery.
    #[inline]
    #[must_use]
    pub fn delay(&self, round: u32, request: u32, query: u32, kind: MsgKind) -> u32 {
        self.model.message_delay(&MsgCtx {
            nonce: self.nonce,
            round,
            request,
            query,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_hash_is_deterministic_and_sensitive() {
        let a = fault_hash(1, &[2, 3, 4]);
        assert_eq!(a, fault_hash(1, &[2, 3, 4]));
        assert_ne!(a, fault_hash(2, &[2, 3, 4]));
        assert_ne!(a, fault_hash(1, &[2, 3, 5]));
        assert_ne!(a, fault_hash(1, &[3, 2, 4]));
    }

    #[test]
    fn hash_chance_extremes_and_frequency() {
        assert!(!hash_chance(0, 0.0));
        assert!(hash_chance(u64::MAX, 1.0));
        let hits = (0..100_000u64)
            .filter(|&i| hash_chance(fault_hash(7, &[i]), 0.3))
            .count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "observed {freq}");
    }

    #[test]
    fn msg_ctx_words_distinguish_kinds() {
        let mk = |kind| MsgCtx {
            nonce: 9,
            round: 1,
            request: 2,
            query: 3,
            kind,
        };
        assert_ne!(mk(MsgKind::Query).words(), mk(MsgKind::Accept).words());
        assert_ne!(mk(MsgKind::Accept).words(), mk(MsgKind::IdMessage).words());
    }

    #[test]
    fn reliable_is_noop() {
        let r = Reliable;
        assert!(r.is_noop());
        let ctx = MsgCtx {
            nonce: 0,
            round: 0,
            request: 0,
            query: 0,
            kind: MsgKind::Query,
        };
        assert!(!r.drop_message(&ctx));
        assert_eq!(r.message_delay(&ctx), 0);
        assert!(!r.is_crashed(0, 0));
        assert!(!r.is_stalled(0, 0));
    }

    #[test]
    fn game_faults_forwards_coordinates() {
        #[derive(Debug)]
        struct DropEven;
        impl FaultModel for DropEven {
            fn name(&self) -> &'static str {
                "drop-even"
            }
            fn drop_message(&self, ctx: &MsgCtx) -> bool {
                ctx.request.is_multiple_of(2)
            }
        }
        let gf = GameFaults::new(&DropEven, 5);
        assert!(gf.dropped(0, 2, 0, MsgKind::Query));
        assert!(!gf.dropped(0, 3, 0, MsgKind::Query));
    }
}
