//! User-facing fault configuration: rates and windows, validated, and
//! compiled into a [`FaultPlan`] together with the run seed.

use crate::plan::FaultPlan;
use std::fmt;

/// Why a [`FaultConfig`] was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultConfigError {
    /// A probability was outside `[0, 1)`. Rates of exactly 1 are
    /// rejected because a channel that never delivers (or a machine
    /// that is always down) has no self-healing story to measure.
    RateOutOfRange(&'static str),
    /// A crash/stall window length was zero while its rate was
    /// positive.
    ZeroWindow(&'static str),
    /// `delay_rate` was positive but `max_delay` was zero.
    ZeroDelay,
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultConfigError::RateOutOfRange(which) => {
                write!(f, "{which} must lie in [0, 1)")
            }
            FaultConfigError::ZeroWindow(which) => {
                write!(f, "{which} window must be positive when its rate is")
            }
            FaultConfigError::ZeroDelay => {
                write!(f, "max_delay must be positive when delay_rate is")
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// Declarative fault schedule for a run. All rates default to zero
/// (no faults); a default config is exactly the `Reliable` model.
///
/// The same config with the same `(run seed, fault_seed)` always
/// produces the same fault schedule — see the crate docs for the
/// determinism contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault schedule, mixed with the run seed. Varying
    /// it re-rolls the faults while keeping the workload identical.
    pub fault_seed: u64,
    /// Probability that any protocol message is lost in flight.
    pub loss_rate: f64,
    /// Probability that a (non-dropped) message is delayed.
    pub delay_rate: f64,
    /// Maximum delay, in game rounds, for a delayed message.
    pub max_delay: u32,
    /// Probability that a processor is down during any given crash
    /// window.
    pub crash_rate: f64,
    /// Crash window length in steps: crash/recover transitions happen
    /// only at multiples of this.
    pub crash_window: u64,
    /// Probability that a processor is stalled (not consuming) during
    /// any given stall window.
    pub stall_rate: f64,
    /// Stall window length in steps.
    pub stall_window: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            fault_seed: 0,
            loss_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 0,
            crash_rate: 0.0,
            crash_window: 64,
            stall_rate: 0.0,
            stall_window: 64,
        }
    }
}

impl FaultConfig {
    /// The no-fault configuration (same as `Default`).
    #[must_use]
    pub fn reliable() -> Self {
        FaultConfig::default()
    }

    /// Sets the fault seed.
    #[must_use]
    pub fn with_seed(mut self, fault_seed: u64) -> Self {
        self.fault_seed = fault_seed;
        self
    }

    /// Sets Bernoulli message loss.
    #[must_use]
    pub fn with_loss(mut self, loss_rate: f64) -> Self {
        self.loss_rate = loss_rate;
        self
    }

    /// Sets bounded message delay: with probability `rate` a message
    /// takes `1..=max_delay` extra rounds to arrive.
    #[must_use]
    pub fn with_delays(mut self, rate: f64, max_delay: u32) -> Self {
        self.delay_rate = rate;
        self.max_delay = max_delay;
        self
    }

    /// Sets crash/recover windows: each processor is independently
    /// down for any given `window`-step interval with probability
    /// `rate`.
    #[must_use]
    pub fn with_crashes(mut self, rate: f64, window: u64) -> Self {
        self.crash_rate = rate;
        self.crash_window = window;
        self
    }

    /// Sets stall windows: each processor independently stops
    /// consuming (but keeps accumulating) for any given `window`-step
    /// interval with probability `rate`.
    #[must_use]
    pub fn with_stalls(mut self, rate: f64, window: u64) -> Self {
        self.stall_rate = rate;
        self.stall_window = window;
        self
    }

    /// True if this config injects nothing.
    #[must_use]
    pub fn is_reliable(&self) -> bool {
        self.loss_rate <= 0.0
            && self.delay_rate <= 0.0
            && self.crash_rate <= 0.0
            && self.stall_rate <= 0.0
    }

    /// Checks rates and windows for sanity.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        let rate_ok = |r: f64| (0.0..1.0).contains(&r);
        if !rate_ok(self.loss_rate) {
            return Err(FaultConfigError::RateOutOfRange("loss_rate"));
        }
        if !rate_ok(self.delay_rate) {
            return Err(FaultConfigError::RateOutOfRange("delay_rate"));
        }
        if !rate_ok(self.crash_rate) {
            return Err(FaultConfigError::RateOutOfRange("crash_rate"));
        }
        if !rate_ok(self.stall_rate) {
            return Err(FaultConfigError::RateOutOfRange("stall_rate"));
        }
        if self.delay_rate > 0.0 && self.max_delay == 0 {
            return Err(FaultConfigError::ZeroDelay);
        }
        if self.crash_rate > 0.0 && self.crash_window == 0 {
            return Err(FaultConfigError::ZeroWindow("crash"));
        }
        if self.stall_rate > 0.0 && self.stall_window == 0 {
            return Err(FaultConfigError::ZeroWindow("stall"));
        }
        Ok(())
    }

    /// Compiles the config into a concrete per-run schedule by mixing
    /// in the run seed. Panics if the config fails [`validate`]
    /// (validate first to report the error instead).
    ///
    /// [`validate`]: FaultConfig::validate
    #[must_use]
    pub fn build(&self, run_seed: u64) -> FaultPlan {
        self.validate().expect("invalid FaultConfig");
        FaultPlan::new(self, run_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultModel;

    #[test]
    fn default_is_reliable_and_valid() {
        let c = FaultConfig::default();
        assert!(c.is_reliable());
        assert!(c.validate().is_ok());
        assert!(c.build(42).is_noop());
    }

    #[test]
    fn builders_compose() {
        let c = FaultConfig::reliable()
            .with_seed(9)
            .with_loss(0.05)
            .with_delays(0.1, 2)
            .with_crashes(0.01, 128)
            .with_stalls(0.02, 32);
        assert!(!c.is_reliable());
        assert!(c.validate().is_ok());
        assert_eq!(c.fault_seed, 9);
        assert_eq!(c.max_delay, 2);
    }

    #[test]
    fn validation_rejects_bad_rates_and_windows() {
        assert_eq!(
            FaultConfig::reliable().with_loss(1.0).validate(),
            Err(FaultConfigError::RateOutOfRange("loss_rate"))
        );
        assert_eq!(
            FaultConfig::reliable().with_loss(-0.1).validate(),
            Err(FaultConfigError::RateOutOfRange("loss_rate"))
        );
        assert_eq!(
            FaultConfig::reliable().with_crashes(0.5, 0).validate(),
            Err(FaultConfigError::ZeroWindow("crash"))
        );
        assert_eq!(
            FaultConfig::reliable().with_stalls(0.5, 0).validate(),
            Err(FaultConfigError::ZeroWindow("stall"))
        );
        assert_eq!(
            FaultConfig::reliable().with_delays(0.5, 0).validate(),
            Err(FaultConfigError::ZeroDelay)
        );
    }

    #[test]
    fn error_messages_name_the_field() {
        let e = FaultConfig::reliable()
            .with_loss(2.0)
            .validate()
            .unwrap_err();
        assert!(e.to_string().contains("loss_rate"));
    }
}
