//! Property-based tests of the balancer's configuration space and
//! run-time invariants.

use pcrlb_core::{BalancerConfig, Geometric, Multi, Single, ThresholdBalancer};
use pcrlb_sim::{Engine, LoadModel, ProcId, SimRng, Step, Unbalanced};
use proptest::prelude::*;

/// A silent model: load only moves via balancing, so conservation is
/// directly observable.
#[derive(Clone, Copy)]
struct Silent;

impl LoadModel for Silent {
    fn generate(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
        0
    }
    fn consume(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
        0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every `from_t` configuration with sensible inputs validates, and
    /// the derived constants keep the paper's ordering
    /// light + transfer < heavy <= T.
    #[test]
    fn derived_configs_validate(n_exp in 3u32..20, t in 16usize..512) {
        let n = 1usize << n_exp;
        let cfg = BalancerConfig::from_t(n, t);
        prop_assert!(cfg.validate().is_ok(), "n={} t={}: {:?}", n, t, cfg.validate());
        prop_assert!(cfg.light_threshold + cfg.transfer_amount < cfg.heavy_threshold);
        prop_assert!(cfg.heavy_threshold <= cfg.t);
        prop_assert!(cfg.phase_length >= 1);
    }

    /// Balancing conserves load exactly: with a silent model, the total
    /// never changes no matter how transfers fly.
    #[test]
    fn balancing_conserves_total_load(
        seed in any::<u64>(),
        spikes in proptest::collection::vec((0usize..64, 1usize..200), 1..6),
        steps in 1u64..120,
    ) {
        let n = 64;
        let mut e = Engine::new(n, seed, Silent, ThresholdBalancer::paper(n));
        for &(p, amount) in &spikes {
            e.world_mut().inject(p, amount);
        }
        let before = e.world().total_load();
        e.run(steps);
        prop_assert_eq!(e.world().total_load(), before);
    }

    /// Balancing never pushes a light receiver above the heavy
    /// threshold in a silent system (the receiver-overflow invariant
    /// validated by the config, observed at run time).
    #[test]
    fn receivers_never_become_heavy_in_silent_system(
        seed in any::<u64>(),
        spike in 100usize..2000,
    ) {
        let n = 128;
        let cfg = BalancerConfig::paper(n);
        let heavy_thr = cfg.heavy_threshold;
        let mut e = Engine::new(n, seed, Silent, ThresholdBalancer::new(cfg));
        e.world_mut().inject(0, spike);
        for _ in 0..40 {
            e.step();
            for p in 1..n {
                // Processors other than the spiked one gain load only
                // through transfers; a single transfer lands at most
                // light + transfer < heavy, and a receiver is reserved
                // once per phase.
                prop_assert!(
                    e.world().load(p) < heavy_thr || e.world().load(p) <= spike / 2,
                    "receiver {} reached {} (heavy threshold {})",
                    p, e.world().load(p), heavy_thr
                );
            }
        }
    }

    /// The system stays stable (bounded per-processor load) under every
    /// generation model for arbitrary seeds.
    #[test]
    fn stability_across_models(seed in any::<u64>()) {
        let n = 256;
        let steps = 800;
        let bound = 40.0; // far above any steady state at this scale

        let mut e1 = Engine::new(n, seed, Single::default_paper(), ThresholdBalancer::paper(n));
        e1.run(steps);
        prop_assert!((e1.world().total_load() as f64) < bound * n as f64);

        let mut e2 = Engine::new(
            n, seed, Geometric::new(3).unwrap(), ThresholdBalancer::paper(n));
        e2.run(steps);
        prop_assert!((e2.world().total_load() as f64) < bound * n as f64);

        let mut e3 = Engine::new(
            n, seed, Multi::new(vec![0.3, 0.1]).unwrap(), ThresholdBalancer::paper(n));
        e3.run(steps);
        prop_assert!((e3.world().total_load() as f64) < bound * n as f64);
    }

    /// Balanced total load never exceeds the unbalanced system's by
    /// more than slack, on identical arrival streams (Lemma 3 shape).
    #[test]
    fn balanced_not_worse_than_unbalanced(seed in any::<u64>()) {
        let n = 256;
        let steps = 600;
        let mut bal = Engine::new(n, seed, Single::default_paper(), ThresholdBalancer::paper(n));
        let mut unbal = Engine::new(n, seed, Single::default_paper(), Unbalanced);
        bal.run(steps);
        unbal.run(steps);
        prop_assert!(
            bal.world().total_load() <= unbal.world().total_load() + n as u64 / 4,
            "balanced {} vs unbalanced {}",
            bal.world().total_load(),
            unbal.world().total_load()
        );
    }
}
