//! The paper's randomized load-generation models (§1.2).
//!
//! * [`Single`] — each step, generate one task with probability `p` and
//!   consume one with probability `q = p + ε` (geometrically distributed
//!   task running times). The `ε > 0` gap is what makes a steady state
//!   exist.
//! * [`Geometric`] — generate `i ∈ 1..=k` tasks with probability
//!   `2^-(i+1)` (no task with the remaining `1/2 + 2^-(k+1)`), consume
//!   one task deterministically.
//! * [`Multi`] — generate `i` tasks with probability `p(i)` for
//!   `i < c`, expected generation below one task/step, consume one task
//!   deterministically.
//!
//! All three give expected overall system load `O(n)`; the paper proves
//! max-load bounds of `T`, `k·T` and `c·T` respectively (with
//! `T = (log log n)^2`).

use pcrlb_sim::{LoadModel, ProcId, SimRng, Step};
use std::fmt;

/// Errors constructing a generation model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Probability out of `[0, 1]`.
    BadProbability(f64),
    /// `Single` requires `q > p` (i.e. `ε > 0`) for a steady state.
    NoSteadyState {
        /// Generation probability.
        p: f64,
        /// Consumption probability.
        q: f64,
    },
    /// `Geometric` requires `k >= 1`.
    ZeroK,
    /// `Multi` probabilities must sum to at most 1.
    ProbabilitiesExceedOne(f64),
    /// `Multi` expected generation must be below 1 task/step.
    ExpectationTooHigh(f64),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadProbability(p) => write!(f, "probability {p} outside [0,1]"),
            ModelError::NoSteadyState { p, q } => {
                write!(f, "need q > p for a steady state (p={p}, q={q})")
            }
            ModelError::ZeroK => write!(f, "Geometric requires k >= 1"),
            ModelError::ProbabilitiesExceedOne(s) => {
                write!(f, "Multi probabilities sum to {s} > 1")
            }
            ModelError::ExpectationTooHigh(e) => {
                write!(f, "Multi expected generation {e} >= 1 task/step")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// The `Single` model: Bernoulli generation `p`, Bernoulli consumption
/// `q = p + ε`.
///
/// ```
/// use pcrlb_core::Single;
///
/// let m = Single::new(0.4, 0.5).unwrap();
/// // Lemma 2's chain: gain p(1-q) = 0.2, loss q(1-p) = 0.3, so the
/// // unbalanced steady state decays with ratio 2/3 per load level.
/// assert!((m.decay_ratio() - 2.0 / 3.0).abs() < 1e-12);
/// // epsilon = 0 has no steady state and is rejected:
/// assert!(Single::new(0.5, 0.5).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Single {
    /// Per-step generation probability.
    pub p: f64,
    /// Per-step consumption probability (`> p`).
    pub q: f64,
}

impl Single {
    /// Creates the model, validating `0 ≤ p < q ≤ 1`.
    pub fn new(p: f64, q: f64) -> Result<Self, ModelError> {
        for v in [p, q] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ModelError::BadProbability(v));
            }
        }
        if q <= p {
            return Err(ModelError::NoSteadyState { p, q });
        }
        Ok(Single { p, q })
    }

    /// The paper's running example scale: `p = 0.4`, `ε = 0.1`.
    pub fn default_paper() -> Self {
        Single { p: 0.4, q: 0.5 }
    }

    /// Per-step probability the (unbalanced) load *increases*:
    /// `p_g = p(1−q)` (a task arrives and none is consumed).
    pub fn gain_probability(&self) -> f64 {
        self.p * (1.0 - self.q)
    }

    /// Per-step probability the load *decreases* (when positive):
    /// `p_l = q(1−p)`.
    pub fn loss_probability(&self) -> f64 {
        self.q * (1.0 - self.p)
    }

    /// The geometric decay ratio of the steady-state load distribution
    /// (Lemma 2): `P(load = i) ∝ (p_g / p_l)^i`.
    pub fn decay_ratio(&self) -> f64 {
        self.gain_probability() / self.loss_probability()
    }
}

impl LoadModel for Single {
    fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
        usize::from(rng.chance(self.p))
    }

    fn consume(&self, _: ProcId, _: Step, load: usize, rng: &mut SimRng) -> usize {
        usize::from(load > 0 && rng.chance(self.q))
    }

    fn arrival_rate(&self) -> Option<f64> {
        Some(self.p)
    }

    fn name(&self) -> &'static str {
        "single"
    }
}

/// The `Geometric` model: `i ∈ 1..=k` tasks w.p. `2^-(i+1)`, one task
/// consumed deterministically per step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometric {
    /// Maximum tasks generated per step.
    pub k: usize,
}

impl Geometric {
    /// Creates the model; `k >= 1`.
    pub fn new(k: usize) -> Result<Self, ModelError> {
        if k == 0 {
            return Err(ModelError::ZeroK);
        }
        Ok(Geometric { k })
    }

    /// Expected tasks generated per step:
    /// `Σ_{i=1..k} i·2^-(i+1)` (→ 1 as `k → ∞`, always `< 1`).
    pub fn expected_generation(&self) -> f64 {
        (1..=self.k)
            .map(|i| i as f64 * 0.5f64.powi(i as i32 + 1))
            .sum()
    }
}

impl LoadModel for Geometric {
    fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
        // P(i) = 2^-(i+1) for i in 1..=k; walk the cumulative
        // distribution with one uniform draw.
        let u = rng.f64();
        let mut acc = 0.0;
        for i in 1..=self.k {
            acc += 0.5f64.powi(i as i32 + 1);
            if u < acc {
                return i;
            }
        }
        0
    }

    fn consume(&self, _: ProcId, _: Step, load: usize, _: &mut SimRng) -> usize {
        usize::from(load > 0)
    }

    fn arrival_rate(&self) -> Option<f64> {
        Some(self.expected_generation())
    }

    fn name(&self) -> &'static str {
        "geometric"
    }
}

/// The `Multi` model: an arbitrary bounded generation distribution with
/// expectation below one, deterministic unit consumption.
#[derive(Debug, Clone, PartialEq)]
pub struct Multi {
    /// `probs[i]` = probability of generating exactly `i+1` tasks;
    /// generating 0 tasks has the remaining probability.
    probs: Vec<f64>,
    expected: f64,
}

impl Multi {
    /// Creates the model from `P(generate i+1 tasks) = probs[i]`.
    pub fn new(probs: Vec<f64>) -> Result<Self, ModelError> {
        let mut sum = 0.0;
        let mut expected = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) {
                return Err(ModelError::BadProbability(p));
            }
            sum += p;
            expected += (i + 1) as f64 * p;
        }
        if sum > 1.0 + 1e-12 {
            return Err(ModelError::ProbabilitiesExceedOne(sum));
        }
        if expected >= 1.0 {
            return Err(ModelError::ExpectationTooHigh(expected));
        }
        Ok(Multi { probs, expected })
    }

    /// Maximum tasks generated in one step (the paper's `c`).
    pub fn max_generation(&self) -> usize {
        self.probs.len()
    }

    /// Expected tasks generated per step.
    pub fn expected_generation(&self) -> f64 {
        self.expected
    }
}

impl LoadModel for Multi {
    fn generate(&self, _: ProcId, _: Step, _: usize, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i + 1;
            }
        }
        0
    }

    fn consume(&self, _: ProcId, _: Step, load: usize, _: &mut SimRng) -> usize {
        usize::from(load > 0)
    }

    fn arrival_rate(&self) -> Option<f64> {
        Some(self.expected)
    }

    fn name(&self) -> &'static str {
        "multi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcrlb_sim::{Engine, Unbalanced};

    #[test]
    fn single_validation() {
        assert!(Single::new(0.4, 0.5).is_ok());
        assert!(matches!(
            Single::new(0.5, 0.5),
            Err(ModelError::NoSteadyState { .. })
        ));
        assert!(matches!(
            Single::new(-0.1, 0.5),
            Err(ModelError::BadProbability(_))
        ));
        assert!(matches!(
            Single::new(0.4, 1.2),
            Err(ModelError::BadProbability(_))
        ));
    }

    #[test]
    fn single_decay_ratio_below_one() {
        let m = Single::default_paper();
        assert!(m.decay_ratio() < 1.0, "steady state requires p_g < p_l");
        // p_g = 0.4*0.5 = 0.2, p_l = 0.5*0.6 = 0.3 => ratio 2/3.
        assert!((m.decay_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_generation_frequency() {
        let m = Single::default_paper();
        let mut rng = SimRng::new(1);
        let trials = 100_000;
        let gen: usize = (0..trials).map(|_| m.generate(0, 0, 0, &mut rng)).sum();
        let freq = gen as f64 / trials as f64;
        assert!((freq - 0.4).abs() < 0.01, "observed {freq}");
    }

    #[test]
    fn single_never_consumes_from_empty() {
        let m = Single::default_paper();
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            assert_eq!(m.consume(0, 0, 0, &mut rng), 0);
        }
    }

    #[test]
    fn single_system_load_is_linear_in_n() {
        // Lemma 2 scale check: expected load per processor is a small
        // constant (p_g/(p_l - p_g) = 2 for the default parameters).
        let mut e = Engine::new(512, 7, Single::default_paper(), Unbalanced);
        e.run(4000);
        let per_proc = e.world().total_load() as f64 / 512.0;
        assert!(per_proc < 6.0, "per-processor load {per_proc} not O(1)");
    }

    #[test]
    fn geometric_validation_and_expectation() {
        assert!(matches!(Geometric::new(0), Err(ModelError::ZeroK)));
        let g = Geometric::new(3).unwrap();
        // E = 1/4 + 2/8 + 3/16 = 0.6875
        assert!((g.expected_generation() - 0.6875).abs() < 1e-12);
        assert!(Geometric::new(30).unwrap().expected_generation() < 1.0);
    }

    #[test]
    fn geometric_distribution_matches() {
        let g = Geometric::new(4).unwrap();
        let mut rng = SimRng::new(3);
        let trials = 200_000;
        let mut counts = [0usize; 5];
        for _ in 0..trials {
            counts[g.generate(0, 0, 0, &mut rng)] += 1;
        }
        // P(1) = 1/4, P(2) = 1/8, P(3) = 1/16, P(4) = 1/32,
        // P(0) = 1 - 15/32 = 17/32.
        let expect = [17.0 / 32.0, 0.25, 0.125, 0.0625, 0.03125];
        for (i, &e) in expect.iter().enumerate() {
            let f = counts[i] as f64 / trials as f64;
            assert!((f - e).abs() < 0.01, "i={i}: {f} vs {e}");
        }
    }

    #[test]
    fn geometric_consumes_exactly_one_if_present() {
        let g = Geometric::new(2).unwrap();
        let mut rng = SimRng::new(4);
        assert_eq!(g.consume(0, 0, 5, &mut rng), 1);
        assert_eq!(g.consume(0, 0, 0, &mut rng), 0);
    }

    #[test]
    fn multi_validation() {
        assert!(Multi::new(vec![0.3, 0.2]).is_ok()); // E = 0.7
        assert!(matches!(
            Multi::new(vec![0.8, 0.4]),
            Err(ModelError::ProbabilitiesExceedOne(_))
        ));
        assert!(matches!(
            Multi::new(vec![0.0, 0.6]),
            Err(ModelError::ExpectationTooHigh(_)) // E = 1.2
        ));
        assert!(matches!(
            Multi::new(vec![1.5]),
            Err(ModelError::BadProbability(_))
        ));
        // Expectation exactly 1 is rejected too.
        assert!(matches!(
            Multi::new(vec![1.0]),
            Err(ModelError::ExpectationTooHigh(_))
        ));
    }

    #[test]
    fn multi_distribution_matches() {
        let m = Multi::new(vec![0.3, 0.1]).unwrap(); // P(1)=.3 P(2)=.1 P(0)=.6
        let mut rng = SimRng::new(5);
        let trials = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..trials {
            counts[m.generate(0, 0, 0, &mut rng)] += 1;
        }
        for (i, &e) in [0.6, 0.3, 0.1].iter().enumerate() {
            let f = counts[i] as f64 / trials as f64;
            assert!((f - e).abs() < 0.01, "i={i}: {f} vs {e}");
        }
        assert_eq!(m.max_generation(), 2);
        assert!((m.expected_generation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arrival_rates_reported() {
        assert_eq!(Single::default_paper().arrival_rate(), Some(0.4));
        assert!(Geometric::new(2).unwrap().arrival_rate().unwrap() < 1.0);
        assert!(Multi::new(vec![0.2]).unwrap().arrival_rate().unwrap() < 1.0);
    }

    #[test]
    fn model_names() {
        assert_eq!(Single::default_paper().name(), "single");
        assert_eq!(Geometric::new(1).unwrap().name(), "geometric");
        assert_eq!(Multi::new(vec![0.1]).unwrap().name(), "multi");
    }

    #[test]
    fn error_display() {
        assert!(Single::new(0.5, 0.4)
            .unwrap_err()
            .to_string()
            .contains("steady state"));
        assert!(Geometric::new(0)
            .unwrap_err()
            .to_string()
            .contains("k >= 1"));
    }
}
