//! The threshold balancing algorithm (paper §3, Figure 2).
//!
//! Time is divided into phases of `T/16` steps. At each phase boundary
//! every processor classifies itself from its *current* load:
//!
//! * **heavy** — load ≥ `T/2`: it starts a balancing-request tree;
//! * **light** — load ≤ `T/16`: it is *applicative* and may be reserved
//!   by at most one heavy processor this phase.
//!
//! All heavy processors search simultaneously via repeated collision
//! games ([`pcrlb_collision::BalanceForest`]); each matched pair moves
//! `T/4` tasks from the back of the heavy queue to the back of the
//! light queue. Unmatched heavy processors simply try again next phase —
//! Lemma 6 shows failures are rare, and the Main Theorem tolerates them.

use crate::config::BalancerConfig;
use crate::policy::{build_policy, CollisionPolicy};
use pcrlb_sim::{
    ring_distance, Complete, ControlKind, Event, MessageKind, MessageStats, PartnerPolicy,
    PolicySpec, ProcId, Step, Strategy, Topology, Trace, WireLog, World,
};
use std::collections::HashMap;
use std::sync::Arc;

// The per-phase report type lives in the simulation substrate so probes
// can receive it without depending on this crate; re-exported here for
// backwards compatibility.
pub use pcrlb_sim::PhaseReport;

/// Resolution of the requests-per-root histogram (values at or above
/// the cap share the last bucket).
const REQUEST_HIST_CAP: usize = 64;

/// Aggregate statistics over the whole run.
#[derive(Debug, Clone)]
pub struct BalancerStats {
    /// Phases executed.
    pub phases: u64,
    /// Sum over phases of the number of heavy processors.
    pub heavy_total: u64,
    /// Largest heavy count seen in any single phase.
    pub max_heavy_in_phase: usize,
    /// Heavy processors that found a partner.
    pub matched_total: u64,
    /// Heavy processors that failed to find a partner in their phase.
    pub failed_total: u64,
    /// Collision-game requests sent (Lemma 7 predicts
    /// `requests_total / heavy_total` is a constant).
    pub requests_total: u64,
    /// Collision games (tree levels) played.
    pub games_played: u64,
    /// Matches made by the §4.3 adversarial pre-round.
    pub preround_matches: u64,
    /// `requests_hist[r]` = heavy roots whose tree sent `r` requests
    /// (last bucket aggregates `>= REQUEST_HIST_CAP - 1`).
    pub requests_hist: Vec<u64>,
    /// Heavy searches that were retries (the processor had failed in
    /// an earlier phase). Only grows under
    /// [`BalancerConfig::retry_backoff`].
    pub retries_total: u64,
    /// Transfers skipped because an endpoint was crashed when the
    /// transfer came due — the heavy side's queue stays frozen until
    /// the processor recovers and is re-classified.
    pub transfers_frozen: u64,
    /// Processors excluded from a phase's classification because the
    /// fault plan had them crashed at the boundary step.
    pub crashed_skipped: u64,
    /// Sum of ring distances `min(|h-l|, n-|h-l|)` over all matched
    /// partner pairs — the locality cost of the partner policy.
    /// Divide by `matched_total` for the mean.
    pub partner_distance_sum: u64,
}

impl BalancerStats {
    fn new() -> Self {
        BalancerStats {
            phases: 0,
            heavy_total: 0,
            max_heavy_in_phase: 0,
            matched_total: 0,
            failed_total: 0,
            requests_total: 0,
            games_played: 0,
            preround_matches: 0,
            requests_hist: vec![0; REQUEST_HIST_CAP],
            retries_total: 0,
            transfers_frozen: 0,
            crashed_skipped: 0,
            partner_distance_sum: 0,
        }
    }

    /// Mean collision-game requests per heavy processor — the quantity
    /// Lemma 7 bounds by a constant. `None` before any heavy appeared.
    pub fn requests_per_heavy(&self) -> Option<f64> {
        (self.heavy_total > 0).then(|| self.requests_total as f64 / self.heavy_total as f64)
    }

    /// Fraction of heavy classifications that ended matched.
    pub fn match_rate(&self) -> Option<f64> {
        (self.heavy_total > 0).then(|| self.matched_total as f64 / self.heavy_total as f64)
    }

    /// Mean ring distance between matched partners — how far tasks
    /// travel under the active policy × topology. `None` before any
    /// match.
    pub fn mean_partner_distance(&self) -> Option<f64> {
        (self.matched_total > 0)
            .then(|| self.partner_distance_sum as f64 / self.matched_total as f64)
    }
}

/// A transfer decided at the phase boundary but executed when its
/// collision game would actually complete.
#[derive(Debug, Clone, Copy)]
struct PendingTransfer {
    from: ProcId,
    to: ProcId,
    due: Step,
}

/// A §5 streaming transfer: `per_step` tasks move each step until the
/// full block has been streamed.
#[derive(Debug, Clone, Copy)]
struct StreamingTransfer {
    from: ProcId,
    to: ProcId,
    remaining: usize,
    per_step: usize,
}

/// The paper's balancing algorithm, pluggable into
/// [`pcrlb_sim::Engine`] / [`pcrlb_sim::Runner`].
///
/// When the world has an observer attached (i.e. the run is driven by a
/// [`pcrlb_sim::Runner`] with probes), the balancer publishes one
/// [`PhaseReport`] per phase plus its trace events through the world's
/// observer sink, so `PhaseProbe` / `TraceProbe` work without any
/// balancer-side configuration.
pub struct ThresholdBalancer {
    cfg: BalancerConfig,
    /// How heavy processors find partners — the paper's collision
    /// protocol by default, swappable via [`Self::with_partner_policy`].
    policy: Box<dyn PartnerPolicy>,
    /// Which processors may balance with which — complete graph by
    /// default, swappable via [`Self::with_topology`].
    topology: Arc<dyn Topology>,
    /// Strategy name reported in experiment tables: the historical
    /// `"threshold-balancer"` for the default policy, the policy name
    /// after [`Self::with_partner_policy`].
    label: &'static str,
    phase: u64,
    stats: BalancerStats,
    reports: Vec<PhaseReport>,
    pending: Vec<PendingTransfer>,
    streams: Vec<StreamingTransfer>,
    trace: Option<Trace>,
    // Scratch buffers reused every phase.
    heavy_buf: Vec<ProcId>,
    light_buf: Vec<ProcId>,
    /// Consecutive failed searches per processor (retry backoff).
    retry_fails: Vec<u32>,
    /// First phase at which each processor may search again.
    retry_next: Vec<u64>,
}

impl ThresholdBalancer {
    /// Creates the balancer; the configuration is validated.
    ///
    /// # Panics
    /// Panics when `cfg` is invalid — configurations are produced by
    /// [`BalancerConfig`] constructors, so an invalid one is a caller
    /// bug, not an input condition.
    pub fn new(cfg: BalancerConfig) -> Self {
        cfg.validate().expect("invalid balancer configuration");
        ThresholdBalancer {
            policy: Box::new(CollisionPolicy::from_config(&cfg)),
            topology: Arc::new(Complete::new(cfg.n)),
            label: "threshold-balancer",
            phase: 0,
            stats: BalancerStats::new(),
            reports: Vec::new(),
            pending: Vec::new(),
            streams: Vec::new(),
            trace: None,
            heavy_buf: Vec::new(),
            light_buf: Vec::new(),
            retry_fails: vec![0; cfg.n],
            retry_next: vec![0; cfg.n],
            cfg,
        }
    }

    /// Replaces the partner-selection policy. The strategy name (and
    /// thus experiment-table labels) becomes the policy's name.
    ///
    /// # Panics
    /// Panics on an empty policy name (names label reports).
    #[must_use]
    pub fn with_partner_policy(mut self, policy: Box<dyn PartnerPolicy>) -> Self {
        assert!(!policy.name().is_empty());
        self.label = policy.name();
        self.policy = policy;
        self
    }

    /// Restricts balancing partners to neighbors in `topo` (the
    /// preround probe and every policy draw go through it).
    ///
    /// # Panics
    /// Panics when the topology's vertex count differs from `cfg.n`.
    #[must_use]
    pub fn with_topology(mut self, topo: Arc<dyn Topology>) -> Self {
        assert_eq!(
            topo.n(),
            self.cfg.n,
            "topology size must match processor count"
        );
        self.topology = topo;
        self
    }

    /// Applies a parsed `--policy` spec. `collision` keeps the
    /// historical `"threshold-balancer"` strategy label (it *is* the
    /// default), so reports stay byte-identical to an unconfigured
    /// balancer; other specs relabel via [`Self::with_partner_policy`].
    #[must_use]
    pub fn with_policy_spec(mut self, spec: &PolicySpec) -> Self {
        if matches!(spec, PolicySpec::Collision) {
            self.policy = Box::new(CollisionPolicy::from_config(&self.cfg));
            self
        } else {
            let policy = build_policy(spec, &self.cfg);
            self.with_partner_policy(policy)
        }
    }

    /// Attaches a bounded event trace; phase starts, heavy
    /// classifications, transfers, and search failures are recorded
    /// until the trace fills up. Call before running the engine.
    pub fn attach_trace(&mut self, trace: Trace) {
        self.trace = Some(trace);
    }

    /// The attached trace, if any.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Records `ev` in the attached trace (if any) and publishes it to
    /// the world's observer sink (no-op when nothing is observing).
    fn emit(&mut self, world: &mut World, ev: Event) {
        world.emit_event(ev);
        if let Some(trace) = &mut self.trace {
            trace.push(ev);
        }
    }

    /// The paper's default algorithm for `n` processors.
    pub fn paper(n: usize) -> Self {
        Self::new(BalancerConfig::paper(n))
    }

    /// Run-wide statistics.
    pub fn stats(&self) -> &BalancerStats {
        &self.stats
    }

    /// Per-phase reports (empty unless
    /// [`BalancerConfig::record_phases`]).
    pub fn phase_reports(&self) -> &[PhaseReport] {
        &self.reports
    }

    /// The active configuration.
    pub fn config(&self) -> &BalancerConfig {
        &self.cfg
    }

    /// §4.3 pre-round: each heavy processor probes one processor chosen
    /// i.u.a.r.; a light processor receiving exactly one probe becomes
    /// that sender's partner. Returns the matches; matched processors
    /// are removed from `heavy_buf` / `light_buf`.
    fn preround(
        &mut self,
        world: &mut World,
        mut log: Option<&mut WireLog>,
    ) -> Vec<(ProcId, ProcId)> {
        let n = self.cfg.n;
        // On the complete graph `random_partner` is the historical
        // rejection loop, so the draw sequence is bit-identical to the
        // pre-topology code. Under churn the complete-graph draw
        // domain shrinks to the live prefix — a departed processor
        // cannot answer a probe. (Graph topologies keep their neighbor
        // draws; a probe landing on a departed neighbor simply finds
        // no light partner there.)
        let topo = Arc::clone(&self.topology);
        let active = world.active_n();
        let restricted = active < n && topo.is_complete();
        let mut probes: HashMap<ProcId, Vec<ProcId>> = HashMap::new();
        let mut sent = 0u64;
        for &h in &self.heavy_buf {
            let t = if restricted {
                if active <= 1 {
                    continue; // nobody left to probe
                }
                let rng = world.rng_global();
                let mut t = rng.below(active);
                while t == h {
                    t = rng.below(active);
                }
                t
            } else {
                topo.random_partner(h, world.rng_global())
            };
            sent += 1;
            if let Some(lg) = log.as_deref_mut() {
                lg.push_reliable(ControlKind::Probe, h, t);
            }
            probes.entry(t).or_default().push(h);
        }
        world.ledger_mut().record(MessageKind::Probe, sent);

        let mut light_set = vec![false; n];
        for &l in &self.light_buf {
            light_set[l] = true;
        }
        let mut matches = Vec::new();
        for (&target, senders) in probes.iter() {
            if light_set[target] && senders.len() == 1 {
                matches.push((senders[0], target));
            }
        }
        // Deterministic order regardless of hash-map iteration.
        matches.sort_unstable();
        if let Some(lg) = log {
            for &(h, l) in &matches {
                lg.push_reliable(ControlKind::IdMessage, l, h);
            }
        }
        world
            .ledger_mut()
            .record(MessageKind::IdMessage, matches.len() as u64);
        for &(h, l) in &matches {
            self.heavy_buf.retain(|&x| x != h);
            self.light_buf.retain(|&x| x != l);
        }
        self.stats.preround_matches += matches.len() as u64;
        matches
    }

    fn begin_phase(&mut self, world: &mut World) {
        let step = world.step();
        let msgs_before: MessageStats = world.messages();
        let n = self.cfg.n;
        let fault_model = world.active_faults();
        let mut retries_this_phase = 0u64;
        // When a net runtime is listening, narrate every control
        // message into a wire log; the runtime frames each record onto
        // the transport after this step's protocol work is decided.
        let mut wlog: Option<WireLog> = world.wire_enabled().then(WireLog::new);

        // Classify from the loads at the phase boundary (weighted mode
        // reads remaining work instead of task counts). Crashed
        // processors take no protocol role this phase: their queues
        // are frozen by the engine, and re-absorption is implicit —
        // once recovered they classify (typically heavy) again.
        self.heavy_buf.clear();
        self.light_buf.clear();
        let heavy_thr = self.cfg.heavy_threshold as u64;
        let light_thr = self.cfg.light_threshold as u64;
        // Only live processors classify: under churn the scan covers
        // the active prefix (departed queues are empty anyway — the
        // membership sync evacuated them — but they must not enter the
        // light set and attract transfers).
        let active = world.active_n();
        if fault_model.is_none() {
            // Fault-free fast path: one pass over the world's flat load
            // slices. The scan is branch-light — the common case (load
            // strictly between the thresholds) falls through both
            // comparisons without touching the buffers. `note_heavy`
            // needs `&mut World`, so it is deferred until the borrow of
            // the load slice ends; the resulting state is identical.
            if self.cfg.weighted {
                let (weights, progress) = world.weighted_load_slices();
                for (p, (&w, &pr)) in weights[..active]
                    .iter()
                    .zip(&progress[..active])
                    .enumerate()
                {
                    let load = w - pr as u64;
                    if load >= heavy_thr {
                        if self.cfg.retry_backoff {
                            if self.retry_next[p] > self.phase {
                                continue; // backing off after failed searches
                            }
                            if self.retry_fails[p] > 0 {
                                retries_this_phase += 1;
                            }
                        }
                        self.heavy_buf.push(p);
                    } else if load <= light_thr {
                        self.light_buf.push(p);
                    }
                }
            } else {
                for (p, &load) in world.load_slice()[..active].iter().enumerate() {
                    let load = load as u64;
                    if load >= heavy_thr {
                        if self.cfg.retry_backoff {
                            if self.retry_next[p] > self.phase {
                                continue; // backing off after failed searches
                            }
                            if self.retry_fails[p] > 0 {
                                retries_this_phase += 1;
                            }
                        }
                        self.heavy_buf.push(p);
                    } else if load <= light_thr {
                        self.light_buf.push(p);
                    }
                }
            }
            for i in 0..self.heavy_buf.len() {
                world.note_heavy(self.heavy_buf[i]);
            }
        } else {
            for p in 0..active {
                if let Some(f) = &fault_model {
                    if f.is_crashed(p, step) {
                        self.stats.crashed_skipped += 1;
                        continue;
                    }
                }
                let load = if self.cfg.weighted {
                    world.weighted_load(p)
                } else {
                    world.load(p) as u64
                };
                if load >= heavy_thr {
                    if self.cfg.retry_backoff {
                        if self.retry_next[p] > self.phase {
                            continue; // backing off after failed searches
                        }
                        if self.retry_fails[p] > 0 {
                            retries_this_phase += 1;
                        }
                    }
                    self.heavy_buf.push(p);
                    world.note_heavy(p);
                } else if load <= light_thr {
                    self.light_buf.push(p);
                }
            }
        }
        if self.trace.is_some() || world.observed() {
            self.emit(
                world,
                Event::PhaseStart {
                    phase: self.phase,
                    step,
                },
            );
            for i in 0..self.heavy_buf.len() {
                let h = self.heavy_buf[i];
                let load = world.load(h);
                self.emit(
                    world,
                    Event::Heavy {
                        phase: self.phase,
                        proc: h,
                        load,
                    },
                );
            }
        }
        let heavy_count = self.heavy_buf.len();
        let light_count = self.light_buf.len();
        self.stats.phases += 1;
        self.stats.heavy_total += heavy_count as u64;
        self.stats.max_heavy_in_phase = self.stats.max_heavy_in_phase.max(heavy_count);

        // Optional §4.3 pre-round.
        let mut all_matches: Vec<(ProcId, ProcId, u32)> = Vec::new();
        if self.cfg.adversarial_preround && !self.heavy_buf.is_empty() {
            for (h, l) in self.preround(world, wlog.as_mut()) {
                all_matches.push((h, l, 0));
            }
        }

        // Partner search via balancing-request trees.
        let mut requests_this_phase = 0u64;
        let mut games_this_phase = 0u64;
        let mut rounds_this_phase = 0u64;
        let mut wasted_this_phase = 0u64;
        let mut dropped_this_phase = 0u64;
        let mut failed = 0usize;
        if !self.heavy_buf.is_empty() {
            // Partner selection is fully delegated: the default
            // `CollisionPolicy` replicates the historical search
            // dispatch (wire-logged => sequential, sharded => pooled)
            // bit-for-bit; alternative policies plug in here.
            let topo = Arc::clone(&self.topology);
            let outcome = self.policy.select(
                world,
                &topo,
                &self.heavy_buf,
                &self.light_buf,
                wlog.as_mut(),
            );
            let ledger = world.ledger_mut();
            ledger.record(MessageKind::Query, outcome.stats.queries);
            ledger.record(MessageKind::Accept, outcome.stats.accepts);
            ledger.record(MessageKind::IdMessage, outcome.stats.id_messages);
            ledger.record(MessageKind::Probe, outcome.stats.probes);
            ledger.record_dropped(outcome.stats.dropped);

            self.stats.games_played += outcome.stats.levels as u64;
            self.stats.requests_total += outcome.stats.requests;
            requests_this_phase = outcome.stats.requests;
            games_this_phase = outcome.stats.levels as u64;
            rounds_this_phase = outcome.stats.rounds as u64;
            wasted_this_phase = outcome.stats.wasted_rounds as u64;
            dropped_this_phase = outcome.stats.dropped;
            for &r in &outcome.requests_per_root {
                let idx = (r as usize).min(REQUEST_HIST_CAP - 1);
                self.stats.requests_hist[idx] += 1;
            }
            failed = outcome.unmatched.len();
            for &proc in &outcome.unmatched {
                if self.cfg.retry_backoff {
                    let fails = self.retry_fails[proc].saturating_add(1);
                    self.retry_fails[proc] = fails;
                    let delay =
                        u64::from((1u32 << (fails - 1).min(31)).min(self.cfg.backoff_cap.max(1)));
                    self.retry_next[proc] = self.phase + delay;
                }
                self.emit(
                    world,
                    Event::SearchFailed {
                        phase: self.phase,
                        proc,
                    },
                );
            }
            for (h, l, level) in outcome.matches {
                if self.cfg.retry_backoff {
                    self.retry_fails[h] = 0;
                }
                all_matches.push((h, l, level));
            }
        }
        self.stats.matched_total += all_matches.len() as u64;
        self.stats.failed_total += failed as u64;
        self.stats.retries_total += retries_this_phase;
        for &(h, l, _) in &all_matches {
            self.stats.partner_distance_sum += ring_distance(h, l, n) as u64;
        }

        // Execute (or schedule) the transfers.
        let game_steps = self.cfg.collision.steps_per_game(n);
        let phase_end = step + self.cfg.phase_length.saturating_sub(1);
        for (h, l, level) in all_matches {
            if self.cfg.streaming_transfers {
                // §5: stream the block over the coming interval.
                let per_step = self
                    .cfg
                    .transfer_amount
                    .div_ceil(self.cfg.phase_length as usize)
                    .max(1);
                self.streams.push(StreamingTransfer {
                    from: h,
                    to: l,
                    remaining: self.cfg.transfer_amount,
                    per_step,
                });
            } else if self.cfg.schedule_transfers {
                let due = (step + (level as u64 + 1) * game_steps).min(phase_end);
                self.pending.push(PendingTransfer {
                    from: h,
                    to: l,
                    due,
                });
            } else {
                if self.endpoints_crashed(world, h, l) {
                    self.stats.transfers_frozen += 1;
                    continue;
                }
                let moved = self.do_transfer(world, h, l);
                self.emit(
                    world,
                    Event::Transfer {
                        step,
                        from: h,
                        to: l,
                        tasks: moved,
                    },
                );
            }
        }

        if self.cfg.record_phases || world.observed() {
            let window = world.messages() - msgs_before;
            let report = PhaseReport {
                phase: self.phase,
                start_step: step,
                heavy: heavy_count,
                light: light_count,
                matched: heavy_count - failed,
                failed,
                requests: requests_this_phase,
                games: games_this_phase,
                messages: window.control_total(),
                rounds: rounds_this_phase,
                wasted_rounds: wasted_this_phase,
                dropped: dropped_this_phase,
                retries: retries_this_phase,
            };
            world.emit_phase(report);
            if self.cfg.record_phases {
                self.reports.push(report);
            }
        }
        if let Some(mut wl) = wlog {
            world.record_wire_log(&mut wl);
        }
        self.phase += 1;
    }

    /// True when either transfer endpoint is crashed at the current
    /// step — the transfer cannot execute; the sender's queue stays
    /// frozen until recovery.
    fn endpoints_crashed(&self, world: &World, a: ProcId, b: ProcId) -> bool {
        match world.active_faults() {
            Some(f) => {
                let now = world.step();
                f.is_crashed(a, now) || f.is_crashed(b, now)
            }
            None => false,
        }
    }

    /// Executes one balancing transfer of `transfer_amount` tasks (or
    /// weight units, in weighted mode). Returns tasks/units moved.
    fn do_transfer(&self, world: &mut World, from: ProcId, to: ProcId) -> usize {
        if self.cfg.weighted {
            world.transfer_weight(from, to, self.cfg.transfer_amount as u64) as usize
        } else {
            world.transfer(from, to, self.cfg.transfer_amount)
        }
    }

    fn flush_due_transfers(&mut self, world: &mut World) {
        let now = world.step();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].due <= now {
                let t = self.pending.swap_remove(i);
                if self.endpoints_crashed(world, t.from, t.to) {
                    self.stats.transfers_frozen += 1;
                    continue;
                }
                let moved = self.do_transfer(world, t.from, t.to);
                self.emit(
                    world,
                    Event::Transfer {
                        step: now,
                        from: t.from,
                        to: t.to,
                        tasks: moved,
                    },
                );
            } else {
                i += 1;
            }
        }
    }

    /// Moves each active stream's per-step chunk; streams end when
    /// their block is delivered (or the sender ran dry — the same cap
    /// an atomic transfer applies).
    fn pump_streams(&mut self, world: &mut World) {
        let now = world.step();
        let weighted = self.cfg.weighted;
        let mut i = 0;
        while i < self.streams.len() {
            let (from, to, chunk) = {
                let s = &self.streams[i];
                (s.from, s.to, s.per_step.min(s.remaining))
            };
            if self.endpoints_crashed(world, from, to) {
                // This step's chunk is lost to the outage; the stream's
                // one-phase time budget still elapses.
                self.stats.transfers_frozen += 1;
                let s = &mut self.streams[i];
                s.remaining -= chunk;
                if s.remaining == 0 {
                    self.streams.swap_remove(i);
                } else {
                    i += 1;
                }
                continue;
            }
            let moved = if weighted {
                world.transfer_weight(from, to, chunk as u64) as usize
            } else {
                world.transfer(from, to, chunk)
            };
            if moved > 0 {
                self.emit(
                    world,
                    Event::Transfer {
                        step: now,
                        from,
                        to,
                        tasks: moved,
                    },
                );
            }
            let s = &mut self.streams[i];
            // Deduct the scheduled chunk even when the sender had less:
            // the stream's time budget is one phase either way.
            s.remaining -= chunk;
            if s.remaining == 0 {
                self.streams.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
}

impl Strategy for ThresholdBalancer {
    fn on_step(&mut self, world: &mut World) {
        debug_assert_eq!(world.n(), self.cfg.n, "world/config size mismatch");
        if world.step().is_multiple_of(self.cfg.phase_length) {
            self.begin_phase(world);
        }
        if self.cfg.schedule_transfers {
            self.flush_due_transfers(world);
        }
        if self.cfg.streaming_transfers {
            self.pump_streams(world);
        }
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Single;
    use pcrlb_sim::{Engine, MaxLoadProbe, Runner};

    fn small_cfg(n: usize) -> BalancerConfig {
        BalancerConfig::paper(n)
    }

    #[test]
    fn bounds_max_load_under_single() {
        let n = 1024;
        let cfg = small_cfg(n);
        let bound = 2 * cfg.theorem1_bound();
        let worst = Runner::new(n, 42)
            .model(Single::default_paper())
            .strategy(ThresholdBalancer::new(cfg))
            .probe(MaxLoadProbe::new())
            .run(3000)
            .worst_max_load()
            .unwrap_or(0);
        assert!(
            worst <= bound,
            "max load {worst} exceeded 2x Theorem 1 bound {bound}"
        );
    }

    #[test]
    fn balanced_never_worse_total_load() {
        // §4.2: the balanced system's total load is stochastically no
        // worse than the unbalanced one's. Compare same-seed runs.
        let n = 512;
        let steps = 2000;
        let mut bal = Engine::new(n, 7, Single::default_paper(), ThresholdBalancer::paper(n));
        let mut unbal = Engine::new(n, 7, Single::default_paper(), pcrlb_sim::Unbalanced);
        bal.run(steps);
        unbal.run(steps);
        // Identical arrival streams; the balanced system consumes at
        // least as much because fewer processors idle.
        assert!(bal.world().total_load() <= unbal.world().total_load() + n as u64 / 8);
    }

    #[test]
    fn phases_advance_and_stats_accumulate() {
        let n = 256;
        let cfg = small_cfg(n).with_phase_reports();
        let phase_len = cfg.phase_length;
        let mut e = Engine::new(n, 3, Single::default_paper(), ThresholdBalancer::new(cfg));
        e.run(20 * phase_len);
        let s = e.strategy().stats();
        assert_eq!(s.phases, 20);
        assert_eq!(e.strategy().phase_reports().len(), 20);
        assert_eq!(
            s.matched_total + s.failed_total,
            s.heavy_total,
            "every heavy processor is either matched or failed"
        );
    }

    #[test]
    fn spike_gets_balanced_away() {
        // Inject a huge spike on processor 0; balancing must spread it
        // below the spike level quickly while the unbalanced system
        // would drain it only one task per step.
        let n = 256;
        let cfg = small_cfg(n);
        let spike = 40 * cfg.t;
        let mut e = Engine::new(
            n,
            11,
            Single::default_paper(),
            ThresholdBalancer::new(cfg.clone()),
        );
        e.world_mut().inject(0, spike);
        // A heavy processor sheds transfer_amount (= T/4) per phase, so
        // draining a spike of 40T takes ~160 phases; give it 250.
        e.run(250 * cfg.phase_length);
        let max = e.world().max_load();
        assert!(
            max < spike / 4,
            "spike {spike} only reduced to {max} after balancing"
        );
        assert!(e.world().messages().transfers > 0);
    }

    #[test]
    fn no_transfers_when_nobody_is_heavy() {
        // Consumption >> generation keeps everyone at trivial loads.
        let n = 128;
        let model = Single::new(0.05, 0.9).unwrap();
        let mut e = Engine::new(n, 5, model, ThresholdBalancer::paper(n));
        e.run(500);
        assert_eq!(e.world().messages().transfers, 0);
        assert_eq!(e.strategy().stats().heavy_total, 0);
        // And no communication was spent at all.
        assert_eq!(e.world().messages().control_total(), 0);
    }

    #[test]
    fn scheduled_transfers_eventually_execute() {
        let n = 256;
        let cfg = BalancerConfig::from_t(n, 64).with_scheduled_transfers();
        let mut e = Engine::new(
            n,
            13,
            Single::default_paper(),
            ThresholdBalancer::new(cfg.clone()),
        );
        e.world_mut().inject(3, 10 * cfg.t);
        e.run(20 * cfg.phase_length);
        assert!(
            e.world().messages().transfers > 0,
            "scheduled transfers never executed"
        );
        assert!(e.world().load(3) < 10 * cfg.t);
    }

    #[test]
    fn weighted_mode_bounds_weighted_load() {
        use crate::gen::Multi;
        use crate::weighted::{WeightDist, Weighted};
        let n = 512;
        let dist = WeightDist::Uniform { lo: 1, hi: 3 }; // mean 2
                                                         // Stability in weighted mode is about *work units*: arrivals
                                                         // bring p·E[w] = 0.3·2 = 0.6 units/step against a deterministic
                                                         // service of 1 unit/step.
        let inner = Multi::new(vec![0.3]).expect("valid");
        // T in weight units: scale the unit T by the mean weight.
        let unit_t = BalancerConfig::paper(n).t;
        let cfg = BalancerConfig::from_t(n, unit_t * 2).with_weighted();
        let bound = 2 * cfg.t as u64;
        let model = Weighted::new(inner, dist);
        let report = Runner::new(n, 37)
            .model(model)
            .strategy(ThresholdBalancer::new(cfg))
            .probe(MaxLoadProbe::new())
            .run(3000);
        let worst = report.worst_max_weighted_load().unwrap_or(0);
        assert!(
            worst <= bound,
            "weighted max load {worst} exceeded 2T = {bound}"
        );
        assert!(report.messages.transfers > 0 || worst < bound / 2);
    }

    #[test]
    fn weighted_classification_uses_weight_not_count() {
        use pcrlb_sim::{LoadModel, ProcId, SimRng as Rng, Step as St};
        struct Silent;
        impl LoadModel for Silent {
            fn generate(&self, _: ProcId, _: St, _: usize, _: &mut Rng) -> usize {
                0
            }
            fn consume(&self, _: ProcId, _: St, _: usize, _: &mut Rng) -> usize {
                0
            }
        }
        let n = 64;
        let cfg = BalancerConfig::from_t(n, 64).with_weighted();
        let heavy_thr = cfg.heavy_threshold as u64;
        let mut e = Engine::new(n, 41, Silent, ThresholdBalancer::new(cfg.clone()));
        // Processor 0: few tasks but enormous weight — heavy by weight.
        for _ in 0..4 {
            e.world_mut().generate_one_weighted(0, 20); // 80 units >= 32
        }
        // Processor 1: many tasks of trivial total weight — NOT heavy.
        for _ in 0..3 {
            e.world_mut().generate_one_weighted(1, 1);
        }
        assert!(e.world().weighted_load(0) >= heavy_thr);
        e.run(cfg.phase_length);
        // Processor 0 must have shed weight via a transfer.
        assert!(e.world().messages().transfers >= 1);
        assert!(e.world().weighted_load(0) < 80);
        // Total weight conserved.
        assert_eq!(e.world().total_weighted_load(), 83);
    }

    #[test]
    fn game_shards_do_not_change_results() {
        // The fully-parallel configuration (threaded engine would stack
        // on top) must be bit-identical to the sequential one.
        let n = 512;
        let run = |shards: usize| {
            let cfg = BalancerConfig::paper(n).with_game_shards(shards);
            let mut e = Engine::new(n, 31, Single::default_paper(), ThresholdBalancer::new(cfg));
            e.world_mut().inject(0, 200);
            e.run(400);
            (e.world().loads(), e.world().messages())
        };
        let base = run(1);
        for shards in [2usize, 4] {
            assert_eq!(run(shards), base, "shards={shards}");
        }
    }

    #[test]
    fn streaming_transfers_deliver_the_full_block() {
        // Silent world: one spiked processor, streaming on. The spike
        // must drain in per-step chunks, never in one jump.
        use pcrlb_sim::{LoadModel, ProcId, SimRng as Rng, Step as St};
        struct Silent;
        impl LoadModel for Silent {
            fn generate(&self, _: ProcId, _: St, _: usize, _: &mut Rng) -> usize {
                0
            }
            fn consume(&self, _: ProcId, _: St, _: usize, _: &mut Rng) -> usize {
                0
            }
        }
        let n = 256;
        let cfg = BalancerConfig::from_t(n, 64).with_streaming_transfers();
        let per_step = cfg.transfer_amount.div_ceil(cfg.phase_length as usize);
        let spike = 4 * cfg.t;
        let mut e = Engine::new(n, 23, Silent, ThresholdBalancer::new(cfg.clone()));
        e.world_mut().inject(0, spike);
        let total_before = e.world().total_load();
        let mut prev = spike;
        let mut max_drop = 0usize;
        for _ in 0..20 * cfg.phase_length {
            e.step();
            let now = e.world().load(0);
            max_drop = max_drop.max(prev.saturating_sub(now));
            prev = now;
        }
        // Conservation and streaming granularity.
        assert_eq!(e.world().total_load(), total_before);
        assert!(
            max_drop <= per_step,
            "streamed {max_drop} tasks in one step (chunk is {per_step})"
        );
        // The spike actually drained via the streams.
        assert!(e.world().load(0) < spike, "stream never moved anything");
        assert!(e.world().messages().tasks_moved > 0);
    }

    #[test]
    fn streaming_mode_still_bounds_max_load() {
        let n = 512;
        let cfg = BalancerConfig::paper(n).with_streaming_transfers();
        let bound = 2 * cfg.theorem1_bound();
        let worst = Runner::new(n, 29)
            .model(Single::default_paper())
            .strategy(ThresholdBalancer::new(cfg))
            .probe(MaxLoadProbe::new())
            .run(2000)
            .worst_max_load()
            .unwrap_or(0);
        assert!(worst <= bound, "streaming variant max {worst} > {bound}");
    }

    #[test]
    fn preround_matches_heavies_directly() {
        let n = 512;
        let cfg = BalancerConfig::from_t(n, 64).with_adversarial_preround();
        let mut e = Engine::new(
            n,
            17,
            Single::default_paper(),
            ThresholdBalancer::new(cfg.clone()),
        );
        // Make a handful of processors heavy.
        for p in 0..8 {
            e.world_mut().inject(p, cfg.heavy_threshold + 4);
        }
        e.run(2 * cfg.phase_length);
        let s = e.strategy().stats();
        assert!(
            s.preround_matches > 0,
            "pre-round should match isolated heavy processors w.h.p."
        );
    }

    #[test]
    fn requests_per_heavy_is_small_constant() {
        // Lemma 7: expected requests per heavy processor is O(1). With
        // nearly all processors light, it should be close to 1.
        let n = 1024;
        let cfg = small_cfg(n);
        let mut e = Engine::new(n, 19, Single::default_paper(), ThresholdBalancer::new(cfg));
        e.run(4000);
        let s = e.strategy().stats();
        if let Some(rph) = s.requests_per_heavy() {
            assert!(rph < 4.0, "requests per heavy {rph} not constant-like");
        }
    }

    #[test]
    #[should_panic(expected = "invalid balancer configuration")]
    fn invalid_config_panics() {
        let mut cfg = BalancerConfig::paper(256);
        cfg.transfer_amount = 0;
        ThresholdBalancer::new(cfg);
    }

    #[test]
    fn trace_records_phase_lifecycle() {
        use pcrlb_sim::{Event, Trace};
        let n = 256;
        let cfg = BalancerConfig::paper(n);
        let t = cfg.t;
        let mut balancer = ThresholdBalancer::new(cfg.clone());
        balancer.attach_trace(Trace::new(10_000));
        let mut e = Engine::new(n, 21, Single::default_paper(), balancer);
        e.world_mut().inject(0, 4 * t);
        e.run(10 * cfg.phase_length);
        let trace = e.strategy().trace().expect("trace attached");
        let events = trace.events();
        assert!(
            events
                .iter()
                .any(|ev| matches!(ev, Event::PhaseStart { .. })),
            "no phase-start events"
        );
        assert!(
            events
                .iter()
                .any(|ev| matches!(ev, Event::Heavy { proc: 0, .. })),
            "spiked processor never traced heavy"
        );
        let transfers: Vec<_> = trace.transfers().collect();
        assert!(!transfers.is_empty(), "no transfers traced");
        // Every traced transfer originates at a processor that was
        // traced heavy in some phase.
        for ev in &transfers {
            if let Event::Transfer { from, .. } = ev {
                assert!(events
                    .iter()
                    .any(|h| matches!(h, Event::Heavy { proc, .. } if proc == from)));
            }
        }
    }

    #[test]
    fn stats_accessors_none_when_empty() {
        let b = ThresholdBalancer::paper(64);
        assert!(b.stats().requests_per_heavy().is_none());
        assert!(b.stats().match_rate().is_none());
        assert_eq!(b.config().n, 64);
    }
}
