//! The §5 "throw all load into the air" variant.
//!
//! The paper's concluding remarks: *"We easily could have reduced the
//! bound for the maximum load of any processor to O(log log n) if we
//! would not have focused on minimization of load flow. At the beginning
//! of each interval of length log log n one could simply throw all load
//! into the air and distribute it via the simple collision protocol."*
//!
//! [`ScatterBalancer`] implements that alternative: every `interval`
//! steps it redistributes *every* task with a `d`-choice placement
//! (each task probes `d` processors chosen i.u.a.r. and lands on the
//! least loaded — the collision-protocol-style placement that yields the
//! `O(log log n)` bound). Experiment E14 uses it to demonstrate the
//! trade-off the paper highlights: lower maximum load, but `Θ(m·d)`
//! messages per interval and zero task locality.

use pcrlb_sim::{MessageKind, ProcId, Strategy, World};

/// Aggregate statistics of the scatter strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScatterStats {
    /// Redistribution rounds executed.
    pub intervals: u64,
    /// Tasks thrown and re-placed in total.
    pub tasks_scattered: u64,
}

/// The scatter strategy (see module docs).
pub struct ScatterBalancer {
    interval: u64,
    d: usize,
    stats: ScatterStats,
}

impl ScatterBalancer {
    /// Creates a scatter balancer redistributing every `interval` steps
    /// using `d`-choice placement (`d >= 1`; `d = 2` gives the
    /// `O(log log n)` maximum-load bound).
    pub fn new(interval: u64, d: usize) -> Self {
        assert!(interval >= 1, "interval must be positive");
        assert!(d >= 1, "need at least one choice per task");
        ScatterBalancer {
            interval,
            d,
            stats: ScatterStats::default(),
        }
    }

    /// The paper's parameterization for `n` processors: interval
    /// `log log n`, two choices.
    pub fn paper(n: usize) -> Self {
        ScatterBalancer::new(pcrlb_sim::loglog(n) as u64, 2)
    }

    /// Run statistics.
    pub fn stats(&self) -> &ScatterStats {
        &self.stats
    }

    fn scatter(&mut self, world: &mut World) {
        let n = world.n();
        // Throw everything into the air...
        let mut pool = Vec::with_capacity(world.total_load() as usize);
        for p in 0..n {
            let load = world.load(p);
            if load > 0 {
                pool.extend(world.extract_back(p, load));
            }
        }
        if pool.is_empty() {
            self.stats.intervals += 1;
            return;
        }
        // ...and place each task on the least loaded of d random
        // processors. Track placements in a local load array; the d
        // probes plus the placement message are all communication.
        let mut loads = vec![0usize; n];
        let mut buckets: Vec<Vec<pcrlb_sim::Task>> = vec![Vec::new(); n];
        let mut probes = 0u64;
        for task in pool {
            let mut best: ProcId = world.rng_global().below(n);
            probes += self.d as u64;
            for _ in 1..self.d {
                let cand = world.rng_global().below(n);
                if loads[cand] < loads[best] {
                    best = cand;
                }
            }
            loads[best] += 1;
            buckets[best].push(task);
            self.stats.tasks_scattered += 1;
        }
        world.ledger_mut().record(MessageKind::Probe, probes);
        for (p, bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                world.ledger_mut().record_transfer(bucket.len() as u64);
                world.deposit(p, bucket);
            }
        }
        self.stats.intervals += 1;
    }
}

impl Strategy for ScatterBalancer {
    fn on_step(&mut self, world: &mut World) {
        if world.step().is_multiple_of(self.interval) {
            self.scatter(world);
        }
    }

    fn name(&self) -> &'static str {
        "scatter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Single;
    use pcrlb_sim::Engine;

    #[test]
    fn scatter_flattens_a_spike() {
        let n = 256;
        let mut e = Engine::new(n, 1, Single::default_paper(), ScatterBalancer::new(4, 2));
        e.world_mut().inject(0, 1000);
        e.run(8);
        // 1000 tasks over 256 processors with 2-choice: max close to
        // ceil(1000/256) + small.
        assert!(
            e.world().max_load() < 16,
            "spike not flattened: {}",
            e.world().max_load()
        );
    }

    #[test]
    fn scatter_pays_linear_messages() {
        let n = 128;
        let mut e = Engine::new(n, 2, Single::default_paper(), ScatterBalancer::new(1, 2));
        e.run(100);
        let m = e.world().messages();
        // Roughly: every live task probed twice every step.
        assert!(
            m.probes as f64 >= e.world().completions().count as f64,
            "scatter should spend heavily on probes: {m}"
        );
    }

    #[test]
    fn scatter_destroys_locality() {
        let n = 64;
        let mut e = Engine::new(n, 3, Single::default_paper(), ScatterBalancer::new(1, 2));
        e.run(2000);
        let loc = e.world().completions().locality();
        assert!(
            loc < 0.2,
            "scattered tasks should rarely run at their origin: {loc}"
        );
    }

    #[test]
    fn interval_respected() {
        let n = 32;
        let mut e = Engine::new(n, 4, Single::default_paper(), ScatterBalancer::new(10, 2));
        e.run(100);
        assert_eq!(e.strategy().stats().intervals, 10);
    }

    #[test]
    fn single_choice_placement_works() {
        let n = 64;
        let mut e = Engine::new(n, 5, Single::default_paper(), ScatterBalancer::new(4, 1));
        e.world_mut().inject(0, 500);
        e.run(8);
        // d=1 is plain random placement: flattened, but not as tightly.
        assert!(e.world().max_load() < 40);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        ScatterBalancer::new(0, 2);
    }

    #[test]
    #[should_panic(expected = "choice")]
    fn zero_choices_panics() {
        ScatterBalancer::new(1, 0);
    }

    #[test]
    fn paper_parameterization() {
        let s = ScatterBalancer::paper(1 << 16);
        assert_eq!(s.interval, 4); // loglog 2^16 = 4
        assert_eq!(s.d, 2);
    }
}
