//! The paper's collision protocol behind the [`PartnerPolicy`] trait.
//!
//! `pcrlb_sim::policy` owns the trait and the probe-based ladder;
//! this module supplies the default policy — the §3 balancing-request
//! trees driven by repeated collision games — plus the adapter that
//! restricts the games' target draws to topology neighbors
//! (Cai–Sauerwald's graph-restricted model).
//!
//! [`CollisionPolicy::select`] replicates the balancer's historical
//! search dispatch exactly (wire-logged search runs sequentially;
//! `game_shards > 1` uses the pooled search; otherwise the plain
//! sequential search), so a default-constructed `ThresholdBalancer`
//! produces bit-identical `RunReport`s to the pre-policy code on all
//! four backends.

use std::sync::Arc;

use crate::config::BalancerConfig;
use pcrlb_collision::{BalanceForest, CollisionParams, SearchFaults, TargetSampler};
use pcrlb_sim::{
    PartnerOutcome, PartnerPolicy, PartnerStats, PolicySpec, ProcId, SimRng, Topology, WireLog,
    WorkerPool, World,
};

/// Restricts collision-game target draws to topology neighbors.
///
/// When the neighborhood has at most `a` members the whole of it is
/// probed (no RNG draw); otherwise `a` distinct neighbor *slots* are
/// drawn uniformly. Slots of a multigraph edge may repeat a neighbor
/// id; the duplicate queries then simply collide at the target.
pub struct TopoSampler(pub Arc<dyn Topology>);

impl TargetSampler for TopoSampler {
    fn draw_targets(&self, req: ProcId, a: usize, rng: &mut SimRng, out: &mut Vec<ProcId>) {
        let deg = self.0.degree(req);
        out.clear();
        if deg <= a {
            out.extend((0..deg).map(|k| self.0.neighbor(req, k)));
        } else {
            let mut slots = Vec::with_capacity(a);
            rng.distinct(deg, a, &mut slots);
            out.extend(slots.into_iter().map(|k| self.0.neighbor(req, k)));
        }
    }
}

/// The paper's partner search: balancing-request trees over repeated
/// collision games (§3), optionally fault-injected, wire-narrated,
/// sharded across a worker pool, and graph-restricted.
pub struct CollisionPolicy {
    forest: BalanceForest,
    /// Persistent workers for sharded collision games, created lazily
    /// on the first phase with `game_shards > 1` and reused for every
    /// game after that (no per-game thread spawns).
    pool: Option<WorkerPool>,
    params: CollisionParams,
    tree_depth: u32,
    game_shards: usize,
    /// Per-game fault nonce, advanced once per collision game so that
    /// identical message coordinates in different games (or phases)
    /// draw independent fault decisions.
    game_nonce: u64,
    sampler_installed: bool,
}

impl CollisionPolicy {
    /// Builds the policy from the balancer's configuration.
    #[must_use]
    pub fn from_config(cfg: &BalancerConfig) -> Self {
        CollisionPolicy {
            forest: BalanceForest::new(cfg.n),
            pool: None,
            params: cfg.collision,
            tree_depth: cfg.tree_depth,
            game_shards: cfg.game_shards,
            game_nonce: 0,
            sampler_installed: false,
        }
    }
}

impl PartnerPolicy for CollisionPolicy {
    fn name(&self) -> &'static str {
        "collision"
    }

    fn select(
        &mut self,
        world: &mut World,
        topo: &Arc<dyn Topology>,
        heavy: &[ProcId],
        light: &[ProcId],
        wire: Option<&mut WireLog>,
    ) -> PartnerOutcome {
        // Incremental epoch repair: under elastic membership the
        // forest's draw domain follows the live prefix (an O(1) store;
        // the n-sized scratch survives across epochs). Without churn
        // `active_n() == n` and this is a no-op.
        self.forest.set_active(world.active_n());
        // Graph restriction: install the neighbor sampler once. On the
        // complete graph the forest keeps its historical global draw
        // (bit-identical to the pre-topology code).
        if !topo.is_complete() && !self.sampler_installed {
            self.forest
                .set_sampler(Some(Arc::new(TopoSampler(Arc::clone(topo)))));
            self.sampler_installed = true;
        }
        let fault_model = world.active_faults();
        let outcome = if let Some(wl) = wire {
            // Wire narration is serial, so the logged search runs its
            // games sequentially even when `game_shards > 1` — the
            // sharded games are bit-identical to the sequential one
            // (asserted by `game_shards_do_not_change_results`), so
            // the outcome is unchanged.
            match &fault_model {
                Some(model) => self.forest.search_logged_faulty(
                    heavy,
                    light,
                    &self.params,
                    self.tree_depth,
                    world.rng_global(),
                    SearchFaults::new(&**model, &mut self.game_nonce),
                    wl,
                ),
                None => self.forest.search_logged(
                    heavy,
                    light,
                    &self.params,
                    self.tree_depth,
                    world.rng_global(),
                    wl,
                ),
            }
        } else if self.game_shards > 1 {
            let shards = self.game_shards;
            let pool = self.pool.get_or_insert_with(|| WorkerPool::new(shards));
            match &fault_model {
                Some(model) => self.forest.search_pooled_faulty(
                    heavy,
                    light,
                    &self.params,
                    self.tree_depth,
                    world.rng_global(),
                    pool,
                    SearchFaults::new(&**model, &mut self.game_nonce),
                ),
                None => self.forest.search_pooled(
                    heavy,
                    light,
                    &self.params,
                    self.tree_depth,
                    world.rng_global(),
                    pool,
                ),
            }
        } else {
            match &fault_model {
                Some(model) => self.forest.search_faulty(
                    heavy,
                    light,
                    &self.params,
                    self.tree_depth,
                    world.rng_global(),
                    SearchFaults::new(&**model, &mut self.game_nonce),
                ),
                None => self.forest.search(
                    heavy,
                    light,
                    &self.params,
                    self.tree_depth,
                    world.rng_global(),
                ),
            }
        };
        PartnerOutcome {
            matches: outcome
                .matches
                .iter()
                .map(|m| (m.heavy, m.light, m.level))
                .collect(),
            unmatched: outcome.unmatched,
            requests_per_root: outcome.requests_per_root,
            stats: PartnerStats {
                requests: outcome.stats.requests,
                levels: outcome.stats.levels,
                rounds: outcome.stats.rounds,
                wasted_rounds: outcome.stats.wasted_rounds,
                queries: outcome.stats.queries,
                accepts: outcome.stats.accepts,
                id_messages: outcome.stats.id_messages,
                probes: outcome.stats.sibling_checks,
                dropped: outcome.stats.dropped,
            },
        }
    }
}

/// Builds the boxed policy a [`PolicySpec`] names. The collision
/// variant needs the balancer configuration (collision parameters,
/// tree depth, game shards); the probe policies ignore it.
#[must_use]
pub fn build_policy(spec: &PolicySpec, cfg: &BalancerConfig) -> Box<dyn PartnerPolicy> {
    use pcrlb_sim::policy::{AlwaysGoLeft, GreedyD, OnePlusBeta, ThresholdProbe};
    match *spec {
        PolicySpec::Collision => Box::new(CollisionPolicy::from_config(cfg)),
        PolicySpec::Greedy { d } => Box::new(GreedyD::new(d)),
        PolicySpec::Beta { beta } => Box::new(OnePlusBeta::new(beta)),
        PolicySpec::Probe { max_probes } => Box::new(ThresholdProbe::new(max_probes)),
        PolicySpec::Left { d } => Box::new(AlwaysGoLeft::new(d)),
    }
}
