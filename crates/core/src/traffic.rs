//! Open-loop traffic models: millions of independent users, not a
//! closed generation loop.
//!
//! The paper's models (§1.2, [`crate::gen`]) are closed-loop: generation
//! probabilities are chosen so a steady state exists by construction.
//! A production service sees the opposite regime — arrivals are an
//! *open-loop* stochastic process that does not care how backed up the
//! system is. [`TrafficModel`] provides that front-end: per processor
//! per step, arrivals are Poisson with a rate shaped by the selected
//! [`Arrivals`] pattern (constant, bursty on/off, diurnal ramp, flash
//! crowd, or Zipf hotspot skew), and service consumes one task per step
//! whenever the queue is non-empty (unit rate, μ = 1). The offered
//! load ρ is therefore exactly the mean arrival rate per processor.
//!
//! Determinism: arrival counts are drawn from the simulator's existing
//! per-processor xoshiro/SplitMix64 streams
//! ([`SimRng::poisson`]), and every rate modulation is a pure function
//! of `(processor, step)` — burst phase offsets come from a SplitMix64
//! hash of the processor id, never from extra RNG draws — so open-loop
//! runs stay bit-identical across all execution backends.
//!
//! Back-pressure: at ρ ≥ 1 queues grow without bound, so a
//! [`TrafficSpec`] can carry an [`Admission`] policy (`+shed:CAP` /
//! `+defer:CAP` in the parse syntax) that bounds the per-processor
//! queue at the front door; see [`pcrlb_sim::Admission`].

use pcrlb_sim::rng::splitmix64;
use pcrlb_sim::{Admission, LoadModel, ProcId, SimRng, Step};
use std::fmt;

/// Errors constructing or parsing a traffic model.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficError {
    /// Offered load must be finite and positive.
    BadRho(f64),
    /// Burst/flash rate multiplier must be finite and ≥ 1.
    BadMultiplier(f64),
    /// On/off/flash/ramp windows must be nonzero.
    ZeroWindow,
    /// Diurnal amplitude must lie in `[0, 1]` (rates stay nonnegative).
    BadAmplitude(f64),
    /// Zipf exponent must be finite and positive.
    BadTheta(f64),
    /// Admission cap must be nonzero.
    ZeroCap,
    /// Unparseable `--arrivals` specification.
    Parse(String),
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::BadRho(r) => write!(f, "offered load rho={r} must be finite and > 0"),
            TrafficError::BadMultiplier(m) => {
                write!(f, "rate multiplier {m} must be finite and >= 1")
            }
            TrafficError::ZeroWindow => write!(f, "traffic windows must be nonzero"),
            TrafficError::BadAmplitude(a) => write!(f, "ramp amplitude {a} outside [0,1]"),
            TrafficError::BadTheta(t) => write!(f, "zipf exponent {t} must be finite and > 0"),
            TrafficError::ZeroCap => write!(f, "admission cap must be nonzero"),
            TrafficError::Parse(s) => write!(f, "cannot parse arrivals spec '{s}'"),
        }
    }
}

impl std::error::Error for TrafficError {}

/// The arrival-rate shape over `(processor, step)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Constant rate ρ on every processor (homogeneous Poisson).
    Poisson,
    /// On/off bursts: rate `ρ·mult` for `on` steps, then a compensating
    /// low rate for `off` steps, with the phase offset per processor
    /// (hash-derived) so bursts are desynchronized across the machine
    /// and the machine-wide mean stays ρ.
    Burst {
        /// Steps per burst (high-rate) window.
        on: u64,
        /// Steps per quiet window.
        off: u64,
        /// Rate multiplier during the burst.
        mult: f64,
    },
    /// Diurnal ramp: rate `ρ·(1 + amplitude·sin(2π·step/period))`,
    /// identical on all processors (the whole service breathes
    /// together); mean over a period is ρ.
    Ramp {
        /// Steps per full cycle.
        period: u64,
        /// Peak-to-mean swing in `[0, 1]`.
        amplitude: f64,
    },
    /// Flash crowd: baseline ρ, with rate `ρ·mult` during
    /// `at..at + len` on every processor.
    Flash {
        /// First step of the flash.
        at: u64,
        /// Flash duration in steps.
        len: u64,
        /// Rate multiplier during the flash.
        mult: f64,
    },
    /// Zipf hotspot skew: processor `p` receives a constant rate
    /// proportional to `(p+1)^-theta`, normalized so the machine-wide
    /// mean is ρ — the key-skew regime where a few processors are hot.
    Zipf {
        /// Skew exponent (larger = hotter hotspots).
        theta: f64,
    },
}

/// A validated description of an open-loop workload: arrival shape,
/// offered load, and admission policy. Cheap to copy; turn it into a
/// runnable model with [`TrafficModel::new`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSpec {
    /// Arrival-rate shape.
    pub arrivals: Arrivals,
    /// Offered load per processor (mean arrivals per step; μ = 1).
    pub rho: f64,
    /// Front-door back-pressure policy.
    pub admission: Admission,
}

impl TrafficSpec {
    /// A constant-rate Poisson spec at offered load `rho`, unbounded
    /// admission.
    pub fn poisson(rho: f64) -> Self {
        TrafficSpec {
            arrivals: Arrivals::Poisson,
            rho,
            admission: Admission::Unbounded,
        }
    }

    /// Replaces the admission policy with shed-at-`cap`.
    pub fn with_shed(mut self, cap: u32) -> Self {
        self.admission = Admission::Shed { cap };
        self
    }

    /// Replaces the admission policy with defer-at-`cap`.
    pub fn with_defer(mut self, cap: u32) -> Self {
        self.admission = Admission::Defer { cap };
        self
    }

    /// Validates the spec's numeric ranges.
    pub fn validate(&self) -> Result<(), TrafficError> {
        if !self.rho.is_finite() || self.rho <= 0.0 {
            return Err(TrafficError::BadRho(self.rho));
        }
        match self.arrivals {
            Arrivals::Poisson => {}
            Arrivals::Burst { on, off, mult } => {
                if on == 0 || off == 0 {
                    return Err(TrafficError::ZeroWindow);
                }
                if !mult.is_finite() || mult < 1.0 {
                    return Err(TrafficError::BadMultiplier(mult));
                }
            }
            Arrivals::Ramp { period, amplitude } => {
                if period == 0 {
                    return Err(TrafficError::ZeroWindow);
                }
                if !amplitude.is_finite() || !(0.0..=1.0).contains(&amplitude) {
                    return Err(TrafficError::BadAmplitude(amplitude));
                }
            }
            Arrivals::Flash { len, mult, .. } => {
                if len == 0 {
                    return Err(TrafficError::ZeroWindow);
                }
                if !mult.is_finite() || mult < 1.0 {
                    return Err(TrafficError::BadMultiplier(mult));
                }
            }
            Arrivals::Zipf { theta } => {
                if !theta.is_finite() || theta <= 0.0 {
                    return Err(TrafficError::BadTheta(theta));
                }
            }
        }
        match self.admission {
            Admission::Shed { cap } | Admission::Defer { cap } if cap == 0 => {
                Err(TrafficError::ZeroCap)
            }
            _ => Ok(()),
        }
    }

    /// Parses the CLI `--arrivals` grammar:
    ///
    /// ```text
    /// poisson[:RHO]
    /// burst:RHO,ON,OFF,MULT
    /// ramp:RHO,PERIOD,AMPLITUDE
    /// flash:RHO,AT,LEN,MULT
    /// zipf:RHO,THETA
    /// ```
    ///
    /// any of which may carry a `+shed:CAP` or `+defer:CAP` suffix.
    /// `poisson` without a rate defaults to ρ = 0.9.
    pub fn parse(spec: &str) -> Result<Self, TrafficError> {
        let bad = || TrafficError::Parse(spec.to_string());
        let (body, admission) = match spec.split_once('+') {
            None => (spec, Admission::Unbounded),
            Some((body, policy)) => {
                let (kind, cap) = policy.split_once(':').ok_or_else(bad)?;
                let cap: u32 = cap.parse().map_err(|_| bad())?;
                let admission = match kind {
                    "shed" => Admission::Shed { cap },
                    "defer" => Admission::Defer { cap },
                    _ => return Err(bad()),
                };
                (body, admission)
            }
        };
        let (name, params) = match body.split_once(':') {
            None => (body, Vec::new()),
            Some((name, rest)) => (name, rest.split(',').collect::<Vec<_>>()),
        };
        let f = |s: &str| s.parse::<f64>().map_err(|_| bad());
        let u = |s: &str| s.parse::<u64>().map_err(|_| bad());
        let parsed = match (name, params.as_slice()) {
            ("poisson", []) => TrafficSpec::poisson(0.9),
            ("poisson", [rho]) => TrafficSpec::poisson(f(rho)?),
            ("burst", [rho, on, off, mult]) => TrafficSpec {
                arrivals: Arrivals::Burst {
                    on: u(on)?,
                    off: u(off)?,
                    mult: f(mult)?,
                },
                rho: f(rho)?,
                admission: Admission::Unbounded,
            },
            ("ramp", [rho, period, amplitude]) => TrafficSpec {
                arrivals: Arrivals::Ramp {
                    period: u(period)?,
                    amplitude: f(amplitude)?,
                },
                rho: f(rho)?,
                admission: Admission::Unbounded,
            },
            ("flash", [rho, at, len, mult]) => TrafficSpec {
                arrivals: Arrivals::Flash {
                    at: u(at)?,
                    len: u(len)?,
                    mult: f(mult)?,
                },
                rho: f(rho)?,
                admission: Admission::Unbounded,
            },
            ("zipf", [rho, theta]) => TrafficSpec {
                arrivals: Arrivals::Zipf { theta: f(theta)? },
                rho: f(rho)?,
                admission: Admission::Unbounded,
            },
            _ => return Err(bad()),
        };
        let spec = TrafficSpec {
            admission,
            ..parsed
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// The runnable open-loop load model: Poisson arrivals at a
/// `(processor, step)`-shaped rate, unit-rate service. See the module
/// docs for the determinism and back-pressure contracts.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    spec: TrafficSpec,
    /// Precomputed per-processor rates for [`Arrivals::Zipf`] (empty
    /// for every other shape): `rates[p] = ρ·n·(p+1)^-θ / Σ(i+1)^-θ`.
    zipf_rates: Vec<f64>,
    /// Quiet-window rate for [`Arrivals::Burst`], chosen so the mean
    /// over one on+off cycle is exactly ρ (clamped at 0 when the burst
    /// alone exceeds the cycle's budget).
    burst_off_rate: f64,
}

impl TrafficModel {
    /// Builds the model for a machine of `n` processors, validating the
    /// spec.
    pub fn new(spec: TrafficSpec, n: usize) -> Result<Self, TrafficError> {
        spec.validate()?;
        let zipf_rates = match spec.arrivals {
            Arrivals::Zipf { theta } => {
                let weights: Vec<f64> = (0..n).map(|p| ((p + 1) as f64).powf(-theta)).collect();
                let total: f64 = weights.iter().sum();
                weights
                    .into_iter()
                    .map(|w| spec.rho * n as f64 * w / total)
                    .collect()
            }
            _ => Vec::new(),
        };
        let burst_off_rate = match spec.arrivals {
            Arrivals::Burst { on, off, mult } => {
                let cycle = (on + off) as f64;
                let budget = spec.rho * cycle - spec.rho * mult * on as f64;
                (budget / off as f64).max(0.0)
            }
            _ => 0.0,
        };
        Ok(TrafficModel {
            spec,
            zipf_rates,
            burst_off_rate,
        })
    }

    /// Convenience: parse + build in one call.
    pub fn from_spec(spec: &str, n: usize) -> Result<Self, TrafficError> {
        TrafficModel::new(TrafficSpec::parse(spec)?, n)
    }

    /// The validated spec this model runs.
    pub fn spec(&self) -> &TrafficSpec {
        &self.spec
    }

    /// Mean arrival rate λ for processor `p` at `step` — a pure
    /// function of its arguments (no RNG), which is what keeps the
    /// open-loop trajectory backend-independent.
    pub fn rate(&self, p: ProcId, step: Step) -> f64 {
        let rho = self.spec.rho;
        match self.spec.arrivals {
            Arrivals::Poisson => rho,
            Arrivals::Burst { on, off, mult } => {
                // Desynchronize bursts: each processor's cycle starts at
                // a hash-derived offset (pure, no stream draws).
                let cycle = on + off;
                let mut h = p as u64;
                let offset = splitmix64(&mut h) % cycle;
                if (step + offset) % cycle < on {
                    rho * mult
                } else {
                    self.burst_off_rate
                }
            }
            Arrivals::Ramp { period, amplitude } => {
                let phase = (step % period) as f64 / period as f64;
                rho * (1.0 + amplitude * (phase * std::f64::consts::TAU).sin())
            }
            Arrivals::Flash { at, len, mult } => {
                if step >= at && step - at < len {
                    rho * mult
                } else {
                    rho
                }
            }
            Arrivals::Zipf { .. } => self.zipf_rates[p],
        }
    }
}

impl LoadModel for TrafficModel {
    fn generate(&self, p: ProcId, step: Step, _load: usize, rng: &mut SimRng) -> usize {
        rng.poisson(self.rate(p, step))
    }

    /// Unit-rate service: consume one task per step whenever the queue
    /// is non-empty (deterministic, no RNG draw — μ = 1, so the
    /// per-processor utilization is exactly ρ).
    fn consume(&self, _p: ProcId, _step: Step, load: usize, _rng: &mut SimRng) -> usize {
        usize::from(load > 0)
    }

    fn arrival_rate(&self) -> Option<f64> {
        Some(self.spec.rho)
    }

    fn admission(&self) -> Admission {
        self.spec.admission
    }

    fn name(&self) -> &'static str {
        match self.spec.arrivals {
            Arrivals::Poisson => "poisson",
            Arrivals::Burst { .. } => "burst",
            Arrivals::Ramp { .. } => "ramp",
            Arrivals::Flash { .. } => "flash",
            Arrivals::Zipf { .. } => "zipf",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_rate_over(model: &TrafficModel, n: usize, steps: u64) -> f64 {
        let mut sum = 0.0;
        for p in 0..n {
            for s in 0..steps {
                sum += model.rate(p, s);
            }
        }
        sum / (n as f64 * steps as f64)
    }

    #[test]
    fn parse_round_trips_every_shape() {
        assert_eq!(
            TrafficSpec::parse("poisson:0.9").unwrap(),
            TrafficSpec::poisson(0.9)
        );
        assert_eq!(
            TrafficSpec::parse("poisson").unwrap(),
            TrafficSpec::poisson(0.9)
        );
        assert_eq!(
            TrafficSpec::parse("burst:0.7,8,24,2.5").unwrap().arrivals,
            Arrivals::Burst {
                on: 8,
                off: 24,
                mult: 2.5
            }
        );
        assert_eq!(
            TrafficSpec::parse("ramp:0.8,200,0.5").unwrap().arrivals,
            Arrivals::Ramp {
                period: 200,
                amplitude: 0.5
            }
        );
        assert_eq!(
            TrafficSpec::parse("flash:0.5,100,50,4").unwrap().arrivals,
            Arrivals::Flash {
                at: 100,
                len: 50,
                mult: 4.0
            }
        );
        assert_eq!(
            TrafficSpec::parse("zipf:0.9,1.1").unwrap().arrivals,
            Arrivals::Zipf { theta: 1.1 }
        );
        assert_eq!(
            TrafficSpec::parse("poisson:1.5+shed:64").unwrap().admission,
            Admission::Shed { cap: 64 }
        );
        assert_eq!(
            TrafficSpec::parse("burst:0.9,4,12,3+defer:32")
                .unwrap()
                .admission,
            Admission::Defer { cap: 32 }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "poison:0.9",
            "poisson:zero",
            "poisson:0.9,1",
            "burst:0.9",
            "burst:0.9,0,10,2",
            "ramp:0.9,100,1.5",
            "zipf:0.9,-1",
            "poisson:-0.5",
            "poisson:0.9+shed",
            "poisson:0.9+shed:0",
            "poisson:0.9+drop:4",
        ] {
            assert!(TrafficSpec::parse(bad).is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn every_shape_preserves_mean_rho() {
        // The machine-wide, long-run mean rate must equal ρ for every
        // stationary shape (flash excluded: it is a transient by
        // design).
        let n = 64;
        for spec in [
            "poisson:0.7",
            "burst:0.7,8,24,2.5",
            "ramp:0.7,100,0.8",
            "zipf:0.7,1.2",
        ] {
            let m = TrafficModel::from_spec(spec, n).unwrap();
            let mean = mean_rate_over(&m, n, 400);
            assert!((mean - 0.7).abs() < 0.02, "{spec}: mean rate {mean} != 0.7");
        }
    }

    #[test]
    fn burst_rates_are_desynchronized_and_nonnegative() {
        let m = TrafficModel::from_spec("burst:0.9,8,24,3", 32).unwrap();
        // With mult=3 and on/cycle = 1/4, the off rate is
        // 0.9·(32 - 3·8)/24 = 0.3.
        let mut high = 0;
        for p in 0..32 {
            let r = m.rate(p, 0);
            assert!(r >= 0.0);
            if r > 0.9 * 3.0 - 1e-9 {
                high += 1;
            }
        }
        // Hash offsets: roughly a quarter of processors bursting at any
        // instant, never all of them.
        assert!(high > 0 && high < 32, "high={high}");
    }

    #[test]
    fn zipf_is_skewed_but_mean_preserving() {
        let n = 256;
        let m = TrafficModel::from_spec("zipf:0.9,1.3", n).unwrap();
        assert!(m.rate(0, 0) > 10.0 * m.rate(n - 1, 0));
        let mean = mean_rate_over(&m, n, 1);
        assert!((mean - 0.9).abs() < 1e-9);
    }

    #[test]
    fn flash_window_boundaries() {
        let m = TrafficModel::from_spec("flash:0.5,100,50,4", 4).unwrap();
        assert_eq!(m.rate(0, 99), 0.5);
        assert_eq!(m.rate(0, 100), 2.0);
        assert_eq!(m.rate(0, 149), 2.0);
        assert_eq!(m.rate(0, 150), 0.5);
    }

    #[test]
    fn empirical_arrival_rate_matches_rho() {
        // Draw arrivals through the real generate() path and check the
        // empirical mean against ρ (seeded, so this is deterministic;
        // the band is ~6σ for the chosen trial count).
        let m = TrafficModel::from_spec("poisson:0.7", 1).unwrap();
        let mut rng = SimRng::new(2026);
        let trials = 200_000u64;
        let total: u64 = (0..trials)
            .map(|s| m.generate(0, s, 0, &mut rng) as u64)
            .sum();
        let mean = total as f64 / trials as f64;
        let band = 6.0 * (0.7f64 / trials as f64).sqrt();
        assert!((mean - 0.7).abs() < band, "mean {mean} outside ±{band}");
    }

    #[test]
    fn model_surface() {
        let m = TrafficModel::from_spec("poisson:0.9+shed:16", 8).unwrap();
        assert_eq!(m.name(), "poisson");
        assert_eq!(m.arrival_rate(), Some(0.9));
        assert_eq!(m.admission(), Admission::Shed { cap: 16 });
        let mut rng = SimRng::new(1);
        // μ = 1 service: consume exactly one when loaded, none when idle.
        assert_eq!(m.consume(0, 0, 5, &mut rng), 1);
        assert_eq!(m.consume(0, 0, 0, &mut rng), 0);
    }
}
