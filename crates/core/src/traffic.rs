//! Open-loop traffic models: millions of independent users, not a
//! closed generation loop.
//!
//! The paper's models (§1.2, [`crate::gen`]) are closed-loop: generation
//! probabilities are chosen so a steady state exists by construction.
//! A production service sees the opposite regime — arrivals are an
//! *open-loop* stochastic process that does not care how backed up the
//! system is. [`TrafficModel`] provides that front-end: per processor
//! per step, arrivals are Poisson with a rate shaped by the selected
//! [`Arrivals`] pattern (constant, bursty on/off, diurnal ramp, flash
//! crowd, or Zipf hotspot skew), and service consumes one task per step
//! whenever the queue is non-empty (unit rate, μ = 1). The offered
//! load ρ is therefore exactly the mean arrival rate per processor.
//!
//! Determinism: arrival counts are drawn from the simulator's existing
//! per-processor xoshiro/SplitMix64 streams
//! ([`SimRng::poisson`]), and every rate modulation is a pure function
//! of `(processor, step)` — burst phase offsets come from a SplitMix64
//! hash of the processor id, never from extra RNG draws — so open-loop
//! runs stay bit-identical across all execution backends.
//!
//! Back-pressure: at ρ ≥ 1 queues grow without bound, so a
//! [`TrafficSpec`] can carry an [`Admission`] policy (`+shed:CAP` /
//! `+defer:CAP` in the parse syntax) that bounds the per-processor
//! queue at the front door; see [`pcrlb_sim::Admission`].

use pcrlb_sim::rng::splitmix64;
use pcrlb_sim::{Admission, LoadModel, ProcId, SimRng, Step};
use std::fmt;

/// Errors constructing or parsing a traffic model.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficError {
    /// Offered load must be finite and positive.
    BadRho(f64),
    /// Burst/flash rate multiplier must be finite and ≥ 1.
    BadMultiplier(f64),
    /// On/off/flash/ramp windows must be nonzero.
    ZeroWindow,
    /// Diurnal amplitude must lie in `[0, 1]` (rates stay nonnegative).
    BadAmplitude(f64),
    /// Zipf exponent must be finite and positive.
    BadTheta(f64),
    /// Hurst exponent must lie strictly inside `(0.5, 1)` — at 0.5 the
    /// process is short-range dependent (plain Poisson does that), at 1
    /// the on/off durations lose their finite mean.
    BadHurst(f64),
    /// Admission cap must be nonzero.
    ZeroCap,
    /// Unparseable `--arrivals` specification.
    Parse(String),
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::BadRho(r) => write!(f, "offered load rho={r} must be finite and > 0"),
            TrafficError::BadMultiplier(m) => {
                write!(f, "rate multiplier {m} must be finite and >= 1")
            }
            TrafficError::ZeroWindow => write!(f, "traffic windows must be nonzero"),
            TrafficError::BadAmplitude(a) => write!(f, "ramp amplitude {a} outside [0,1]"),
            TrafficError::BadTheta(t) => write!(f, "zipf exponent {t} must be finite and > 0"),
            TrafficError::BadHurst(h) => {
                write!(f, "hurst exponent {h} must lie strictly in (0.5, 1)")
            }
            TrafficError::ZeroCap => write!(f, "admission cap must be nonzero"),
            TrafficError::Parse(s) => write!(f, "cannot parse arrivals spec '{s}'"),
        }
    }
}

impl std::error::Error for TrafficError {}

/// The arrival-rate shape over `(processor, step)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Constant rate ρ on every processor (homogeneous Poisson).
    Poisson,
    /// On/off bursts: rate `ρ·mult` for `on` steps, then a compensating
    /// low rate for `off` steps, with the phase offset per processor
    /// (hash-derived) so bursts are desynchronized across the machine
    /// and the machine-wide mean stays ρ.
    Burst {
        /// Steps per burst (high-rate) window.
        on: u64,
        /// Steps per quiet window.
        off: u64,
        /// Rate multiplier during the burst.
        mult: f64,
    },
    /// Diurnal ramp: rate `ρ·(1 + amplitude·sin(2π·step/period))`,
    /// identical on all processors (the whole service breathes
    /// together); mean over a period is ρ.
    Ramp {
        /// Steps per full cycle.
        period: u64,
        /// Peak-to-mean swing in `[0, 1]`.
        amplitude: f64,
    },
    /// Flash crowd: baseline ρ, with rate `ρ·mult` during
    /// `at..at + len` on every processor.
    Flash {
        /// First step of the flash.
        at: u64,
        /// Flash duration in steps.
        len: u64,
        /// Rate multiplier during the flash.
        mult: f64,
    },
    /// Zipf hotspot skew: processor `p` receives a constant rate
    /// proportional to `(p+1)^-theta`, normalized so the machine-wide
    /// mean is ρ — the key-skew regime where a few processors are hot.
    Zipf {
        /// Skew exponent (larger = hotter hotspots).
        theta: f64,
    },
    /// Self-similar traffic with Hurst exponent `h ∈ (0.5, 1)`:
    /// the classic Willinger–Taqqu–Sherman–Wilson construction, a
    /// superposition of on/off sources whose sojourn times are
    /// heavy-tailed Pareto with index `α = 3 − 2h`, which makes the
    /// aggregate rate long-range dependent (burstiness at every time
    /// scale, unlike [`Arrivals::Burst`]'s single cycle). The rate
    /// timeline is precomputed from a fixed-seed private RNG — a pure
    /// function of the spec — and phase-shifted per processor, so runs
    /// stay bit-identical across backends.
    SelfSim {
        /// Hurst exponent in `(0.5, 1)`; larger = longer-range
        /// dependence.
        h: f64,
    },
}

/// A validated description of an open-loop workload: arrival shape,
/// offered load, and admission policy. Cheap to copy; turn it into a
/// runnable model with [`TrafficModel::new`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSpec {
    /// Arrival-rate shape.
    pub arrivals: Arrivals,
    /// Offered load per processor (mean arrivals per step; μ = 1).
    pub rho: f64,
    /// Front-door back-pressure policy.
    pub admission: Admission,
}

impl TrafficSpec {
    /// A constant-rate Poisson spec at offered load `rho`, unbounded
    /// admission.
    pub fn poisson(rho: f64) -> Self {
        TrafficSpec {
            arrivals: Arrivals::Poisson,
            rho,
            admission: Admission::Unbounded,
        }
    }

    /// Replaces the admission policy with shed-at-`cap`.
    pub fn with_shed(mut self, cap: u32) -> Self {
        self.admission = Admission::Shed { cap };
        self
    }

    /// Replaces the admission policy with defer-at-`cap`.
    pub fn with_defer(mut self, cap: u32) -> Self {
        self.admission = Admission::Defer { cap };
        self
    }

    /// Validates the spec's numeric ranges.
    pub fn validate(&self) -> Result<(), TrafficError> {
        if !self.rho.is_finite() || self.rho <= 0.0 {
            return Err(TrafficError::BadRho(self.rho));
        }
        match self.arrivals {
            Arrivals::Poisson => {}
            Arrivals::Burst { on, off, mult } => {
                if on == 0 || off == 0 {
                    return Err(TrafficError::ZeroWindow);
                }
                if !mult.is_finite() || mult < 1.0 {
                    return Err(TrafficError::BadMultiplier(mult));
                }
            }
            Arrivals::Ramp { period, amplitude } => {
                if period == 0 {
                    return Err(TrafficError::ZeroWindow);
                }
                if !amplitude.is_finite() || !(0.0..=1.0).contains(&amplitude) {
                    return Err(TrafficError::BadAmplitude(amplitude));
                }
            }
            Arrivals::Flash { len, mult, .. } => {
                if len == 0 {
                    return Err(TrafficError::ZeroWindow);
                }
                if !mult.is_finite() || mult < 1.0 {
                    return Err(TrafficError::BadMultiplier(mult));
                }
            }
            Arrivals::Zipf { theta } => {
                if !theta.is_finite() || theta <= 0.0 {
                    return Err(TrafficError::BadTheta(theta));
                }
            }
            Arrivals::SelfSim { h } => {
                if !h.is_finite() || h <= 0.5 || h >= 1.0 {
                    return Err(TrafficError::BadHurst(h));
                }
            }
        }
        match self.admission {
            Admission::Shed { cap } | Admission::Defer { cap } if cap == 0 => {
                Err(TrafficError::ZeroCap)
            }
            _ => Ok(()),
        }
    }

    /// Parses the CLI `--arrivals` grammar:
    ///
    /// ```text
    /// poisson[:RHO]
    /// burst:RHO,ON,OFF,MULT
    /// ramp:RHO,PERIOD,AMPLITUDE
    /// flash:RHO,AT,LEN,MULT
    /// zipf:RHO,THETA
    /// selfsim:RHO,H
    /// ```
    ///
    /// any of which may carry a `+shed:CAP` or `+defer:CAP` suffix.
    /// `poisson` without a rate defaults to ρ = 0.9.
    pub fn parse(spec: &str) -> Result<Self, TrafficError> {
        let bad = || TrafficError::Parse(spec.to_string());
        let (body, admission) = match spec.split_once('+') {
            None => (spec, Admission::Unbounded),
            Some((body, policy)) => {
                let (kind, cap) = policy.split_once(':').ok_or_else(bad)?;
                let cap: u32 = cap.parse().map_err(|_| bad())?;
                let admission = match kind {
                    "shed" => Admission::Shed { cap },
                    "defer" => Admission::Defer { cap },
                    _ => return Err(bad()),
                };
                (body, admission)
            }
        };
        let (name, params) = match body.split_once(':') {
            None => (body, Vec::new()),
            Some((name, rest)) => (name, rest.split(',').collect::<Vec<_>>()),
        };
        let f = |s: &str| s.parse::<f64>().map_err(|_| bad());
        let u = |s: &str| s.parse::<u64>().map_err(|_| bad());
        let parsed = match (name, params.as_slice()) {
            ("poisson", []) => TrafficSpec::poisson(0.9),
            ("poisson", [rho]) => TrafficSpec::poisson(f(rho)?),
            ("burst", [rho, on, off, mult]) => TrafficSpec {
                arrivals: Arrivals::Burst {
                    on: u(on)?,
                    off: u(off)?,
                    mult: f(mult)?,
                },
                rho: f(rho)?,
                admission: Admission::Unbounded,
            },
            ("ramp", [rho, period, amplitude]) => TrafficSpec {
                arrivals: Arrivals::Ramp {
                    period: u(period)?,
                    amplitude: f(amplitude)?,
                },
                rho: f(rho)?,
                admission: Admission::Unbounded,
            },
            ("flash", [rho, at, len, mult]) => TrafficSpec {
                arrivals: Arrivals::Flash {
                    at: u(at)?,
                    len: u(len)?,
                    mult: f(mult)?,
                },
                rho: f(rho)?,
                admission: Admission::Unbounded,
            },
            ("zipf", [rho, theta]) => TrafficSpec {
                arrivals: Arrivals::Zipf { theta: f(theta)? },
                rho: f(rho)?,
                admission: Admission::Unbounded,
            },
            ("selfsim", [rho, h]) => TrafficSpec {
                arrivals: Arrivals::SelfSim { h: f(h)? },
                rho: f(rho)?,
                admission: Admission::Unbounded,
            },
            _ => return Err(bad()),
        };
        let spec = TrafficSpec {
            admission,
            ..parsed
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// The runnable open-loop load model: Poisson arrivals at a
/// `(processor, step)`-shaped rate, unit-rate service. See the module
/// docs for the determinism and back-pressure contracts.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    spec: TrafficSpec,
    /// Precomputed per-processor rates for [`Arrivals::Zipf`] (empty
    /// for every other shape): `rates[p] = ρ·n·(p+1)^-θ / Σ(i+1)^-θ`.
    zipf_rates: Vec<f64>,
    /// Quiet-window rate for [`Arrivals::Burst`], chosen so the mean
    /// over one on+off cycle is exactly ρ (clamped at 0 when the burst
    /// alone exceeds the cycle's budget).
    burst_off_rate: f64,
    /// Precomputed mean-one rate timeline for [`Arrivals::SelfSim`]
    /// (empty for every other shape), derived from a fixed-seed private
    /// RNG so it is a pure function of the spec.
    selfsim_timeline: Vec<f64>,
}

/// Steps in the precomputed self-similar rate timeline (processors
/// wrap around it at hash-derived phase offsets).
const SELFSIM_HORIZON: usize = 4096;
/// On/off sources superposed into the self-similar timeline.
const SELFSIM_SOURCES: usize = 32;
/// Seed of the private timeline RNG. Fixed: the timeline must be a
/// pure function of the spec, like the Zipf rate table.
const SELFSIM_SEED: u64 = 0x5e1f_51a1_7af1_c0de;

/// Builds the Willinger et al. on/off superposition: each source
/// alternates between emitting and silent sojourns whose lengths are
/// Pareto(α = 3 − 2h) distributed, and the per-step count of active
/// sources — normalized to mean one — becomes the rate modulation.
fn selfsim_timeline(h: f64) -> Vec<f64> {
    let alpha = 3.0 - 2.0 * h;
    let mut rng = SimRng::new(SELFSIM_SEED);
    // Pareto sojourn with x_min = 1, capped at one horizon so a single
    // draw cannot freeze a source for the whole timeline.
    let sojourn = |rng: &mut SimRng| -> usize {
        let u = 1.0 - rng.f64(); // (0, 1]
        (u.powf(-1.0 / alpha).ceil() as usize).clamp(1, SELFSIM_HORIZON)
    };
    let mut counts = vec![0u32; SELFSIM_HORIZON];
    for _ in 0..SELFSIM_SOURCES {
        let mut on = rng.chance(0.5);
        let mut t = 0usize;
        while t < SELFSIM_HORIZON {
            let len = sojourn(&mut rng).min(SELFSIM_HORIZON - t);
            if on {
                for c in &mut counts[t..t + len] {
                    *c += 1;
                }
            }
            t += len;
            on = !on;
        }
    }
    let mean = counts.iter().map(|&c| f64::from(c)).sum::<f64>() / SELFSIM_HORIZON as f64;
    if mean <= 0.0 {
        return vec![1.0; SELFSIM_HORIZON];
    }
    counts.into_iter().map(|c| f64::from(c) / mean).collect()
}

impl TrafficModel {
    /// Builds the model for a machine of `n` processors, validating the
    /// spec.
    pub fn new(spec: TrafficSpec, n: usize) -> Result<Self, TrafficError> {
        spec.validate()?;
        let zipf_rates = match spec.arrivals {
            Arrivals::Zipf { theta } => {
                let weights: Vec<f64> = (0..n).map(|p| ((p + 1) as f64).powf(-theta)).collect();
                let total: f64 = weights.iter().sum();
                weights
                    .into_iter()
                    .map(|w| spec.rho * n as f64 * w / total)
                    .collect()
            }
            _ => Vec::new(),
        };
        let burst_off_rate = match spec.arrivals {
            Arrivals::Burst { on, off, mult } => {
                let cycle = (on + off) as f64;
                let budget = spec.rho * cycle - spec.rho * mult * on as f64;
                (budget / off as f64).max(0.0)
            }
            _ => 0.0,
        };
        let timeline = match spec.arrivals {
            Arrivals::SelfSim { h } => selfsim_timeline(h),
            _ => Vec::new(),
        };
        Ok(TrafficModel {
            spec,
            zipf_rates,
            burst_off_rate,
            selfsim_timeline: timeline,
        })
    }

    /// Convenience: parse + build in one call.
    pub fn from_spec(spec: &str, n: usize) -> Result<Self, TrafficError> {
        TrafficModel::new(TrafficSpec::parse(spec)?, n)
    }

    /// The validated spec this model runs.
    pub fn spec(&self) -> &TrafficSpec {
        &self.spec
    }

    /// Mean arrival rate λ for processor `p` at `step` — a pure
    /// function of its arguments (no RNG), which is what keeps the
    /// open-loop trajectory backend-independent.
    pub fn rate(&self, p: ProcId, step: Step) -> f64 {
        let rho = self.spec.rho;
        match self.spec.arrivals {
            Arrivals::Poisson => rho,
            Arrivals::Burst { on, off, mult } => {
                // Desynchronize bursts: each processor's cycle starts at
                // a hash-derived offset (pure, no stream draws).
                let cycle = on + off;
                let mut h = p as u64;
                let offset = splitmix64(&mut h) % cycle;
                if (step + offset) % cycle < on {
                    rho * mult
                } else {
                    self.burst_off_rate
                }
            }
            Arrivals::Ramp { period, amplitude } => {
                let phase = (step % period) as f64 / period as f64;
                rho * (1.0 + amplitude * (phase * std::f64::consts::TAU).sin())
            }
            Arrivals::Flash { at, len, mult } => {
                if step >= at && step - at < len {
                    rho * mult
                } else {
                    rho
                }
            }
            Arrivals::Zipf { .. } => self.zipf_rates[p],
            Arrivals::SelfSim { .. } => {
                // Same desynchronization idiom as Burst: each processor
                // reads the shared timeline at a hash-derived phase.
                let mut h = p as u64;
                let offset = splitmix64(&mut h) as usize % SELFSIM_HORIZON;
                rho * self.selfsim_timeline[(step as usize + offset) % SELFSIM_HORIZON]
            }
        }
    }
}

impl LoadModel for TrafficModel {
    fn generate(&self, p: ProcId, step: Step, _load: usize, rng: &mut SimRng) -> usize {
        rng.poisson(self.rate(p, step))
    }

    /// Unit-rate service: consume one task per step whenever the queue
    /// is non-empty (deterministic, no RNG draw — μ = 1, so the
    /// per-processor utilization is exactly ρ).
    fn consume(&self, _p: ProcId, _step: Step, load: usize, _rng: &mut SimRng) -> usize {
        usize::from(load > 0)
    }

    fn arrival_rate(&self) -> Option<f64> {
        Some(self.spec.rho)
    }

    fn admission(&self) -> Admission {
        self.spec.admission
    }

    fn name(&self) -> &'static str {
        match self.spec.arrivals {
            Arrivals::Poisson => "poisson",
            Arrivals::Burst { .. } => "burst",
            Arrivals::Ramp { .. } => "ramp",
            Arrivals::Flash { .. } => "flash",
            Arrivals::Zipf { .. } => "zipf",
            Arrivals::SelfSim { .. } => "selfsim",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_rate_over(model: &TrafficModel, n: usize, steps: u64) -> f64 {
        let mut sum = 0.0;
        for p in 0..n {
            for s in 0..steps {
                sum += model.rate(p, s);
            }
        }
        sum / (n as f64 * steps as f64)
    }

    #[test]
    fn parse_round_trips_every_shape() {
        assert_eq!(
            TrafficSpec::parse("poisson:0.9").unwrap(),
            TrafficSpec::poisson(0.9)
        );
        assert_eq!(
            TrafficSpec::parse("poisson").unwrap(),
            TrafficSpec::poisson(0.9)
        );
        assert_eq!(
            TrafficSpec::parse("burst:0.7,8,24,2.5").unwrap().arrivals,
            Arrivals::Burst {
                on: 8,
                off: 24,
                mult: 2.5
            }
        );
        assert_eq!(
            TrafficSpec::parse("ramp:0.8,200,0.5").unwrap().arrivals,
            Arrivals::Ramp {
                period: 200,
                amplitude: 0.5
            }
        );
        assert_eq!(
            TrafficSpec::parse("flash:0.5,100,50,4").unwrap().arrivals,
            Arrivals::Flash {
                at: 100,
                len: 50,
                mult: 4.0
            }
        );
        assert_eq!(
            TrafficSpec::parse("zipf:0.9,1.1").unwrap().arrivals,
            Arrivals::Zipf { theta: 1.1 }
        );
        assert_eq!(
            TrafficSpec::parse("selfsim:0.8,0.75").unwrap().arrivals,
            Arrivals::SelfSim { h: 0.75 }
        );
        assert_eq!(
            TrafficSpec::parse("poisson:1.5+shed:64").unwrap().admission,
            Admission::Shed { cap: 64 }
        );
        assert_eq!(
            TrafficSpec::parse("burst:0.9,4,12,3+defer:32")
                .unwrap()
                .admission,
            Admission::Defer { cap: 32 }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "poison:0.9",
            "poisson:zero",
            "poisson:0.9,1",
            "burst:0.9",
            "burst:0.9,0,10,2",
            "ramp:0.9,100,1.5",
            "zipf:0.9,-1",
            "poisson:-0.5",
            "poisson:0.9+shed",
            "poisson:0.9+shed:0",
            "poisson:0.9+drop:4",
            "selfsim:0.8",
            "selfsim:0.8,0.5",
            "selfsim:0.8,1.0",
            "selfsim:0.8,0.2",
        ] {
            assert!(TrafficSpec::parse(bad).is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn every_shape_preserves_mean_rho() {
        // The machine-wide, long-run mean rate must equal ρ for every
        // stationary shape (flash excluded: it is a transient by
        // design).
        let n = 64;
        for spec in [
            "poisson:0.7",
            "burst:0.7,8,24,2.5",
            "ramp:0.7,100,0.8",
            "zipf:0.7,1.2",
        ] {
            let m = TrafficModel::from_spec(spec, n).unwrap();
            let mean = mean_rate_over(&m, n, 400);
            assert!((mean - 0.7).abs() < 0.02, "{spec}: mean rate {mean} != 0.7");
        }
    }

    #[test]
    fn burst_rates_are_desynchronized_and_nonnegative() {
        let m = TrafficModel::from_spec("burst:0.9,8,24,3", 32).unwrap();
        // With mult=3 and on/cycle = 1/4, the off rate is
        // 0.9·(32 - 3·8)/24 = 0.3.
        let mut high = 0;
        for p in 0..32 {
            let r = m.rate(p, 0);
            assert!(r >= 0.0);
            if r > 0.9 * 3.0 - 1e-9 {
                high += 1;
            }
        }
        // Hash offsets: roughly a quarter of processors bursting at any
        // instant, never all of them.
        assert!(high > 0 && high < 32, "high={high}");
    }

    #[test]
    fn zipf_is_skewed_but_mean_preserving() {
        let n = 256;
        let m = TrafficModel::from_spec("zipf:0.9,1.3", n).unwrap();
        assert!(m.rate(0, 0) > 10.0 * m.rate(n - 1, 0));
        let mean = mean_rate_over(&m, n, 1);
        assert!((mean - 0.9).abs() < 1e-9);
    }

    #[test]
    fn flash_window_boundaries() {
        let m = TrafficModel::from_spec("flash:0.5,100,50,4", 4).unwrap();
        assert_eq!(m.rate(0, 99), 0.5);
        assert_eq!(m.rate(0, 100), 2.0);
        assert_eq!(m.rate(0, 149), 2.0);
        assert_eq!(m.rate(0, 150), 0.5);
    }

    #[test]
    fn selfsim_timeline_is_mean_one_and_pure() {
        // The private fixed-seed construction makes the timeline a pure
        // function of the spec: mean exactly ρ over one horizon, and two
        // models built from the same spec agree draw-for-draw.
        let n = 8;
        let a = TrafficModel::from_spec("selfsim:0.7,0.8", n).unwrap();
        let b = TrafficModel::from_spec("selfsim:0.7,0.8", n).unwrap();
        for p in 0..n {
            let mean: f64 = (0..SELFSIM_HORIZON as u64)
                .map(|s| a.rate(p, s))
                .sum::<f64>()
                / SELFSIM_HORIZON as f64;
            assert!((mean - 0.7).abs() < 1e-9, "p={p}: mean {mean}");
            assert_eq!(a.rate(p, 0), b.rate(p, 0));
            assert!(a.rate(p, 0) >= 0.0);
        }
        // Phase offsets desynchronize processors.
        assert!((0..n).any(|p| a.rate(p, 0) != a.rate(0, 0)));
    }

    /// Variance-aggregation slope: block-average the series at scale
    /// `m` and regress `ln Var(X^(m))` on `ln m`. Short-range dependent
    /// processes give slope −1; self-similar ones give `2H − 2`. The
    /// regression starts at m = 16 so the iid Poisson sampling noise
    /// (variance λ/m) has decayed enough for the rate modulation's
    /// long-range component to show through.
    fn variance_aggregation_slope(series: &[f64]) -> f64 {
        let mut pts = Vec::new();
        for level in 4..10u32 {
            let m = 1usize << level;
            let blocks: Vec<f64> = series
                .chunks_exact(m)
                .map(|c| c.iter().sum::<f64>() / m as f64)
                .collect();
            let mean = blocks.iter().sum::<f64>() / blocks.len() as f64;
            let var = blocks.iter().map(|b| (b - mean).powi(2)).sum::<f64>() / blocks.len() as f64;
            pts.push(((m as f64).ln(), var.max(1e-12).ln()));
        }
        let k = pts.len() as f64;
        let (sx, sy): (f64, f64) = pts.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
        let (sxx, sxy): (f64, f64) = pts
            .iter()
            .fold((0.0, 0.0), |(a, b), (x, y)| (a + x * x, b + x * y));
        (k * sxy - sx * sy) / (k * sxx - sx * sx)
    }

    #[test]
    fn selfsim_arrivals_pass_the_hurst_shape_test() {
        // Sample arrivals through the real generate() path and compare
        // the variance-aggregation slope against plain Poisson. For
        // H = 0.85 the asymptotic slope is 2H − 2 = −0.3; Poisson decays
        // at −1. The band is loose (finite-sample bias) but the two
        // regimes must be clearly separated and the implied H must land
        // in the long-range-dependent half.
        let steps = 16 * SELFSIM_HORIZON as u64;
        let sample = |spec: &str| -> Vec<f64> {
            let m = TrafficModel::from_spec(spec, 1).unwrap();
            let mut rng = SimRng::new(77);
            (0..steps)
                .map(|s| m.generate(0, s, 0, &mut rng) as f64)
                .collect()
        };
        // λ = 4 rather than a sub-unit service rate: the modulation
        // signal grows as λ² while the Poisson noise grows as λ, so a
        // hot sampling rate separates the regimes cleanly.
        let selfsim = variance_aggregation_slope(&sample("selfsim:4,0.85"));
        let poisson = variance_aggregation_slope(&sample("poisson:4"));
        assert!(poisson < -0.85, "poisson slope {poisson} should be ~ -1");
        assert!(
            selfsim > poisson + 0.25,
            "selfsim slope {selfsim} not separated from poisson {poisson}"
        );
        let implied_h = 1.0 + selfsim / 2.0;
        assert!(
            implied_h > 0.5 && implied_h < 1.0,
            "implied H {implied_h} outside (0.5, 1)"
        );
    }

    #[test]
    fn empirical_arrival_rate_matches_rho() {
        // Draw arrivals through the real generate() path and check the
        // empirical mean against ρ (seeded, so this is deterministic;
        // the band is ~6σ for the chosen trial count).
        let m = TrafficModel::from_spec("poisson:0.7", 1).unwrap();
        let mut rng = SimRng::new(2026);
        let trials = 200_000u64;
        let total: u64 = (0..trials)
            .map(|s| m.generate(0, s, 0, &mut rng) as u64)
            .sum();
        let mean = total as f64 / trials as f64;
        let band = 6.0 * (0.7f64 / trials as f64).sqrt();
        assert!((mean - 0.7).abs() < band, "mean {mean} outside ±{band}");
    }

    #[test]
    fn model_surface() {
        let m = TrafficModel::from_spec("poisson:0.9+shed:16", 8).unwrap();
        assert_eq!(m.name(), "poisson");
        assert_eq!(m.arrival_rate(), Some(0.9));
        assert_eq!(m.admission(), Admission::Shed { cap: 16 });
        let mut rng = SimRng::new(1);
        // μ = 1 service: consume exactly one when loaded, none when idle.
        assert_eq!(m.consume(0, 0, 5, &mut rng), 1);
        assert_eq!(m.consume(0, 0, 0, &mut rng), 0);
    }
}
