//! Adversarial load generation (paper §1.2, model `Adversarial`).
//!
//! In the adversarial model a processor may change its load *on its own*
//! by `O(T)` tasks per window of `T = (log log n)^2` steps, in either
//! direction, subject to a global system-load bound `B`. The paper uses
//! `B` only inside the analysis (the bound becomes `O(B + T)`); the
//! algorithm itself never reads it, so these adversaries simply keep
//! their own behaviour within the model's budget and the experiments
//! report the implied `B`.
//!
//! Three concrete adversaries are provided:
//!
//! * [`Burst`] — each window, each processor dumps a burst of `O(T)`
//!   tasks with some probability (bursty batch arrivals);
//! * [`Targeted`] — a fixed set of victim processors receives `O(T)`
//!   tasks every window while the rest receive nothing (a worst case
//!   for locality-preserving balancers);
//! * [`TreeSpawn`] — every busy processor's running task spawns up to
//!   `k` child tasks per step (the "tree-like load generation" the
//!   paper explicitly mentions: each task currently being performed may
//!   generate a constant number of new tasks).

use pcrlb_sim::{LoadModel, ProcId, SimRng, Step};

/// Bursty adversary: at every window boundary each processor generates
/// `burst` tasks with probability `prob`; consumption is one task per
/// step when load is present. Per-window load change is at most
/// `burst = O(T)`, as the model requires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Window length in steps (the paper's `T`).
    pub window: u64,
    /// Burst size (`O(T)`).
    pub burst: usize,
    /// Probability a given processor bursts in a given window.
    pub prob: f64,
}

impl Burst {
    /// Creates a burst adversary; `window >= 1`.
    pub fn new(window: u64, burst: usize, prob: f64) -> Self {
        assert!(window >= 1, "window must be positive");
        Burst {
            window,
            burst,
            prob,
        }
    }
}

impl LoadModel for Burst {
    fn generate(&self, _: ProcId, step: Step, _: usize, rng: &mut SimRng) -> usize {
        if step.is_multiple_of(self.window) && rng.chance(self.prob) {
            self.burst
        } else {
            0
        }
    }

    fn consume(&self, _: ProcId, _: Step, load: usize, _: &mut SimRng) -> usize {
        usize::from(load > 0)
    }

    fn name(&self) -> &'static str {
        "adversary-burst"
    }
}

/// Targeted adversary: processors `0..victims` receive `amount` tasks at
/// every window boundary; everyone else generates nothing. The implied
/// system-load bound is `B ≈ victims · amount` plus drainage backlog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Targeted {
    /// Window length in steps.
    pub window: u64,
    /// Number of victim processors (`0..victims`).
    pub victims: usize,
    /// Tasks injected per victim per window (`O(T)`).
    pub amount: usize,
}

impl Targeted {
    /// Creates a targeted adversary; `window >= 1`.
    pub fn new(window: u64, victims: usize, amount: usize) -> Self {
        assert!(window >= 1, "window must be positive");
        Targeted {
            window,
            victims,
            amount,
        }
    }
}

impl LoadModel for Targeted {
    fn generate(&self, p: ProcId, step: Step, _: usize, _: &mut SimRng) -> usize {
        if p < self.victims && step.is_multiple_of(self.window) {
            self.amount
        } else {
            0
        }
    }

    fn consume(&self, _: ProcId, _: Step, load: usize, _: &mut SimRng) -> usize {
        usize::from(load > 0)
    }

    fn name(&self) -> &'static str {
        "adversary-targeted"
    }
}

/// Tree-spawning adversary: while a processor is busy (load > 0) its
/// running task spawns `k` children with probability `prob` each step.
/// With `k · prob < 1` the branching process is subcritical and the
/// system stays bounded; per window of `T` steps a processor's
/// self-inflicted load change is at most `k·T = O(T)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeSpawn {
    /// Children spawned per successful spawn event.
    pub k: usize,
    /// Per-step spawn probability (`k · prob < 1` for stability).
    pub prob: f64,
    /// Probability an *idle* processor seeds a fresh root task, so the
    /// process does not die out globally.
    pub seed_prob: f64,
}

impl TreeSpawn {
    /// Creates a tree-spawn adversary; requires subcriticality
    /// (`k · prob < 1`).
    pub fn new(k: usize, prob: f64, seed_prob: f64) -> Self {
        assert!(
            (k as f64) * prob < 1.0,
            "k*prob must stay below 1 or the load diverges"
        );
        TreeSpawn { k, prob, seed_prob }
    }
}

impl LoadModel for TreeSpawn {
    fn generate(&self, _: ProcId, _: Step, load: usize, rng: &mut SimRng) -> usize {
        if load > 0 {
            if rng.chance(self.prob) {
                self.k
            } else {
                0
            }
        } else if rng.chance(self.seed_prob) {
            // A fresh root arrives together with its first child. A
            // lone seed would be consumed in its own arrival step
            // (service time is one step, consumption follows
            // generation), so the branching process could never ignite.
            2
        } else {
            0
        }
    }

    fn consume(&self, _: ProcId, _: Step, load: usize, _: &mut SimRng) -> usize {
        usize::from(load > 0)
    }

    fn name(&self) -> &'static str {
        "adversary-treespawn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::ThresholdBalancer;
    use crate::config::BalancerConfig;
    use pcrlb_sim::{Engine, MaxLoadProbe, Runner, Unbalanced};

    #[test]
    fn burst_generates_only_at_window_start() {
        let adv = Burst::new(16, 10, 1.0);
        let mut rng = SimRng::new(1);
        assert_eq!(adv.generate(0, 0, 0, &mut rng), 10);
        assert_eq!(adv.generate(0, 1, 0, &mut rng), 0);
        assert_eq!(adv.generate(0, 15, 0, &mut rng), 0);
        assert_eq!(adv.generate(0, 16, 0, &mut rng), 10);
    }

    #[test]
    fn burst_respects_probability() {
        let adv = Burst::new(1, 5, 0.0);
        let mut rng = SimRng::new(2);
        for step in 0..100 {
            assert_eq!(adv.generate(0, step, 0, &mut rng), 0);
        }
    }

    #[test]
    fn targeted_hits_only_victims() {
        let adv = Targeted::new(8, 3, 7);
        let mut rng = SimRng::new(3);
        assert_eq!(adv.generate(0, 0, 0, &mut rng), 7);
        assert_eq!(adv.generate(2, 0, 0, &mut rng), 7);
        assert_eq!(adv.generate(3, 0, 0, &mut rng), 0);
        assert_eq!(adv.generate(0, 4, 0, &mut rng), 0);
    }

    #[test]
    fn treespawn_requires_subcriticality() {
        let _ = TreeSpawn::new(2, 0.4, 0.1); // 0.8 < 1: fine
    }

    #[test]
    #[should_panic(expected = "k*prob")]
    fn treespawn_rejects_supercritical() {
        TreeSpawn::new(3, 0.4, 0.1); // 1.2 >= 1
    }

    #[test]
    fn treespawn_spawns_only_when_busy() {
        // Built literally: the constructor (rightly) rejects a
        // supercritical spawn rate, but determinism is what we test.
        let adv = TreeSpawn {
            k: 2,
            prob: 1.0,
            seed_prob: 0.0,
        };
        let mut rng = SimRng::new(4);
        assert_eq!(adv.generate(0, 0, 5, &mut rng), 2);
        assert_eq!(adv.generate(0, 0, 0, &mut rng), 0);
        // Seeding arrives as a root + first child pair.
        let seeder = TreeSpawn {
            k: 2,
            prob: 0.0,
            seed_prob: 1.0,
        };
        assert_eq!(seeder.generate(0, 0, 0, &mut rng), 2);
    }

    #[test]
    fn treespawn_process_actually_ignites() {
        // Regression: a lone seed used to be consumed in its own
        // arrival step, so the system stayed empty forever.
        let adv = TreeSpawn::new(2, 0.3, 0.2);
        let report = Runner::new(64, 11)
            .model(adv)
            .strategy(Unbalanced)
            .probe(MaxLoadProbe::new())
            .run(500);
        assert!(
            report.worst_max_load().unwrap_or(0) > 0,
            "tree-spawn process never put load in the system"
        );
        assert!(report.completions.count > 0);
    }

    #[test]
    fn treespawn_system_stays_bounded() {
        let adv = TreeSpawn::new(2, 0.3, 0.2); // subcritical: 0.6 < 1
        let mut e = Engine::new(256, 5, adv, Unbalanced);
        e.run(3000);
        let per_proc = e.world().total_load() as f64 / 256.0;
        assert!(per_proc < 20.0, "subcritical process diverged: {per_proc}");
    }

    #[test]
    fn balancer_tames_targeted_adversary() {
        // The victims become heavy every window; the balancer must keep
        // their load near O(window-budget + T) instead of accumulating.
        let n = 512;
        let cfg = BalancerConfig::paper(n);
        let t = cfg.t;
        let adv = Targeted::new(cfg.phase_length * 2, 4, t / 2);
        let worst_with = |balanced: bool| {
            let r = Runner::new(n, 9).model(adv).probe(MaxLoadProbe::new());
            if balanced {
                r.strategy(ThresholdBalancer::new(cfg.clone())).run(2000)
            } else {
                r.strategy(Unbalanced).run(2000)
            }
            .worst_max_load()
            .unwrap_or(0)
        };
        let bal_worst = worst_with(true);
        let unbal_worst = worst_with(false);
        assert!(
            bal_worst < unbal_worst,
            "balancer ({bal_worst}) should beat unbalanced ({unbal_worst})"
        );
        // O(B + T) shape: the balanced max stays within a small multiple
        // of the per-window injection.
        assert!(bal_worst <= 4 * t, "balanced worst {bal_worst} vs T={t}");
    }
}
