//! Weighted tasks — the BMS'97 direction ("Allocating weighted balls
//! in parallel", cited by the paper) applied to the *continuous*
//! balancer.
//!
//! [`Weighted`] wraps any generation model and draws a weight for every
//! generated task from a [`WeightDist`]; a weight-`w` task takes `w`
//! consume-units of service, and a processor's *weighted load* is its
//! remaining work. Combined with
//! [`BalancerConfig::with_weighted`](crate::BalancerConfig::with_weighted),
//! the threshold algorithm classifies heavy/light by weighted load and
//! moves `T/4` *weight units* per balancing action — the natural
//! generalization the paper leaves open.
//!
//! When sizing `T`, remember the weighted system's steady-state load is
//! the unit system's times the mean weight: use
//! [`BalancerConfig::from_t`](crate::BalancerConfig::from_t) with
//! `T ≈ (log log n)^2 · E[weight]`.

use pcrlb_sim::{LoadModel, ProcId, SimRng, Step};

/// Distribution of task weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightDist {
    /// All tasks weigh 1 (the paper's model).
    Unit,
    /// Uniform on `lo..=hi`.
    Uniform {
        /// Smallest weight.
        lo: u32,
        /// Largest weight.
        hi: u32,
    },
    /// Weight `2^i` with probability `2^-(i+1)` for `i < max_exp`
    /// (heavy-tailed; mean ≈ `max_exp / 2`).
    PowerOfTwo {
        /// Exponent bound.
        max_exp: u32,
    },
    /// Weight `heavy` with probability `prob`, else 1.
    Bimodal {
        /// The rare heavy weight.
        heavy: u32,
        /// Probability of drawing it.
        prob: f64,
    },
}

impl WeightDist {
    /// Draws a weight.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        match *self {
            WeightDist::Unit => 1,
            WeightDist::Uniform { lo, hi } => {
                debug_assert!(lo >= 1 && hi >= lo);
                lo + rng.below((hi - lo + 1) as usize) as u32
            }
            WeightDist::PowerOfTwo { max_exp } => {
                let mut i = 0;
                while i + 1 < max_exp && rng.chance(0.5) {
                    i += 1;
                }
                1 << i
            }
            WeightDist::Bimodal { heavy, prob } => {
                if rng.chance(prob) {
                    heavy.max(1)
                } else {
                    1
                }
            }
        }
    }

    /// Expected weight (exact).
    pub fn mean(&self) -> f64 {
        match *self {
            WeightDist::Unit => 1.0,
            WeightDist::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
            WeightDist::PowerOfTwo { max_exp } => {
                // P(i) = 2^-(i+1) for i < max_exp - 1; the last exponent
                // absorbs the remaining mass 2^-(max_exp-1).
                let mut mean = 0.0;
                for i in 0..max_exp.saturating_sub(1) {
                    mean += (1u64 << i) as f64 * 0.5f64.powi(i as i32 + 1);
                }
                if max_exp >= 1 {
                    mean += (1u64 << (max_exp - 1)) as f64 * 0.5f64.powi(max_exp as i32 - 1);
                }
                mean
            }
            WeightDist::Bimodal { heavy, prob } => prob * heavy.max(1) as f64 + (1.0 - prob),
        }
    }
}

/// Wraps a generation model, attaching weights to its tasks.
#[derive(Debug, Clone, Copy)]
pub struct Weighted<M> {
    inner: M,
    dist: WeightDist,
}

impl<M: LoadModel> Weighted<M> {
    /// Wraps `inner` with the given weight distribution.
    pub fn new(inner: M, dist: WeightDist) -> Self {
        Weighted { inner, dist }
    }

    /// The weight distribution.
    pub fn dist(&self) -> &WeightDist {
        &self.dist
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: LoadModel> LoadModel for Weighted<M> {
    fn generate(&self, p: ProcId, step: Step, load: usize, rng: &mut SimRng) -> usize {
        self.inner.generate(p, step, load, rng)
    }

    fn consume(&self, p: ProcId, step: Step, load: usize, rng: &mut SimRng) -> usize {
        self.inner.consume(p, step, load, rng)
    }

    fn task_weight(&self, _p: ProcId, _step: Step, rng: &mut SimRng) -> u32 {
        self.dist.sample(rng)
    }

    fn arrival_rate(&self) -> Option<f64> {
        // Arrival rate in *weight units* per step.
        self.inner.arrival_rate().map(|r| r * self.dist.mean())
    }

    fn name(&self) -> &'static str {
        "weighted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Single;

    #[test]
    fn unit_dist_is_identity() {
        let mut rng = SimRng::new(1);
        let d = WeightDist::Unit;
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1);
        }
        assert_eq!(d.mean(), 1.0);
    }

    #[test]
    fn uniform_dist_in_range() {
        let mut rng = SimRng::new(2);
        let d = WeightDist::Uniform { lo: 2, hi: 5 };
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let w = d.sample(&mut rng);
            assert!((2..=5).contains(&w));
            seen[w as usize] = true;
        }
        assert!(seen[2] && seen[3] && seen[4] && seen[5]);
        assert!((d.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn power_of_two_samples_match_mean() {
        let mut rng = SimRng::new(3);
        let d = WeightDist::PowerOfTwo { max_exp: 4 };
        let trials = 200_000;
        let sum: u64 = (0..trials).map(|_| d.sample(&mut rng) as u64).sum();
        let emp = sum as f64 / trials as f64;
        assert!(
            (emp - d.mean()).abs() < 0.05,
            "empirical {emp} vs analytic {}",
            d.mean()
        );
        // Samples are powers of two up to 2^3.
        let mut rng = SimRng::new(4);
        for _ in 0..1000 {
            let w = d.sample(&mut rng);
            assert!(w.is_power_of_two() && w <= 8);
        }
    }

    #[test]
    fn bimodal_mean() {
        let d = WeightDist::Bimodal {
            heavy: 100,
            prob: 0.01,
        };
        assert!((d.mean() - (0.01 * 100.0 + 0.99)).abs() < 1e-12);
    }

    #[test]
    fn weighted_wrapper_delegates_and_weights() {
        let m = Weighted::new(
            Single::default_paper(),
            WeightDist::Uniform { lo: 2, hi: 4 },
        );
        let mut rng = SimRng::new(5);
        // Generation pattern matches the inner model statistically.
        let gens: usize = (0..10_000).map(|_| m.generate(0, 0, 0, &mut rng)).sum();
        assert!((gens as f64 / 10_000.0 - 0.4).abs() < 0.02);
        // Weights come from the distribution.
        for _ in 0..100 {
            let w = m.task_weight(0, 0, &mut rng);
            assert!((2..=4).contains(&w));
        }
        // Arrival rate is in weight units.
        assert!((m.arrival_rate().unwrap() - 0.4 * 3.0).abs() < 1e-12);
        assert_eq!(m.name(), "weighted");
        assert_eq!(m.dist(), &WeightDist::Uniform { lo: 2, hi: 4 });
        assert!((m.inner().p - 0.4).abs() < 1e-12);
    }
}
