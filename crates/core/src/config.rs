//! Configuration of the threshold balancing algorithm.
//!
//! The paper fixes `T = (log log n)^2` and derives every other constant
//! from it (§3):
//!
//! | quantity          | paper value      | field                |
//! |-------------------|------------------|----------------------|
//! | phase length      | `T/16`           | [`BalancerConfig::phase_length`] |
//! | heavy threshold   | load ≥ `T/2`     | [`BalancerConfig::heavy_threshold`] |
//! | light threshold   | load ≤ `T/16`    | [`BalancerConfig::light_threshold`] |
//! | transfer size     | `T/4`            | [`BalancerConfig::transfer_amount`] |
//! | query-tree depth  | `(1/80)·log log n` | [`BalancerConfig::tree_depth`] |
//!
//! At asymptotic `n` these fractions are all comfortably large; at
//! laptop-scale `n` (where `log log n` is 3–5) the raw values degenerate
//! to 0, so [`BalancerConfig::paper`] clamps each derived quantity to at
//! least 1 and exposes a `t_scale` multiplier for experiments that need
//! non-degenerate thresholds. All defaults keep the paper's *ratios*.

use pcrlb_collision::CollisionParams;
use pcrlb_sim::loglog;
use std::fmt;

/// Why a configuration is rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Fewer processors than the collision protocol can target.
    TooFewProcessors {
        /// Requested processor count.
        n: usize,
        /// Minimum supported.
        min: usize,
    },
    /// Heavy threshold must exceed the light threshold.
    ThresholdsInverted,
    /// Transfer size must be positive.
    ZeroTransfer,
    /// A balanced-into processor must stay below the heavy threshold:
    /// `light + transfer + phase generation headroom < heavy` (the
    /// invariant behind the remark after Lemma 6).
    ReceiverMayOverflow,
    /// Phase length must be positive.
    ZeroPhase,
    /// Tree depth must be positive.
    ZeroDepth,
    /// The collision parameters are invalid.
    Collision(pcrlb_collision::ParamError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewProcessors { n, min } => {
                write!(f, "need at least {min} processors, got {n}")
            }
            ConfigError::ThresholdsInverted => {
                write!(f, "heavy threshold must exceed light threshold")
            }
            ConfigError::ZeroTransfer => write!(f, "transfer amount must be positive"),
            ConfigError::ReceiverMayOverflow => write!(
                f,
                "light + transfer must stay below the heavy threshold, \
                 or receivers could become heavy through balancing alone"
            ),
            ConfigError::ZeroPhase => write!(f, "phase length must be positive"),
            ConfigError::ZeroDepth => write!(f, "tree depth must be positive"),
            ConfigError::Collision(e) => write!(f, "collision parameters: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Complete parameterization of [`crate::ThresholdBalancer`].
#[derive(Debug, Clone, PartialEq)]
pub struct BalancerConfig {
    /// Number of processors.
    pub n: usize,
    /// The paper's `T` (after scaling and clamping).
    pub t: usize,
    /// Steps per phase (`max(1, T/16)`).
    pub phase_length: u64,
    /// A processor with load `>= heavy_threshold` at a phase boundary is
    /// heavy (`⌈T/2⌉`).
    pub heavy_threshold: usize,
    /// A processor with load `<= light_threshold` at a phase boundary is
    /// light (`⌊T/16⌋`).
    pub light_threshold: usize,
    /// Tasks moved per balancing action (`⌈T/4⌉`).
    pub transfer_amount: usize,
    /// Maximum query-tree depth (`max(1, ⌈log log n / 80⌉)` by default;
    /// Lemma 5 only needs `o(log log n)` levels, and with almost all
    /// processors light a couple of levels already succeed w.h.p.).
    pub tree_depth: u32,
    /// Collision-game parameters (Lemma 1 defaults).
    pub collision: CollisionParams,
    /// When true, transfers land `(level+1) · a·c·rounds` steps into the
    /// phase (when their collision game would really have completed)
    /// instead of at the phase boundary. Default false: at practical `n`
    /// a phase is only a handful of steps long.
    pub schedule_transfers: bool,
    /// §4.3 adversarial variant: a single-probe pre-round in which every
    /// heavy processor contacts one random partner before the query
    /// trees start. Default false.
    pub adversarial_preround: bool,
    /// §5 streaming remark: "it is not necessary to move a complete
    /// packet of O(T) tasks from one processor to another ... this can
    /// be done in a stream-like manner during the next interval of
    /// length O(T)". When set, each matched pair moves
    /// `⌈transfer/phase⌉` tasks per step over the following phase
    /// instead of the whole block at once. Default false.
    pub streaming_transfers: bool,
    /// Record one [`crate::balancer::PhaseReport`] per phase (memory
    /// grows with run length). Default false.
    pub record_phases: bool,
    /// When > 1, each phase's collision games execute across this many
    /// OS threads with channel-borne messages. The threaded game is
    /// bit-identical to the sequential one, so results do not depend on
    /// this knob — only wall-clock does. Default 1.
    pub game_shards: usize,
    /// Weighted mode (the BMS'97 extension): thresholds are interpreted
    /// in *weight units*, classification uses weighted load, and a
    /// balancing action moves `transfer_amount` weight units instead of
    /// that many tasks. Size `T` accordingly (multiply by the mean task
    /// weight). Default false.
    pub weighted: bool,
    /// Capped exponential backoff for heavy processors whose partner
    /// search failed: after `f` consecutive failures a processor sits
    /// out `min(2^(f-1), backoff_cap) - 1` phases before searching
    /// again. Under heavy message loss this keeps persistently
    /// unlucky processors from flooding every game; with reliable
    /// messaging it only changes behaviour after a failure, which
    /// Lemma 6 makes rare. Default false (the paper retries every
    /// phase).
    pub retry_backoff: bool,
    /// Largest backoff (in phases) under `retry_backoff`.
    pub backoff_cap: u32,
}

impl BalancerConfig {
    /// The paper's configuration for `n` processors (`t_scale = 1`).
    pub fn paper(n: usize) -> Self {
        Self::scaled(n, 1.0)
    }

    /// The paper's configuration with `T = t_scale · (log log n)^2`.
    /// Larger `t_scale` makes thresholds less degenerate at small `n`;
    /// the ratios between thresholds stay exactly the paper's.
    pub fn scaled(n: usize, t_scale: f64) -> Self {
        let ll = loglog(n) as f64;
        let t = ((ll * ll * t_scale).round() as usize).max(16);
        Self::from_t(n, t)
    }

    /// Builds a configuration from an explicit `T`, deriving all the
    /// paper's fractions from it.
    pub fn from_t(n: usize, t: usize) -> Self {
        let ll = loglog(n);
        BalancerConfig {
            n,
            t,
            phase_length: ((t as u64) / 16).max(1),
            heavy_threshold: t.div_ceil(2),
            light_threshold: t / 16,
            transfer_amount: t.div_ceil(4),
            tree_depth: (ll as u32)
                .div_ceil(80)
                .max(1)
                .max(if ll >= 4 { 2 } else { 1 }),
            collision: CollisionParams::lemma1(),
            schedule_transfers: false,
            adversarial_preround: false,
            streaming_transfers: false,
            record_phases: false,
            game_shards: 1,
            weighted: false,
            retry_backoff: false,
            backoff_cap: 8,
        }
    }

    /// Returns a copy with a different tree depth.
    pub fn with_tree_depth(mut self, depth: u32) -> Self {
        self.tree_depth = depth;
        self
    }

    /// Returns a copy with different collision parameters.
    pub fn with_collision(mut self, params: CollisionParams) -> Self {
        self.collision = params;
        self
    }

    /// Returns a copy with per-phase reporting enabled.
    pub fn with_phase_reports(mut self) -> Self {
        self.record_phases = true;
        self
    }

    /// Returns a copy with scheduled (mid-phase) transfers.
    pub fn with_scheduled_transfers(mut self) -> Self {
        self.schedule_transfers = true;
        self
    }

    /// Returns a copy with the §4.3 adversarial pre-round enabled.
    pub fn with_adversarial_preround(mut self) -> Self {
        self.adversarial_preround = true;
        self
    }

    /// Returns a copy with §5 streaming transfers enabled.
    pub fn with_streaming_transfers(mut self) -> Self {
        self.streaming_transfers = true;
        self
    }

    /// Returns a copy whose collision games run on `shards` threads.
    pub fn with_game_shards(mut self, shards: usize) -> Self {
        self.game_shards = shards.max(1);
        self
    }

    /// Returns a copy in weighted mode (thresholds in weight units).
    pub fn with_weighted(mut self) -> Self {
        self.weighted = true;
        self
    }

    /// Returns a copy with capped exponential retry backoff enabled
    /// (`cap` is clamped to at least 1 phase).
    pub fn with_retry_backoff(mut self, cap: u32) -> Self {
        self.retry_backoff = true;
        self.backoff_cap = cap.max(1);
        self
    }

    /// Validates all invariants the algorithm's analysis relies on.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.collision.validate().map_err(ConfigError::Collision)?;
        let min_n = self.collision.a + 2;
        if self.n < min_n {
            return Err(ConfigError::TooFewProcessors {
                n: self.n,
                min: min_n,
            });
        }
        if self.heavy_threshold <= self.light_threshold {
            return Err(ConfigError::ThresholdsInverted);
        }
        if self.transfer_amount == 0 {
            return Err(ConfigError::ZeroTransfer);
        }
        if self.phase_length == 0 {
            return Err(ConfigError::ZeroPhase);
        }
        if self.tree_depth == 0 {
            return Err(ConfigError::ZeroDepth);
        }
        // Remark after Lemma 6: a light receiver ends the phase with at
        // most light + transfer + (phase worth of self-generation);
        // demanding light + transfer < heavy keeps receivers from
        // becoming heavy through balancing alone.
        if self.light_threshold + self.transfer_amount >= self.heavy_threshold {
            return Err(ConfigError::ReceiverMayOverflow);
        }
        Ok(())
    }

    /// The load bound of Theorem 1 for this configuration: with
    /// `t_scale = 1` this is `(log log n)^2` (times the clamping slack
    /// at tiny `n`). Experiments compare measured max load against
    /// multiples of this.
    pub fn theorem1_bound(&self) -> usize {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_across_scales() {
        for n in [8, 64, 256, 1 << 12, 1 << 16, 1 << 20] {
            let cfg = BalancerConfig::paper(n);
            cfg.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            // Ratios follow the paper.
            assert_eq!(cfg.heavy_threshold, cfg.t.div_ceil(2));
            assert_eq!(cfg.light_threshold, cfg.t / 16);
            assert_eq!(cfg.transfer_amount, cfg.t.div_ceil(4));
            assert!(cfg.phase_length >= 1);
        }
    }

    #[test]
    fn t_floor_keeps_thresholds_meaningful() {
        // At n = 256, (loglog n)^2 = 9; the floor of 16 guarantees
        // light_threshold >= 1 and distinct tiers.
        let cfg = BalancerConfig::paper(256);
        assert!(cfg.t >= 16);
        assert!(cfg.light_threshold >= 1);
        assert!(cfg.heavy_threshold > cfg.light_threshold + cfg.transfer_amount);
    }

    #[test]
    fn scaled_config_grows_t() {
        let base = BalancerConfig::paper(1 << 16);
        let big = BalancerConfig::scaled(1 << 16, 4.0);
        assert!(big.t >= 4 * base.t / 2);
        big.validate().unwrap();
    }

    #[test]
    fn from_t_derivations() {
        let cfg = BalancerConfig::from_t(1024, 64);
        assert_eq!(cfg.t, 64);
        assert_eq!(cfg.phase_length, 4);
        assert_eq!(cfg.heavy_threshold, 32);
        assert_eq!(cfg.light_threshold, 4);
        assert_eq!(cfg.transfer_amount, 16);
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_catches_inverted_thresholds() {
        let mut cfg = BalancerConfig::paper(1024);
        cfg.light_threshold = cfg.heavy_threshold;
        assert_eq!(cfg.validate().unwrap_err(), ConfigError::ThresholdsInverted);
    }

    #[test]
    fn validation_catches_receiver_overflow() {
        let mut cfg = BalancerConfig::paper(1024);
        cfg.transfer_amount = cfg.heavy_threshold; // light + T/2 >= T/2
        assert_eq!(
            cfg.validate().unwrap_err(),
            ConfigError::ReceiverMayOverflow
        );
    }

    #[test]
    fn validation_catches_small_n() {
        let cfg = BalancerConfig::from_t(4, 64);
        assert!(matches!(
            cfg.validate().unwrap_err(),
            ConfigError::TooFewProcessors { .. }
        ));
    }

    #[test]
    fn validation_catches_zero_fields() {
        let mut cfg = BalancerConfig::paper(1024);
        cfg.transfer_amount = 0;
        assert_eq!(cfg.validate().unwrap_err(), ConfigError::ZeroTransfer);

        let mut cfg = BalancerConfig::paper(1024);
        cfg.phase_length = 0;
        assert_eq!(cfg.validate().unwrap_err(), ConfigError::ZeroPhase);

        let mut cfg = BalancerConfig::paper(1024);
        cfg.tree_depth = 0;
        assert_eq!(cfg.validate().unwrap_err(), ConfigError::ZeroDepth);
    }

    #[test]
    fn builder_methods() {
        let cfg = BalancerConfig::paper(1024)
            .with_tree_depth(5)
            .with_phase_reports()
            .with_scheduled_transfers()
            .with_adversarial_preround();
        assert_eq!(cfg.tree_depth, 5);
        assert!(cfg.record_phases);
        assert!(cfg.schedule_transfers);
        assert!(cfg.adversarial_preround);
    }

    #[test]
    fn error_messages_are_informative() {
        let err = BalancerConfig::from_t(4, 64).validate().unwrap_err();
        assert!(err.to_string().contains("processors"));
    }
}
