//! The §5 work-conserving remark.
//!
//! "Note that a time step in our model actually consists of four steps.
//! A processor can generate and consume load, perform balancing
//! decisions, and actually move load. **If there is no load to move, or
//! no balancing decisions to be performed, this time can be used to
//! perform local computation, that is, speed up the working on the
//! tasks.**"
//!
//! [`WorkConserving`] wraps any strategy and implements that remark:
//! after the inner strategy runs, every processor that was *not*
//! involved in a balancing action this step (did not send or receive
//! tasks) consumes one extra task if it has one. Because the threshold
//! algorithm communicates so rarely, almost every processor gets the
//! bonus sub-steps almost every step — the hidden throughput advantage
//! the remark points out over chatty schemes.

use pcrlb_sim::{Strategy, World};

/// Wraps `inner`, spending idle balancing sub-steps on extra task
/// execution (see module docs).
pub struct WorkConserving<S> {
    inner: S,
    /// Bonus consumptions granted so far.
    bonus_consumed: u64,
}

impl<S: Strategy> WorkConserving<S> {
    /// Wraps a strategy.
    pub fn new(inner: S) -> Self {
        WorkConserving {
            inner,
            bonus_consumed: 0,
        }
    }

    /// The wrapped strategy.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Total bonus consumptions granted.
    pub fn bonus_consumed(&self) -> u64 {
        self.bonus_consumed
    }
}

impl<S: Strategy> Strategy for WorkConserving<S> {
    fn on_step(&mut self, world: &mut World) {
        let n = world.n();
        // Snapshot per-processor transfer counters to detect who
        // participates in balancing this step.
        let before: Vec<(u64, u64)> = (0..n)
            .map(|p| {
                let s = &world.proc(p).stats;
                (s.transfers_out, s.transfers_in)
            })
            .collect();

        self.inner.on_step(world);

        for (p, (out_before, in_before)) in before.into_iter().enumerate() {
            let s = &world.proc(p).stats;
            let participated = s.transfers_out != out_before || s.transfers_in != in_before;
            if !participated && world.load(p) > 0 {
                world.consume_one(p);
                self.bonus_consumed += 1;
            }
        }
    }

    fn name(&self) -> &'static str {
        "work-conserving"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::ThresholdBalancer;
    use crate::gen::Single;
    use pcrlb_sim::{Engine, Unbalanced};

    #[test]
    fn idle_processors_get_bonus_work() {
        let n = 128;
        let mut e = Engine::new(
            n,
            1,
            Single::default_paper(),
            WorkConserving::new(Unbalanced),
        );
        e.run(500);
        // With no balancing at all, every loaded processor gets a bonus
        // every step: loads drain to ~nothing.
        assert!(e.strategy().bonus_consumed() > 0);
        assert!(
            e.world().total_load() < n as u64,
            "bonus consumption should keep the system nearly empty"
        );
    }

    #[test]
    fn participants_are_exempted_that_step() {
        // Silent model, one spike: when the balancer transfers, the two
        // endpoints skip the bonus while everyone else (empty) has
        // nothing to consume — so bonus count stays small and exact
        // accounting is observable.
        use pcrlb_sim::{LoadModel, ProcId, SimRng, Step};
        struct Silent;
        impl LoadModel for Silent {
            fn generate(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
                0
            }
            fn consume(&self, _: ProcId, _: Step, _: usize, _: &mut SimRng) -> usize {
                0
            }
        }
        let n = 64;
        let balancer = ThresholdBalancer::paper(n);
        let t = balancer.config().t;
        let mut e = Engine::new(n, 2, Silent, WorkConserving::new(balancer));
        e.world_mut().inject(0, 2 * t);
        let before_total = e.world().total_load();
        e.step();
        // Processor 0 was heavy and transferred: it got no bonus. Its
        // partner received tasks: no bonus either. Everyone else was
        // empty. So total load shrinks only by... nothing at all —
        // nobody qualified for a bonus this step.
        let transfers = e.world().messages().transfers;
        assert!(transfers >= 1, "spike should trigger a transfer");
        assert_eq!(e.world().total_load(), before_total);
        assert_eq!(e.strategy().bonus_consumed(), 0);
        // Next step: no transfer (below threshold or partner reserved),
        // both loaded processors qualify and consume bonus work.
        e.step();
        assert!(e.strategy().bonus_consumed() > 0);
    }

    #[test]
    fn work_conserving_balancer_outperforms_plain() {
        // Same arrival stream: the work-conserving variant completes at
        // least as many tasks.
        let n = 256;
        let steps = 1000;
        let mut plain = Engine::new(n, 3, Single::default_paper(), ThresholdBalancer::paper(n));
        let mut wc = Engine::new(
            n,
            3,
            Single::default_paper(),
            WorkConserving::new(ThresholdBalancer::paper(n)),
        );
        plain.run(steps);
        wc.run(steps);
        assert!(
            wc.world().completions().count >= plain.world().completions().count,
            "work conservation lost throughput"
        );
        assert!(wc.world().total_load() <= plain.world().total_load());
    }

    #[test]
    fn inner_accessor() {
        let wc = WorkConserving::new(ThresholdBalancer::paper(64));
        assert_eq!(wc.inner().config().n, 64);
        assert_eq!(wc.bonus_consumed(), 0);
    }
}
