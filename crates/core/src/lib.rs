//! # pcrlb-core — parallel continuous randomized load balancing
//!
//! The primary contribution of Berenbrink, Friedetzky and Mayr,
//! *"Parallel Continuous Randomized Load Balancing"* (SPAA 1998):
//! a threshold-triggered balancing algorithm for `n` processors that
//! continuously generate and consume tasks.
//!
//! * [`ThresholdBalancer`] — the algorithm of §3/Figure 2: phases of
//!   `T/16` steps with `T = (log log n)^2`; heavy processors
//!   (load ≥ `T/2`) search for light partners (load ≤ `T/16`) through
//!   balancing-request trees driven by the collision protocol, then
//!   move `T/4` tasks. Maximum load is `O((log log n)^2)` w.h.p.
//!   (Theorem 1) at an exponentially small communication cost.
//! * [`Single`], [`Geometric`], [`Multi`] — the randomized generation
//!   models of §1.2; [`adversary`] — the adversarial model.
//! * [`ScatterBalancer`] — the §5 remark variant trading communication
//!   and locality for an `O(log log n)` load bound.
//!
//! ## Quickstart
//!
//! ```
//! use pcrlb_core::{Single, ThresholdBalancer};
//! use pcrlb_sim::Engine;
//!
//! let n = 512;
//! let mut engine = Engine::new(n, 42, Single::default_paper(), ThresholdBalancer::paper(n));
//! engine.run(2_000);
//!
//! let t = engine.strategy().config().theorem1_bound();
//! assert!(engine.world().max_load() <= 2 * t); // Theorem 1 shape
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversary;
pub mod balancer;
pub mod config;
pub mod gen;
pub mod policy;
pub mod scatter;
pub mod traffic;
pub mod weighted;
pub mod work_conserving;

pub use adversary::{Burst, Targeted, TreeSpawn};
pub use balancer::{BalancerStats, PhaseReport, ThresholdBalancer};
pub use config::{BalancerConfig, ConfigError};
pub use gen::{Geometric, ModelError, Multi, Single};
pub use policy::{build_policy, CollisionPolicy, TopoSampler};
pub use scatter::{ScatterBalancer, ScatterStats};
pub use traffic::{Arrivals, TrafficError, TrafficModel, TrafficSpec};
pub use weighted::{WeightDist, Weighted};
pub use work_conserving::WorkConserving;
