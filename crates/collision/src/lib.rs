//! # pcrlb-collision — the collision protocol
//!
//! The `(n, ε, a, b, c)`-collision protocol (paper §2; originally from
//! shared-memory simulations, Meyer auf der Heide–Scheideler–Stemann
//! STACS 1995) and the balancing-request trees built on top of it
//! (paper §3, Figure 2).
//!
//! * [`CollisionParams`] — parameters, validity conditions, round/step
//!   bounds; [`CollisionParams::lemma1`] is the `a=5, b=2, c=1`
//!   instantiation the balancing algorithm uses.
//! * [`play_game`] — one collision game, message-accurate, sequential.
//! * [`play_game_threaded`] — the same game executed across OS threads
//!   with channel-borne messages; bit-identical outcomes.
//! * [`BalanceForest`] — a phase's simultaneous partner search for all
//!   heavy processors: one collision game per tree level, applicative
//!   partners reserve themselves, sibling pairs that cannot take load
//!   keep searching and double the frontier.
//!
//! ## Example
//!
//! ```
//! use pcrlb_collision::{play_game, CollisionParams};
//! use pcrlb_sim::SimRng;
//!
//! let params = CollisionParams::lemma1();
//! let requesters: Vec<usize> = (0..32).collect();
//! let mut rng = SimRng::new(42);
//! let outcome = play_game(1024, &requesters, &params, &mut rng);
//! assert!(outcome.success);
//! // Every request gathered at least b = 2 accepted queries:
//! assert!(outcome.accepted.iter().all(|a| a.len() >= 2));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod forest;
pub mod game;
pub mod params;
pub mod threaded;

pub use forest::{BalanceForest, Match, SearchFaults, SearchOutcome, SearchStats};
pub use game::{play_game, play_game_faulty, play_game_logged, GameOutcome, TargetSampler};
pub use params::{CollisionParams, ParamError};
pub use threaded::{
    play_game_pooled, play_game_pooled_faulty, play_game_threaded, play_game_threaded_faulty,
    play_game_verified,
};
