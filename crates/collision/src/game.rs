//! One `(n, ε, a, b, c)`-collision game (paper Figure 1).
//!
//! Mechanics per round:
//!
//! 1. every *open* request (fewer than `b` accepts so far) re-sends its
//!    not-yet-accepted queries to the *same* targets chosen at the start
//!    ("no new random choices are made");
//! 2. a processor whose pending queries this round — together with the
//!    queries it already accepted this game — fit within the collision
//!    value `c` accepts them all and answers; otherwise it answers none;
//! 3. a request that has gathered `b` accepts cancels its remaining
//!    queries and leaves the game.
//!
//! The cap in step 2 is cumulative across rounds: with `c = 1` a
//! processor that accepted a query in round 1 never accepts another in
//! the same game, which is exactly the "each processor is assigned at
//! most one query" guarantee Lemma 1 needs.

use crate::params::CollisionParams;
use pcrlb_sim::{ProcId, SimRng};
use std::collections::HashMap;

/// Result of one collision game.
#[derive(Debug, Clone)]
pub struct GameOutcome {
    /// Per request (parallel to the `requesters` input): the processors
    /// whose accepts were gathered. On success each has length ≥ `b`
    /// (exactly `b` unless several accepts landed in the final round).
    pub accepted: Vec<Vec<ProcId>>,
    /// For-loop rounds actually executed (≤ the paper's bound).
    pub rounds_used: u32,
    /// Whether *every* request gathered `b` accepts.
    pub success: bool,
    /// Query messages sent (including re-sends).
    pub queries_sent: u64,
    /// Accept messages sent.
    pub accepts_sent: u64,
    /// Simulated steps consumed: `a·c` per executed round.
    pub steps: u64,
}

impl GameOutcome {
    /// Indices of requests that did not reach `b` accepts.
    pub fn failed_requests(&self, b: usize) -> Vec<usize> {
        self.accepted
            .iter()
            .enumerate()
            .filter(|(_, acc)| acc.len() < b)
            .map(|(i, _)| i)
            .collect()
    }
}

/// State of one request during the game.
struct Request {
    /// The `a` targets chosen up front; never re-randomized.
    targets: Vec<ProcId>,
    /// Which targets have accepted.
    accepted_mask: Vec<bool>,
    accepts: usize,
    done: bool,
}

/// Plays one collision game.
///
/// * `n` — number of processors (targets are drawn from `0..n`);
/// * `requesters` — the processors originating a request this game;
///   targets are sampled distinct-per-request and never equal to the
///   requester (a processor cannot answer its own balancing query).
///
/// The paper samples targets i.u.a.r.; we sample *distinct* targets per
/// request because duplicate targets within one request are pure waste
/// under `c = 1` (both copies always collide with each other). For
/// `a ≪ n` the distributions are asymptotically identical.
///
/// # Panics
/// Panics if `params` are invalid or `n < a + 1` (not enough distinct
/// targets).
pub fn play_game(
    n: usize,
    requesters: &[ProcId],
    params: &CollisionParams,
    rng: &mut SimRng,
) -> GameOutcome {
    params.validate().expect("invalid collision parameters");
    assert!(
        n > params.a,
        "need n > a distinct targets (n={n}, a={})",
        params.a
    );

    let max_rounds = params.rounds(n);
    let mut queries_sent = 0u64;
    let mut accepts_sent = 0u64;

    // Sample each request's `a` targets up front.
    let mut scratch = Vec::with_capacity(params.a + 1);
    let mut requests: Vec<Request> = requesters
        .iter()
        .map(|&req| {
            // Draw a+1 distinct values so we can drop the requester if
            // it sampled itself, keeping `a` targets != requester.
            rng.distinct(n, params.a + 1, &mut scratch);
            let targets: Vec<ProcId> = scratch
                .iter()
                .copied()
                .filter(|&t| t != req)
                .take(params.a)
                .collect();
            Request {
                accepted_mask: vec![false; targets.len()],
                targets,
                accepts: 0,
                done: false,
            }
        })
        .collect();

    // Cumulative per-processor accept counts for this game. Requests
    // are few (≤ εn/a), so a hash map beats an O(n) array.
    let mut accepted_by: HashMap<ProcId, usize> = HashMap::new();
    // Per-round incoming query lists: target -> [(request idx, query idx)].
    let mut inbox: HashMap<ProcId, Vec<(usize, usize)>> = HashMap::new();

    let mut rounds_used = 0u32;
    for _ in 0..max_rounds {
        // Step 1: open requests re-send their unaccepted queries.
        inbox.clear();
        let mut any_open = false;
        for (ri, req) in requests.iter().enumerate() {
            if req.done {
                continue;
            }
            any_open = true;
            for (qi, &t) in req.targets.iter().enumerate() {
                if !req.accepted_mask[qi] {
                    queries_sent += 1;
                    inbox.entry(t).or_default().push((ri, qi));
                }
            }
        }
        if !any_open {
            break;
        }
        rounds_used += 1;

        // Step 2: targets accept all-or-none within the collision value.
        for (&target, queries) in inbox.iter() {
            let already = accepted_by.get(&target).copied().unwrap_or(0);
            if already >= params.c || already + queries.len() > params.c {
                continue; // collision (or saturated): answers none
            }
            *accepted_by.entry(target).or_insert(0) += queries.len();
            for &(ri, qi) in queries {
                let req = &mut requests[ri];
                req.accepted_mask[qi] = true;
                req.accepts += 1;
                accepts_sent += 1;
            }
        }

        // Step 3: satisfied requests leave the game.
        for req in requests.iter_mut() {
            if !req.done && req.accepts >= params.b {
                req.done = true;
            }
        }
    }

    let accepted: Vec<Vec<ProcId>> = requests
        .iter()
        .map(|req| {
            req.targets
                .iter()
                .zip(&req.accepted_mask)
                .filter(|(_, &acc)| acc)
                .map(|(&t, _)| t)
                .collect()
        })
        .collect();
    let success = requests.iter().all(|r| r.accepts >= params.b);

    GameOutcome {
        accepted,
        rounds_used,
        success,
        queries_sent,
        accepts_sent,
        steps: params.steps_per_round() * rounds_used as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn lemma1() -> CollisionParams {
        CollisionParams::lemma1()
    }

    #[test]
    fn no_requests_zero_work() {
        let mut rng = SimRng::new(1);
        let out = play_game(64, &[], &lemma1(), &mut rng);
        assert!(out.success);
        assert_eq!(out.rounds_used, 0);
        assert_eq!(out.queries_sent, 0);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn single_request_succeeds_fast() {
        let mut rng = SimRng::new(2);
        let out = play_game(64, &[0], &lemma1(), &mut rng);
        assert!(out.success);
        assert_eq!(out.rounds_used, 1); // no contention: first round
        assert!(out.accepted[0].len() >= 2);
        assert!(out.queries_sent >= 5);
    }

    #[test]
    fn accepted_targets_never_include_requester() {
        for seed in 0..50 {
            let mut r = SimRng::new(seed);
            let out = play_game(16, &[7], &lemma1(), &mut r);
            assert!(!out.accepted[0].contains(&7));
        }
    }

    #[test]
    fn collision_value_respected_across_rounds() {
        // Many requests on few processors force multi-round behaviour;
        // even then no processor may appear more than c times in total.
        let params = lemma1();
        for seed in 0..30 {
            let mut rng = SimRng::new(seed);
            let requesters: Vec<ProcId> = (0..6).collect();
            let out = play_game(32, &requesters, &params, &mut rng);
            let mut counts: HashMap<ProcId, usize> = HashMap::new();
            for acc in &out.accepted {
                for &t in acc {
                    *counts.entry(t).or_insert(0) += 1;
                }
            }
            for (&t, &cnt) in &counts {
                assert!(
                    cnt <= params.c,
                    "seed {seed}: target {t} accepted {cnt} > c"
                );
            }
        }
    }

    #[test]
    fn lemma1_regime_succeeds_whp() {
        // n = 4096 with n^0.5 requests: well within epsilon*n/a. Failure
        // probability should be essentially zero over 20 seeds.
        let params = lemma1();
        let n = 4096;
        let requesters: Vec<ProcId> = (0..64).collect();
        let mut failures = 0;
        for seed in 0..20 {
            let mut rng = SimRng::new(seed);
            let out = play_game(n, &requesters, &params, &mut rng);
            if !out.success {
                failures += 1;
            }
            assert!(out.rounds_used <= params.rounds(n));
        }
        assert_eq!(failures, 0);
    }

    #[test]
    fn exactly_b_accepts_in_uncontended_round() {
        // With no contention every query is accepted in round one, so a
        // request can end up with all `a` accepts (they arrive in the
        // same round in which `b` was reached).
        let mut rng = SimRng::new(9);
        let out = play_game(1 << 12, &[3], &lemma1(), &mut rng);
        assert_eq!(out.accepted[0].len(), 5);
        assert_eq!(out.accepts_sent, 5);
    }

    #[test]
    fn satisfied_requests_stop_resending() {
        // One uncontended request: round 1 satisfies it, game over —
        // queries_sent stays at `a`.
        let mut rng = SimRng::new(11);
        let out = play_game(256, &[0], &lemma1(), &mut rng);
        assert_eq!(out.queries_sent, 5);
    }

    #[test]
    fn overload_fails_gracefully() {
        // With c=1 and nearly all processors requesting, there are not
        // enough acceptors: the game must terminate at the round bound
        // and report failure instead of looping.
        let params = lemma1();
        let n = 12;
        let requesters: Vec<ProcId> = (0..11).collect();
        let mut rng = SimRng::new(5);
        let out = play_game(n, &requesters, &params, &mut rng);
        assert!(!out.success);
        assert_eq!(out.rounds_used, params.rounds(n));
        assert!(!out.failed_requests(params.b).is_empty());
    }

    #[test]
    fn steps_accounting() {
        let params = lemma1();
        let mut rng = SimRng::new(6);
        let out = play_game(128, &[1, 2, 3], &params, &mut rng);
        assert_eq!(out.steps, params.steps_per_round() * out.rounds_used as u64);
    }

    #[test]
    #[should_panic(expected = "need n > a")]
    fn too_few_processors_panics() {
        let mut rng = SimRng::new(1);
        play_game(5, &[0], &lemma1(), &mut rng);
    }

    #[test]
    fn deterministic_given_seed() {
        let params = lemma1();
        let requesters: Vec<ProcId> = (0..10).collect();
        let mut a = SimRng::new(77);
        let mut b = SimRng::new(77);
        let oa = play_game(512, &requesters, &params, &mut a);
        let ob = play_game(512, &requesters, &params, &mut b);
        assert_eq!(oa.accepted, ob.accepted);
        assert_eq!(oa.queries_sent, ob.queries_sent);
    }
}
