//! One `(n, ε, a, b, c)`-collision game (paper Figure 1).
//!
//! Mechanics per round:
//!
//! 1. every *open* request (fewer than `b` accepts so far) re-sends its
//!    not-yet-accepted queries to the *same* targets chosen at the start
//!    ("no new random choices are made");
//! 2. a processor whose pending queries this round — together with the
//!    queries it already accepted this game — fit within the collision
//!    value `c` accepts them all and answers; otherwise it answers none;
//! 3. a request that has gathered `b` accepts cancels its remaining
//!    queries and leaves the game.
//!
//! The cap in step 2 is cumulative across rounds: with `c = 1` a
//! processor that accepted a query in round 1 never accepts another in
//! the same game, which is exactly the "each processor is assigned at
//! most one query" guarantee Lemma 1 needs.

use crate::params::CollisionParams;
use pcrlb_faults::{GameFaults, MsgCtx, MsgKind};
use pcrlb_net::{ControlKind, WireLog};
use pcrlb_sim::{ProcId, SimRng};
use std::collections::HashMap;

/// Restricts a requester's target draws to a neighborhood.
///
/// The default game samples targets uniformly from `0..n` (the
/// complete graph). With a sampler installed, each request instead
/// draws its `a` targets via [`TargetSampler::draw_targets`] — the
/// graph-restricted model, where balancing partners must be topology
/// neighbors. Implementations must be deterministic given the RNG
/// state, must never emit the requester itself, and should draw
/// distinct neighbor *slots* (a multigraph edge may still repeat a
/// neighbor id; duplicate queries then simply collide).
pub trait TargetSampler: Send + Sync {
    /// Fills `out` with up to `a` targets for `req` (fewer when the
    /// neighborhood is smaller than `a`).
    fn draw_targets(&self, req: ProcId, a: usize, rng: &mut SimRng, out: &mut Vec<ProcId>);
}

/// Result of one collision game.
#[derive(Debug, Clone)]
pub struct GameOutcome {
    /// Per request (parallel to the `requesters` input): the processors
    /// whose accepts were gathered. On success each has length ≥ `b`
    /// (exactly `b` unless several accepts landed in the final round).
    pub accepted: Vec<Vec<ProcId>>,
    /// For-loop rounds actually executed (≤ the paper's bound).
    pub rounds_used: u32,
    /// Whether *every* request gathered `b` accepts.
    pub success: bool,
    /// Query messages sent (including re-sends).
    pub queries_sent: u64,
    /// Accept messages sent.
    pub accepts_sent: u64,
    /// Simulated steps consumed: `a·c` per executed round.
    pub steps: u64,
    /// Query messages lost in flight (also counted in `queries_sent` —
    /// the sender paid for them).
    pub queries_dropped: u64,
    /// Accept messages lost in flight (also counted in `accepts_sent`).
    /// A lost accept *burns* the target's collision capacity: the
    /// target believes it answered, so with `c = 1` it never answers
    /// that query again and the requester must succeed via its other
    /// targets or retry with fresh choices next phase.
    pub accepts_dropped: u64,
    /// Executed rounds in which no request received an accept — rounds
    /// the protocol paid for (in steps and re-sent queries) without
    /// making progress. Nonzero under contention even with reliable
    /// messaging; grows with the loss rate.
    pub wasted_rounds: u32,
}

impl GameOutcome {
    /// Indices of requests that did not reach `b` accepts.
    pub fn failed_requests(&self, b: usize) -> Vec<usize> {
        self.accepted
            .iter()
            .enumerate()
            .filter(|(_, acc)| acc.len() < b)
            .map(|(i, _)| i)
            .collect()
    }
}

/// State of one request during the game.
struct Request {
    /// The `a` targets chosen up front; never re-randomized.
    targets: Vec<ProcId>,
    /// Which targets have accepted.
    accepted_mask: Vec<bool>,
    /// Earliest round each query may be (re)sent. While a delayed copy
    /// is in flight this sits past its arrival round, so at most one
    /// copy of a given `(request, query)` pair exists in the system.
    next_send: Vec<u32>,
    accepts: usize,
    done: bool,
}

/// Plays one collision game.
///
/// * `n` — number of processors (targets are drawn from `0..n`);
/// * `requesters` — the processors originating a request this game;
///   targets are sampled distinct-per-request and never equal to the
///   requester (a processor cannot answer its own balancing query).
///
/// The paper samples targets i.u.a.r.; we sample *distinct* targets per
/// request because duplicate targets within one request are pure waste
/// under `c = 1` (both copies always collide with each other). For
/// `a ≪ n` the distributions are asymptotically identical.
///
/// # Panics
/// Panics if `params` are invalid or `n < a + 1` (not enough distinct
/// targets).
pub fn play_game(
    n: usize,
    requesters: &[ProcId],
    params: &CollisionParams,
    rng: &mut SimRng,
) -> GameOutcome {
    play_game_impl(n, requesters, params, rng, None, None, None)
}

/// Plays one collision game over an unreliable network.
///
/// Identical to [`play_game`] except that every query and accept
/// message is run past `faults` before delivery: dropped queries are
/// re-sent the next round (the requester notices the missing answer),
/// dropped accepts burn the target's capacity (see
/// [`GameOutcome::accepts_dropped`]), and delayed messages arrive the
/// given number of rounds late. All fault decisions are pure functions
/// of the message coordinates, so the outcome is deterministic in
/// `(seed, fault seed, nonce)` and bit-identical across the
/// sequential and threaded implementations.
///
/// # Panics
/// Panics under the same conditions as [`play_game`].
pub fn play_game_faulty(
    n: usize,
    requesters: &[ProcId],
    params: &CollisionParams,
    rng: &mut SimRng,
    faults: GameFaults<'_>,
) -> GameOutcome {
    play_game_impl(n, requesters, params, rng, Some(faults), None, None)
}

/// Plays one collision game while narrating every query and accept
/// into `log` as a [`pcrlb_net::ControlRecord`], in emission order —
/// the feed the net runtime turns into physical frames. The game
/// outcome is bit-identical to [`play_game`] / [`play_game_faulty`]
/// for the same inputs: logging adds records, never RNG draws.
///
/// # Panics
/// Panics under the same conditions as [`play_game`].
pub fn play_game_logged(
    n: usize,
    requesters: &[ProcId],
    params: &CollisionParams,
    rng: &mut SimRng,
    faults: Option<GameFaults<'_>>,
    log: &mut WireLog,
) -> GameOutcome {
    play_game_impl(n, requesters, params, rng, faults, Some(log), None)
}

pub(crate) fn play_game_impl(
    n: usize,
    requesters: &[ProcId],
    params: &CollisionParams,
    rng: &mut SimRng,
    faults: Option<GameFaults<'_>>,
    mut log: Option<&mut WireLog>,
    sampler: Option<&dyn TargetSampler>,
) -> GameOutcome {
    params.validate().expect("invalid collision parameters");
    assert!(
        sampler.is_some() || n > params.a,
        "need n > a distinct targets (n={n}, a={})",
        params.a
    );

    let max_rounds = params.rounds(n);
    let mut queries_sent = 0u64;
    let mut accepts_sent = 0u64;
    let mut queries_dropped = 0u64;
    let mut accepts_dropped = 0u64;
    let mut wasted_rounds = 0u32;

    // Sample each request's `a` targets up front.
    let mut scratch = Vec::with_capacity(params.a + 1);
    let mut requests: Vec<Request> = requesters
        .iter()
        .map(|&req| {
            let targets: Vec<ProcId> = match sampler {
                None => {
                    // Draw a+1 distinct values so we can drop the
                    // requester if it sampled itself, keeping `a`
                    // targets != requester.
                    rng.distinct(n, params.a + 1, &mut scratch);
                    scratch
                        .iter()
                        .copied()
                        .filter(|&t| t != req)
                        .take(params.a)
                        .collect()
                }
                Some(s) => {
                    let mut ts = Vec::with_capacity(params.a);
                    s.draw_targets(req, params.a, rng, &mut ts);
                    debug_assert!(!ts.contains(&req), "sampler emitted the requester");
                    ts
                }
            };
            Request {
                accepted_mask: vec![false; targets.len()],
                next_send: vec![0; targets.len()],
                targets,
                accepts: 0,
                done: false,
            }
        })
        .collect();

    // Cumulative per-processor accept counts for this game. Requests
    // are few (≤ εn/a), so a hash map beats an O(n) array.
    let mut accepted_by: HashMap<ProcId, usize> = HashMap::new();
    // Per-round incoming query lists: target -> [(request idx, query idx)].
    let mut inbox: HashMap<ProcId, Vec<(usize, usize)>> = HashMap::new();
    // Messages in flight past their send round (faulty runs only):
    // (arrival round, request, query[, target]).
    let mut delayed_queries: Vec<(u32, usize, usize, ProcId)> = Vec::new();
    let mut delayed_accepts: Vec<(u32, usize, usize)> = Vec::new();

    let mut rounds_used = 0u32;
    for round in 0..max_rounds {
        // Step 1: open requests re-send their unaccepted queries whose
        // send gate has come.
        inbox.clear();
        let mut any_open = false;
        for (ri, req) in requests.iter_mut().enumerate() {
            if req.done {
                continue;
            }
            any_open = true;
            for (qi, &t) in req.targets.iter().enumerate() {
                if req.accepted_mask[qi] || req.next_send[qi] > round {
                    continue;
                }
                queries_sent += 1;
                let Some(f) = faults else {
                    if let Some(l) = log.as_deref_mut() {
                        l.push_reliable(ControlKind::Query, requesters[ri], t);
                    }
                    req.next_send[qi] = round + 1;
                    inbox.entry(t).or_default().push((ri, qi));
                    continue;
                };
                let dropped = f.dropped(round, ri as u32, qi as u32, MsgKind::Query);
                if let Some(l) = log.as_deref_mut() {
                    let ctx = MsgCtx {
                        nonce: f.nonce,
                        round,
                        request: ri as u32,
                        query: qi as u32,
                        kind: MsgKind::Query,
                    };
                    l.push_faultable(ControlKind::Query, requesters[ri], t, ctx, dropped);
                }
                if dropped {
                    queries_dropped += 1;
                    req.next_send[qi] = round + 1;
                    continue;
                }
                let d = f.delay(round, ri as u32, qi as u32, MsgKind::Query);
                if d == 0 {
                    req.next_send[qi] = round + 1;
                    inbox.entry(t).or_default().push((ri, qi));
                } else {
                    req.next_send[qi] = round + d + 1;
                    delayed_queries.push((round + d, ri, qi, t));
                }
            }
        }
        if !any_open {
            break;
        }
        rounds_used += 1;

        // Delayed queries arriving this round join the inbox.
        let mut i = 0;
        while i < delayed_queries.len() {
            if delayed_queries[i].0 <= round {
                let (_, ri, qi, t) = delayed_queries.swap_remove(i);
                inbox.entry(t).or_default().push((ri, qi));
            } else {
                i += 1;
            }
        }

        // Step 2: targets accept all-or-none within the collision value.
        let mut delivered = 0u64;
        for (&target, queries) in inbox.iter() {
            let already = accepted_by.get(&target).copied().unwrap_or(0);
            if already >= params.c || already + queries.len() > params.c {
                continue; // collision (or saturated): answers none
            }
            *accepted_by.entry(target).or_insert(0) += queries.len();
            for &(ri, qi) in queries {
                accepts_sent += 1;
                let mut arrival = round;
                let mut dropped = false;
                if let Some(f) = faults {
                    dropped = f.dropped(round, ri as u32, qi as u32, MsgKind::Accept);
                    if !dropped {
                        arrival += f.delay(round, ri as u32, qi as u32, MsgKind::Accept);
                    }
                }
                if let Some(l) = log.as_deref_mut() {
                    match faults {
                        Some(f) => l.push_faultable(
                            ControlKind::Accept,
                            target,
                            requesters[ri],
                            MsgCtx {
                                nonce: f.nonce,
                                round,
                                request: ri as u32,
                                query: qi as u32,
                                kind: MsgKind::Accept,
                            },
                            dropped,
                        ),
                        None => l.push_reliable(ControlKind::Accept, target, requesters[ri]),
                    }
                }
                if dropped {
                    accepts_dropped += 1;
                    continue;
                }
                if arrival > round {
                    delayed_accepts.push((arrival, ri, qi));
                    continue;
                }
                let req = &mut requests[ri];
                if !req.accepted_mask[qi] {
                    req.accepted_mask[qi] = true;
                    req.accepts += 1;
                    delivered += 1;
                }
            }
        }

        // Delayed accepts arriving this round are applied now.
        let mut i = 0;
        while i < delayed_accepts.len() {
            if delayed_accepts[i].0 <= round {
                let (_, ri, qi) = delayed_accepts.swap_remove(i);
                let req = &mut requests[ri];
                if !req.accepted_mask[qi] {
                    req.accepted_mask[qi] = true;
                    req.accepts += 1;
                    delivered += 1;
                }
            } else {
                i += 1;
            }
        }
        if delivered == 0 {
            wasted_rounds += 1;
        }

        // Step 3: satisfied requests leave the game.
        for req in requests.iter_mut() {
            if !req.done && req.accepts >= params.b {
                req.done = true;
            }
        }
    }

    let accepted: Vec<Vec<ProcId>> = requests
        .iter()
        .map(|req| {
            req.targets
                .iter()
                .zip(&req.accepted_mask)
                .filter(|(_, &acc)| acc)
                .map(|(&t, _)| t)
                .collect()
        })
        .collect();
    let success = requests.iter().all(|r| r.accepts >= params.b);

    GameOutcome {
        accepted,
        rounds_used,
        success,
        queries_sent,
        accepts_sent,
        steps: params.steps_per_round() * rounds_used as u64,
        queries_dropped,
        accepts_dropped,
        wasted_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn lemma1() -> CollisionParams {
        CollisionParams::lemma1()
    }

    #[test]
    fn no_requests_zero_work() {
        let mut rng = SimRng::new(1);
        let out = play_game(64, &[], &lemma1(), &mut rng);
        assert!(out.success);
        assert_eq!(out.rounds_used, 0);
        assert_eq!(out.queries_sent, 0);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn single_request_succeeds_fast() {
        let mut rng = SimRng::new(2);
        let out = play_game(64, &[0], &lemma1(), &mut rng);
        assert!(out.success);
        assert_eq!(out.rounds_used, 1); // no contention: first round
        assert!(out.accepted[0].len() >= 2);
        assert!(out.queries_sent >= 5);
    }

    #[test]
    fn accepted_targets_never_include_requester() {
        for seed in 0..50 {
            let mut r = SimRng::new(seed);
            let out = play_game(16, &[7], &lemma1(), &mut r);
            assert!(!out.accepted[0].contains(&7));
        }
    }

    #[test]
    fn collision_value_respected_across_rounds() {
        // Many requests on few processors force multi-round behaviour;
        // even then no processor may appear more than c times in total.
        let params = lemma1();
        for seed in 0..30 {
            let mut rng = SimRng::new(seed);
            let requesters: Vec<ProcId> = (0..6).collect();
            let out = play_game(32, &requesters, &params, &mut rng);
            let mut counts: HashMap<ProcId, usize> = HashMap::new();
            for acc in &out.accepted {
                for &t in acc {
                    *counts.entry(t).or_insert(0) += 1;
                }
            }
            for (&t, &cnt) in &counts {
                assert!(
                    cnt <= params.c,
                    "seed {seed}: target {t} accepted {cnt} > c"
                );
            }
        }
    }

    #[test]
    fn lemma1_regime_succeeds_whp() {
        // n = 4096 with n^0.5 requests: well within epsilon*n/a. Failure
        // probability should be essentially zero over 20 seeds.
        let params = lemma1();
        let n = 4096;
        let requesters: Vec<ProcId> = (0..64).collect();
        let mut failures = 0;
        for seed in 0..20 {
            let mut rng = SimRng::new(seed);
            let out = play_game(n, &requesters, &params, &mut rng);
            if !out.success {
                failures += 1;
            }
            assert!(out.rounds_used <= params.rounds(n));
        }
        assert_eq!(failures, 0);
    }

    #[test]
    fn exactly_b_accepts_in_uncontended_round() {
        // With no contention every query is accepted in round one, so a
        // request can end up with all `a` accepts (they arrive in the
        // same round in which `b` was reached).
        let mut rng = SimRng::new(9);
        let out = play_game(1 << 12, &[3], &lemma1(), &mut rng);
        assert_eq!(out.accepted[0].len(), 5);
        assert_eq!(out.accepts_sent, 5);
    }

    #[test]
    fn satisfied_requests_stop_resending() {
        // One uncontended request: round 1 satisfies it, game over —
        // queries_sent stays at `a`.
        let mut rng = SimRng::new(11);
        let out = play_game(256, &[0], &lemma1(), &mut rng);
        assert_eq!(out.queries_sent, 5);
    }

    #[test]
    fn overload_fails_gracefully() {
        // With c=1 and nearly all processors requesting, there are not
        // enough acceptors: the game must terminate at the round bound
        // and report failure instead of looping.
        let params = lemma1();
        let n = 12;
        let requesters: Vec<ProcId> = (0..11).collect();
        let mut rng = SimRng::new(5);
        let out = play_game(n, &requesters, &params, &mut rng);
        assert!(!out.success);
        assert_eq!(out.rounds_used, params.rounds(n));
        assert!(!out.failed_requests(params.b).is_empty());
    }

    #[test]
    fn steps_accounting() {
        let params = lemma1();
        let mut rng = SimRng::new(6);
        let out = play_game(128, &[1, 2, 3], &params, &mut rng);
        assert_eq!(out.steps, params.steps_per_round() * out.rounds_used as u64);
    }

    #[test]
    #[should_panic(expected = "need n > a")]
    fn too_few_processors_panics() {
        let mut rng = SimRng::new(1);
        play_game(5, &[0], &lemma1(), &mut rng);
    }

    #[test]
    fn deterministic_given_seed() {
        let params = lemma1();
        let requesters: Vec<ProcId> = (0..10).collect();
        let mut a = SimRng::new(77);
        let mut b = SimRng::new(77);
        let oa = play_game(512, &requesters, &params, &mut a);
        let ob = play_game(512, &requesters, &params, &mut b);
        assert_eq!(oa.accepted, ob.accepted);
        assert_eq!(oa.queries_sent, ob.queries_sent);
    }

    #[test]
    fn reliable_faults_change_nothing() {
        use pcrlb_faults::{GameFaults, Reliable};
        let params = lemma1();
        let requesters: Vec<ProcId> = (0..20).collect();
        let mut a = SimRng::new(31);
        let mut b = SimRng::new(31);
        let plain = play_game(256, &requesters, &params, &mut a);
        let faulty = play_game_faulty(
            256,
            &requesters,
            &params,
            &mut b,
            GameFaults::new(&Reliable, 9),
        );
        assert_eq!(plain.accepted, faulty.accepted);
        assert_eq!(plain.queries_sent, faulty.queries_sent);
        assert_eq!(plain.accepts_sent, faulty.accepts_sent);
        assert_eq!(plain.rounds_used, faulty.rounds_used);
        assert_eq!(faulty.queries_dropped, 0);
        assert_eq!(faulty.accepts_dropped, 0);
        assert_eq!(plain.wasted_rounds, faulty.wasted_rounds);
    }

    #[test]
    fn lossy_game_terminates_counts_drops_and_is_deterministic() {
        use pcrlb_faults::{Bernoulli, GameFaults};
        let params = lemma1();
        let n = 1024;
        let requesters: Vec<ProcId> = (0..64).collect();
        let loss = Bernoulli::new(5, 0.3);
        let run = |nonce: u64| {
            let mut rng = SimRng::new(12);
            play_game_faulty(
                n,
                &requesters,
                &params,
                &mut rng,
                GameFaults::new(&loss, nonce),
            )
        };
        let a = run(0);
        let b = run(0);
        assert_eq!(a.accepted, b.accepted, "fault schedule must be pure");
        assert_eq!(a.queries_dropped, b.queries_dropped);
        assert!(
            a.queries_dropped > 0,
            "30% loss over 64 requests must drop something"
        );
        assert!(a.rounds_used <= params.rounds(n));
        // Different nonce, different fault pattern.
        let c = run(1);
        assert_ne!(
            (a.queries_dropped, a.accepts_dropped),
            (c.queries_dropped, c.accepts_dropped)
        );
    }

    #[test]
    fn delayed_queries_arrive_and_still_succeed() {
        use pcrlb_faults::{BoundedDelay, GameFaults};
        let params = lemma1();
        // Every message late by 1–2 rounds: an uncontended single
        // request still succeeds, just slower.
        let delay = BoundedDelay::new(3, 1.0, 2);
        let mut rng = SimRng::new(4);
        let out = play_game_faulty(4096, &[0], &params, &mut rng, GameFaults::new(&delay, 0));
        assert!(out.success);
        assert!(out.rounds_used > 1, "delays must cost extra rounds");
        assert_eq!(out.queries_dropped, 0);
        // The first round(s) deliver nothing: wasted.
        assert!(out.wasted_rounds >= 1);
    }

    #[test]
    fn logged_game_is_bit_identical_and_log_matches_counters() {
        use pcrlb_faults::{Bernoulli, GameFaults};
        use pcrlb_net::{ControlKind, WireLog};
        let params = lemma1();
        let n = 1024;
        let requesters: Vec<ProcId> = (0..48).collect();
        let loss = Bernoulli::new(5, 0.25);
        let mut a = SimRng::new(12);
        let plain = play_game_faulty(n, &requesters, &params, &mut a, GameFaults::new(&loss, 3));
        let mut b = SimRng::new(12);
        let mut log = WireLog::new();
        let logged = play_game_logged(
            n,
            &requesters,
            &params,
            &mut b,
            Some(GameFaults::new(&loss, 3)),
            &mut log,
        );
        assert_eq!(plain.accepted, logged.accepted);
        assert_eq!(plain.queries_sent, logged.queries_sent);
        assert_eq!(plain.accepts_sent, logged.accepts_sent);
        // One record per sent message, in emission order, with drop
        // verdicts agreeing with the counters.
        let queries = log
            .control
            .iter()
            .filter(|r| r.kind == ControlKind::Query)
            .count() as u64;
        let accepts = log
            .control
            .iter()
            .filter(|r| r.kind == ControlKind::Accept)
            .count() as u64;
        let dropped = log.control.iter().filter(|r| r.dropped).count() as u64;
        assert_eq!(queries, logged.queries_sent);
        assert_eq!(accepts, logged.accepts_sent);
        assert_eq!(dropped, logged.queries_dropped + logged.accepts_dropped);
        assert!(log.control.iter().all(|r| r.fault.is_some()));
        // Reliable logging carries no fault coordinates.
        let mut c = SimRng::new(12);
        let mut rlog = WireLog::new();
        let rel = play_game_logged(n, &requesters, &params, &mut c, None, &mut rlog);
        assert_eq!(rlog.len() as u64, rel.queries_sent + rel.accepts_sent);
        assert!(rlog.control.iter().all(|r| r.fault.is_none() && !r.dropped));
    }

    #[test]
    fn total_loss_fails_without_looping() {
        use pcrlb_faults::{Bernoulli, GameFaults};
        let params = lemma1();
        let loss = Bernoulli::new(1, 1.0);
        let mut rng = SimRng::new(2);
        let out = play_game_faulty(
            128,
            &[0, 1, 2],
            &params,
            &mut rng,
            GameFaults::new(&loss, 0),
        );
        assert!(!out.success);
        assert_eq!(out.rounds_used, params.rounds(128));
        assert_eq!(out.wasted_rounds, out.rounds_used);
        assert_eq!(out.queries_dropped, out.queries_sent);
    }
}
