//! Parameters of the `(n, ε, a, b, c)`-collision protocol.
//!
//! The protocol (paper §2, originally from Meyer auf der Heide,
//! Scheideler and Stemann, STACS 1995) assigns *queries* to processors:
//! each of at most `εn/a` requests sends `a` queries to processors
//! chosen i.u.a.r.; the protocol finds an assignment in which at least
//! `b < a` queries per request are accepted while no processor accepts
//! more than `c` queries.
//!
//! The paper runs the for-loop for `log log n / log(c(a−b)) + 3` rounds
//! and shows this suffices w.h.p. under the side conditions reproduced
//! in [`CollisionParams::validate`].

use pcrlb_sim::loglog;
use std::fmt;

/// Tunable parameters of one collision game.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionParams {
    /// Queries sent per request (`2 ≤ a ≤ √log n`).
    pub a: usize,
    /// Accepted queries required per request (`b < a`).
    pub b: usize,
    /// Collision value: a processor receiving more than `c` queries in a
    /// round answers none; no processor ever accepts more than `c`
    /// queries in one game.
    pub c: usize,
    /// Fraction bound: the protocol is analyzed for at most `εn/a`
    /// requests, `0 < ε < 1`.
    pub epsilon: f64,
}

/// Why a parameter set is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// `a < 2` or `a ≤ b`.
    BadQueryCount,
    /// `b == 0` (a request that needs no accepts is meaningless).
    BadAcceptCount,
    /// `c == 0` (no processor could ever accept anything).
    BadCollisionValue,
    /// `ε` outside `(0, 1]`.
    BadEpsilon,
    /// `c(a−b) < 2`: the round-count divisor `log(c(a−b))` vanishes and
    /// the doubling argument of the analysis breaks down.
    DegenerateProgress,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ParamError::BadQueryCount => "need 2 <= a and b < a",
            ParamError::BadAcceptCount => "need b >= 1",
            ParamError::BadCollisionValue => "need c >= 1",
            ParamError::BadEpsilon => "need 0 < epsilon <= 1",
            ParamError::DegenerateProgress => "need c*(a-b) >= 2 for round-count progress",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ParamError {}

impl CollisionParams {
    /// The Lemma 1 instantiation used by the balancing algorithm:
    /// `a = 5, b = 2, c = 1` — five queries per request, two accepts
    /// required, each processor accepts at most one query, so the two
    /// accepted processors become the two children of a node in the
    /// balancing-request tree.
    pub fn lemma1() -> Self {
        CollisionParams {
            a: 5,
            b: 2,
            c: 1,
            epsilon: 0.5,
        }
    }

    /// Creates and validates a parameter set.
    pub fn new(a: usize, b: usize, c: usize, epsilon: f64) -> Result<Self, ParamError> {
        let p = CollisionParams { a, b, c, epsilon };
        p.validate()?;
        Ok(p)
    }

    /// Checks the structural constraints the analysis needs.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.b == 0 {
            return Err(ParamError::BadAcceptCount);
        }
        if self.a < 2 || self.b >= self.a {
            return Err(ParamError::BadQueryCount);
        }
        if self.c == 0 {
            return Err(ParamError::BadCollisionValue);
        }
        if !(self.epsilon > 0.0 && self.epsilon <= 1.0) {
            return Err(ParamError::BadEpsilon);
        }
        if self.c * (self.a - self.b) < 2 {
            return Err(ParamError::DegenerateProgress);
        }
        Ok(())
    }

    /// The paper's side condition (1):
    /// `c²(a−b) / (c+1) > 1 + δ` for some constant `δ > 0`. We check it
    /// with `δ = 0` strictly.
    pub fn condition1(&self) -> bool {
        let (a, b, c) = (self.a as f64, self.b as f64, self.c as f64);
        c * c * (a - b) / (c + 1.0) > 1.0
    }

    /// Whether `a ≤ √(log n)` — the protocol's stated range for `a`.
    pub fn query_count_in_range(&self, n: usize) -> bool {
        let log_n = (n.max(2) as f64).log2();
        (self.a as f64) <= log_n.sqrt().max(2.0)
    }

    /// Maximum number of requests the analysis allows: `εn/a`.
    pub fn max_requests(&self, n: usize) -> usize {
        ((self.epsilon * n as f64) / self.a as f64).floor() as usize
    }

    /// Number of for-loop rounds the paper prescribes:
    /// `⌈log log n / log(c(a−b))⌉ + 3`.
    pub fn rounds(&self, n: usize) -> u32 {
        let llog = loglog(n) as f64;
        let divisor = ((self.c * (self.a - self.b)) as f64).log2();
        (llog / divisor).ceil() as u32 + 3
    }

    /// Simulated time steps one game consumes: queries are checked
    /// sequentially and an overloaded processor waits `c` steps per
    /// query, so one round costs `a·c` steps (paper §2).
    pub fn steps_per_round(&self) -> u64 {
        (self.a * self.c) as u64
    }

    /// Total step budget of one game: `a·c·rounds(n)`. For the Lemma 1
    /// parameters this is at most `5·log log n` for large `n`.
    pub fn steps_per_game(&self, n: usize) -> u64 {
        self.steps_per_round() * self.rounds(n) as u64
    }
}

impl Default for CollisionParams {
    fn default() -> Self {
        CollisionParams::lemma1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_parameters_are_valid() {
        let p = CollisionParams::lemma1();
        assert!(p.validate().is_ok());
        assert!(p.condition1()); // 1*1*3/2 = 1.5 > 1
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert_eq!(
            CollisionParams::new(1, 0, 1, 0.5).unwrap_err(),
            ParamError::BadAcceptCount
        );
        assert_eq!(
            CollisionParams::new(2, 2, 1, 0.5).unwrap_err(),
            ParamError::BadQueryCount
        );
        assert_eq!(
            CollisionParams::new(1, 1, 1, 0.5).unwrap_err(),
            ParamError::BadQueryCount
        );
        assert_eq!(
            CollisionParams::new(5, 2, 0, 0.5).unwrap_err(),
            ParamError::BadCollisionValue
        );
        assert_eq!(
            CollisionParams::new(5, 2, 1, 0.0).unwrap_err(),
            ParamError::BadEpsilon
        );
        assert_eq!(
            CollisionParams::new(5, 2, 1, 1.5).unwrap_err(),
            ParamError::BadEpsilon
        );
        // c(a-b) = 1: no progress.
        assert_eq!(
            CollisionParams::new(3, 2, 1, 0.5).unwrap_err(),
            ParamError::DegenerateProgress
        );
    }

    #[test]
    fn round_count_matches_lemma1_arithmetic() {
        let p = CollisionParams::lemma1();
        // Lemma 1: rounds = loglog n / log 3 + 3, and the total step
        // count a*c*rounds <= 5 loglog n for large n.
        for n in [1 << 8, 1 << 12, 1 << 16, 1 << 20] {
            let r = p.rounds(n);
            let llog = loglog(n) as f64;
            let expected = (llog / 3f64.log2()).ceil() as u32 + 3;
            assert_eq!(r, expected);
            assert_eq!(p.steps_per_game(n), 5 * r as u64);
        }
    }

    #[test]
    fn rounds_grow_with_progress_rate() {
        // Bigger c(a-b) => fewer rounds.
        let slow = CollisionParams::new(4, 2, 1, 0.5).unwrap(); // c(a-b)=2
        let fast = CollisionParams::new(10, 2, 1, 0.5).unwrap(); // c(a-b)=8
        let n = 1 << 16;
        assert!(fast.rounds(n) <= slow.rounds(n));
    }

    #[test]
    fn max_requests_scaling() {
        let p = CollisionParams::lemma1();
        assert_eq!(p.max_requests(1000), 100); // 0.5*1000/5
    }

    #[test]
    fn query_count_range() {
        let p = CollisionParams::lemma1();
        // sqrt(log2 2^32) > 5 only for log n >= 25; at n=2^16 the bound
        // is max(sqrt(16), 2) = 4 < 5 — the paper's constants are
        // asymptotic, so the range check is advisory, not enforced.
        assert!(p.query_count_in_range(1 << 30));
        assert!(!p.query_count_in_range(1 << 16));
    }

    #[test]
    fn default_is_lemma1() {
        assert_eq!(CollisionParams::default(), CollisionParams::lemma1());
    }

    #[test]
    fn param_error_display() {
        assert!(ParamError::DegenerateProgress
            .to_string()
            .contains("c*(a-b)"));
    }
}
